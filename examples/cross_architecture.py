"""Cross-architecture comparison — the paper's §VIII future work, live.

Prices the same measured visualization workloads on three cap-capable
sockets and prints, for each, where the first significant slowdown
lands as a fraction of that socket's TDP — showing how far the paper's
Broadwell findings transfer.

Run:  python examples/cross_architecture.py
"""

from repro.core import StudyConfig, StudyRunner, first_slowdown_cap
from repro.core.study import ALGORITHM_NAMES
from repro.machine import ALL_PRESETS


def main() -> None:
    size = 48
    print(f"extracting workloads once at {size}^3...")
    reference = StudyRunner()
    profiles = {alg: reference.profile_for(alg, size) for alg in ALGORITHM_NAMES}

    print(f"\n{'':>10s} " + " ".join(f"{n:>12s}" for n in ALL_PRESETS))
    header = " ".join(
        f"{f'{int(s.tdp_watts)}W TDP':>12s}" for s in ALL_PRESETS.values()
    )
    print(f"{'socket':>10s} {header}")

    rows = {alg: [] for alg in ALGORITHM_NAMES}
    for name, spec in ALL_PRESETS.items():
        runner = StudyRunner(spec)
        runner._profiles = {(alg, size): p for alg, p in profiles.items()}
        caps = tuple(
            float(w) for w in range(int(spec.tdp_watts), int(spec.rapl_floor_watts) - 1, -10)
        )
        cfg = StudyConfig(name=name, algorithms=ALGORITHM_NAMES, sizes=(size,), caps_w=caps)
        result = runner.run_config(cfg)
        for alg in ALGORITHM_NAMES:
            pts = result.select(algorithm=alg, size=size)
            red = first_slowdown_cap([(p.cap_w, p.tratio) for p in pts])
            frac = (red or spec.rapl_floor_watts) / spec.tdp_watts
            rows[alg].append(frac)

    for alg in ALGORITHM_NAMES:
        print(f"{alg:>10s} " + " ".join(f"{f:>11.0%} " for f in rows[alg]))

    print(
        "\nReading: smaller = deeper free-cap region.  The two-class structure"
        "\ntransfers (advection/volume throttle first everywhere), but the"
        "\nlow-power manycore's narrow DVFS range compresses the spread — on"
        "\nsuch parts power capping barely differentiates visualization"
        "\nalgorithms, which is itself an §VIII-style finding."
    )


if __name__ == "__main__":
    main()
