"""Post-hoc workflow: the paper's first use case, end to end.

"When doing post hoc visualization and data analysis on a shared
cluster, requesting the lowest amount of power will leave more for
other power-hungry applications."  This example plays both halves:

1. the *simulation job* runs the hydro proxy and archives its state;
2. the *analysis job* loads the archive later, classifies its filters
   from one uncapped run each, requests the predicted deepest safe cap,
   and exports the extracted surfaces as OBJ.

Run:  python examples/posthoc_workflow.py [workdir]
"""

import sys
from pathlib import Path

from repro.cloverleaf import CloverLeaf
from repro.core import predict_class, predicted_cap
from repro.data import load_dataset, save_dataset, save_obj
from repro.machine import Processor
from repro.viz import Contour, Slice


def simulation_job(workdir: Path) -> Path:
    print("=== simulation job: evolve and archive ===")
    sim = CloverLeaf(32)
    sim.run_to_step(40)
    path = save_dataset(sim.dataset(), workdir / "state_step40.npz")
    print(f"archived step {sim.state.step_count} "
          f"(mass {sim.state.total_mass():.3f}) -> {path}")
    return path


def analysis_job(archive: Path, workdir: Path) -> None:
    print("\n=== analysis job: load, classify, request power, extract ===")
    ds = load_dataset(archive)
    proc = Processor()

    for flt in (Contour(field="energy"), Slice(field="energy")):
        result = flt.execute(ds)
        uncapped = proc.run(result.profile, 120.0)
        pred = predict_class(uncapped)
        cap = predicted_cap(uncapped)
        capped = proc.run(result.profile, cap)
        print(
            f"{flt.name:>8s}: {pred.power_class.value} "
            f"(confidence {pred.confidence:.2f}) -> request {cap:.0f}W cap; "
            f"slowdown {capped.time_s / uncapped.time_s:.2f}x, "
            f"power {uncapped.avg_power_w:.1f} -> {capped.avg_power_w:.1f}W"
        )
        mesh = result.output.welded() if hasattr(result.output, "welded") else result.output
        obj = save_obj(mesh, workdir / f"{flt.name}.obj")
        print(f"          surface: {mesh.n_triangles:,} triangles -> {obj}")

    print("\nThe analysis ran essentially full speed at a fraction of the "
          "power request,\nleaving the headroom to the cluster's "
          "power-hungry co-tenants.")


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("posthoc")
    workdir.mkdir(exist_ok=True)
    archive = simulation_job(workdir)
    analysis_job(archive, workdir)


if __name__ == "__main__":
    main()
