"""In-situ scenario: CloverLeaf tightly coupled with visualization.

Runs the hydrodynamics proxy with two visualization pipelines attached
(the paper's setup: sim and viz alternate on the same resources), then
lets the power-budget runtime split a two-socket node budget between
them — showing the paper's headline use case end to end.

Run:  python examples/insitu_cloverleaf.py
"""

from repro.cloverleaf import CloverLeaf
from repro.insitu import InSituDriver, Pipeline, advisor_allocation, uniform_allocation
from repro.machine import Processor
from repro.viz import Contour, Slice, Threshold


def main() -> None:
    # 48^3 with 150 hydro steps per visualization cycle gives the
    # paper's composition: visualization is a 10-20% tail of each cycle.
    sim = CloverLeaf(48)
    pipelines = [
        Pipeline("surfaces").add(Contour(field="energy")).add(Slice(field="energy")),
        Pipeline("selection").add(Threshold(field="energy")),
    ]
    driver = InSituDriver(sim, pipelines, steps_per_cycle=150)

    print("=== tightly-coupled run (uncapped) ===")
    run = driver.run(3)
    for c in run.cycles:
        print(
            f"cycle {c.cycle}: sim {c.sim_time_s:7.3f}s + viz {c.viz_time_s:7.3f}s "
            f"(viz share {c.viz_fraction * 100:4.1f}%)  avg power {c.energy_j / c.time_s:6.1f}W"
        )
    print(f"total: {run.total_time_s:.2f}s at {run.avg_power_w:.1f}W average; "
          f"visualization share {run.viz_fraction * 100:.1f}% "
          f"(the paper quotes 10-20% for production runs)")

    print("\n=== node power budget: 140 W across two sockets ===")
    proc = Processor()
    sim_profile = sim.profile(n_steps=150)
    viz_profile = pipelines[0].execute(sim.dataset()).profile

    uni = uniform_allocation(proc, sim_profile, viz_profile, 140.0)
    adv = advisor_allocation(proc, sim_profile, viz_profile, 140.0)
    for d in (uni, adv):
        print(
            f"{d.strategy:>24s}: sim@{d.sim_cap_w:5.1f}W viz@{d.viz_cap_w:5.1f}W "
            f"-> makespan {d.makespan_s:7.3f}s, node draw {d.budget_used_w:6.1f}W"
        )
    gain = (uni.makespan_s - adv.makespan_s) / uni.makespan_s * 100
    if gain > 0.5:
        print(f"advisor finishes {gain:.1f}% sooner by deep-capping the data-bound "
              f"visualization and boosting the simulation.")
    else:
        print("advisor matches uniform here (the budget is loose enough "
              "that neither socket throttles).")


if __name__ == "__main__":
    main()
