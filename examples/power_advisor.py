"""Power advisor: classify the eight algorithms and recommend caps.

Reproduces the study's actionable output — for each algorithm, which
power class it belongs to and the deepest cap it tolerates — the data a
job-level runtime (GEOPM/PaViz) would consume.

Run:  python examples/power_advisor.py          (64^3, fast)
      REPRO_SIZE=128 python examples/power_advisor.py
"""

import os

from repro.core import (
    StudyConfig,
    StudyRunner,
    classify_result,
    recommend_cap,
)
from repro.core.study import ALGORITHM_NAMES


def main() -> None:
    size = int(os.environ.get("REPRO_SIZE", "64"))
    print(f"sweeping 8 algorithms x 9 caps at {size}^3 "
          f"(one real execution per algorithm)...\n")

    runner = StudyRunner()
    cfg = StudyConfig(name="advisor", algorithms=ALGORITHM_NAMES, sizes=(size,))
    result = runner.run_config(cfg)
    classes = classify_result(result, size=size)

    print(f"{'algorithm':>10} {'class':>18} {'draw':>7} {'IPC':>6} {'miss':>6} "
          f"{'rec. cap':>9} {'cost':>7}")
    for alg in ALGORITHM_NAMES:
        c = classes[alg]
        rec = recommend_cap(result.select(algorithm=alg, size=size))
        print(
            f"{alg:>10} {c.power_class.value:>18} {c.natural_power_w:>6.1f}W "
            f"{c.baseline_ipc:>6.2f} {c.llc_miss_rate:>6.2f} "
            f"{rec.cap_w:>8.0f}W {rec.predicted_tratio:>6.2f}X"
        )

    opportunity = [a for a, c in classes.items() if c.is_opportunity]
    print(
        f"\n{len(opportunity)} of 8 algorithms are power opportunities: run them"
        f"\nat the recommended caps and hand the headroom to the simulation."
    )

    # The same answer as a service: the pricing cache makes repeat
    # queries sub-millisecond (see docs/pricing_service.md).
    from repro import AdviseRequest, advise

    req = AdviseRequest(algorithm="contour", size=size)
    advise(req)  # first query executes the algorithm and fills the cache
    resp = advise(req)
    print(
        f"\nadvise(contour@{size}^3): cap {resp.recommended_cap_w:.0f}W, "
        f"{resp.predicted_tratio:.2f}X slowdown, "
        f"answered from cache in {resp.latency_s * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
