"""Power trace: the paper's measurement loop, visualized in the terminal.

Runs a visualization profile through the *traced* simulator — the RAPL
controller re-decides every millisecond and an MSR sampler reads energy
every 100 ms, exactly the paper's methodology — and prints the sampled
power series as an ASCII strip chart, with and without a power cap.

Run:  python examples/power_trace.py
"""

from repro.data.generators import make_dataset
from repro.machine import Processor
from repro.viz import Contour, VolumeRenderer


def strip_chart(samples, cap, width=68):
    lo, hi = 30.0, 125.0
    print(f"    {'t(s)':>6}  power                                   "
          f"{'W':>5}  {'f(GHz)':>7}")
    for s in samples:
        frac = (s.power_w - lo) / (hi - lo)
        bar = "#" * max(1, int(frac * width))
        marker = "|" if cap else ""
        print(f"    {s.t_s:6.2f}  {bar:<{width}s} {s.power_w:5.1f}  {s.f_eff_ghz:7.2f}")
    if cap:
        pos = int((cap - lo) / (hi - lo) * width)
        print(f"    {'':6}  {'' :<{pos}s}^ cap {cap:.0f}W")


def main() -> None:
    ds = make_dataset(48)
    proc = Processor()

    for flt, label in (
        (VolumeRenderer(field="energy"), "volume rendering (power sensitive)"),
        (Contour(field="energy"), "contour (power opportunity)"),
    ):
        profile = flt.execute(ds).profile
        # Scale the work up so the trace spans a few sampling windows.
        profile.segments = [s.scaled(40.0) for s in profile.segments]

        for cap in (None, 60.0):
            title = f"{label} @ {'no cap' if cap is None else f'{cap:.0f}W cap'}"
            run = proc.run_traced(profile, cap, noise_sigma_w=1.0, seed=11)
            print(f"\n=== {title} ===  total {run.time_s:.2f}s, "
                  f"{run.avg_power_w:.1f}W avg, f_eff {run.effective_freq_ghz:.2f}GHz")
            strip_chart(run.samples[:12], cap)


if __name__ == "__main__":
    main()
