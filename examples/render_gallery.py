"""Fig. 1 gallery: render all eight algorithms on CloverLeaf's energy field.

Advances the hydro proxy, runs each algorithm against the evolved state,
and writes PPM images (geometry algorithms are rendered through the ray
tracer's machinery; the two image-order algorithms render natively) —
the reproduction of the paper's Figure 1 contact sheet.

Run:  python examples/render_gallery.py [output_dir]
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.cloverleaf import CloverLeaf
from repro.viz import (
    ALGORITHMS,
    Bvh,
    ColorMap,
    Contour,
    Image,
    Isovolume,
    ParticleAdvection,
    RayTracer,
    Slice,
    SphericalClip,
    Threshold,
    VolumeRenderer,
    orbit_cameras,
)

RES = (200, 200)


def shade_mesh(points, triangles, scalars, bounds, lo, hi) -> Image:
    """Render a triangle soup with the BVH tracer (headlight + colormap)."""
    bvh = Bvh(points, triangles)
    cam = orbit_cameras(bounds, 1)[0]
    origins, dirs = cam.rays(*RES)
    t, hit = bvh.trace(origins, dirs)
    img = Image.blank(*RES, color=(0.08, 0.08, 0.10))
    rows = hit >= 0
    if rows.any():
        tri = bvh.tris[hit[rows]]
        p0 = bvh.points[tri[:, 0]]
        e1 = bvh.points[tri[:, 1]] - p0
        e2 = bvh.points[tri[:, 2]] - p0
        n = np.cross(e1, e2)
        norm = np.linalg.norm(n, axis=1, keepdims=True)
        n = np.divide(n, norm, out=np.zeros_like(n), where=norm > 0)
        shade = 0.25 + 0.75 * np.abs(np.einsum("ij,ij->i", n, -dirs[rows]))
        s = scalars[bvh.source_rows[hit[rows]]] if scalars is not None else np.full(rows.sum(), 0.5)
        tnorm = np.clip((s - lo) / (hi - lo if hi > lo else 1.0), 0, 1)
        img.rgb.reshape(-1, 3)[rows] = ColorMap()(tnorm) * shade[:, None]
    return img


def lines_to_tubes(lines, radius):
    """Streamlines as thin triangle ribbons so the tracer can draw them."""
    pts, tris = [], []
    for i in range(lines.n_lines):
        p = lines.line(i)
        if p.shape[0] < 2:
            continue
        offset = np.array([0.0, 0.0, radius])
        base = len(pts) * 2
        for a, b in zip(p[:-1], p[1:]):
            k = len(pts)
            pts.extend([a - offset, a + offset, b - offset, b + offset])
            tris.append([k, k + 1, k + 2])
            tris.append([k + 1, k + 3, k + 2])
    return np.asarray(pts), np.asarray(tris, dtype=np.int64)


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("gallery")
    out.mkdir(exist_ok=True)

    print("evolving CloverLeaf to step 60 on a 48^3 grid...")
    sim = CloverLeaf(48)
    sim.run_to_step(60)
    ds = sim.dataset()
    grid = ds.grid
    energy = ds.point_field("energy").values
    lo, hi = float(energy.min()), float(energy.max())
    bounds = grid.bounds

    def save(name: str, img: Image) -> None:
        path = img.save_ppm(out / f"{name}.ppm")
        print(f"  {name:>10s} -> {path}")

    t0 = time.time()

    # (a) Contour: isosurface triangles, traced directly.
    mesh = Contour(field="energy").execute(ds).output
    save("contour", shade_mesh(mesh.points, mesh.triangles, mesh.scalars, bounds, lo, hi))

    # (b) Threshold: kept cells' external boxes via the ray tracer on a
    #     cell subset -> render kept-cell surface with per-cell scalars.
    kept = Threshold(field="energy").execute(ds).output
    from repro.viz.raytrace import external_surface

    cell_scal = ds.cell_field("energy").values
    mask = np.zeros(grid.n_cells)
    mask[kept.cell_ids] = cell_scal[kept.cell_ids]
    pts_s, tris_s, scal_s = external_surface(grid, mask)
    keep_tris = scal_s > 0
    save("threshold", shade_mesh(pts_s, tris_s[keep_tris], scal_s[keep_tris], bounds, lo, hi))

    # (c) Spherical clip / (d) isovolume: cut-tet boundary faces.
    for name, flt in (
        ("clip", SphericalClip(field="energy")),
        ("isovolume", Isovolume(field="energy")),
    ):
        cut = flt.execute(ds).output.cut
        faces = np.vstack(
            [cut.tets[:, [0, 1, 2]], cut.tets[:, [0, 1, 3]], cut.tets[:, [0, 2, 3]], cut.tets[:, [1, 2, 3]]]
        )
        scal = cut.scalars[faces].mean(axis=1)
        save(name, shade_mesh(cut.points, faces, scal, bounds, lo, hi))

    # (e) Slice: three planes.
    smesh = Slice(field="energy").execute(ds).output
    save("slice", shade_mesh(smesh.points, smesh.triangles, None, bounds, lo, hi))

    # (f) Particle advection: streamlines as ribbons.
    lines = ParticleAdvection(n_seeds=216, n_steps=400).execute(ds).output
    tp, tt = lines_to_tubes(lines, radius=0.3 * grid.spacing[0])
    save("advection", shade_mesh(tp, tt, None, bounds, lo, hi))

    # (g) Ray tracing / (h) volume rendering render natively.
    rt = RayTracer(field="energy", n_images=1, images_per_cycle=1, resolution=RES)
    save("raytrace", rt.execute(ds).output[0])
    vr = VolumeRenderer(field="energy", n_images=1, images_per_cycle=1,
                        resolution=RES, opacity=0.25)
    save("volume", vr.execute(ds).output[0])

    print(f"gallery written to {out}/ in {time.time() - t0:.1f}s "
          f"(8 algorithms, {RES[0]}x{RES[1]} PPM)")


if __name__ == "__main__":
    main()
