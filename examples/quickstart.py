"""Quickstart: run one visualization algorithm under a power-cap sweep.

This reproduces the paper's core measurement in ~30 lines: execute the
contour filter (real marching cubes) against a synthetic energy field,
then price its work profile on the simulated Broadwell socket at every
RAPL cap from TDP down to 40 W.

Run:  python examples/quickstart.py
"""

from repro.data.generators import make_dataset
from repro.machine import Processor
from repro.viz import Contour


def main() -> None:
    # 1. A 64^3 dataset with a CloverLeaf-like multi-lobed energy field.
    dataset = make_dataset(64)

    # 2. Run the real algorithm once: 10 isovalues of marching cubes.
    result = Contour(field="energy").execute(dataset)
    mesh = result.output
    print(f"contour produced {mesh.n_triangles:,} triangles "
          f"({result.counts['active_cells']:,.0f} active cells)")

    # 3. The execution's work profile is frequency-independent — sweep
    #    the power cap on the simulated socket without re-running.
    proc = Processor()
    base = proc.run(result.profile, 120.0)
    print(f"\n{'cap':>6} {'time':>9} {'Tratio':>7} {'power':>8} {'freq':>9} {'IPC':>6}")
    for cap in range(120, 30, -10):
        run = proc.run(result.profile, float(cap))
        print(
            f"{cap:>5}W {run.time_s:>8.3f}s {run.time_s / base.time_s:>6.2f}X "
            f"{run.avg_power_w:>7.1f}W {run.effective_freq_ghz:>7.2f}GHz "
            f"{run.ipc:>6.2f}"
        )

    print(
        "\nThe contour is data intensive: its draw sits far below TDP, so the"
        "\ncap barely matters until it approaches the algorithm's natural power"
        "\n— the paper's 'power opportunity' behavior."
    )


if __name__ == "__main__":
    main()
