"""Parallel, resumable sweep through the stable facade.

The paper's Phase 3 grid is 288 configurations; only the 32
(algorithm, size) profile executions cost real work, and the engine
fans those out across worker processes while streaming every completed
point into a resumable JSON-lines store.  Kill this script mid-run and
start it again: it completes only the missing points, then reloads and
classifies the full result from disk.

Run:  python examples/parallel_sweep.py [workdir]

(Tip: REPRO_MAX_SIZE=32 python examples/parallel_sweep.py for a quick pass.)
"""

import sys
from pathlib import Path

import repro
from repro import api


def main() -> None:
    workdir = Path(sys.argv[1] if len(sys.argv) > 1 else ".cache/example")
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "phase2.jsonl"

    def progress(event):
        if event["kind"] == "profile-done":
            print(f"  profiled {event['algorithm']}@{event['size']}^3 "
                  f"[{event['completed']}/{event['total']}]")
        elif event["kind"] == "group-skipped":
            print(f"  resumed  {event['algorithm']}@{event['size']}^3 from store")

    print(f"=== sweep phase2 into {store} ===")
    result = repro.run_study(
        "phase2",
        workers=4,
        store=store,
        cache=workdir / "counts.json",
        progress=progress,
    )
    print(f"{len(result.points)} points for {len(result.algorithms)} algorithms")

    # A later analysis job needs none of the machinery above — just the file.
    print("\n=== reload and classify from disk ===")
    loaded = repro.load_result(store)
    for alg, c in repro.classify_study(loaded).items():
        cap = c.first_slowdown_cap_w
        print(f"{alg:>10s}: {c.power_class.value:<18s} "
              f"(draw {c.natural_power_w:.0f}W, first slowdown at "
              f"{'none' if cap is None else f'{cap:.0f}W'})")

    # The same facade regenerates the paper's tables from the shared cache.
    api.regenerate_tables(("table1",), cache=workdir / "counts.json",
                          csv_dir=workdir / "csv")
    print(f"\nwrote {workdir / 'csv' / 'table1.csv'}")


if __name__ == "__main__":
    main()
