"""In-situ coupling: pipelines, the coupled driver, the budget runtime."""

import numpy as np
import pytest

from repro.cloverleaf import CloverLeaf, step_profile
from repro.insitu import (
    InSituDriver,
    Pipeline,
    advisor_allocation,
    uniform_allocation,
)
from repro.viz import Contour, Threshold


class TestPipeline:
    def test_runs_filters_in_order(self, blobs_ds):
        pipe = Pipeline("p").add(Threshold(field="energy")).add(Contour(field="energy", isovalues=[1.0]))
        res = pipe.execute(blobs_ds)
        assert len(res.outputs) == 2
        assert res.profile.total_instructions > 0
        # Merged profile holds both filters' segments.
        names = [s.name for s in res.profile]
        assert names.count("framework") == 2

    def test_empty_pipeline_rejected(self, blobs_ds):
        with pytest.raises(ValueError, match="no filters"):
            Pipeline("empty").execute(blobs_ds)


class TestCoupledDriver:
    @pytest.fixture(scope="class")
    def run(self):
        sim = CloverLeaf(10)
        pipes = [Pipeline("viz").add(Threshold(field="energy"))]
        driver = InSituDriver(sim, pipes, steps_per_cycle=2)
        return driver.run(3)

    def test_cycle_count(self, run):
        assert len(run.cycles) == 3

    def test_times_and_energy_positive(self, run):
        assert run.total_time_s > 0
        assert run.total_energy_j > 0
        assert 0 < run.avg_power_w < 120

    def test_viz_fraction_in_unit_range(self, run):
        assert 0 < run.viz_fraction < 1

    def test_caps_change_phase_behavior(self):
        sim = CloverLeaf(10)
        pipes = [Pipeline("viz").add(Threshold(field="energy"))]
        driver = InSituDriver(sim, pipes, steps_per_cycle=1)
        free = driver.run(1)
        sim2 = CloverLeaf(10)
        driver2 = InSituDriver(sim2, pipes, steps_per_cycle=1)
        capped = driver2.run(1, sim_cap_w=40.0, viz_cap_w=40.0)
        assert capped.cycles[0].sim_time_s > free.cycles[0].sim_time_s

    def test_validation(self):
        sim = CloverLeaf(8)
        with pytest.raises(ValueError):
            InSituDriver(sim, [], steps_per_cycle=1)
        with pytest.raises(ValueError):
            InSituDriver(sim, [Pipeline("x").add(Threshold())], steps_per_cycle=0)


class TestBudgetRuntime:
    @pytest.fixture(scope="class")
    def profiles(self, request):
        # Paper-like composition: the simulation dominates; the
        # visualization is ~10-20% of the job.
        sim_profile = step_profile(128**3, 200)
        from repro.core import StudyRunner

        runner = StudyRunner(n_cycles=10)
        viz_profile = runner.profile_for("contour", 64)
        return sim_profile, viz_profile

    BUDGET = 140.0  # two sockets sharing a 140 W node budget

    def test_uniform_holds_budget(self, processor, profiles):
        sim, viz = profiles
        d = uniform_allocation(processor, sim, viz, self.BUDGET)
        assert d.cap_total_w <= self.BUDGET + 1e-6
        assert d.budget_used_w <= self.BUDGET + 1e-6
        assert d.sim_cap_w == d.viz_cap_w == self.BUDGET / 2

    def test_advisor_holds_budget(self, processor, profiles):
        sim, viz = profiles
        d = advisor_allocation(processor, sim, viz, self.BUDGET)
        assert d.cap_total_w <= self.BUDGET + 1e-6
        assert d.budget_used_w <= self.BUDGET + 1e-6

    def test_advisor_beats_uniform(self, processor, profiles):
        """The paper's headline use case: informed splitting finishes
        the job sooner than a naive uniform split."""
        sim, viz = profiles
        uni = uniform_allocation(processor, sim, viz, self.BUDGET)
        adv = advisor_allocation(processor, sim, viz, self.BUDGET)
        assert adv.makespan_s < uni.makespan_s

    def test_advisor_deep_caps_the_visualization(self, processor, profiles):
        sim, viz = profiles
        adv = advisor_allocation(processor, sim, viz, self.BUDGET)
        assert adv.viz_cap_w < self.BUDGET / 2
        assert adv.sim_cap_w > self.BUDGET / 2

    def test_viz_slowdown_within_tolerance(self, processor, profiles):
        sim, viz = profiles
        adv = advisor_allocation(processor, sim, viz, self.BUDGET, tolerance=0.10)
        base = processor.run(viz, processor.spec.tdp_watts)
        assert adv.viz.time_s <= base.time_s * 1.10 + 1e-9

    def test_budget_below_floor_rejected(self, processor, profiles):
        sim, viz = profiles
        with pytest.raises(ValueError, match="floor"):
            uniform_allocation(processor, sim, viz, 60.0)
