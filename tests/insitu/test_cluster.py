"""Multi-socket cluster with manufacturing variation (§III-A)."""

import numpy as np
import pytest

from repro.core import StudyRunner
from repro.insitu import Cluster, demand_aware_caps, uniform_caps
from repro.workload import WorkProfile


@pytest.fixture(scope="module")
def workloads():
    """Four sockets with imbalanced work (1x .. 2.5x of a volume render)."""
    runner = StudyRunner(n_cycles=2)
    base = runner.profile_for("volume", 24)

    def scaled(f):
        p = WorkProfile(name=f"w{f}", n_elements=base.n_elements)
        p.segments = [s.scaled(f) for s in base.segments]
        return p

    return [scaled(f) for f in (1.0, 1.5, 2.0, 2.5)]


class TestCluster:
    def test_variation_is_seeded(self):
        a = Cluster(4, seed=3)
        b = Cluster(4, seed=3)
        c = Cluster(4, seed=4)
        np.testing.assert_array_equal(a.efficiency_factors, b.efficiency_factors)
        assert not np.array_equal(a.efficiency_factors, c.efficiency_factors)

    def test_zero_variation_identical_parts(self, workloads):
        cl = Cluster(4, variation=0.0)
        res = cl.run([workloads[0]] * 4, [80.0] * 4, "x")
        times = [r.time_s for r in res.runs]
        assert max(times) == pytest.approx(min(times), rel=1e-12)

    def test_variation_spreads_performance_under_uniform_cap(self, workloads):
        """The paper (§III-A): a uniform cap yields different frequencies
        on otherwise identical processors."""
        cl = Cluster(6, variation=0.08, seed=1)
        res = cl.run([workloads[0]] * 6, [70.0] * 6, "uniform")
        freqs = [r.freq_ghz for r in res.runs]
        assert max(freqs) - min(freqs) > 0.05

    def test_validation(self, workloads):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(2, variation=0.9)
        cl = Cluster(2)
        with pytest.raises(ValueError):
            cl.run(workloads[:1], [80.0, 80.0], "x")


class TestStrategies:
    # Tight enough that the heavy socket throttles at the uniform split
    # (volume rendering draws ~83 W; uniform gives each socket 65 W).
    BUDGET = 4 * 65.0

    def test_uniform_holds_budget(self, workloads):
        cl = Cluster(4, seed=2)
        res = uniform_caps(cl, workloads, self.BUDGET)
        assert sum(r.cap_w for r in res.runs) <= self.BUDGET + 1e-6

    def test_demand_aware_holds_budget(self, workloads):
        cl = Cluster(4, seed=2)
        res = demand_aware_caps(cl, workloads, self.BUDGET)
        assert sum(r.cap_w for r in res.runs) <= self.BUDGET + 1e-6

    def test_demand_aware_beats_uniform_on_imbalance(self, workloads):
        """§III-A: assign power to the sockets that need it most."""
        cl = Cluster(4, seed=2)
        uni = uniform_caps(cl, workloads, self.BUDGET)
        dem = demand_aware_caps(cl, workloads, self.BUDGET)
        assert dem.makespan_s < uni.makespan_s
        # The critical (heaviest) socket received a higher cap.
        assert dem.runs[3].cap_w > uni.runs[3].cap_w

    def test_demand_aware_reduces_stranded_capacity(self, workloads):
        cl = Cluster(4, seed=2)
        uni = uniform_caps(cl, workloads, self.BUDGET)
        dem = demand_aware_caps(cl, workloads, self.BUDGET)
        assert dem.idle_ratio < uni.idle_ratio

    def test_budget_below_floor_rejected(self, workloads):
        cl = Cluster(4)
        with pytest.raises(ValueError, match="floor"):
            demand_aware_caps(cl, workloads, 100.0)
