"""Dynamic per-cycle power reallocation runtime."""

import numpy as np
import pytest

from repro.cloverleaf import step_profile
from repro.core import StudyRunner
from repro.insitu import (
    DynamicPowerRuntime,
    DynamicRunResult,
    SignalTrace,
    advisor_allocation,
    parse_governor,
    uniform_allocation,
)


@pytest.fixture(scope="module")
def profiles():
    sim = step_profile(64**3, 400)
    viz = StudyRunner(n_cycles=4).profile_for("contour", 64)
    return sim, viz


BUDGET = 140.0


class TestDynamicRuntime:
    def test_runs_requested_cycles(self, processor, profiles):
        sim, viz = profiles
        rt = DynamicPowerRuntime(processor, BUDGET)
        res = rt.run(sim, viz, 5)
        assert len(res.cycles) == 5

    def test_caps_respect_budget_every_cycle(self, processor, profiles):
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(*profiles, n_cycles=5)
        for c in res.cycles:
            assert c.sim_cap_w + c.viz_cap_w <= BUDGET + 1e-6

    def test_converges_toward_advisor_split(self, processor, profiles):
        """With a stationary workload the feedback controller should end
        up feeding the hungry simulation like the static advisor does."""
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(sim, viz, 6)
        adv = advisor_allocation(processor, sim, viz, BUDGET)
        sim_cap, viz_cap = res.final_caps()
        assert sim_cap >= adv.sim_cap_w - 10.0
        assert viz_cap <= adv.viz_cap_w + 15.0

    def test_beats_static_uniform_after_first_cycle(self, processor, profiles):
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(sim, viz, 4)
        uni = uniform_allocation(processor, sim, viz, BUDGET)
        # Cycle 0 *is* the uniform split; later cycles should be faster.
        assert res.cycles[0].makespan_s == pytest.approx(uni.makespan_s, rel=1e-9)
        assert res.cycles[-1].makespan_s < res.cycles[0].makespan_s

    def test_caps_stabilize(self, processor, profiles):
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(sim, viz, 6)
        a, b = res.cycles[-2], res.cycles[-1]
        assert a.sim_cap_w == pytest.approx(b.sim_cap_w, abs=6.0)
        assert a.viz_cap_w == pytest.approx(b.viz_cap_w, abs=6.0)

    def test_decide_oversubscribed_scales_down(self, processor):
        rt = DynamicPowerRuntime(processor, 100.0)
        sim_cap, viz_cap = rt.decide(90.0, 80.0)
        assert sim_cap + viz_cap <= 100.0 + 1e-6
        assert sim_cap > viz_cap  # proportional to demand

    def test_budget_validation(self, processor):
        with pytest.raises(ValueError, match="floor"):
            DynamicPowerRuntime(processor, 50.0)
        with pytest.raises(ValueError):
            DynamicPowerRuntime(processor, 140.0).run(
                step_profile(1000, 1), step_profile(1000, 1), 0
            )


class TestDecideCapArithmetic:
    """Regression: the surplus hand-off must never push the pair over
    the node budget (the floor clamp used to bounce ``budget - sim_cap``
    back *up* past the remainder) nor crash when budget > TDP leaves a
    non-positive remainder for ``validate_cap``."""

    def test_caps_within_budget_across_randomized_grid(self, processor):
        rng = np.random.default_rng(1234)
        tdp = processor.spec.tdp_watts
        floor = processor.spec.rapl_floor_watts
        # Budgets from just above the 2-socket floor to well past TDP
        # (the budget > TDP rows are the ones that used to raise).
        for budget in np.linspace(2 * floor + 1.0, 2 * tdp, 9):
            rt = DynamicPowerRuntime(processor, float(budget))
            draws = rng.uniform(1.0, tdp + 20.0, size=(40, 2))
            for sim_draw, viz_draw in draws:
                sim_cap, viz_cap = rt.decide(float(sim_draw), float(viz_draw))
                assert sim_cap + viz_cap <= budget + 1e-9
                assert sim_cap >= floor and viz_cap >= floor

    def test_surplus_handoff_keeps_floor_headroom(self, processor):
        # A starved viz phase hands its surplus to the hungry sim; the
        # old arithmetic let sim's clamp eat into viz's floor share.
        rt = DynamicPowerRuntime(processor, 100.0)
        sim_cap, viz_cap = rt.decide(85.0, 2.0)
        assert sim_cap + viz_cap <= 100.0 + 1e-9
        assert viz_cap >= processor.spec.rapl_floor_watts

    def test_budget_above_tdp_does_not_raise(self, processor):
        # budget 240 with a 120 W-draw sim used to make the remainder
        # -125 W and crash validate_cap mid-run.
        rt = DynamicPowerRuntime(processor, 2 * processor.spec.tdp_watts)
        sim_cap, viz_cap = rt.decide(processor.spec.tdp_watts, 1.0)
        assert sim_cap + viz_cap <= 2 * processor.spec.tdp_watts + 1e-9

    def test_run_respects_budget_with_hungry_sim(self, processor):
        sim = step_profile(64**3, 200)
        res = DynamicPowerRuntime(processor, 90.0).run(sim, step_profile(16**3, 5), 4)
        for c in res.cycles:
            assert c.sim_cap_w + c.viz_cap_w <= 90.0 + 1e-9

    def test_explicit_budget_below_floor_rejected(self, processor):
        rt = DynamicPowerRuntime(processor, 140.0)
        with pytest.raises(ValueError, match="floor"):
            rt.decide(50.0, 50.0, budget_w=60.0)


class TestFinalCapsEmptyRun:
    def test_empty_run_raises_value_error(self):
        with pytest.raises(ValueError, match="no cycles recorded"):
            DynamicRunResult().final_caps()

    def test_populated_run_still_works(self, processor, profiles):
        res = DynamicPowerRuntime(processor, BUDGET).run(*profiles, n_cycles=2)
        sim_cap, viz_cap = res.final_caps()
        assert sim_cap > 0 and viz_cap > 0


class TestGovernedDynamicRuntime:
    def test_governor_rescales_budget_per_cycle(self, processor, profiles):
        gov = parse_governor("const:0.7")
        rt = DynamicPowerRuntime(
            processor, 200.0, governor=gov, signal_trace=SignalTrace.constant(0.0)
        )
        res = rt.run(*profiles, n_cycles=3)
        for c in res.cycles:
            assert c.budget_w == pytest.approx(140.0)
            assert c.sim_cap_w + c.viz_cap_w <= c.budget_w + 1e-9

    def test_governed_budget_never_below_two_socket_floor(self, processor, profiles):
        # A 0.25 fraction of 170 W is under the 80 W floor; the runtime
        # must clamp rather than crash.
        gov = parse_governor("const:0.25")
        rt = DynamicPowerRuntime(
            processor, 170.0, governor=gov, signal_trace=SignalTrace.constant(0.0)
        )
        res = rt.run(*profiles, n_cycles=2)
        floor = 2 * processor.spec.rapl_floor_watts
        for c in res.cycles:
            assert c.budget_w >= floor
            assert c.sim_cap_w + c.viz_cap_w <= c.budget_w + 1e-9

    def test_no_governor_matches_static_budget(self, processor, profiles):
        plain = DynamicPowerRuntime(processor, BUDGET).run(*profiles, n_cycles=3)
        assert all(c.budget_w == BUDGET for c in plain.cycles)

    def test_governor_requires_trace(self, processor):
        with pytest.raises(ValueError, match="together"):
            DynamicPowerRuntime(processor, BUDGET, governor=parse_governor("const:0.8"))
