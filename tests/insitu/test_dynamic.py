"""Dynamic per-cycle power reallocation runtime."""

import pytest

from repro.cloverleaf import step_profile
from repro.core import StudyRunner
from repro.insitu import DynamicPowerRuntime, advisor_allocation, uniform_allocation


@pytest.fixture(scope="module")
def profiles():
    sim = step_profile(64**3, 400)
    viz = StudyRunner(n_cycles=4).profile_for("contour", 64)
    return sim, viz


BUDGET = 140.0


class TestDynamicRuntime:
    def test_runs_requested_cycles(self, processor, profiles):
        sim, viz = profiles
        rt = DynamicPowerRuntime(processor, BUDGET)
        res = rt.run(sim, viz, 5)
        assert len(res.cycles) == 5

    def test_caps_respect_budget_every_cycle(self, processor, profiles):
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(*profiles, n_cycles=5)
        for c in res.cycles:
            assert c.sim_cap_w + c.viz_cap_w <= BUDGET + 1e-6

    def test_converges_toward_advisor_split(self, processor, profiles):
        """With a stationary workload the feedback controller should end
        up feeding the hungry simulation like the static advisor does."""
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(sim, viz, 6)
        adv = advisor_allocation(processor, sim, viz, BUDGET)
        sim_cap, viz_cap = res.final_caps()
        assert sim_cap >= adv.sim_cap_w - 10.0
        assert viz_cap <= adv.viz_cap_w + 15.0

    def test_beats_static_uniform_after_first_cycle(self, processor, profiles):
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(sim, viz, 4)
        uni = uniform_allocation(processor, sim, viz, BUDGET)
        # Cycle 0 *is* the uniform split; later cycles should be faster.
        assert res.cycles[0].makespan_s == pytest.approx(uni.makespan_s, rel=1e-9)
        assert res.cycles[-1].makespan_s < res.cycles[0].makespan_s

    def test_caps_stabilize(self, processor, profiles):
        sim, viz = profiles
        res = DynamicPowerRuntime(processor, BUDGET).run(sim, viz, 6)
        a, b = res.cycles[-2], res.cycles[-1]
        assert a.sim_cap_w == pytest.approx(b.sim_cap_w, abs=6.0)
        assert a.viz_cap_w == pytest.approx(b.viz_cap_w, abs=6.0)

    def test_decide_oversubscribed_scales_down(self, processor):
        rt = DynamicPowerRuntime(processor, 100.0)
        sim_cap, viz_cap = rt.decide(90.0, 80.0)
        assert sim_cap + viz_cap <= 100.0 + 1e-6
        assert sim_cap > viz_cap  # proportional to demand

    def test_budget_validation(self, processor):
        with pytest.raises(ValueError, match="floor"):
            DynamicPowerRuntime(processor, 50.0)
        with pytest.raises(ValueError):
            DynamicPowerRuntime(processor, 140.0).run(
                step_profile(1000, 1), step_profile(1000, 1), 0
            )
