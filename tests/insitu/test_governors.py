"""Power-policy governors: signal traces, governors × control methods."""

import dataclasses
import math

import pytest

from repro.cloverleaf import step_profile
from repro.insitu.governors import (
    CONTROL_METHODS,
    ConstGovernor,
    DutyCycleControl,
    FrequencyCapControl,
    GovernedRunResult,
    GovernedRuntime,
    LinearGovernor,
    ListGovernor,
    PowerCapControl,
    SignalSample,
    SignalTrace,
    StepGovernor,
    governed_caps_w,
    make_control,
    parse_governor,
)
from repro.machine.rapl import MIN_DUTY
from repro.machine.simulator import Processor
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def profile():
    return step_profile(32**3, 60)


# ----------------------------------------------------------------- traces
class TestSignalTrace:
    def test_value_at_sample_and_hold(self):
        tr = SignalTrace(
            (SignalSample(0.0, 10.0), SignalSample(1.0, 20.0), SignalSample(2.0, 30.0))
        )
        assert tr.value_at(-5.0) == 10.0  # before the trace: first value
        assert tr.value_at(0.5) == 10.0
        assert tr.value_at(1.0) == 20.0
        assert tr.value_at(99.0) == 30.0  # after the trace: held forever

    def test_rejects_empty_and_unordered_and_nonfinite(self):
        with pytest.raises(ValueError, match="at least one"):
            SignalTrace(())
        with pytest.raises(ValueError, match="order"):
            SignalTrace((SignalSample(1.0, 0.0), SignalSample(0.0, 0.0)))
        with pytest.raises(ValueError, match="non-finite"):
            SignalTrace((SignalSample(0.0, float("nan")),))

    def test_synthetic_is_deterministic_per_seed(self):
        a = SignalTrace.synthetic("walk", seed=9, n=20, lo=0.0, hi=100.0)
        b = SignalTrace.synthetic("walk", seed=9, n=20, lo=0.0, hi=100.0)
        c = SignalTrace.synthetic("walk", seed=10, n=20, lo=0.0, hi=100.0)
        assert a.samples == b.samples
        assert a.samples != c.samples
        assert all(0.0 <= s.value <= 100.0 for s in a.samples)

    def test_jsonl_roundtrip(self, tmp_path):
        tr = SignalTrace.synthetic("sine", seed=1, n=12, lo=50.0, hi=250.0, name="price")
        path = tr.to_jsonl(tmp_path / "price.jsonl")
        back = SignalTrace.from_jsonl(path)
        assert back.name == "price"
        assert back.samples == tr.samples

    def test_jsonl_rejects_foreign_files(self, tmp_path):
        p = tmp_path / "other.jsonl"
        p.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a signal trace"):
            SignalTrace.from_jsonl(p)

    def test_jsonl_tolerates_torn_tail(self, tmp_path):
        tr = SignalTrace.synthetic("sine", seed=1, n=8)
        path = tr.to_jsonl(tmp_path / "t.jsonl")
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 9])  # mid-record kill
        back = SignalTrace.from_jsonl(path)
        assert 1 <= len(back) < len(tr)
        assert back.samples == tr.samples[: len(back)]

    def test_truncated_and_without(self):
        tr = SignalTrace.synthetic("square", seed=0, n=10)
        assert len(tr.truncated(0.5)) == 5
        assert len(tr.truncated(0.01)) == 1  # never empty
        holey = tr.without(range(1, 10))
        assert holey.samples == (tr.samples[0],)
        # With every sample gone, the first is kept so lookups still work.
        assert len(tr.without(range(10))) == 1


# -------------------------------------------------------------- governors
class TestGovernors:
    def test_const(self):
        assert ConstGovernor(0.8).limit(1e9) == 0.8
        with pytest.raises(ValueError):
            ConstGovernor(0.0)
        with pytest.raises(ValueError):
            ConstGovernor(1.5)

    def test_step(self):
        g = StepGovernor(((100.0, 0.7), (200.0, 0.5)))
        assert g.limit(0.0) == 1.0
        assert g.limit(100.0) == 0.7
        assert g.limit(199.9) == 0.7
        assert g.limit(500.0) == 0.5
        with pytest.raises(ValueError, match="increasing"):
            StepGovernor(((200.0, 0.7), (100.0, 0.5)))

    def test_list_snaps_to_nearest_level(self):
        g = ListGovernor(((100.0, 1.0), (300.0, 0.5)))
        assert g.limit(120.0) == 1.0
        assert g.limit(280.0) == 0.5
        assert g.limit(200.0) == 1.0  # tie resolves toward the lower signal

    def test_linear_interpolates_and_clamps(self):
        g = LinearGovernor(100.0, 500.0, min_fraction=0.25)
        assert g.limit(50.0) == 1.0
        assert g.limit(500.0) == pytest.approx(0.25)
        assert g.limit(300.0) == pytest.approx(0.625)
        assert g.limit(1e6) == pytest.approx(0.25)

    def test_parse_specs(self):
        assert isinstance(parse_governor("const:0.8"), ConstGovernor)
        assert parse_governor("const:80%").fraction == pytest.approx(0.8)
        g = parse_governor("step:100=0.7:200=0.5")
        assert g.limit(150.0) == 0.7
        assert parse_governor("linear:100:500:0.3").min_fraction == pytest.approx(0.3)
        assert parse_governor("list:100=1.0:300=0.5").limit(290.0) == 0.5
        for bad in ("pid:1:2", "step:abc=0.5", "linear:5", "const:2.0"):
            with pytest.raises(ValueError):
                parse_governor(bad)

    def test_describe_round_trips_through_parse(self):
        for spec in ("const:0.8", "step:100=0.7:200=0.5", "list:100=1:300=0.5"):
            g = parse_governor(spec)
            again = parse_governor(g.describe())
            for signal in (0.0, 150.0, 250.0, 400.0):
                assert g.limit(signal) == again.limit(signal)


# --------------------------------------------------------- control methods
class TestControlMethods:
    def test_power_cap_interpolates_floor_to_tdp(self, processor):
        ctrl = PowerCapControl(processor.spec)
        assert ctrl.setting(1.0).cap_w == pytest.approx(processor.spec.tdp_watts)
        lowest = ctrl.setting(1e-9).cap_w
        assert lowest == pytest.approx(processor.spec.rapl_floor_watts, abs=1e-3)

    def test_frequency_cap_picks_a_real_bin(self, processor):
        ctrl = FrequencyCapControl(processor.spec)
        bins = processor.spec.freq_bins
        top = ctrl.setting(1.0)
        assert top.f_ceiling_ghz == pytest.approx(float(bins[-1]))
        bottom = ctrl.setting(1e-9)
        assert bottom.f_ceiling_ghz == pytest.approx(float(bins[0]))
        for frac in (0.2, 0.5, 0.8):
            f = ctrl.setting(frac).f_ceiling_ghz
            assert any(math.isclose(f, float(b)) for b in bins)

    def test_duty_cycle_quantizes_to_levels(self, processor):
        ctrl = DutyCycleControl(processor.spec, n_levels=8)
        assert ctrl.setting(1.0).duty_cap == pytest.approx(1.0)
        assert ctrl.setting(1e-9).duty_cap == pytest.approx(MIN_DUTY)
        assert ctrl.setting(0.5).duty_cap == pytest.approx(0.5)
        with pytest.raises(ValueError, match="n_levels"):
            DutyCycleControl(processor.spec, n_levels=0)

    def test_make_control_registry(self, processor):
        for name in ("power", "frequency", "duty"):
            assert make_control(name, processor.spec).name == name
        assert set(CONTROL_METHODS) == {"power", "frequency", "duty"}
        with pytest.raises(ValueError, match="unknown control"):
            make_control("cgroup", processor.spec)


# ------------------------------------------ static-path bitwise equivalence
class TestStaticEquivalence:
    """Acceptance: every control method under ConstGovernor reproduces
    the static ``Processor.run`` path bitwise at the same setting."""

    @pytest.mark.parametrize("control", sorted(CONTROL_METHODS))
    def test_const_governor_matches_static_run(self, processor, profile, control):
        ctrl = make_control(control, processor.spec)
        runtime = GovernedRuntime(
            processor, ConstGovernor(1.0), ctrl, SignalTrace.constant(0.0),
            metrics=MetricsRegistry(),
        )
        governed = runtime.run(profile, 3)
        static = processor.run(profile, ctrl.setting(1.0).cap_w)
        for epoch in governed.epochs:
            assert epoch.time_s == static.time_s          # bitwise, not approx
            assert epoch.energy_j == static.energy_j
            assert epoch.freq_ghz == static.effective_freq_ghz
            assert epoch.cap_met == static.cap_met

    @pytest.mark.parametrize("fraction", (0.3, 0.6, 1.0))
    def test_power_cap_fraction_matches_static_cap(self, processor, profile, fraction):
        ctrl = PowerCapControl(processor.spec)
        setting = ctrl.setting(fraction)
        runtime = GovernedRuntime(
            processor, ConstGovernor(fraction), ctrl, SignalTrace.constant(0.0),
            metrics=MetricsRegistry(),
        )
        governed = runtime.run(profile, 2)
        static = processor.run(profile, setting.cap_w)
        assert all(e.time_s == static.time_s for e in governed.epochs)
        assert all(e.energy_j == static.energy_j for e in governed.epochs)

    def test_frequency_ceiling_matches_slower_part(self, processor, profile):
        """A pinned DVFS ceiling is bitwise the same run a machine whose
        turbo bin *is* that ceiling would produce at an uncapped TDP."""
        ctrl = FrequencyCapControl(processor.spec)
        setting = ctrl.setting(0.9)
        capped = processor.run(
            profile, processor.spec.tdp_watts, f_ceiling_ghz=setting.f_ceiling_ghz
        )
        slow_spec = dataclasses.replace(
            processor.spec,
            f_turbo=setting.f_ceiling_ghz,
            f_base=min(processor.spec.f_base, setting.f_ceiling_ghz),
        )
        native = Processor(slow_spec).run(profile, slow_spec.tdp_watts)
        assert capped.time_s == native.time_s
        assert capped.energy_j == native.energy_j

    def test_duty_cap_matches_closed_form(self, processor, profile):
        ctrl = DutyCycleControl(processor.spec)
        setting = ctrl.setting(0.5)
        run = processor.run(profile, processor.spec.tdp_watts, duty_cap=setting.duty_cap)
        assert all(
            math.isclose(r.duty, setting.duty_cap) for r in run.records
        )
        full = processor.run(profile, processor.spec.tdp_watts)
        assert run.time_s > full.time_s  # modulation costs time...
        assert run.avg_power_w < full.avg_power_w  # ...and saves power


# ----------------------------------------------------------------- runtime
class TestGovernedRuntime:
    def test_records_one_epoch_per_period(self, processor, profile):
        runtime = GovernedRuntime(
            processor,
            parse_governor("step:100=0.7:200=0.5"),
            PowerCapControl(processor.spec),
            SignalTrace.synthetic("walk", seed=3, n=24, lo=50.0, hi=250.0),
            metrics=MetricsRegistry(),
        )
        result = runtime.run(profile, 6)
        assert result.n_epochs == 6
        assert result.total_time_s == pytest.approx(sum(e.time_s for e in result.epochs))
        assert [e.epoch for e in result.epochs] == list(range(6))
        # Epoch start times accumulate the measured durations.
        for prev, cur in zip(result.epochs, result.epochs[1:]):
            assert cur.t_s == pytest.approx(prev.t_s + prev.time_s)

    def test_decisions_counted_per_control(self, processor, profile):
        registry = MetricsRegistry()
        runtime = GovernedRuntime(
            processor,
            ConstGovernor(0.9),
            DutyCycleControl(processor.spec),
            SignalTrace.constant(0.0),
            metrics=registry,
        )
        runtime.run(profile, 4)
        counter = registry.counter(
            "repro_governor_decisions_total",
            "governor policy decisions taken",
            control="duty",
        )
        assert counter.value == 4

    def test_final_setting_and_empty_guard(self, processor, profile):
        runtime = GovernedRuntime(
            processor,
            ConstGovernor(0.5),
            PowerCapControl(processor.spec),
            SignalTrace.constant(0.0),
            metrics=MetricsRegistry(),
        )
        result = runtime.run(profile, 2)
        final = result.final_setting()
        assert final.control == "power"
        assert final.fraction == pytest.approx(0.5)
        with pytest.raises(ValueError, match="no epochs"):
            GovernedRunResult(governor="g", control="power", trace="t").final_setting()
        with pytest.raises(ValueError, match="at least one epoch"):
            runtime.run(profile, 0)


# ------------------------------------------------------------ sweep caps
class TestGovernedCaps:
    def test_dedupes_preserving_first_seen_order(self, processor):
        gov = parse_governor("step:100=0.5")
        trace = SignalTrace(
            tuple(
                SignalSample(float(i), v)
                for i, v in enumerate((0.0, 150.0, 0.0, 150.0, 150.0))
            )
        )
        caps = governed_caps_w(gov, trace, processor.spec, n_epochs=5, epoch_s=1.0)
        assert len(caps) == 2
        assert caps[0] == pytest.approx(processor.spec.tdp_watts)
        assert caps[0] > caps[1]

    def test_caps_stay_inside_rapl_window(self, processor):
        gov = LinearGovernor(0.0, 100.0, min_fraction=0.25)
        trace = SignalTrace.synthetic("walk", seed=5, n=30, lo=0.0, hi=100.0)
        caps = governed_caps_w(gov, trace, processor.spec, n_epochs=30)
        spec = processor.spec
        assert all(spec.rapl_floor_watts <= c <= spec.tdp_watts for c in caps)
        with pytest.raises(ValueError):
            governed_caps_w(gov, trace, spec, n_epochs=0)
