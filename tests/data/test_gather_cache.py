"""Tests for the shared cell-corner gather cache (``corner_gather``).

The cache is keyed on cell topology (``cell_dims``) only — origin and
spacing never affect point ids — and is shared by every filter that
gathers per-cell corner values.  Worker processes of the pool engine
each build their own copy (``lru_cache`` is per-process); within a
process the GIL makes cached reads thread-safe, which the hammer test
below exercises.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.data.grid import HEX_CORNER_OFFSETS, UniformGrid, cell_corner_reduce, corner_gather


def _naive_cell_point_ids(grid: UniformGrid) -> np.ndarray:
    """The pre-cache formula: per-cell loop over the 8 corner offsets."""
    ci, cj, ck = grid.cell_ijk(np.arange(grid.n_cells))
    px, py = grid.point_dims[0], grid.point_dims[1]
    out = np.empty((grid.n_cells, 8), dtype=np.int64)
    for c, (di, dj, dk) in enumerate(HEX_CORNER_OFFSETS):
        out[:, c] = (ci + di) + px * ((cj + dj) + py * (ck + dk))
    return out


class TestCornerGather:
    def setup_method(self):
        corner_gather.cache_clear()

    def test_matches_naive_formula(self):
        grid = UniformGrid(cell_dims=(4, 3, 5))
        np.testing.assert_array_equal(grid.cell_point_ids(), _naive_cell_point_ids(grid))

    def test_subset_matches_naive(self):
        grid = UniformGrid(cell_dims=(5, 4, 3))
        ids = np.array([0, 7, 31, grid.n_cells - 1])
        np.testing.assert_array_equal(
            grid.cell_point_ids(ids), _naive_cell_point_ids(grid)[ids]
        )

    def test_one_entry_per_topology(self):
        UniformGrid(cell_dims=(3, 3, 3)).cell_point_ids()
        UniformGrid(cell_dims=(4, 4, 4)).cell_point_ids()
        assert corner_gather.cache_info().currsize == 2

    def test_shared_across_spacing_and_origin(self):
        """Same topology with different geometry hits the same entry."""
        a = UniformGrid(cell_dims=(4, 4, 4))
        b = UniformGrid(cell_dims=(4, 4, 4), spacing=(0.5, 2.0, 3.0), origin=(-1.0, 5.0, 0.25))
        np.testing.assert_array_equal(a.cell_point_ids(), b.cell_point_ids())
        assert corner_gather.cache_info().currsize == 1
        # ... but geometry-dependent outputs still differ: no aliasing of
        # coordinates through the shared topology cache.
        assert not np.array_equal(a.point_coords(), b.point_coords())

    def test_no_cross_grid_mutation(self):
        """Returned id arrays are fresh copies; writing one can't corrupt
        the cache or another grid's view."""
        a = UniformGrid(cell_dims=(3, 3, 3))
        b = UniformGrid(cell_dims=(3, 3, 3))
        expected = _naive_cell_point_ids(a)
        ids = a.cell_point_ids()
        ids += 1000  # caller mutates its result
        np.testing.assert_array_equal(b.cell_point_ids(), expected)

    def test_cached_arrays_are_read_only(self):
        base, strides = corner_gather((4, 4, 4))
        with pytest.raises(ValueError):
            base[0] = 99
        with pytest.raises(ValueError):
            strides[0] = 99

    def test_lru_bounded(self):
        maxsize = corner_gather.cache_info().maxsize
        for n in range(2, 2 + maxsize + 3):
            corner_gather((n, n, n))
        assert corner_gather.cache_info().currsize <= maxsize

    def test_thread_safety_under_hammering(self):
        grids = [UniformGrid(cell_dims=(n, n, n)) for n in (3, 4, 5, 6)]
        expected = [_naive_cell_point_ids(g) for g in grids]

        def hammer(i: int) -> bool:
            g = grids[i % len(grids)]
            return bool(np.array_equal(g.cell_point_ids(), expected[i % len(grids)]))

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(hammer, range(64)))


class TestCellCornerReduce:
    """Lattice-shifted reductions vs an explicit (n, 8) gather."""

    @pytest.fixture()
    def grid(self):
        return UniformGrid(cell_dims=(5, 4, 6))

    @pytest.fixture()
    def values(self, grid):
        rng = np.random.default_rng(11)
        return rng.normal(size=grid.n_points)

    def test_min_max(self, grid, values):
        gathered = values[grid.cell_point_ids()]
        np.testing.assert_array_equal(
            cell_corner_reduce(grid.cell_dims, values, np.minimum), gathered.min(axis=1)
        )
        np.testing.assert_array_equal(
            cell_corner_reduce(grid.cell_dims, values, np.maximum), gathered.max(axis=1)
        )

    def test_inside_count(self, grid, values):
        inside = (values >= 0.0).astype(np.uint8)
        counts = cell_corner_reduce(grid.cell_dims, inside, np.add)
        np.testing.assert_array_equal(counts, inside[grid.cell_point_ids()].sum(axis=1))

    def test_input_not_mutated(self, grid, values):
        before = values.copy()
        cell_corner_reduce(grid.cell_dims, values, np.maximum)
        np.testing.assert_array_equal(values, before)
