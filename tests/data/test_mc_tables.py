"""Marching-cubes tables: generated-by-construction correctness.

The tables come from a 6-tet decomposition; these tests pin down the
properties the contour filter relies on: the decomposition tiles the
cube, shared cube faces carry matching diagonals (crack-free meshes
across cells), every case's triangles reference crossed edges only, and
complementary cases mirror each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CUBE_TETS, HEX_CORNER_OFFSETS, MAX_TRIS_PER_CELL, get_tables

TABLES = get_tables()
CORNERS = HEX_CORNER_OFFSETS.astype(float)


def tet_volume(tet):
    a, b, c, d = (CORNERS[i] for i in tet)
    return np.dot(b - a, np.cross(c - a, d - a)) / 6.0


class TestDecomposition:
    def test_six_tets_tile_the_cube(self):
        total = sum(abs(tet_volume(t)) for t in CUBE_TETS)
        assert total == pytest.approx(1.0)

    def test_all_tets_nondegenerate(self):
        for t in CUBE_TETS:
            assert abs(tet_volume(t)) > 0

    def test_every_tet_contains_main_diagonal(self):
        for t in CUBE_TETS:
            assert 0 in t and 6 in t

    def test_face_diagonals_match_between_neighbors(self):
        """Opposite cube faces must carry the same diagonal in lattice
        space, or adjacent cells crack along shared faces."""
        edges = {tuple(e) for e in TABLES.edges.tolist()}
        faces = {  # (face corner set, its diagonal under the decomposition)
            "x-": ({0, 3, 7, 4}, (0, 7)),
            "x+": ({1, 2, 6, 5}, (1, 6)),
            "y-": ({0, 1, 5, 4}, (0, 5)),
            "y+": ({3, 2, 6, 7}, (3, 6)),
            "z-": ({0, 1, 2, 3}, (0, 2)),
            "z+": ({4, 5, 6, 7}, (4, 6)),
        }
        for name, (corner_set, diag) in faces.items():
            assert diag in edges, f"face {name} missing diagonal {diag}"
            # Geometric match: the diagonal on face x+ must coincide (in
            # lattice direction) with the x- diagonal of the next cell.
        for minus, plus, axis in (("x-", "x+", 0), ("y-", "y+", 1), ("z-", "z+", 2)):
            dm = faces[minus][1]
            dp = faces[plus][1]
            vm = CORNERS[dm[1]] - CORNERS[dm[0]]
            vp = CORNERS[dp[1]] - CORNERS[dp[0]]
            np.testing.assert_allclose(np.delete(vm, axis), np.delete(vp, axis))


class TestTables:
    def test_shapes(self):
        assert TABLES.tri_count.shape == (256,)
        assert TABLES.tri_edges.shape == (256, MAX_TRIS_PER_CELL, 3)
        assert TABLES.edges.shape[1] == 2

    def test_empty_cases(self):
        assert TABLES.tri_count[0] == 0
        assert TABLES.tri_count[255] == 0

    def test_every_mixed_case_has_triangles(self):
        for case in range(1, 255):
            assert TABLES.tri_count[case] > 0, f"case {case} emits nothing"

    def test_padding_is_minus_one(self):
        for case in range(256):
            n = TABLES.tri_count[case]
            assert (TABLES.tri_edges[case, n:] == -1).all()
            assert (TABLES.tri_edges[case, :n] >= 0).all()

    def test_triangles_use_only_crossed_edges(self):
        """Every referenced edge must straddle the inside/outside split."""
        for case in range(256):
            inside = [(case >> c) & 1 for c in range(8)]
            n = TABLES.tri_count[case]
            for eid in TABLES.tri_edges[case, :n].ravel():
                u, v = TABLES.edges[eid]
                assert inside[u] != inside[v], f"case {case}: edge {u}-{v} not crossed"

    def test_complement_cases_have_same_triangle_count(self):
        for case in range(256):
            assert TABLES.tri_count[case] == TABLES.tri_count[255 - case]

    def test_single_corner_case(self):
        """Corner 0 belongs to all six tets, so its case emits 6 triangles;
        corner 1 belongs to two tets, so its case emits 2."""
        assert TABLES.tri_count[1] == 6
        assert TABLES.tri_count[1 << 1] == 2


def _case_surface_points(case: int) -> np.ndarray:
    """Midpoint-embedded triangle vertices for a case (canonical field)."""
    n = TABLES.tri_count[case]
    eids = TABLES.tri_edges[case, :n]
    mids = 0.5 * (CORNERS[TABLES.edges[eids, 0]] + CORNERS[TABLES.edges[eids, 1]])
    return mids  # (n, 3, 3)


class TestOrientation:
    @given(st.integers(min_value=1, max_value=254))
    @settings(max_examples=60, deadline=None)
    def test_normals_point_away_from_inside(self, case):
        inside = np.array([(case >> c) & 1 for c in range(8)], dtype=bool)
        inside_centroid = CORNERS[inside].mean(axis=0)
        tris = _case_surface_points(case)
        for tri in tris:
            normal = np.cross(tri[1] - tri[0], tri[2] - tri[0])
            away = tri.mean(axis=0) - inside_centroid
            # Allow ~zero for degenerate slivers; forbid inward-pointing.
            assert float(normal @ away) >= -1e-12
