"""Fields, datasets, and recentering."""

import numpy as np
import pytest

from repro.data import Association, DataSet, Field, UniformGrid, recenter_to_cells, recenter_to_points


class TestField:
    def test_scalar_field(self):
        f = Field("s", Association.POINT, np.arange(10.0))
        assert not f.is_vector
        assert f.n == 10
        assert f.range() == (0.0, 9.0)

    def test_vector_field(self):
        f = Field("v", Association.POINT, np.ones((5, 3)))
        assert f.is_vector
        assert f.range() == (pytest.approx(np.sqrt(3)), pytest.approx(np.sqrt(3)))

    def test_bad_vector_width(self):
        with pytest.raises(ValueError):
            Field("v", Association.POINT, np.ones((5, 2)))

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            Field("v", Association.POINT, np.ones((2, 2, 2)))


class TestDataSet:
    def test_add_and_fetch(self, grid8):
        ds = DataSet(grid8)
        ds.add_field("a", np.zeros(grid8.n_points))
        assert ds.field("a").association is Association.POINT

    def test_wrong_length_rejected(self, grid8):
        ds = DataSet(grid8)
        with pytest.raises(ValueError, match="expects"):
            ds.add_field("a", np.zeros(7))

    def test_missing_field_lists_available(self, grid8):
        ds = DataSet(grid8)
        ds.add_field("present", np.zeros(grid8.n_points))
        with pytest.raises(KeyError, match="present"):
            ds.field("absent")

    def test_cell_field_autorecenter(self, grid8):
        ds = DataSet(grid8)
        ds.add_field("a", np.ones(grid8.n_points), Association.POINT)
        cf = ds.cell_field("a")
        assert cf.association is Association.CELL
        assert cf.n == grid8.n_cells
        np.testing.assert_allclose(cf.values, 1.0)

    def test_point_field_autorecenter(self, grid8):
        ds = DataSet(grid8)
        ds.add_field("a", np.full(grid8.n_cells, 3.0), Association.CELL)
        pf = ds.point_field("a")
        assert pf.n == grid8.n_points
        np.testing.assert_allclose(pf.values, 3.0)

    def test_nbytes(self, grid8):
        ds = DataSet(grid8)
        ds.add_field("a", np.zeros(grid8.n_points))
        assert ds.nbytes == grid8.n_points * 8


class TestRecentering:
    def test_linear_field_preserved_to_cells(self, grid8):
        """Averaging corners of a linear field gives its cell-center value."""
        pts = grid8.point_coords()
        linear = 2.0 * pts[:, 0] + 3.0 * pts[:, 1] - pts[:, 2]
        cells = recenter_to_cells(grid8, linear)
        centers = grid8.cell_centers()
        expected = 2.0 * centers[:, 0] + 3.0 * centers[:, 1] - centers[:, 2]
        np.testing.assert_allclose(cells, expected)

    def test_constant_roundtrip(self, grid8):
        const = np.full(grid8.n_cells, 7.5)
        back = recenter_to_cells(grid8, recenter_to_points(grid8, const))
        np.testing.assert_allclose(back, 7.5)

    def test_cells_to_points_mean_preserving_interior(self, grid8):
        rng = np.random.default_rng(0)
        cells = rng.random(grid8.n_cells)
        pts = recenter_to_points(grid8, cells)
        # An interior point is the exact mean of its 8 adjacent cells.
        i, j, k = 4, 4, 4
        nx, ny, _ = grid8.cell_dims
        adj = [
            cells[(i - di) + nx * ((j - dj) + ny * (k - dk))]
            for di in (0, 1)
            for dj in (0, 1)
            for dk in (0, 1)
        ]
        pid = grid8.point_index(i, j, k)
        assert pts[pid] == pytest.approx(np.mean(adj))

    def test_corner_point_takes_corner_cell(self, grid8):
        cells = np.zeros(grid8.n_cells)
        cells[0] = 8.0
        pts = recenter_to_points(grid8, cells)
        assert pts[0] == pytest.approx(8.0)

    def test_vector_recenter_shapes(self, grid8):
        v = np.ones((grid8.n_points, 3))
        cv = recenter_to_cells(grid8, v)
        assert cv.shape == (grid8.n_cells, 3)
        pv = recenter_to_points(grid8, cv)
        assert pv.shape == (grid8.n_points, 3)
        np.testing.assert_allclose(pv, 1.0)
