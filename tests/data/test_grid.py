"""UniformGrid: indexing, geometry, and validation."""

import numpy as np
import pytest

from repro.data import HEX_CORNER_OFFSETS, UniformGrid


class TestConstruction:
    def test_cube_factory(self):
        g = UniformGrid.cube(8)
        assert g.cell_dims == (8, 8, 8)
        assert g.n_cells == 512
        assert g.n_points == 9**3
        np.testing.assert_allclose(g.bounds, [[0, 1], [0, 1], [0, 1]])

    def test_cube_extent(self):
        g = UniformGrid.cube(4, extent=2.0)
        np.testing.assert_allclose(g.bounds[:, 1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(g.spacing, [0.5, 0.5, 0.5])

    def test_anisotropic(self):
        g = UniformGrid(cell_dims=(2, 3, 4), spacing=(1.0, 0.5, 0.25))
        assert g.n_cells == 24
        assert g.point_dims == (3, 4, 5)

    @pytest.mark.parametrize("dims", [(0, 1, 1), (1, -1, 1), (1, 1)])
    def test_bad_dims_rejected(self, dims):
        with pytest.raises(ValueError):
            UniformGrid(cell_dims=dims)

    def test_bad_spacing_rejected(self):
        with pytest.raises(ValueError):
            UniformGrid(cell_dims=(2, 2, 2), spacing=(0.0, 1.0, 1.0))

    def test_zero_cube_rejected(self):
        with pytest.raises(ValueError):
            UniformGrid.cube(0)


class TestIndexing:
    def test_point_index_roundtrip(self, grid8):
        pid = grid8.point_index(3, 4, 5)
        coords = grid8.point_coords(np.array([pid]))[0]
        np.testing.assert_allclose(coords, np.array([3, 4, 5]) / 8.0)

    def test_cell_ijk_roundtrip(self, grid8):
        ids = np.arange(grid8.n_cells)
        i, j, k = grid8.cell_ijk(ids)
        np.testing.assert_array_equal(grid8.cell_index(i, j, k), ids)

    def test_cell_point_ids_shape(self, grid8):
        cpids = grid8.cell_point_ids()
        assert cpids.shape == (grid8.n_cells, 8)
        assert cpids.min() >= 0
        assert cpids.max() < grid8.n_points

    def test_cell_corners_follow_vtk_order(self, grid8):
        """Corner k of cell 0 must sit at HEX_CORNER_OFFSETS[k] * spacing."""
        cpids = grid8.cell_point_ids(np.array([0]))[0]
        corners = grid8.point_coords(cpids)
        expected = HEX_CORNER_OFFSETS * np.asarray(grid8.spacing)
        np.testing.assert_allclose(corners, expected)

    def test_cell_corners_unique(self, grid8):
        cpids = grid8.cell_point_ids(np.array([13]))[0]
        assert len(set(cpids.tolist())) == 8

    def test_subset_matches_full(self, grid8):
        subset = np.array([0, 7, 100, grid8.n_cells - 1])
        full = grid8.cell_point_ids()
        np.testing.assert_array_equal(grid8.cell_point_ids(subset), full[subset])


class TestGeometry:
    def test_cell_centers(self, grid8):
        c0 = grid8.cell_centers(np.array([0]))[0]
        np.testing.assert_allclose(c0, [1 / 16, 1 / 16, 1 / 16])

    def test_centers_inside_bounds(self, grid8):
        centers = grid8.cell_centers()
        b = grid8.bounds
        assert (centers >= b[:, 0]).all() and (centers <= b[:, 1]).all()

    def test_diagonal(self):
        g = UniformGrid.cube(4)
        assert g.diagonal == pytest.approx(np.sqrt(3.0))

    def test_center(self, grid8):
        np.testing.assert_allclose(grid8.center, [0.5, 0.5, 0.5])

    def test_contains(self, grid8):
        pts = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5], [-0.01, 0, 0], [1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(grid8.contains(pts), [True, False, False, True])

    def test_world_to_lattice(self, grid8):
        lat = grid8.world_to_lattice(np.array([[0.5, 0.25, 1.0]]))[0]
        np.testing.assert_allclose(lat, [4.0, 2.0, 8.0])

    def test_world_to_lattice_respects_origin(self):
        g = UniformGrid(cell_dims=(4, 4, 4), origin=(1.0, 2.0, 3.0), spacing=(0.5, 0.5, 0.5))
        lat = g.world_to_lattice(np.array([[1.5, 2.0, 4.0]]))[0]
        np.testing.assert_allclose(lat, [1.0, 0.0, 2.0])
