"""Analytic field generators."""

import numpy as np
import pytest

from repro.data import Association, UniformGrid
from repro.data.generators import (
    abc_flow,
    gaussian_blobs,
    linear_ramp,
    make_dataset,
    rotation_vector_field,
    sphere_distance,
    tangle_field,
)


class TestScalars:
    def test_sphere_distance_center_zero(self, grid8):
        d = sphere_distance(grid8)
        center_pid = grid8.point_index(4, 4, 4)
        assert d[center_pid] == pytest.approx(0.0)
        assert d.min() >= 0.0

    def test_sphere_distance_custom_center(self, grid8):
        d = sphere_distance(grid8, center=np.zeros(3))
        assert d[0] == pytest.approx(0.0)
        assert d.max() == pytest.approx(grid8.diagonal)

    def test_linear_ramp_is_linear(self, grid8):
        r = linear_ramp(grid8, direction=(2.0, 0.0, 0.0))
        pts = grid8.point_coords()
        np.testing.assert_allclose(r, pts[:, 0])

    def test_linear_ramp_rejects_zero_direction(self, grid8):
        with pytest.raises(ValueError):
            linear_ramp(grid8, direction=(0, 0, 0))

    def test_blobs_deterministic(self, grid8):
        np.testing.assert_array_equal(
            gaussian_blobs(grid8, seed=3), gaussian_blobs(grid8, seed=3)
        )
        assert not np.array_equal(gaussian_blobs(grid8, seed=3), gaussian_blobs(grid8, seed=4))

    def test_blobs_positive(self, grid8):
        assert gaussian_blobs(grid8).min() > 0.0

    def test_tangle_has_both_signs_around_default_iso(self, grid16):
        t = tangle_field(grid16)
        assert t.min() < 0.5 < t.max()


class TestVectors:
    def test_rotation_is_divergence_free_in_plane(self, grid8):
        v = rotation_vector_field(grid8)
        assert v.shape == (grid8.n_points, 3)
        np.testing.assert_allclose(v[:, 2], 0.0)

    def test_rotation_orthogonal_to_radius(self, grid8):
        v = rotation_vector_field(grid8)
        r = grid8.point_coords() - grid8.center
        dots = np.einsum("ij,ij->i", v[:, :2], r[:, :2])
        np.testing.assert_allclose(dots, 0.0, atol=1e-12)

    def test_abc_flow_shape_and_magnitude(self, grid8):
        v = abc_flow(grid8)
        assert v.shape == (grid8.n_points, 3)
        mags = np.linalg.norm(v, axis=1)
        assert mags.max() < 3.0  # |A|+|B|+|C| bound


class TestMakeDataset:
    @pytest.mark.parametrize("kind", ["blobs", "sphere", "ramp", "tangle"])
    def test_kinds(self, kind):
        ds = make_dataset(8, kind=kind)
        assert "energy" in ds.fields
        assert ds.field("energy").association is Association.POINT
        assert "velocity" in ds.fields

    def test_no_velocity(self):
        ds = make_dataset(8, with_velocity=False)
        assert "velocity" not in ds.fields

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown dataset kind"):
            make_dataset(8, kind="nope")

    def test_velocity_mostly_recirculating(self):
        """The blended field should keep most advected particles inside
        (the property the advection workload depends on)."""
        ds = make_dataset(12)
        v = ds.field("velocity").values
        # Rotational component dominates: mean in-plane speed exceeds
        # mean z-speed.
        inplane = np.linalg.norm(v[:, :2], axis=1).mean()
        vertical = np.abs(v[:, 2]).mean()
        assert inplane > vertical
