"""Output geometry containers."""

import numpy as np
import pytest

from repro.data import CellSubset, PolyLines, TetMesh, TriangleMesh


def unit_triangle():
    pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
    return TriangleMesh(pts, np.array([[0, 1, 2]]))


class TestTriangleMesh:
    def test_area(self):
        assert unit_triangle().area() == pytest.approx(0.5)

    def test_normals(self):
        n = unit_triangle().triangle_normals()
        np.testing.assert_allclose(n, [[0, 0, 1]])

    def test_normals_unnormalized(self):
        n = unit_triangle().triangle_normals(normalize=False)
        np.testing.assert_allclose(np.linalg.norm(n, axis=1), [1.0])

    def test_merge_rebases_indices(self):
        a, b = unit_triangle(), unit_triangle()
        m = a.merged_with(b)
        assert m.n_points == 6
        assert m.n_triangles == 2
        np.testing.assert_array_equal(m.triangles[1], [3, 4, 5])

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((2, 3)), np.array([[0, 1, 2]]))

    def test_negative_index(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, -1]]))

    def test_scalar_length_check(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 2]]), scalars=np.zeros(2))

    def test_empty(self):
        m = TriangleMesh.empty()
        assert m.n_triangles == 0
        assert m.area() == 0.0


class TestPolyLines:
    def test_basic(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [5, 5, 5]], dtype=float)
        pl = PolyLines(pts, np.array([0, 3, 4]))
        assert pl.n_lines == 2
        assert pl.line(0).shape == (3, 3)
        assert pl.line(1).shape == (1, 3)

    def test_lengths(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0]], dtype=float)
        pl = PolyLines(pts, np.array([0, 3]))
        np.testing.assert_allclose(pl.lengths(), [2.0])

    def test_total_steps(self):
        pts = np.zeros((5, 3))
        pl = PolyLines(pts, np.array([0, 3, 5]))
        assert pl.total_steps() == 3

    def test_bad_offsets(self):
        with pytest.raises(ValueError):
            PolyLines(np.zeros((3, 3)), np.array([1, 3]))
        with pytest.raises(ValueError):
            PolyLines(np.zeros((3, 3)), np.array([0, 2]))
        with pytest.raises(ValueError):
            PolyLines(np.zeros((3, 3)), np.array([0, 2, 1, 3]))


class TestCellSubset:
    def test_basic(self):
        cs = CellSubset(np.array([1, 5, 9]), np.array([0.1, 0.5, 0.9]))
        assert cs.n_cells == 3

    def test_scalar_mismatch(self):
        with pytest.raises(ValueError):
            CellSubset(np.array([1, 2]), np.array([0.1]))


class TestTetMesh:
    def test_unit_tet_volume(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        tm = TetMesh(pts, np.array([[0, 1, 2, 3]]))
        assert tm.total_volume() == pytest.approx(1.0 / 6.0)

    def test_signed_volume_flips(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        v1 = TetMesh(pts, np.array([[0, 1, 2, 3]])).volumes()[0]
        v2 = TetMesh(pts, np.array([[0, 2, 1, 3]])).volumes()[0]
        assert v1 == pytest.approx(-v2)

    def test_merge(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        tm = TetMesh(pts, np.array([[0, 1, 2, 3]]))
        m = tm.merged_with(tm)
        assert m.n_tets == 2
        assert m.total_volume() == pytest.approx(2.0 / 6.0)

    def test_empty(self):
        assert TetMesh.empty().n_tets == 0


class TestWelding:
    def make_soup(self):
        """Two triangles sharing an edge, emitted as 6-vertex soup."""
        pts = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0],
             [1, 0, 0], [1, 1, 0], [0, 1, 0]], dtype=float
        )
        return TriangleMesh(pts, np.array([[0, 1, 2], [3, 4, 5]]))

    def test_weld_merges_shared_vertices(self):
        welded = self.make_soup().welded()
        assert welded.n_points == 4
        assert welded.n_triangles == 2

    def test_weld_preserves_area(self):
        soup = self.make_soup()
        assert soup.welded().area() == pytest.approx(soup.area())

    def test_weld_drops_degenerate_triangles(self):
        pts = np.array([[0, 0, 0], [1e-12, 0, 0], [0, 1e-12, 0]])
        sliver = TriangleMesh(pts, np.array([[0, 1, 2]]))
        assert sliver.welded(tolerance=1e-6).n_triangles == 0

    def test_weld_makes_contour_manifold(self, sphere_ds=None):
        from repro.data import Association, DataSet, UniformGrid
        from repro.data.generators import sphere_distance
        from repro.viz import Contour

        grid = UniformGrid.cube(10)
        ds = DataSet(grid)
        ds.add_field("d", sphere_distance(grid), Association.POINT)
        mesh = Contour(field="d", isovalues=[0.3]).execute(ds).output
        welded = mesh.welded()
        assert welded.n_points < mesh.n_points / 2  # soup -> shared verts
        edges = np.sort(
            np.concatenate(
                [welded.triangles[:, [0, 1]], welded.triangles[:, [1, 2]], welded.triangles[:, [2, 0]]]
            ),
            axis=1,
        )
        _, counts = np.unique(edges, axis=0, return_counts=True)
        assert (counts <= 2).all()  # manifold (closed surface: exactly 2)

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            self.make_soup().welded(tolerance=0.0)
