"""Tiling primitives: tile sizing, k-slab iteration, shard spans."""

import numpy as np
import pytest

from repro.data import recenter_slab_to_cells, slab_corner_reduce
from repro.data.fields import recenter_to_cells
from repro.data.grid import UniformGrid, cell_corner_reduce
from repro.data.tiling import (
    DEFAULT_TILE_BYTES,
    ENV_TILE_CELLS,
    k_slabs,
    pick_tile_planes,
    shard_spans,
    tile_cells_from_env,
)


class TestPickTilePlanes:
    def test_targets_cache_budget(self):
        # 255x255 plane of 48-byte cells: the 8 MiB default budget holds
        # floor(8Mi/48/65025) = 2 planes.
        planes = pick_tile_planes(255 * 255, 48.0, n_planes=255)
        assert planes == int(DEFAULT_TILE_BYTES / 48.0) // (255 * 255)
        assert planes >= 1

    def test_small_grid_is_one_tile(self):
        assert pick_tile_planes(31 * 31, 48.0, n_planes=31) == 31

    def test_never_below_one_plane(self):
        # A plane larger than the whole budget still ships one plane.
        assert pick_tile_planes(10_000_000, 64.0, n_planes=8) == 1

    def test_ceiling_cells_caps_the_tile(self):
        assert pick_tile_planes(100, 8.0, n_planes=64, ceiling_cells=250) == 2

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_TILE_CELLS, "300")
        assert tile_cells_from_env() == 300
        assert pick_tile_planes(100, 8.0, n_planes=64) == 3

    def test_env_junk_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_TILE_CELLS, "lots")
        with pytest.raises(ValueError, match="REPRO_TILE_CELLS"):
            tile_cells_from_env()


class TestKSlabs:
    def test_covers_range_contiguously(self):
        slabs = list(k_slabs(0, 17, 5))
        assert slabs == [(0, 5), (5, 10), (10, 15), (15, 17)]

    def test_offset_range(self):
        slabs = list(k_slabs(3, 9, 4))
        assert slabs == [(3, 7), (7, 9)]

    def test_empty_range(self):
        assert list(k_slabs(4, 4, 8)) == []


class TestShardSpans:
    @pytest.mark.parametrize("nz,n", [(16, 4), (17, 4), (3, 8), (1, 1), (255, 7)])
    def test_partition(self, nz, n):
        spans = shard_spans(nz, n)
        assert len(spans) == n
        covered = [k for lo, hi in spans for k in range(lo, hi)]
        assert covered == list(range(nz))  # contiguous, ascending, exact

    def test_near_even(self):
        spans = shard_spans(17, 4)
        widths = [hi - lo for lo, hi in spans]
        assert max(widths) - min(widths) <= 1


class TestSlabReductions:
    """The slab helpers match full-lattice rows bitwise — the identities
    the tiled kernels rely on for ledger/geometry equivalence."""

    @pytest.fixture(scope="class")
    def lattice(self, rng):
        return rng.standard_normal((9, 7, 6))

    @pytest.mark.parametrize("ufunc", [np.minimum, np.maximum, np.add])
    def test_slab_corner_reduce_matches_full(self, lattice, ufunc):
        full = cell_corner_reduce((5, 6, 8), lattice.reshape(-1), ufunc)
        parts = [
            slab_corner_reduce(lattice[k0 : k1 + 1], ufunc)
            for k0, k1 in k_slabs(0, 8, 3)
        ]
        np.testing.assert_array_equal(np.concatenate(parts), full)

    def test_recenter_slab_matches_full(self, lattice):
        grid = UniformGrid(cell_dims=(5, 6, 8))
        full = recenter_to_cells(grid, lattice.reshape(-1))
        parts = [
            recenter_slab_to_cells(lattice[k0 : k1 + 1])
            for k0, k1 in k_slabs(0, 8, 3)
        ]
        np.testing.assert_array_equal(np.concatenate(parts), full)
