"""Geometry and dataset I/O."""

import numpy as np
import pytest

from repro.data import (
    Association,
    DataSet,
    TriangleMesh,
    UniformGrid,
    load_dataset,
    load_obj,
    save_dataset,
    save_obj,
)
from repro.data.generators import make_dataset, sphere_distance
from repro.viz import Contour


class TestObj:
    def test_roundtrip(self, tmp_path):
        mesh = TriangleMesh(
            np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0.0]]),
            np.array([[0, 1, 2], [1, 3, 2]]),
        )
        path = save_obj(mesh, tmp_path / "m.obj")
        back = load_obj(path)
        np.testing.assert_allclose(back.points, mesh.points)
        np.testing.assert_array_equal(back.triangles, mesh.triangles)

    def test_contour_mesh_roundtrip_preserves_area(self, tmp_path):
        grid = UniformGrid.cube(12)
        ds = DataSet(grid)
        ds.add_field("d", sphere_distance(grid), Association.POINT)
        mesh = Contour(field="d", isovalues=[0.3]).execute(ds).output
        back = load_obj(save_obj(mesh, tmp_path / "c.obj"))
        assert back.area() == pytest.approx(mesh.area(), rel=1e-6)

    def test_quad_faces_fan_triangulated(self, tmp_path):
        (tmp_path / "q.obj").write_text(
            "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n"
        )
        mesh = load_obj(tmp_path / "q.obj")
        assert mesh.n_triangles == 2
        assert mesh.area() == pytest.approx(1.0)

    def test_slash_indices_accepted(self, tmp_path):
        (tmp_path / "s.obj").write_text(
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1/1 2/2/2 3/3/3\n"
        )
        assert load_obj(tmp_path / "s.obj").n_triangles == 1


class TestDatasetArchive:
    def test_roundtrip_fields_and_grid(self, tmp_path):
        ds = make_dataset(8)
        path = save_dataset(ds, tmp_path / "d.npz")
        back = load_dataset(path)
        assert back.grid.cell_dims == ds.grid.cell_dims
        np.testing.assert_allclose(back.grid.spacing, ds.grid.spacing)
        assert set(back.fields) == set(ds.fields)
        np.testing.assert_array_equal(
            back.field("energy").values, ds.field("energy").values
        )
        assert back.field("velocity").is_vector

    def test_associations_preserved(self, tmp_path):
        grid = UniformGrid.cube(4)
        ds = DataSet(grid)
        ds.add_field("p", np.ones(grid.n_points), Association.POINT)
        ds.add_field("c", np.ones(grid.n_cells), Association.CELL)
        back = load_dataset(save_dataset(ds, tmp_path / "a.npz"))
        assert back.field("p").association is Association.POINT
        assert back.field("c").association is Association.CELL

    def test_posthoc_workflow(self, tmp_path):
        """The paper's first use case: dump the sim state, visualize
        later from the archive."""
        from repro.cloverleaf import CloverLeaf

        cl = CloverLeaf(8)
        cl.step(5)
        path = save_dataset(cl.dataset(), tmp_path / "state.npz")
        later = load_dataset(path)
        res = Contour(field="energy").execute(later)
        assert res.profile.total_instructions > 0
