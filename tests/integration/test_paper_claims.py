"""Integration: the paper's qualitative claims on a reduced grid.

These tests run the real pipeline end to end (algorithm execution →
work profile → simulated socket → study metrics) at 64³ — large enough
for the class structure to appear, small enough for CI. The full-size
table/figure reproductions live in benchmarks/.
"""

import pytest

from repro.core import (
    PowerClass,
    StudyConfig,
    StudyRunner,
    classify_result,
    first_slowdown_cap,
)
from repro.core.study import ALGORITHM_NAMES

SIZE = 64


@pytest.fixture(scope="module")
def full_sweep():
    runner = StudyRunner()
    cfg = StudyConfig(name="integration", algorithms=ALGORITHM_NAMES, sizes=(SIZE,))
    return runner.run_config(cfg)


class TestClassStructure:
    def test_two_classes_with_paper_membership(self, full_sweep):
        classes = classify_result(full_sweep, size=SIZE)
        sensitive = {a for a, c in classes.items() if c.power_class is PowerClass.SENSITIVE}
        assert sensitive == {"advection", "volume"}

    def test_sensitive_pair_draws_most_power(self, full_sweep):
        classes = classify_result(full_sweep, size=SIZE)
        draws = {a: c.natural_power_w for a, c in classes.items()}
        top_two = sorted(draws, key=draws.get, reverse=True)[:2]
        assert set(top_two) == {"advection", "volume"}

    def test_power_band_matches_paper(self, full_sweep):
        """Paper: default draw ranges from ~55 W up to ~90 W."""
        classes = classify_result(full_sweep, size=SIZE)
        for alg, c in classes.items():
            assert 40.0 < c.natural_power_w < 95.0, alg

    def test_sensitive_ipc_above_divide(self, full_sweep):
        """Paper's Fig. 2b: IPC > 1 marks compute-bound algorithms."""
        classes = classify_result(full_sweep, size=SIZE)
        for alg in ("advection", "volume"):
            assert classes[alg].baseline_ipc > 1.5
        for alg in ("contour", "threshold", "clip"):
            assert classes[alg].baseline_ipc < 1.0


class TestTradeoffs:
    def test_tratio_below_pratio_for_opportunity(self, full_sweep):
        """The data-bound algorithms never slow down as much as the
        power drops (the tradeoff the paper calls out)."""
        for alg in ("contour", "threshold", "clip", "slice"):
            for p in full_sweep.select(algorithm=alg, size=SIZE):
                if p.pratio > 1.0:
                    assert p.tratio < p.pratio, (alg, p.cap_w)

    def test_everyone_at_turbo_uncapped(self, full_sweep):
        for alg in ALGORITHM_NAMES:
            base = full_sweep.baseline(alg, SIZE)
            assert base.freq_ghz == pytest.approx(2.6)

    def test_sensitive_throttle_before_opportunity(self, full_sweep):
        reds = {}
        for alg in ALGORITHM_NAMES:
            pts = full_sweep.select(algorithm=alg, size=SIZE)
            reds[alg] = first_slowdown_cap([(p.cap_w, p.tratio) for p in pts]) or 0.0
        assert min(reds["advection"], reds["volume"]) > max(
            reds["contour"], reds["threshold"], reds["slice"]
        )

    def test_deep_caps_cut_power_without_energy_blowup(self, full_sweep):
        """Deep-capping a data-bound algorithm cuts power sharply while
        total energy stays near-flat (time grows less than power drops)."""
        base = full_sweep.baseline("contour", SIZE)
        p40 = [p for p in full_sweep.select(algorithm="contour", size=SIZE) if p.cap_w == 40.0][0]
        assert p40.power_w < base.power_w * 0.85
        assert p40.energy_j < base.energy_j * 1.10


class TestFullPhaseCounts:
    def test_phase_grid_is_complete(self, full_sweep):
        assert len(full_sweep.points) == 8 * 9

    def test_deterministic_rerun(self):
        """Two sweeps from the same seed produce identical metrics."""
        cfg = StudyConfig(name="det", algorithms=("threshold",), sizes=(16,))
        a = StudyRunner(n_cycles=3, seed=11).run_config(cfg)
        b = StudyRunner(n_cycles=3, seed=11).run_config(cfg)
        for pa, pb in zip(a.points, b.points):
            assert pa.time_s == pb.time_s
            assert pa.power_w == pb.power_w
