"""Integration: the findings survive measurement noise.

The paper's own tables contain noise (Tratio 0.91 < 1 at 70 W).  These
tests run the *traced* simulator with RAPL measurement noise enabled and
check the study's conclusions are not artifacts of the deterministic
closed form.
"""

import pytest

from repro.core import StudyRunner, first_slowdown_cap
from repro.machine import Processor


@pytest.fixture(scope="module")
def profiles():
    runner = StudyRunner(n_cycles=2)
    return {
        alg: runner.profile_for(alg, 24) for alg in ("contour", "volume")
    }


class TestNoisyTracedSweep:
    def test_noisy_sweep_preserves_class_separation(self, profiles):
        proc = Processor()
        reds = {}
        for alg, prof in profiles.items():
            base = proc.run_traced(prof, 120.0, noise_sigma_w=1.5, seed=5)
            rows = []
            for cap in (120.0, 100.0, 80.0, 60.0, 40.0):
                r = proc.run_traced(prof, cap, noise_sigma_w=1.5, seed=5)
                rows.append((cap, r.time_s / base.time_s))
            reds[alg] = first_slowdown_cap(rows) or 0.0
        # Volume rendering throttles at a higher cap than contour, with
        # or without noise.
        assert reds["volume"] > reds["contour"]

    def test_noise_perturbs_but_tracks_closed_form(self, profiles):
        proc = Processor()
        prof = profiles["volume"]
        clean = proc.run(prof, 70.0)
        noisy = proc.run_traced(prof, 70.0, noise_sigma_w=2.0, seed=9)
        assert noisy.time_s == pytest.approx(clean.time_s, rel=0.10)

    def test_integral_action_limits_overshoot(self, profiles):
        """Even with noisy measurements the controller holds the average
        near the cap (hardware RAPL's running-average guarantee)."""
        proc = Processor()
        r = proc.run_traced(profiles["volume"], 60.0, noise_sigma_w=3.0, seed=2)
        assert r.avg_power_w <= 62.0

    def test_samples_expose_throttling(self, profiles):
        """The 100 ms samples show a lower effective frequency under the
        cap — the observable the paper's Fig. 2a plots."""
        proc = Processor()
        free = proc.run_traced(profiles["volume"], 120.0, sample_interval_s=0.02)
        capped = proc.run_traced(profiles["volume"], 60.0, sample_interval_s=0.02)
        f_free = max(s.f_eff_ghz for s in free.samples)
        f_capped = max(s.f_eff_ghz for s in capped.samples[1:] or capped.samples)
        assert f_capped < f_free
