"""Acceptance: a sweep under the default chaos plan survives end to end.

The issue's contract: worker crashes + sample dropout + one torn store
tail — the sweep completes, resumes cleanly, every surviving point is
bitwise identical to a fault-free run, and unrecoverable points land in
the quarantine sidecar with reasons, never in the main store.
"""

import pytest

from repro import api
from repro.cli import main
from repro.core import StudyConfig, validate_store
from repro.faults import get_plan, run_chaos

CFG = StudyConfig(name="t", algorithms=("threshold", "clip"), sizes=(12,))


class TestDefaultPlanAcceptance:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("chaos") / "s.jsonl"
        return run_chaos(CFG, get_plan("default"), store=store, workers=2, n_cycles=2), store

    def test_contract_holds(self, report):
        rep, _ = report
        assert rep.survived
        assert rep.completed == rep.expected == CFG.n_configurations
        assert rep.lost == 0 and rep.quarantined == 0
        assert rep.bitwise_identical

    def test_faults_actually_fired(self, report):
        rep, _ = report
        # Seed 2019 deterministically crashes the clip@12 job once.
        assert rep.faults_injected >= 1
        assert rep.retries >= 1

    def test_torn_tail_recovered_on_resume(self, report):
        rep, _ = report
        assert rep.torn_bytes > 0
        assert rep.resumed_points == rep.expected - 1  # all but the torn point

    def test_machine_probe_saw_sensor_faults(self, report):
        rep, _ = report
        assert rep.samples_seen > 0
        assert rep.cap_decisions > 0

    def test_final_store_validates_clean(self, report):
        _, store = report
        assert validate_store(store).ok

    def test_report_renders(self, report):
        rep, _ = report
        text = rep.render()
        assert "torn tail" in text and "bitwise identical" in text


class TestHostilePlan:
    def test_corruption_quarantined_never_stored(self, tmp_path):
        store = tmp_path / "s.jsonl"
        rep = run_chaos(CFG, get_plan("hostile"), store=store, workers=0, n_cycles=2)
        assert rep.quarantined > 0
        assert rep.lost == rep.quarantined  # quarantined cells are the lost ones
        assert rep.bitwise_identical and rep.survived
        assert rep.quarantine_reasons  # machine-readable codes in the sidecar
        assert validate_store(store).ok  # the main store is never polluted

    def test_chaos_is_deterministic(self, tmp_path):
        runs = []
        for name in ("a", "b"):
            rep = run_chaos(
                CFG, get_plan("hostile"), store=tmp_path / f"{name}.jsonl", n_cycles=2
            )
            runs.append(
                (rep.completed, rep.quarantined, rep.lost, rep.faults_injected, rep.retries)
            )
        assert runs[0] == runs[1]


class TestTracedChaos:
    def test_trace_covers_all_phases(self, tmp_path):
        from repro.obs.trace import read_trace

        trace = tmp_path / "chaos.trace.jsonl"
        rep = run_chaos(
            CFG, get_plan("default"), store=tmp_path / "s.jsonl",
            workers=0, n_cycles=2, trace=trace,
        )
        assert rep.survived
        _, records = read_trace(trace)
        names = {r["name"] for r in records if r["kind"] == "span"}
        assert {
            "chaos", "chaos-reference", "chaos-pass", "chaos-tear-store",
            "chaos-resume", "chaos-machine-probe", "sweep",
        } <= names
        events = {r["name"] for r in records if r["kind"] == "event"}
        assert "store-torn" in events
        assert "fault-injected" in events


class TestApiFacade:
    def test_run_chaos_accepts_names_and_reseeds(self, tmp_path):
        rep = api.run_chaos(
            "table1", plan="store", store=tmp_path / "s.jsonl", chaos_seed=123, n_cycles=1
        )
        assert rep.plan == "store" and rep.survived
        assert rep.torn_bytes > 0

    def test_doctor_facade(self, tmp_path):
        store = tmp_path / "s.jsonl"
        api.run_study(CFG, store=store, n_cycles=1)
        assert api.doctor(store).ok

    def test_unknown_plan_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault plan"):
            api.run_chaos("phase1", plan="nope", store=tmp_path / "s.jsonl")


class TestCli:
    def test_chaos_then_doctor_roundtrip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "12")
        store = str(tmp_path / "chaos.jsonl")
        rc = main(["chaos", "phase1", "--cycles", "1", "--cache", "", "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos report" in out and "bitwise identical to fault-free run: yes" in out
        assert main(["doctor", store]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_doctor_flags_damage(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        api.run_study(CFG, store=store, n_cycles=1)
        text = store.read_text().splitlines()
        import json

        rec = json.loads(text[1])
        rec["power_w"] = rec["cap_w"] * 9
        text[1] = json.dumps(rec)
        store.write_text("\n".join(text) + "\n")
        assert main(["doctor", str(store)]) == 1
        assert "power-over-cap" in capsys.readouterr().out
        assert main(["doctor", str(store), "--quarantine"]) == 1
        capsys.readouterr()
        assert main(["doctor", str(store)]) == 0
