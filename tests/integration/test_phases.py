"""Integration: the three study phases through the experiment harness,
at smoke scale (REPRO_MAX_SIZE), exercising the exact code path the
benchmarks use — including the ledger cache round trip."""

import pytest

from repro.harness import ExperimentHarness, result_to_csv, result_to_markdown


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache") / "counts.pkl"
    return ExperimentHarness(cache, n_cycles=3)


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_SIZE", "16")


class TestPhases:
    def test_phase1_shape(self, harness):
        r = harness.table1()
        assert len(r.points) == 9
        assert r.algorithms == ["contour"]

    def test_phase2_shape(self, harness):
        r = harness.table2()
        assert len(r.points) == 8 * 9
        assert len(r.algorithms) == 8

    def test_phase3_uses_capped_sizes(self, harness):
        r = harness.phase3()
        assert r.sizes == [16]
        assert len(r.points) == 8 * 9

    def test_table3_substitutes_cap(self, harness):
        r = harness.table3()
        assert r.sizes == [16]

    def test_results_are_cache_stable(self, harness):
        """A second harness over the same cache reproduces the sweep."""
        a = harness.table1()
        b = ExperimentHarness(harness.cache_path, n_cycles=3).table1()
        for pa, pb in zip(a.points, b.points):
            assert pa.time_s == pytest.approx(pb.time_s, rel=1e-12)
            assert pa.power_w == pytest.approx(pb.power_w, rel=1e-12)

    def test_emitters_accept_phase_output(self, harness):
        r = harness.table2()
        csv = result_to_csv(r)
        assert csv.count("\n") == 1 + len(r.points)
        md = result_to_markdown(r, size=16)
        assert md.count("|") > 20
