"""Crash safety: a daemon SIGKILLed mid-sweep loses nothing on restart.

The child process submits two studies and runs the daemon with no drain
flag (it would run forever); the parent waits for the first completed
point to hit a job store, SIGKILLs the daemon, then restarts over the
same spool and drains.  The contract: every job completes, no job is
duplicated, and every surviving point is bitwise identical to an
uninterrupted in-process run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import ResultStore, StudyConfig, SweepEngine
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueueState, SweepService, WriteAheadLog

pytestmark = pytest.mark.timeout(600)

CFG = StudyConfig(name="crash", algorithms=("threshold", "contour"), sizes=(8, 12))
N_JOBS = 2
SEED = 7
N_CYCLES = 2

_DAEMON = """
import sys
sys.path.insert(0, {src!r})
from repro.core.study import StudyConfig
from repro.serve import SweepService

svc = SweepService({spool!r}, workers=2, lease_s=2.0, poll_interval_s=0.01)
cfg = StudyConfig(name="crash", algorithms=("threshold", "contour"), sizes=(8, 12))
for _ in range({n_jobs}):
    receipt = svc.submit(cfg, seed={seed}, n_cycles={cycles}, max_retries=2)
    assert receipt.accepted, receipt
svc.run_daemon()  # no drain: runs until killed
"""


def _spawn_and_kill_mid_sweep(tmp_path):
    """Start the daemon child, SIGKILL it after the first point lands."""
    spool = tmp_path / "spool"
    script = _DAEMON.format(
        src=str(Path(__file__).resolve().parents[2] / "src"),
        spool=str(spool),
        n_jobs=N_JOBS,
        seed=SEED,
        cycles=N_CYCLES,
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + 120.0
    try:
        while time.time() < deadline:
            if proc.poll() is not None:  # died on its own: submit failed
                raise AssertionError(
                    f"daemon exited early rc={proc.returncode}: {proc.stderr.read()}"
                )
            stores = list((spool / "stores").glob("*.jsonl")) if spool.exists() else []
            # header line + at least one complete point in any job store
            if any(len(s.read_bytes().splitlines()) >= 2 for s in stores):
                break
            time.sleep(0.005)
        else:
            raise AssertionError("no point ever landed in a job store")
    finally:
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30.0)
    assert proc.returncode == -9  # died by SIGKILL, not by error
    return spool


def _reference_points():
    engine = SweepEngine(
        dataset_kind="blobs", n_cycles=N_CYCLES, seed=SEED, workers=0
    )
    return [p.to_dict() for p in engine.run(CFG).points]


def test_restart_replays_and_completes_bitwise(tmp_path):
    spool = _spawn_and_kill_mid_sweep(tmp_path)

    svc = SweepService(
        spool, workers=2, lease_s=2.0, poll_interval_s=0.01, metrics=MetricsRegistry()
    )
    report = svc.run_daemon(drain=True)

    # No job lost, none failed, none silently duplicated.
    assert report["counts"]["completed"] == N_JOBS, report
    assert report["counts"]["failed"] == 0
    assert len(report["jobs"]) == N_JOBS

    reference = _reference_points()
    key = lambda d: json.dumps(d, sort_keys=True)
    for job in report["jobs"]:
        points = [p.to_dict() for p in ResultStore(svc.store_path(job["job_id"]))]
        assert len(points) == len(reference)  # complete, no duplicate points
        assert sorted(map(key, points)) == sorted(map(key, reference))

    # A second replay over the same WAL converges to the same state.
    wal = WriteAheadLog(spool / "wal.jsonl")
    state = QueueState()
    state.apply_all(wal.replay())
    assert state.counts() == report["counts"]


def test_orphaned_lease_is_visible_then_reclaimed(tmp_path):
    spool = _spawn_and_kill_mid_sweep(tmp_path)

    # Replay alone (no daemon): the killed generation's claims surface
    # as running jobs whose heartbeats will never resume.
    state = QueueState()
    state.apply_all(WriteAheadLog(spool / "wal.jsonl").replay())
    assert len(state.jobs) == N_JOBS
    assert all(not j.terminal for j in state.jobs.values())

    svc = SweepService(
        spool, workers=1, lease_s=2.0, poll_interval_s=0.01, metrics=MetricsRegistry()
    )
    report = svc.run_daemon(drain=True)
    assert report["counts"]["completed"] == N_JOBS
