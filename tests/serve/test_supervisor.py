"""Supervisor behavior with a stub runner (no engine, fast clocks)."""

import threading
import time

import pytest

from repro.core.engine import SweepInterrupted
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueueState, Supervisor, WriteAheadLog

pytestmark = pytest.mark.timeout(120)


def make_queue(tmp_path, *jobs, max_retries=2):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    for job_id in jobs:
        wal.append(
            {
                "kind": "submit",
                "job_id": job_id,
                "spec": {"study": {"name": "t"}, "max_retries": max_retries},
                "t": time.time(),
            }
        )
    return wal, QueueState()


def make_supervisor(wal, state, runner, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_s", 0.5)
    kwargs.setdefault("poll_interval_s", 0.01)
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    kwargs.setdefault("metrics", MetricsRegistry())
    return Supervisor(wal, state, runner, **kwargs)


def drain(sup):
    sup.run(drain=True)


class TestHappyPath:
    def test_drains_all_jobs_to_completed(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a", "job-b", "job-c")
        ran = []

        def runner(job, progress=None):
            ran.append(job.job_id)
            return {"points": 4, "store": f"{job.job_id}.jsonl"}

        sup = make_supervisor(wal, state, runner)
        drain(sup)
        assert sorted(ran) == ["job-a", "job-b", "job-c"]
        assert state.counts()["completed"] == 3
        job = state.jobs["job-a"]
        assert job.points == 4 and job.store == "job-a.jsonl"

    def test_jobs_submitted_while_running_are_picked_up(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a")
        client = WriteAheadLog(tmp_path / "wal.jsonl")
        submitted = threading.Event()

        def runner(job, progress=None):
            if job.job_id == "job-a" and not submitted.is_set():
                client.append(
                    {
                        "kind": "submit",
                        "job_id": "job-late",
                        "spec": {"study": {"name": "t"}, "max_retries": 0},
                        "t": time.time(),
                    }
                )
                submitted.set()
            return {"points": 1, "store": "s"}

        sup = make_supervisor(wal, state, runner)
        drain(sup)
        assert state.counts()["completed"] == 2

    def test_cancelled_job_is_never_delivered(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a")
        wal.append({"kind": "cancel", "job_id": "job-a", "t": time.time()})
        ran = []

        def runner(job, progress=None):
            ran.append(job.job_id)
            return {"points": 1, "store": "s"}

        sup = make_supervisor(wal, state, runner)
        drain(sup)
        assert ran == []
        assert state.jobs["job-a"].status == "cancelled"


class TestRetries:
    def test_flaky_job_retried_then_completes(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a", max_retries=2)
        attempts = []

        def runner(job, progress=None):
            attempts.append(job.failures)
            if len(attempts) < 3:
                raise RuntimeError("flaky")
            return {"points": 1, "store": "s"}

        metrics = MetricsRegistry()
        sup = make_supervisor(wal, state, runner, metrics=metrics)
        drain(sup)
        assert attempts == [0, 1, 2]
        assert state.jobs["job-a"].status == "completed"
        assert metrics.counter("repro_serve_retries_total").value == 2

    def test_retry_budget_exhaustion_fails_terminally(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a", max_retries=1)

        def runner(job, progress=None):
            raise RuntimeError("always broken")

        metrics = MetricsRegistry()
        sup = make_supervisor(wal, state, runner, metrics=metrics)
        drain(sup)
        job = state.jobs["job-a"]
        assert job.status == "failed"
        assert "always broken" in job.error
        assert job.failures == 2  # initial delivery + 1 retry
        assert metrics.counter("repro_serve_jobs_total", outcome="failed").value == 1

    def test_retry_backoff_is_recorded_in_requeue_records(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a", max_retries=2)

        def runner(job, progress=None):
            if job.failures < 2:
                raise RuntimeError("flaky")
            return {"points": 1, "store": "s"}

        sup = make_supervisor(wal, state, runner)
        drain(sup)
        requeues = [r for r in wal.replay() if r["kind"] == "requeue"]
        assert len(requeues) == 2
        for r in requeues:
            assert r["reason"] == "retry"
            assert 0.0 < r["backoff_s"] <= 0.05  # capped + jittered
            assert r["not_before_t"] > r["t"]


class TestLeases:
    def test_orphaned_lease_from_dead_daemon_is_reclaimed(self, tmp_path):
        # A previous daemon claimed the job and died: replay reconstructs
        # it as running with an expired lease; this daemon requeues and
        # finishes it.
        wal, state = make_queue(tmp_path, "job-a")
        wal.append(
            {
                "kind": "claim",
                "job_id": "job-a",
                "worker": "dead-w0",
                "lease_s": 0.5,
                "deadline_t": time.time() - 10.0,
                "t": time.time() - 11.0,
            }
        )
        metrics = MetricsRegistry()
        sup = make_supervisor(
            wal, state, lambda job, progress=None: {"points": 1, "store": "s"},
            metrics=metrics,
        )
        drain(sup)
        assert state.jobs["job-a"].status == "completed"
        assert metrics.counter("repro_serve_lease_expirations_total").value == 1
        reasons = [r["reason"] for r in wal.replay() if r["kind"] == "requeue"]
        assert "lease-expired" in reasons

    def test_expiration_budget_fails_a_ping_ponging_job(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a")
        sup = make_supervisor(
            wal, state, lambda job, progress=None: {"points": 1, "store": "s"},
            breaker_threshold=1,
        )
        # Simulate a job whose lease already expired past the budget.
        wal.append(
            {
                "kind": "claim",
                "job_id": "job-a",
                "worker": "dead",
                "deadline_t": 0.0,
                "t": 0.0,
            }
        )
        for _ in range(sup.max_lease_expirations + 1):
            state.apply_all(wal.poll())
            sup._reclaim_leases()
            job = state.jobs["job-a"]
            if job.status == "failed":
                break
            wal.append(
                {"kind": "claim", "job_id": "job-a", "worker": "dead",
                 "deadline_t": 0.0, "t": 0.0}
            )
        assert state.jobs["job-a"].status == "failed"
        assert "lease expired" in state.jobs["job-a"].error

    def test_heartbeats_keep_long_jobs_leased(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a")
        lease_s = 0.3

        def runner(job, progress=None):
            time.sleep(3 * lease_s)  # longer than the lease: needs beats
            return {"points": 1, "store": "s"}

        metrics = MetricsRegistry()
        sup = make_supervisor(
            wal, state, runner, lease_s=lease_s, workers=1, metrics=metrics
        )
        drain(sup)
        assert state.jobs["job-a"].status == "completed"
        assert metrics.counter("repro_serve_heartbeats_total").value >= 1
        assert metrics.counter("repro_serve_lease_expirations_total").value == 0


class TestBreaker:
    def test_streak_degrades_then_opens_then_success_closes(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a", max_retries=6)
        threshold = 2
        calls = []

        def runner(job, progress=None):
            calls.append(job.failures)
            if job.failures < 5:
                raise RuntimeError("warming up")
            return {"points": 1, "store": "s"}

        sup = make_supervisor(
            wal, state, runner, breaker_threshold=threshold, workers=2
        )
        drain(sup)
        states = [r["state"] for r in wal.replay() if r["kind"] == "breaker"]
        assert "degraded" in states and "open" in states
        assert states[-1] == "closed"  # the success reset the streak
        assert state.jobs["job-a"].status == "completed"

    def test_degraded_breaker_limits_dispatch_capacity(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a", "job-b", "job-c")
        state.apply_all(wal.poll())
        state.breaker = "degraded"
        sup = make_supervisor(
            wal, state, lambda job, progress=None: {"points": 1, "store": "s"},
            workers=3,
        )
        assert sup._capacity() == 1
        state.breaker = "closed"
        assert sup._capacity() == 3


class TestShutdown:
    def test_stop_requeues_running_job_for_the_next_daemon(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a")
        started = threading.Event()

        def runner(job, progress=None):
            started.set()
            for _ in range(1000):
                time.sleep(0.01)
                progress({"event": "tick"})  # raises SweepInterrupted on stop
            return {"points": 1, "store": "s"}

        sup = make_supervisor(wal, state, runner, workers=1)
        t = threading.Thread(target=sup.run, daemon=True)
        t.start()
        assert started.wait(5.0)
        sup.stop()
        t.join(timeout=10.0)
        assert not t.is_alive()
        job = state.jobs["job-a"]
        assert job.status == "pending"  # requeued, not lost or failed
        assert job.failures == 0  # shutdown is not a failure
        reasons = [r["reason"] for r in wal.replay() if r["kind"] == "requeue"]
        assert reasons == ["shutdown"]

    def test_runner_sweepinterrupted_is_not_a_retry(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a")
        delivered = []

        def runner(job, progress=None):
            if not delivered:
                delivered.append(job.job_id)
                raise SweepInterrupted("previous generation stopping")
            return {"points": 1, "store": "s"}

        metrics = MetricsRegistry()
        sup = make_supervisor(wal, state, runner, metrics=metrics)
        drain(sup)
        assert state.jobs["job-a"].status == "completed"
        assert metrics.counter("repro_serve_retries_total").value == 0


class TestMetrics:
    def test_gauges_published_after_drain(self, tmp_path):
        wal, state = make_queue(tmp_path, "job-a")
        metrics = MetricsRegistry()
        sup = make_supervisor(
            wal, state, lambda job, progress=None: {"points": 1, "store": "s"},
            metrics=metrics,
        )
        drain(sup)
        assert metrics.gauge("repro_serve_queue_depth").value == 0
        assert metrics.gauge("repro_serve_running").value == 0
        assert metrics.gauge("repro_serve_breaker_state").value == 0
        assert metrics.counter("repro_serve_jobs_total", outcome="completed").value == 1

    def test_constructor_validation(self, tmp_path):
        wal, state = make_queue(tmp_path)
        runner = lambda job, progress=None: {}
        with pytest.raises(ValueError):
            Supervisor(wal, state, runner, workers=0)
        with pytest.raises(ValueError):
            Supervisor(wal, state, runner, lease_s=0.0)
        with pytest.raises(ValueError):
            Supervisor(wal, state, runner, breaker_threshold=0)
