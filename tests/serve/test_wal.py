"""WAL append/poll/replay and the derived QueueState machine."""

import json

import pytest

from repro.serve import (
    TERMINAL_STATUSES,
    WAL_FORMAT,
    WAL_VERSION,
    QueueState,
    WriteAheadLog,
)

pytestmark = pytest.mark.timeout(60)

SPEC = {"study": {"name": "t"}, "max_retries": 2}


def submit(job_id="job-1", t=1.0):
    return {"kind": "submit", "job_id": job_id, "spec": SPEC, "t": t}


class TestWriteAheadLog:
    def test_new_file_gets_header(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        first = json.loads((tmp_path / "wal.jsonl").read_text().splitlines()[0])
        assert first == {"format": WAL_FORMAT, "version": WAL_VERSION}
        assert wal.poll() == []  # header is not a queue record

    def test_poll_returns_only_new_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append(submit("job-1"))
        assert [r["job_id"] for r in wal.poll()] == ["job-1"]
        assert wal.poll() == []
        wal.append(submit("job-2"))
        assert [r["job_id"] for r in wal.poll()] == ["job-2"]

    def test_replay_rereads_from_the_top(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append(submit("job-1"))
        wal.append({"kind": "claim", "job_id": "job-1", "worker": "w0",
                    "deadline_t": 9.0, "t": 2.0})
        assert len(wal.poll()) == 2
        assert [r["kind"] for r in wal.replay()] == ["submit", "claim"]

    def test_torn_tail_is_invisible_until_terminated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(submit("job-1"))
        line = json.dumps(submit("job-2"))
        with open(path, "a") as fh:  # a crashed writer's partial record
            fh.write(line[: len(line) // 2])
        assert [r["job_id"] for r in wal.poll()] == ["job-1"]
        assert wal.corrupt_lines == 0  # not corrupt yet, just unfinished

    def test_append_repairs_torn_tail_before_writing(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(submit("job-1"))
        with open(path, "a") as fh:
            fh.write(json.dumps(submit("job-2"))[:30])
        wal.append(submit("job-3"))  # must NOT concatenate onto the tear
        records = wal.replay()
        assert [r["job_id"] for r in records] == ["job-1", "job-3"]
        assert wal.corrupt_lines == 1  # the terminated partial line

    def test_corrupt_interior_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(submit("job-1"))
        with open(path, "a") as fh:
            fh.write("{not json}\n")
        wal.append(submit("job-2"))
        assert [r["job_id"] for r in wal.replay()] == ["job-1", "job-2"]
        assert wal.corrupt_lines == 1

    def test_shrunk_file_replays_from_start(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append(submit("job-1"))
        wal.poll()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # external truncation
        wal.append(submit("job-2"))
        job_ids = [r["job_id"] for r in wal.poll()]
        assert "job-2" in job_ids  # offset reset, nothing silently lost

    def test_concurrent_appends_from_second_handle(self, tmp_path):
        # Client submissions land in a live daemon's WAL via a second
        # WriteAheadLog over the same file.
        path = tmp_path / "wal.jsonl"
        daemon = WriteAheadLog(path)
        client = WriteAheadLog(path)
        client.append(submit("job-1"))
        assert [r["job_id"] for r in daemon.poll()] == ["job-1"]


class TestQueueState:
    def apply(self, *records):
        state = QueueState()
        state.apply_all(records)
        return state

    def test_submit_creates_pending_job(self):
        state = self.apply(submit())
        job = state.jobs["job-1"]
        assert job.status == "pending"
        assert job.spec == SPEC
        assert job.submitted_t == 1.0

    def test_duplicate_submit_ignored(self):
        state = self.apply(submit(), submit())
        assert len(state.jobs) == 1
        assert state.duplicates_ignored == 1

    def test_claim_heartbeat_complete_lifecycle(self):
        state = self.apply(
            submit(),
            {"kind": "claim", "job_id": "job-1", "worker": "w0",
             "deadline_t": 5.0, "t": 2.0},
            {"kind": "heartbeat", "job_id": "job-1", "deadline_t": 8.0, "t": 3.0},
            {"kind": "complete", "job_id": "job-1", "points": 9,
             "store": "s.jsonl", "t": 4.0},
        )
        job = state.jobs["job-1"]
        assert job.status == "completed"
        assert job.points == 9 and job.store == "s.jsonl"
        assert state.breaker_streak == 0

    def test_heartbeat_never_shortens_a_lease(self):
        state = self.apply(
            submit(),
            {"kind": "claim", "job_id": "job-1", "worker": "w0",
             "deadline_t": 9.0, "t": 2.0},
            {"kind": "heartbeat", "job_id": "job-1", "deadline_t": 4.0, "t": 3.0},
        )
        assert state.jobs["job-1"].lease_deadline_t == 9.0

    def test_requeue_returns_job_to_pending_with_backoff_gate(self):
        state = self.apply(
            submit(),
            {"kind": "claim", "job_id": "job-1", "worker": "w0",
             "deadline_t": 5.0, "t": 2.0},
            {"kind": "requeue", "job_id": "job-1", "reason": "retry",
             "failures": 1, "not_before_t": 7.5, "t": 3.0},
        )
        job = state.jobs["job-1"]
        assert job.status == "pending" and job.worker is None
        assert job.failures == 1 and job.not_before_t == 7.5
        assert state.breaker_streak == 1
        assert state.eligible(now_t=7.0) == []
        assert [j.job_id for j in state.eligible(now_t=8.0)] == ["job-1"]

    def test_terminal_states_are_sticky(self):
        # A straggler complete from a still-running delivery must not
        # resurrect a cancelled job.
        state = self.apply(
            submit(),
            {"kind": "cancel", "job_id": "job-1", "t": 2.0},
            {"kind": "complete", "job_id": "job-1", "points": 9, "t": 3.0},
        )
        assert state.jobs["job-1"].status == "cancelled"

    def test_duplicate_complete_counted_not_double_applied(self):
        state = self.apply(
            submit(),
            {"kind": "complete", "job_id": "job-1", "points": 9, "t": 2.0},
            {"kind": "complete", "job_id": "job-1", "points": 9, "t": 3.0},
        )
        assert state.counts()["completed"] == 1
        assert state.duplicates_ignored == 1

    def test_orphan_records_counted(self):
        # e.g. the submit line was the one lost to a torn tail
        state = self.apply({"kind": "complete", "job_id": "ghost", "t": 1.0})
        assert state.orphan_records == 1
        assert state.jobs == {}

    def test_fail_is_terminal_and_trips_streak(self):
        state = self.apply(
            submit(),
            {"kind": "fail", "job_id": "job-1", "error": "boom",
             "failures": 3, "t": 2.0},
        )
        job = state.jobs["job-1"]
        assert job.status == "failed" and job.error == "boom"
        assert job.status in TERMINAL_STATUSES
        assert state.breaker_streak == 1

    def test_breaker_record_updates_state(self):
        state = self.apply({"kind": "breaker", "state": "open", "t": 5.0})
        assert state.breaker == "open" and state.breaker_t == 5.0

    def test_replay_is_idempotent(self):
        records = [
            submit(),
            {"kind": "claim", "job_id": "job-1", "worker": "w0",
             "deadline_t": 5.0, "t": 2.0},
            {"kind": "complete", "job_id": "job-1", "points": 9, "t": 3.0},
        ]
        once = self.apply(*records)
        twice = self.apply(*(records + records))
        assert once.counts() == twice.counts()
        assert once.jobs["job-1"].snapshot() == twice.jobs["job-1"].snapshot()
