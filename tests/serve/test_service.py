"""SweepService: spool layout, submission ladder, daemon drain, resume."""

import json
import time

import pytest

from repro.core import ResultStore, StudyConfig
from repro.obs.metrics import MetricsRegistry
from repro.serve import SweepService, study_from_dict, study_to_dict

pytestmark = pytest.mark.timeout(300)

CFG = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_s", 2.0)
    kwargs.setdefault("poll_interval_s", 0.01)
    kwargs.setdefault("metrics", MetricsRegistry())
    return SweepService(tmp_path / "spool", **kwargs)


class TestStudySerialization:
    def test_round_trip(self):
        assert study_from_dict(study_to_dict(CFG)) == CFG

    def test_grid_is_explicit_in_the_dict(self):
        doc = study_to_dict(CFG)
        assert doc["algorithms"] == ["threshold"]
        assert doc["sizes"] == [12]
        assert doc["caps_w"] == list(CFG.caps_w)


class TestSubmissionLadder:
    def test_accepted_submission_is_durable(self, tmp_path):
        svc = make_service(tmp_path)
        receipt = svc.submit(CFG, n_cycles=2)
        assert receipt.accepted and receipt.status == "queued"
        assert receipt.job_id.startswith("job-")
        # A brand-new service over the same spool sees the job: the WAL
        # record was fsynced before submit() returned.
        fresh = make_service(tmp_path)
        assert fresh.status(receipt.job_id)["status"] == "pending"

    def test_phase_names_are_rejected(self, tmp_path):
        svc = make_service(tmp_path)
        with pytest.raises(TypeError, match="explicit StudyConfig"):
            svc.submit("phase1")

    def test_queue_full_sheds(self, tmp_path):
        svc = make_service(tmp_path, queue_limit=2)
        assert svc.submit(CFG, n_cycles=2).accepted
        assert svc.submit(CFG, n_cycles=2).accepted
        shed = svc.submit(CFG, n_cycles=2)
        assert not shed.accepted
        assert shed.status == "queue-full" and shed.job_id is None
        assert shed.queue_depth == 2

    def test_open_breaker_sheds_as_degraded(self, tmp_path):
        svc = make_service(tmp_path, breaker_cooldown_s=60.0)
        svc.wal.append({"kind": "breaker", "state": "open", "t": time.time()})
        shed = svc.submit(CFG, n_cycles=2)
        assert shed.status == "degraded" and not shed.accepted

    def test_breaker_cooldown_reopens_the_edge(self, tmp_path):
        svc = make_service(tmp_path, breaker_cooldown_s=0.01)
        svc.wal.append({"kind": "breaker", "state": "open", "t": time.time() - 1.0})
        assert svc.submit(CFG, n_cycles=2).accepted  # record is stale


class TestClientCalls:
    def test_status_of_unknown_job_raises(self, tmp_path):
        with pytest.raises(KeyError, match="unknown job"):
            make_service(tmp_path).status("job-nope")

    def test_cancel_pending_job(self, tmp_path):
        svc = make_service(tmp_path)
        receipt = svc.submit(CFG, n_cycles=2)
        snap = svc.cancel(receipt.job_id)
        assert snap["status"] == "cancelled"
        assert svc.cancel(receipt.job_id)["status"] == "cancelled"  # idempotent

    def test_report_shape(self, tmp_path):
        svc = make_service(tmp_path)
        receipt = svc.submit(CFG, n_cycles=2)
        report = svc.report()
        assert report["counts"]["pending"] == 1
        assert report["queue_depth"] == 1
        assert report["breaker"] == "closed"
        assert report["wal_corrupt_lines"] == 0
        assert [j["job_id"] for j in report["jobs"]] == [receipt.job_id]


class TestDaemon:
    def test_drain_completes_submitted_studies(self, tmp_path):
        svc = make_service(tmp_path)
        r1 = svc.submit(CFG, n_cycles=2)
        r2 = svc.submit(CFG, n_cycles=2)
        report = svc.run_daemon(drain=True)
        assert report["counts"]["completed"] == 2
        for receipt in (r1, r2):
            snap = svc.status(receipt.job_id)
            assert snap["status"] == "completed"
            store = ResultStore(svc.store_path(receipt.job_id))
            assert len(store) == snap["points"] > 0

    def test_metrics_dumped_on_exit(self, tmp_path):
        svc = make_service(tmp_path)
        svc.submit(CFG, n_cycles=2)
        svc.run_daemon(drain=True)
        doc = json.loads((svc.spool / "service.metrics.json").read_text())
        names = {m["name"] for m in doc["metrics"]} if "metrics" in doc else set(doc)
        assert any("repro_serve" in n for n in names)

    def test_second_drain_is_a_noop_resume(self, tmp_path):
        svc = make_service(tmp_path)
        receipt = svc.submit(CFG, n_cycles=2)
        svc.run_daemon(drain=True)
        before = svc.store_path(receipt.job_id).read_bytes()
        fresh = make_service(tmp_path)
        report = fresh.run_daemon(drain=True)
        assert report["counts"]["completed"] == 1
        assert fresh.store_path(receipt.job_id).read_bytes() == before

    def test_jobs_with_different_seeds_get_separate_ledger_files(self, tmp_path):
        svc = make_service(tmp_path)
        svc.submit(CFG, n_cycles=2, seed=7)
        svc.submit(CFG, n_cycles=2, seed=8)
        svc.run_daemon(drain=True)
        assert (svc.spool / "profiles-blobs-7.json").exists()
        assert (svc.spool / "profiles-blobs-8.json").exists()
