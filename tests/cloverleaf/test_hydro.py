"""CloverLeaf proxy: EOS, state, kernels, and conservation."""

import numpy as np
import pytest

from repro.cloverleaf import (
    CloverLeaf,
    SimState,
    advect,
    compute_dt,
    hydro_step,
    ideal_gas,
    ideal_initial_state,
    step_profile,
)
from repro.cloverleaf.hydro import velocity_divergence


class TestEos:
    def test_ideal_gas_values(self):
        p, c = ideal_gas(np.array([1.0]), np.array([2.5]), gamma=1.4)
        assert p[0] == pytest.approx(0.4 * 2.5)
        assert c[0] == pytest.approx(np.sqrt(1.4 * 1.0))

    def test_pressure_scales_with_density(self):
        p1, _ = ideal_gas(np.array([1.0]), np.array([1.0]))
        p2, _ = ideal_gas(np.array([2.0]), np.array([1.0]))
        assert p2[0] == pytest.approx(2 * p1[0])

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            ideal_gas(np.ones(1), np.ones(1), gamma=1.0)


class TestInitialState:
    def test_two_states(self):
        s = ideal_initial_state(16)
        assert set(np.unique(s.density)) == {0.2, 1.0}
        assert set(np.unique(s.energy)) == {1.0, 2.5}

    def test_pressure_consistent_with_eos(self):
        s = ideal_initial_state(16)
        p, c = ideal_gas(s.density, s.energy, s.gamma)
        np.testing.assert_allclose(s.pressure, p)
        np.testing.assert_allclose(s.soundspeed, c)

    def test_initially_at_rest(self):
        s = ideal_initial_state(16)
        assert np.all(s.vel == 0.0)
        assert s.total_kinetic_energy() == 0.0

    def test_shape_validation(self):
        s = ideal_initial_state(8)
        with pytest.raises(ValueError):
            SimState(
                grid=s.grid,
                density=s.density[:-1],
                energy=s.energy,
                pressure=s.pressure,
                soundspeed=s.soundspeed,
                vel=s.vel,
            )

    def test_dataset_export(self):
        s = ideal_initial_state(8)
        ds = s.as_dataset()
        assert set(ds.fields) == {"energy", "density", "pressure", "velocity"}
        assert ds.field("velocity").is_vector


class TestKernels:
    def test_dt_positive_and_cfl_bounded(self):
        s = ideal_initial_state(16)
        dt = compute_dt(s, cfl=0.25)
        h = min(s.grid.spacing)
        assert 0 < dt <= 0.25 * h / s.soundspeed.max()

    def test_divergence_zero_at_rest(self):
        s = ideal_initial_state(8)
        np.testing.assert_allclose(velocity_divergence(s), 0.0)

    def test_divergence_of_uniform_expansion(self):
        s = ideal_initial_state(8)
        pts = s.grid.point_coords().reshape(*s.vel.shape[:3], 3)
        s.vel[:] = pts - s.grid.center  # v = r -> div = 3
        np.testing.assert_allclose(velocity_divergence(s), 3.0, rtol=1e-9)

    def test_advection_conserves_mass_exactly(self):
        s = ideal_initial_state(12)
        rng = np.random.default_rng(5)
        s.vel += 0.1 * rng.normal(size=s.vel.shape)
        m0 = s.total_mass()
        advect(s, dt=0.005)
        assert s.total_mass() == pytest.approx(m0, rel=1e-13)

    def test_pressure_gradient_accelerates_toward_low_pressure(self):
        s = ideal_initial_state(16)
        hydro_step(s)
        # The energetic corner pushes material away: some motion appears.
        assert s.total_kinetic_energy() > 0


class TestDriver:
    def test_stable_for_many_steps(self):
        cl = CloverLeaf(12)
        m0 = cl.state.total_mass()
        cl.step(60)
        s = cl.state
        assert np.isfinite(s.energy).all() and np.isfinite(s.vel).all()
        assert s.energy.min() > 0 and s.density.min() > 0
        assert s.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_time_advances_monotonically(self):
        cl = CloverLeaf(8)
        times = []
        for _ in range(5):
            cl.step()
            times.append(cl.state.time)
        assert times == sorted(times)
        assert cl.state.step_count == 5

    def test_run_to_step(self):
        cl = CloverLeaf(8)
        cl.run_to_step(7)
        assert cl.state.step_count == 7

    def test_energy_field_develops_structure(self):
        """After evolution the energy field must no longer be two-valued
        (the renderings in Fig. 1 show a developed field)."""
        cl = CloverLeaf(12)
        cl.step(40)
        assert len(np.unique(np.round(cl.state.energy, 6))) > 10

    def test_summary_keys(self):
        cl = CloverLeaf(8)
        s = cl.summary()
        assert set(s) >= {"step", "time", "mass", "internal_energy", "kinetic_energy"}


class TestStepProfile:
    def test_profile_scales_with_cells_and_steps(self):
        p1 = step_profile(1000, 1)
        p2 = step_profile(2000, 1)
        p3 = step_profile(1000, 3)
        assert p2.total_instructions == pytest.approx(2 * p1.total_instructions)
        assert p3.total_instructions == pytest.approx(3 * p1.total_instructions)

    def test_profile_is_compute_hot(self, processor):
        """The hydro proxy runs near TDP like real CloverLeaf."""
        r = processor.run(step_profile(128**3, 10), 120.0)
        assert r.avg_power_w > 75.0

    def test_kernel_names(self):
        names = [s.name for s in step_profile(100)]
        assert names == ["eos", "accelerate", "pdv", "advect"]

    def test_validation(self):
        with pytest.raises(ValueError):
            step_profile(0)
        with pytest.raises(ValueError):
            step_profile(10, 0)


class TestRandomizedStability:
    """Property-style robustness: random perturbed initial conditions
    stay physical and conservative."""

    def test_random_energy_fields_stay_physical(self):
        import numpy as np

        for seed in range(3):
            rng = np.random.default_rng(seed)
            s = ideal_initial_state(10)
            s.energy *= 1.0 + 0.3 * rng.random(s.energy.shape)
            s.density *= 1.0 + 0.3 * rng.random(s.density.shape)
            from repro.cloverleaf.eos import ideal_gas as eos

            s.pressure, s.soundspeed = eos(s.density, s.energy, s.gamma)
            m0 = s.total_mass()
            for _ in range(25):
                hydro_step(s)
            assert np.isfinite(s.energy).all()
            assert s.density.min() > 0 and s.energy.min() > 0
            assert s.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_symmetric_ic_stays_nearly_symmetric(self):
        """A y<->z symmetric initial condition evolves symmetrically up
        to the directional-splitting residual: the alternating sweep
        order (CloverLeaf's scheme) keeps the bias at the 0.01% level
        where a fixed order lets it grow an order of magnitude larger."""
        import numpy as np

        from repro.cloverleaf.hydro import _advect_axis

        s = ideal_initial_state(10)  # box spans equal extents in y and z
        for _ in range(20):
            hydro_step(s)
        asym = np.abs(s.energy - np.swapaxes(s.energy, 0, 1)).max()
        assert asym < 1e-3 * s.energy.max()
