"""Duty-cycle (T-state) throttling: the controller's last resort."""

import dataclasses

import pytest

from repro.machine import BROADWELL_E5_2695V4, MIN_DUTY, Processor
from repro.workload import AccessPattern, InstructionMix, WorkProfile, WorkSegment


def traffic_monster():
    """Bandwidth-saturating random access with real compute: enough
    incompressible (traffic) power that P-states alone cannot hold deep
    caps, and enough core work that throttling costs time."""
    return WorkSegment(
        name="monster",
        mix=InstructionMix(fp=3e10, simd=1e10, load=8e9, store=3e9),
        bytes_read=1.2e11,
        bytes_written=2e10,
        working_set_bytes=1e12,
        pattern=AccessPattern.RANDOM,
        mlp=64.0,
    )


@pytest.fixture(scope="module")
def hot_spec_proc():
    """A spec variant whose floor power exceeds deep caps, forcing the
    duty-cycle path deterministically."""
    spec = dataclasses.replace(
        BROADWELL_E5_2695V4,
        p_uncore_idle=25.0,
        p_per_dram_Bps=1.5e-9,
        rapl_floor_watts=40.0,
    )
    return Processor(spec)


class TestDutyCycling:
    def test_duty_engages_below_pstate_range(self, hot_spec_proc):
        prof = WorkProfile("m", [traffic_monster()])
        r = hot_spec_proc.run(prof, 40.0)
        rec = r.records[0]
        assert rec.duty < 1.0
        assert rec.f_ghz == pytest.approx(hot_spec_proc.spec.f_min)

    def test_duty_respects_minimum(self, hot_spec_proc):
        prof = WorkProfile("m", [traffic_monster()])
        r = hot_spec_proc.run(prof, 40.0)
        assert r.records[0].duty >= MIN_DUTY

    def test_unholdable_cap_is_flagged(self, hot_spec_proc):
        """When even maximal throttling exceeds the cap, the record says
        so instead of silently reporting a false power number."""
        prof = WorkProfile("m", [traffic_monster()])
        r = hot_spec_proc.run(prof, 40.0)
        rec = r.records[0]
        assert not rec.cap_met
        assert rec.power_w > 40.0

    def test_duty_costs_time(self, hot_spec_proc):
        prof = WorkProfile("m", [traffic_monster()])
        free = hot_spec_proc.run(prof, 120.0)
        capped = hot_spec_proc.run(prof, 40.0)
        assert capped.records[0].duty < free.records[0].duty
        assert capped.time_s > 1.5 * free.time_s

    def test_standard_spec_avoids_duty_for_study_workloads(self, processor):
        """On the calibrated Broadwell, none of the study algorithms
        needs T-states even at the 40 W floor."""
        from repro.core import StudyRunner

        runner = StudyRunner(n_cycles=1)
        for alg in ("contour", "volume"):
            prof = runner.profile_for(alg, 16)
            r = processor.run(prof, 40.0)
            assert all(rec.duty == 1.0 for rec in r.records), alg
