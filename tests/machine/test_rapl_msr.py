"""RAPL controller and MSR emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    BROADWELL_E5_2695V4,
    ENERGY_UNIT_J,
    ENERGY_WRAP,
    MIN_DUTY,
    ExecutionModel,
    MsrBank,
    PowerModel,
    RaplController,
)
from repro.workload import AccessPattern, InstructionMix, WorkSegment

SPEC = BROADWELL_E5_2695V4
EXEC = ExecutionModel(SPEC)
RAPL = RaplController(SPEC)


def hot_segment():
    return WorkSegment(
        name="hot",
        mix=InstructionMix(fp=2e9, simd=2e9),
        bytes_read=1e6,
        working_set_bytes=1e6,
    )


def cool_segment():
    return WorkSegment(
        name="cool",
        mix=InstructionMix(load=5e8, int_alu=2e8),
        bytes_read=5e8,
        working_set_bytes=5e8,
        extra_stall_cycles=2e9,
    )


class TestController:
    def test_uncapped_runs_turbo(self):
        op = RAPL.operating_point(EXEC.evaluate(hot_segment()), SPEC.tdp_watts)
        assert op.f_ghz == pytest.approx(SPEC.f_turbo)
        assert op.duty == 1.0 and op.cap_met

    def test_cap_respected(self):
        for cap in (100.0, 80.0, 60.0, 40.0):
            op = RAPL.operating_point(EXEC.evaluate(hot_segment()), cap)
            assert op.power_w <= cap + 1e-9
            assert op.cap_met

    def test_frequency_monotone_in_cap(self):
        ev = EXEC.evaluate(hot_segment())
        freqs = [RAPL.operating_point(ev, float(c)).f_ghz for c in range(120, 30, -10)]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_cool_workload_keeps_turbo_under_deep_cap(self):
        """The study's central observation: low-power algorithms keep
        their frequency until the cap approaches their natural draw."""
        ev = EXEC.evaluate(cool_segment())
        natural = RAPL.power_model.power(ev, SPEC.f_turbo)
        op = RAPL.operating_point(ev, natural + 1.0)
        assert op.f_ghz == pytest.approx(SPEC.f_turbo)

    def test_cap_clamped_to_range(self):
        assert RAPL.validate_cap(500.0) == SPEC.tdp_watts
        assert RAPL.validate_cap(10.0) == SPEC.rapl_floor_watts
        with pytest.raises(ValueError):
            RAPL.validate_cap(-1.0)

    def test_duty_cycling_engages_when_pstates_insufficient(self):
        """A traffic-monster segment under the floor cap must throttle."""
        seg = WorkSegment(
            name="monster",
            mix=InstructionMix(fp=5e9, simd=5e9, load=2e9),
            bytes_read=2e11,
            working_set_bytes=1e12,
            pattern=AccessPattern.RANDOM,
            mlp=64.0,
            extra_stall_cycles=0.0,
        )
        ev = EXEC.evaluate(seg)
        op = RAPL.operating_point(ev, 40.0)
        if op.duty < 1.0:
            assert op.f_ghz == pytest.approx(SPEC.f_min)
            assert op.duty >= MIN_DUTY

    @given(cap=st.floats(min_value=40.0, max_value=120.0))
    @settings(max_examples=30, deadline=None)
    def test_property_cap_always_met_or_flagged(self, cap):
        for seg in (hot_segment(), cool_segment()):
            op = RAPL.operating_point(EXEC.evaluate(seg), cap)
            assert op.power_w <= cap + 1e-6 or not op.cap_met


class TestMsr:
    def test_energy_accumulates(self):
        m = MsrBank()
        m.deposit_energy(12.5)
        m.deposit_energy(7.5)
        assert m.total_energy_j == pytest.approx(20.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            MsrBank().deposit_energy(-1.0)

    def test_register_wraps_like_hardware(self):
        m = MsrBank()
        wrap_joules = ENERGY_WRAP * ENERGY_UNIT_J
        m.deposit_energy(wrap_joules + 5.0)
        assert m.pkg_energy_status == pytest.approx(5.0 / ENERGY_UNIT_J, abs=1)

    def test_delta_across_wrap(self):
        before = ENERGY_WRAP - 100
        after = 50
        d = MsrBank.energy_delta_j(before, after)
        assert d == pytest.approx(150 * ENERGY_UNIT_J)

    def test_effective_frequency(self):
        m = MsrBank()
        m.aperf = 2.6e9
        m.mperf = 2.1e9
        assert m.effective_frequency_ghz(2.1) == pytest.approx(2.6)

    def test_effective_frequency_zero_mperf(self):
        assert MsrBank().effective_frequency_ghz(2.1) == 0.0

    def test_snapshot_is_independent(self):
        m = MsrBank()
        m.deposit_energy(1.0)
        snap = m.snapshot()
        m.deposit_energy(1.0)
        assert snap.total_energy_j == pytest.approx(1.0)
        assert m.total_energy_j == pytest.approx(2.0)
