"""Cross-architecture presets (§VIII extension)."""

import pytest

from repro.machine import ALL_PRESETS, BROADWELL_E5_2695V4, LOWPOWER_MANYCORE, SKYLAKE_LIKE, Processor
from repro.workload import InstructionMix, WorkProfile, WorkSegment


def fp_profile(scale=1.0):
    return WorkProfile(
        "fp",
        [
            WorkSegment(
                name="hot",
                mix=InstructionMix(fp=1e10 * scale, simd=5e9 * scale),
                bytes_read=1e7,
                working_set_bytes=1e7,
            )
        ],
    )


class TestPresets:
    def test_registry_contents(self):
        assert set(ALL_PRESETS) == {"broadwell", "skylake", "manycore"}
        assert ALL_PRESETS["broadwell"] is BROADWELL_E5_2695V4

    def test_presets_are_valid_specs(self):
        for spec in ALL_PRESETS.values():
            assert spec.f_min <= spec.f_base <= spec.f_turbo
            assert spec.rapl_floor_watts < spec.tdp_watts
            bins = spec.freq_bins
            assert bins[0] == pytest.approx(spec.f_min)
            assert bins[-1] == pytest.approx(spec.f_turbo)

    def test_every_preset_executes_profiles(self):
        prof = fp_profile()
        for name, spec in ALL_PRESETS.items():
            proc = Processor(spec)
            r = proc.run(prof, spec.tdp_watts)
            assert r.time_s > 0 and r.avg_power_w < spec.tdp_watts + 1e-9, name

    def test_skylake_faster_on_compute(self):
        """More, faster cores finish FP work sooner at TDP."""
        prof = fp_profile()
        t_bdw = Processor(BROADWELL_E5_2695V4).run(prof).time_s
        t_skx = Processor(SKYLAKE_LIKE).run(prof).time_s
        assert t_skx < t_bdw

    def test_manycore_narrow_cap_leverage(self):
        """The low-power part's small DVFS range means the deepest cap
        hurts compute-bound work far less than on Broadwell."""
        prof = fp_profile()
        slowdowns = {}
        for name, spec in (("broadwell", BROADWELL_E5_2695V4), ("manycore", LOWPOWER_MANYCORE)):
            proc = Processor(spec)
            base = proc.run(prof, spec.tdp_watts)
            deep = proc.run(prof, spec.rapl_floor_watts)
            slowdowns[name] = deep.time_s / base.time_s
        assert slowdowns["manycore"] < slowdowns["broadwell"]

    def test_caps_respected_on_all_presets(self):
        prof = fp_profile()
        for spec in ALL_PRESETS.values():
            proc = Processor(spec)
            cap = (spec.rapl_floor_watts + spec.tdp_watts) / 2
            r = proc.run(prof, cap)
            assert r.avg_power_w <= cap + 1e-6 or not r.cap_met
