"""Processor simulator: closed-form vs. traced runs, counters, sampling."""

import numpy as np
import pytest

from repro.machine import Processor
from repro.workload import AccessPattern, InstructionMix, WorkProfile, WorkSegment


def make_profile(name="p", scale=1.0):
    return WorkProfile(
        name,
        [
            WorkSegment(
                name="hot",
                mix=InstructionMix(fp=1.5e10 * scale, simd=6e9 * scale, int_alu=3e9 * scale),
                bytes_read=1e7 * scale,
                working_set_bytes=1e7,
            ),
            WorkSegment(
                name="cool",
                mix=InstructionMix(load=6e9 * scale, int_alu=3e9 * scale, store=2e9 * scale),
                bytes_read=2e9 * scale,
                working_set_bytes=2e8,
                extra_stall_cycles=3e10 * scale,
            ),
        ],
    )


class TestClosedForm:
    def test_energy_equals_power_times_time(self, processor):
        r = processor.run(make_profile(), 100.0)
        total = sum(rec.power_w * rec.time_s for rec in r.records)
        assert r.energy_j == pytest.approx(total, rel=1e-12)
        assert r.msr.total_energy_j == pytest.approx(r.energy_j, rel=1e-12)

    def test_time_monotone_in_cap(self, processor):
        prof = make_profile()
        times = [processor.run(prof, float(c)).time_s for c in range(120, 30, -10)]
        assert all(b >= a - 1e-12 for a, b in zip(times, times[1:]))

    def test_default_cap_is_tdp(self, processor):
        assert processor.run(make_profile()).cap_watts == processor.spec.tdp_watts

    def test_counters_accumulate_all_segments(self, processor):
        prof = make_profile()
        r = processor.run(prof, 120.0)
        assert r.instructions == pytest.approx(prof.total_instructions)
        assert r.msr.inst_retired == pytest.approx(prof.total_instructions)

    def test_effective_frequency_at_tdp_is_turbo(self, processor):
        r = processor.run(make_profile(), 120.0)
        assert r.effective_freq_ghz == pytest.approx(processor.spec.f_turbo, rel=1e-6)

    def test_ipc_definitions(self, processor):
        r = processor.run(make_profile(), 120.0)
        # Reference IPC uses base-frequency cycles; core IPC uses actual.
        assert r.ipc == pytest.approx(
            r.ipc_core * processor.spec.f_turbo / processor.spec.f_base, rel=1e-6
        )

    def test_work_scales_linearly(self, processor):
        t1 = processor.run(make_profile(scale=1.0), 120.0).time_s
        t2 = processor.run(make_profile(scale=2.0), 120.0).time_s
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_empty_profile_rejected(self, processor):
        with pytest.raises(ValueError):
            processor.run(WorkProfile("empty"), 120.0)

    def test_cap_met_flag(self, processor):
        r = processor.run(make_profile(), 40.0)
        assert isinstance(r.cap_met, bool)


class TestTraced:
    def test_matches_closed_form_without_noise(self, processor):
        prof = make_profile(scale=0.2)
        for cap in (120.0, 60.0):
            a = processor.run(prof, cap)
            b = processor.run_traced(prof, cap, window_s=1e-3)
            assert b.time_s == pytest.approx(a.time_s, rel=0.02)
            assert b.energy_j == pytest.approx(a.energy_j, rel=0.02)

    def test_samples_cover_run(self, processor):
        prof = make_profile(scale=0.5)
        r = processor.run_traced(prof, 80.0, sample_interval_s=0.05)
        assert len(r.samples) >= 2
        covered = sum(s.dt_s for s in r.samples)
        assert covered == pytest.approx(r.time_s, rel=0.01)

    def test_sample_energy_consistent(self, processor):
        prof = make_profile(scale=0.5)
        r = processor.run_traced(prof, 80.0, sample_interval_s=0.05)
        e = sum(s.power_w * s.dt_s for s in r.samples)
        assert e == pytest.approx(r.energy_j, rel=0.01)

    def test_noise_is_seeded(self, processor):
        prof = make_profile(scale=0.2)
        a = processor.run_traced(prof, 60.0, noise_sigma_w=2.0, seed=1)
        b = processor.run_traced(prof, 60.0, noise_sigma_w=2.0, seed=1)
        c = processor.run_traced(prof, 60.0, noise_sigma_w=2.0, seed=2)
        assert a.time_s == b.time_s
        assert a.time_s != c.time_s

    def test_noisy_run_stays_near_cap(self, processor):
        prof = make_profile(scale=0.5)
        r = processor.run_traced(prof, 60.0, noise_sigma_w=1.5, seed=3)
        # The integral correction keeps the average at or under the cap.
        assert r.avg_power_w <= 61.0

    def test_segment_records_present(self, processor):
        r = processor.run_traced(make_profile(scale=0.2), 100.0)
        assert [rec.name for rec in r.records] == ["hot", "cool"]
