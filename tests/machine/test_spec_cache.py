"""Machine spec and cache model."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import BROADWELL_E5_2695V4, CacheModel, MachineSpec
from repro.workload import AccessPattern, InstructionMix, WorkSegment

SPEC = BROADWELL_E5_2695V4


def seg(**kw):
    defaults = dict(
        name="s",
        mix=InstructionMix(int_alu=1e6, load=1e6),
        bytes_read=1e6,
        bytes_written=0.0,
        working_set_bytes=1e6,
        pattern=AccessPattern.STREAMING,
    )
    defaults.update(kw)
    return WorkSegment(**defaults)


class TestSpec:
    def test_broadwell_constants(self):
        assert SPEC.n_cores == 18
        assert SPEC.tdp_watts == 120.0
        assert SPEC.rapl_floor_watts == 40.0
        assert SPEC.llc_bytes == 45 * 1024 * 1024

    def test_freq_bins(self):
        bins = SPEC.freq_bins
        assert bins[0] == pytest.approx(SPEC.f_min)
        assert bins[-1] == pytest.approx(SPEC.f_turbo)
        np.testing.assert_allclose(np.diff(bins), SPEC.f_step)

    def test_voltage_monotone(self):
        v = [SPEC.voltage(f) for f in SPEC.freq_bins]
        assert all(b > a for a, b in zip(v, v[1:]))

    def test_voltage_clamped_below_fmin(self):
        assert SPEC.voltage(0.1) == SPEC.voltage(SPEC.f_min)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SPEC, f_min=3.0)  # f_min > f_base
        with pytest.raises(ValueError):
            dataclasses.replace(SPEC, rapl_floor_watts=200.0)
        with pytest.raises(ValueError):
            dataclasses.replace(SPEC, n_cores=0)


class TestCacheSweep:
    def setup_method(self):
        self.model = CacheModel(SPEC)

    def test_cold_single_pass_all_miss(self):
        b = self.model.analyze(seg(bytes_read=6.4e6, working_set_bytes=6.4e6,
                                   pattern=AccessPattern.STRIDED))
        lines = 6.4e6 * 1.25 / 64
        assert b.llc_refs == pytest.approx(lines)
        # Demand misses are reduced by the prefetcher, traffic is not.
        assert b.dram_lines == pytest.approx(lines)
        assert b.llc_misses < lines

    def test_llc_resident_rereads_hit(self):
        """10 passes over an LLC-sized set: only the cold pass misses."""
        ws = 16e6
        b = self.model.analyze(
            seg(bytes_read=10 * ws, working_set_bytes=ws, reuse_passes=10.0)
        )
        per_pass = ws / 64
        assert b.dram_lines == pytest.approx(per_pass)
        assert b.llc_refs == pytest.approx(10 * per_pass)
        assert b.llc_miss_rate < 0.1

    def test_llc_spill_rereads_miss(self):
        """Same 10 passes, working set 3x the LLC: every pass streams."""
        ws = 3 * SPEC.llc_bytes
        b = self.model.analyze(
            seg(bytes_read=10 * ws, working_set_bytes=ws, reuse_passes=10.0)
        )
        assert b.dram_lines == pytest.approx(10 * ws / 64)

    def test_l2_resident_never_reaches_llc(self):
        ws = SPEC.l2_total_bytes / 2
        b = self.model.analyze(seg(bytes_read=5 * ws, working_set_bytes=ws, reuse_passes=5.0))
        assert b.llc_refs == pytest.approx(ws / 64)  # cold pass only

    def test_zero_traffic(self):
        b = self.model.analyze(seg(bytes_read=0.0))
        assert b.llc_refs == 0 and b.dram_bytes == 0 and b.llc_miss_rate == 0.0


class TestCacheProbabilistic:
    def setup_method(self):
        self.model = CacheModel(SPEC)

    def test_small_random_set_hits(self):
        b = self.model.analyze(
            seg(pattern=AccessPattern.RANDOM, bytes_read=1e8, working_set_bytes=1e6)
        )
        assert b.llc_misses == pytest.approx(0.0, abs=1e-6)

    def test_huge_random_set_misses(self):
        b = self.model.analyze(
            seg(pattern=AccessPattern.RANDOM, bytes_read=1e8, working_set_bytes=1e12)
        )
        assert b.llc_miss_rate > 0.9

    def test_miss_rate_monotone_in_working_set(self):
        rates = []
        for ws in (1e6, 1e7, 1e8, 1e9):
            b = self.model.analyze(
                seg(pattern=AccessPattern.RANDOM, bytes_read=1e8, working_set_bytes=ws)
            )
            rates.append(b.llc_miss_rate)
        assert rates == sorted(rates)

    @given(
        ws=st.floats(min_value=1e3, max_value=1e10),
        data=st.floats(min_value=1e3, max_value=1e10),
        pattern=st.sampled_from(list(AccessPattern)),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_hierarchy_consistency(self, ws, data, pattern):
        """Counts must nest: refs >= misses >= 0; dram traffic >= demand."""
        b = CacheModel(SPEC).analyze(
            seg(pattern=pattern, bytes_read=data, working_set_bytes=ws)
        )
        assert b.l1_misses >= b.llc_refs >= b.llc_misses >= 0
        assert b.dram_lines >= b.llc_misses - 1e-9
        assert 0.0 <= b.llc_miss_rate <= 1.0
