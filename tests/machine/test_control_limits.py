"""DVFS frequency ceilings and DDCM duty caps on the RAPL decision path."""

import math

import pytest

from repro.cloverleaf import step_profile
from repro.machine.rapl import MIN_DUTY
from repro.machine.simulator import Processor


@pytest.fixture(scope="module")
def profile():
    return step_profile(32**3, 40)


class TestDefaultsAreBitIdentical:
    def test_unconstrained_run_matches_historical_path(self, processor, profile):
        a = processor.run(profile, 80.0)
        b = processor.run(profile, 80.0, f_ceiling_ghz=None, duty_cap=1.0)
        assert a.time_s == b.time_s
        assert a.energy_j == b.energy_j
        assert [r.f_ghz for r in a.records] == [r.f_ghz for r in b.records]


class TestFrequencyCeiling:
    def test_ceiling_bounds_every_segment(self, processor, profile):
        ceiling = 2.0
        run = processor.run(profile, processor.spec.tdp_watts, f_ceiling_ghz=ceiling)
        assert all(r.f_ghz <= ceiling + 1e-6 for r in run.records)

    def test_ceiling_slows_and_saves_power(self, processor, profile):
        free = processor.run(profile, processor.spec.tdp_watts)
        pinned = processor.run(profile, processor.spec.tdp_watts, f_ceiling_ghz=1.5)
        assert pinned.time_s > free.time_s
        assert pinned.avg_power_w < free.avg_power_w

    def test_ceiling_at_turbo_changes_nothing(self, processor, profile):
        free = processor.run(profile, 90.0)
        ceiled = processor.run(
            profile, 90.0, f_ceiling_ghz=processor.spec.f_turbo
        )
        assert free.time_s == ceiled.time_s
        assert free.energy_j == ceiled.energy_j

    def test_ceiling_below_lowest_bin_rejected(self, processor, profile):
        with pytest.raises(ValueError, match="below the lowest"):
            processor.run(profile, 90.0, f_ceiling_ghz=processor.spec.f_min / 2.0)


class TestDutyCap:
    def test_duty_cap_bounds_every_segment(self, processor, profile):
        run = processor.run(profile, processor.spec.tdp_watts, duty_cap=0.5)
        assert all(r.duty <= 0.5 + 1e-12 for r in run.records)

    def test_duty_cap_matches_closed_form_time_scaling(self, processor, profile):
        full = processor.run(profile, processor.spec.tdp_watts)
        half = processor.run(profile, processor.spec.tdp_watts, duty_cap=0.5)
        # Same frequency decision, half the duty: the exec model's
        # time_at is exact, so check one segment pair closed-form.
        for a, b in zip(full.records, half.records):
            if math.isclose(a.f_ghz, b.f_ghz):
                assert b.time_s >= a.time_s

    def test_duty_cap_composes_with_throttling(self, processor, profile):
        # Under a deep cap the bisection may not exceed the duty cap.
        run = processor.run(profile, 41.0, duty_cap=0.25)
        assert all(MIN_DUTY - 1e-12 <= r.duty <= 0.25 + 1e-12 for r in run.records)

    def test_duty_cap_out_of_range_rejected(self, processor, profile):
        with pytest.raises(ValueError, match="duty_cap"):
            processor.run(profile, 90.0, duty_cap=0.05)
        with pytest.raises(ValueError, match="duty_cap"):
            processor.run(profile, 90.0, duty_cap=1.5)
