"""Execution-time and power models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import BROADWELL_E5_2695V4, ExecutionModel, PowerModel
from repro.workload import AccessPattern, InstructionMix, WorkSegment

SPEC = BROADWELL_E5_2695V4
EXEC = ExecutionModel(SPEC)
POWER = PowerModel(SPEC)


def compute_segment(scale=1.0):
    """FP-dense, cache-resident: the power-sensitive archetype."""
    return WorkSegment(
        name="compute",
        mix=InstructionMix(fp=2e9 * scale, simd=1e9 * scale, int_alu=5e8 * scale),
        bytes_read=1e6 * scale,
        working_set_bytes=1e6,
        pattern=AccessPattern.STREAMING,
    )


def memory_segment(scale=1.0):
    """Stall-heavy streaming: the power-opportunity archetype."""
    return WorkSegment(
        name="memory",
        mix=InstructionMix(int_alu=2e8 * scale, load=4e8 * scale, store=2e8 * scale),
        bytes_read=1e9 * scale,
        bytes_written=2e8 * scale,
        working_set_bytes=1e9,
        pattern=AccessPattern.STREAMING,
        extra_stall_cycles=3e9 * scale,
    )


class TestExecutionModel:
    def test_time_decreases_with_frequency(self):
        ev = EXEC.evaluate(compute_segment())
        times = [ev.time_at(float(f)) for f in SPEC.freq_bins]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_compute_segment_scales_inverse_frequency(self):
        ev = EXEC.evaluate(compute_segment())
        assert ev.time_at(1.3) == pytest.approx(2 * ev.time_at(2.6), rel=1e-3)

    def test_memory_time_is_frequency_floor(self):
        """A DRAM-bandwidth-bound segment barely slows at half frequency."""
        seg = WorkSegment(
            name="bw",
            mix=InstructionMix(load=1e6),
            bytes_read=6.5e9,
            working_set_bytes=6.5e9,
            pattern=AccessPattern.STREAMING,
            mlp=64.0,
        )
        ev = EXEC.evaluate(seg)
        assert ev.time_at(1.3) / ev.time_at(2.6) < 1.1

    def test_work_scales_linearly(self):
        t1 = EXEC.evaluate(compute_segment(1.0)).time_at(2.6)
        t2 = EXEC.evaluate(compute_segment(2.0)).time_at(2.6)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_parallel_efficiency_slows(self):
        fast = EXEC.evaluate(compute_segment())
        seg = WorkSegment(
            name="c",
            mix=compute_segment().mix,
            bytes_read=1e6,
            working_set_bytes=1e6,
            parallel_efficiency=0.45,
        )  # half the effective cores -> about twice the time
        slow = EXEC.evaluate(seg)
        assert slow.time_at(2.6) == pytest.approx(2 * fast.time_at(2.6), rel=0.05)

    def test_stall_cycles_lower_issue_fraction(self):
        ev = EXEC.evaluate(memory_segment())
        assert ev.issue_fraction < 0.5
        assert EXEC.evaluate(compute_segment()).issue_fraction > 0.9

    def test_llc_spill_marks_stalls_hot(self):
        small = WorkSegment(
            name="a", mix=InstructionMix(load=1e8), bytes_read=1e7,
            working_set_bytes=1e6, extra_stall_cycles=1e9,
        )
        big = WorkSegment(
            name="b", mix=InstructionMix(load=1e8), bytes_read=1e7,
            working_set_bytes=10 * SPEC.llc_bytes, extra_stall_cycles=1e9,
        )
        assert EXEC.evaluate(small).stall_hot_fraction == 0.0
        assert EXEC.evaluate(big).stall_hot_fraction > 0.5

    def test_duty_cycle_slows_core_part(self):
        ev = EXEC.evaluate(compute_segment())
        assert ev.time_at(2.6, duty=0.5) == pytest.approx(2 * ev.time_at(2.6), rel=1e-3)

    def test_invalid_args(self):
        ev = EXEC.evaluate(compute_segment())
        with pytest.raises(ValueError):
            ev.time_at(0.0)
        with pytest.raises(ValueError):
            ev.time_at(2.0, duty=0.0)
        with pytest.raises(ValueError):
            ev.time_at(2.0, duty=1.5)


class TestPowerModel:
    def test_compute_hotter_than_memory(self):
        pc = POWER.power(EXEC.evaluate(compute_segment()), 2.6)
        pm = POWER.power(EXEC.evaluate(memory_segment()), 2.6)
        assert pc > pm + 15.0

    def test_power_monotone_in_frequency(self):
        ev = EXEC.evaluate(compute_segment())
        p = [POWER.power(ev, float(f)) for f in SPEC.freq_bins]
        assert all(b > a for a, b in zip(p, p[1:]))

    def test_breakdown_sums_to_total(self):
        ev = EXEC.evaluate(compute_segment())
        bd = POWER.breakdown(ev, 2.0)
        assert bd.total == pytest.approx(bd.uncore + bd.traffic + bd.leakage + bd.dynamic)

    def test_compute_band_near_paper(self):
        """FP/SIMD-dense work draws in the 80-95 W band at turbo (the
        paper's power-sensitive pair sits ~85 W)."""
        p = POWER.power(EXEC.evaluate(compute_segment()), SPEC.f_turbo)
        assert 75.0 < p < 100.0

    def test_memory_band_near_paper(self):
        """Stall-heavy work draws in the ~45-65 W band at turbo (the
        paper: visualization draws as low as 55 W)."""
        p = POWER.power(EXEC.evaluate(memory_segment()), SPEC.f_turbo)
        assert 40.0 < p < 70.0

    def test_leakage_tracks_voltage(self):
        assert POWER.leakage(2.6) > POWER.leakage(1.0)

    def test_duty_reduces_power(self):
        ev = EXEC.evaluate(compute_segment())
        assert POWER.power(ev, 1.0, duty=0.3) < POWER.power(ev, 1.0)

    @given(f=st.floats(min_value=1.0, max_value=2.6))
    @settings(max_examples=25, deadline=None)
    def test_property_power_above_floor(self, f):
        ev = EXEC.evaluate(memory_segment())
        assert POWER.power(ev, f) > SPEC.p_uncore_idle
