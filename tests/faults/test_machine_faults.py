"""Machine-layer faults: cap jitter, excursions, sample dropout/noise."""

import math

import pytest

from repro.faults import FaultPlan, MachineFaultInjector, clear_machine_faults, inject_machine_faults
from repro.machine import (
    BROADWELL_E5_2695V4,
    ExecutionModel,
    Processor,
    RaplController,
)
from repro.workload import InstructionMix, WorkProfile, WorkSegment

SPEC = BROADWELL_E5_2695V4
EXEC = ExecutionModel(SPEC)


def hot_segment():
    return WorkSegment(
        name="hot",
        mix=InstructionMix(fp=2e9, simd=2e9),
        bytes_read=1e6,
        working_set_bytes=1e6,
    )


def hot_profile():
    return WorkProfile(name="hot", segments=(hot_segment(),))


class TestValidateCap:
    """Satellite fix: non-finite caps must be rejected, not clamped."""

    def test_nan_cap_rejected(self):
        rapl = RaplController(SPEC)
        with pytest.raises(ValueError, match="finite"):
            rapl.validate_cap(float("nan"))

    @pytest.mark.parametrize("cap", [float("inf"), float("-inf")])
    def test_infinite_cap_rejected(self, cap):
        with pytest.raises(ValueError, match="finite"):
            RaplController(SPEC).validate_cap(cap)

    def test_processor_run_rejects_nan_cap(self):
        with pytest.raises(ValueError, match="finite"):
            Processor().run(hot_profile(), float("nan"))

    def test_finite_caps_still_clamp(self):
        rapl = RaplController(SPEC)
        assert rapl.validate_cap(1e6) == SPEC.tdp_watts
        assert rapl.validate_cap(65.0) == 65.0


class TestInjectorDeterminism:
    def test_same_plan_same_fault_trace(self):
        plan = FaultPlan(seed=9, cap_jitter_w=2.0, cap_excursion_p=0.3)
        a, b = MachineFaultInjector(plan), MachineFaultInjector(plan)
        assert [a.cap_jitter_w() for _ in range(50)] == [b.cap_jitter_w() for _ in range(50)]
        assert [a.excursion() for _ in range(50)] == [b.excursion() for _ in range(50)]
        assert a.summary() == b.summary()

    def test_different_seed_different_trace(self):
        mk = lambda s: MachineFaultInjector(FaultPlan(seed=s, cap_jitter_w=2.0))
        assert [mk(1).cap_jitter_w() for _ in range(20)] != [mk(2).cap_jitter_w() for _ in range(20)]


class TestSampleFilter:
    def _sample(self):
        processor = Processor()
        run = processor.run_traced(hot_profile(), 80.0, sample_interval_s=0.1)
        assert run.samples
        return run.samples[0]

    def test_dropout_drops_and_counts(self):
        inj = MachineFaultInjector(FaultPlan(seed=9, sample_dropout_p=1.0))
        assert inj.filter_sample(self._sample()) is None
        assert inj.summary()["samples_dropped"] == 1

    def test_noise_perturbs_power_only(self):
        s = self._sample()
        inj = MachineFaultInjector(FaultPlan(seed=9, sample_noise_w=3.0))
        out = inj.filter_sample(s)
        assert out.power_w != s.power_w
        assert (out.t_s, out.dt_s, out.f_eff_ghz, out.instructions) == (
            s.t_s, s.dt_s, s.f_eff_ghz, s.instructions
        )

    def test_noop_plan_passes_sample_through(self):
        s = self._sample()
        inj = MachineFaultInjector(FaultPlan(seed=9))
        assert inj.filter_sample(s) is s


class TestRaplHooks:
    def test_excursion_grants_full_frequency(self):
        inj = MachineFaultInjector(FaultPlan(seed=9, cap_excursion_p=1.0))
        rapl = RaplController(SPEC, fault_hook=inj)
        op = rapl.operating_point(EXEC.evaluate(hot_segment()), 40.0)
        assert op.f_ghz == SPEC.f_turbo and op.duty == 1.0
        assert not op.cap_met  # hot work at full tilt cannot fit 40 W
        assert inj.excursions == 1

    def test_jitter_wobbles_enforcement(self):
        inj = MachineFaultInjector(FaultPlan(seed=9, cap_jitter_w=10.0))
        rapl = RaplController(SPEC, fault_hook=inj)
        ev = EXEC.evaluate(hot_segment())
        freqs = {rapl.operating_point(ev, 60.0).f_ghz for _ in range(50)}
        assert len(freqs) > 1  # the same programmed cap lands on different bins
        assert inj.decisions == 50

    def test_clean_controller_unaffected(self):
        ev = EXEC.evaluate(hot_segment())
        clean = RaplController(SPEC).operating_point(ev, 60.0)
        hooked = RaplController(
            SPEC, fault_hook=MachineFaultInjector(FaultPlan(seed=9))
        ).operating_point(ev, 60.0)
        assert hooked == clean  # a zeroed plan injects nothing


class TestProcessorWiring:
    def test_inject_and_clear(self):
        p = Processor()
        inj = inject_machine_faults(p, FaultPlan(seed=9, sample_dropout_p=0.5))
        assert p.fault_hook is inj and p.rapl.fault_hook is inj
        clear_machine_faults(p)
        assert p.fault_hook is None and p.rapl.fault_hook is None

    def test_traced_run_loses_samples_under_dropout(self):
        clean = Processor().run_traced(hot_profile(), 80.0, sample_interval_s=0.02)
        faulty = Processor()
        inj = inject_machine_faults(faulty, FaultPlan(seed=9, sample_dropout_p=0.6))
        run = faulty.run_traced(hot_profile(), 80.0, sample_interval_s=0.02)
        assert inj.samples_seen == len(clean.samples)
        assert len(run.samples) == inj.samples_seen - inj.samples_dropped
        assert inj.samples_dropped > 0
        assert math.isfinite(run.energy_j)

    def test_traced_run_with_noise_keeps_totals_sane(self):
        faulty = Processor()
        inj = inject_machine_faults(faulty, FaultPlan(seed=9, sample_noise_w=2.0))
        run = faulty.run_traced(hot_profile(), 80.0, sample_interval_s=0.02)
        assert inj.samples_noised == len(run.samples) > 0
