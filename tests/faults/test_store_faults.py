"""Store-layer damage: torn tails recover, corruption and mismatch refuse."""

import pytest

from repro.core import ResultStore, StoreMismatchError, StudyConfig, SweepEngine
from repro.faults import corrupt_header, flip_fingerprint, tear_tail

CFG = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))


@pytest.fixture()
def full_store(tmp_path):
    path = tmp_path / "s.jsonl"
    result = SweepEngine(n_cycles=2, workers=0, store=path).run(CFG)
    return path, result


class TestTearTail:
    def test_reload_drops_only_the_torn_point(self, full_store):
        path, result = full_store
        torn = tear_tail(path)
        assert torn > 0
        store = ResultStore(path)
        assert len(store) == len(result.points) - 1
        assert store.completed_keys() == {p.key for p in result.points[:-1]}

    def test_resume_completes_bitwise_identical(self, full_store):
        path, result = full_store
        tear_tail(path)
        engine = SweepEngine(n_cycles=2, workers=0, store=path)
        resumed = engine.run(CFG)
        assert engine.stats.points_resumed == len(result.points) - 1
        assert [p.to_dict() for p in resumed.points] == [p.to_dict() for p in result.points]

    def test_append_after_recovery_is_clean(self, full_store):
        path, result = full_store
        tear_tail(path)
        store = ResultStore(path)
        store.append(result.points[-1])
        reloaded = ResultStore(path)
        assert reloaded.completed_keys() == {p.key for p in result.points}

    def test_header_only_store_untouched(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        store = ResultStore(path)
        store.ensure_compatible("abc", {})
        before = path.read_bytes()
        assert tear_tail(path) == 0
        assert path.read_bytes() == before


class TestHeaderDamage:
    def test_corrupt_header_refused(self, full_store):
        path, _ = full_store
        corrupt_header(path)
        with pytest.raises(ValueError):
            ResultStore(path)

    def test_flipped_fingerprint_refuses_resume(self, full_store):
        path, _ = full_store
        flip_fingerprint(path)
        with pytest.raises(StoreMismatchError, match="refusing to mix"):
            SweepEngine(n_cycles=2, workers=0, store=path).run(CFG)

    def test_corrupt_middle_record_is_fatal(self, full_store):
        """Only a *final* partial line is recoverable; garbage mid-file is not."""
        path, _ = full_store
        lines = path.read_text().splitlines()
        lines[3] = lines[3][: len(lines[3]) // 2]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt record"):
            ResultStore(path)
