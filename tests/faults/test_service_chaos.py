"""Service-layer chaos: injector decisions, WAL tearing, the full drill."""

import json

import pytest

from repro.core import StudyConfig
from repro.faults import (
    SERVICE_PLANS,
    ServiceChaosReport,
    ServiceFaultInjector,
    get_service_plan,
    run_service_chaos,
    tear_wal_tail,
)
from repro.faults.plan import InjectedFault
from repro.serve import WriteAheadLog

pytestmark = pytest.mark.timeout(600)

CFG = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))


class TestServiceFaultInjector:
    def test_plans_registry(self):
        assert set(SERVICE_PLANS) >= {"none", "default", "crashy", "torn"}
        assert SERVICE_PLANS["none"].job_crash_p == 0.0
        assert SERVICE_PLANS["default"].torn_wal

    def test_get_service_plan_returns_fresh_counters(self):
        a = get_service_plan("default")
        a.crashes_injected = 5
        b = get_service_plan("default")
        assert b.crashes_injected == 0

    def test_unknown_plan_lists_names(self):
        with pytest.raises(ValueError, match="crashy"):
            get_service_plan("nope")

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="probability"):
            ServiceFaultInjector(job_crash_p=1.5)

    def test_crash_budget_is_respected(self):
        inj = ServiceFaultInjector(job_crash_p=1.0, max_crashes=2, crash_after_groups=1)
        for attempt in range(5):
            events = []
            progress = inj.wrap_progress("job-x", attempt, events.append)
            try:
                progress({"kind": "profile-done"})
            except InjectedFault:
                pass
        assert inj.crashes_injected == 2  # budget, not 5

    def test_wrapped_progress_forwards_events_before_crashing(self):
        inj = ServiceFaultInjector(job_crash_p=1.0, max_crashes=1, crash_after_groups=2)
        events = []
        progress = inj.wrap_progress("job-x", 0, events.append)
        progress({"kind": "profile-done"})  # 1 of 2: no crash yet
        with pytest.raises(InjectedFault) as err:
            progress({"kind": "profile-done"})
        assert err.value.injected  # marked so the supervisor can count it
        assert len(events) == 2  # the inner progress saw everything

    def test_stall_budget(self):
        inj = ServiceFaultInjector(heartbeat_stall_p=1.0, max_stalls=1)
        fired = [inj.stall_heartbeat(f"job-{i}", "w0") for i in range(4)]
        assert sum(fired) == 1

    def test_duplicate_fires_once_per_job(self):
        inj = ServiceFaultInjector(duplicate_delivery_p=1.0)
        assert inj.duplicate_claim("job-x")
        assert not inj.duplicate_claim("job-x")
        assert inj.duplicates_injected == 1

    def test_decisions_are_seeded(self):
        a = ServiceFaultInjector(duplicate_delivery_p=0.5, seed=1)
        b = ServiceFaultInjector(duplicate_delivery_p=0.5, seed=1)
        jobs = [f"job-{i}" for i in range(32)]
        assert [a.duplicate_claim(j) for j in jobs] == [b.duplicate_claim(j) for j in jobs]


class TestTearWalTail:
    def test_tears_only_the_last_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"kind": "submit", "job_id": "job-1", "spec": {}, "t": 1.0})
        wal.append({"kind": "submit", "job_id": "job-2", "spec": {}, "t": 2.0})
        removed = tear_wal_tail(tmp_path / "wal.jsonl")
        assert removed > 0
        survivors = [r["job_id"] for r in WriteAheadLog(tmp_path / "wal.jsonl").replay()]
        assert survivors == ["job-1"]  # job-2's record is the torn tail


class TestChaosReport:
    def test_survived_requires_every_clause(self):
        good = ServiceChaosReport(
            plan="p", config="c", n_jobs=2, completed=2, failed=0, lost=0
        )
        assert good.survived
        for broken in (
            dict(completed=1),
            dict(failed=1),
            dict(lost=1),
            dict(bitwise_identical=False),
            dict(replay_consistent=False),
        ):
            fields = {"completed": 2, "failed": 0, "lost": 0, **broken}
            report = ServiceChaosReport(plan="p", config="c", n_jobs=2, **fields)
            assert not report.survived, broken

    def test_render_names_the_contract(self):
        text = ServiceChaosReport(
            plan="default", config="phase1", n_jobs=2, completed=2
        ).render()
        assert "2/2 completed" in text
        assert "bitwise identical" in text
        assert "replay converges" in text


class TestRunServiceChaos:
    def test_default_plan_survives(self, tmp_path):
        report = run_service_chaos(
            CFG, "default", spool=tmp_path / "spool", n_jobs=2, n_cycles=2
        )
        assert report.survived, report.render()
        # The drill must actually have hurt: crashes and duplicates fired,
        # the WAL was torn, and the queue recovered from all of it.
        assert report.crashes_injected >= 1
        assert report.torn_bytes > 0
        assert report.completed == 2 and report.lost == 0

    def test_none_plan_is_a_clean_run(self, tmp_path):
        report = run_service_chaos(
            CFG, "none", spool=tmp_path / "spool", n_jobs=1, n_cycles=2
        )
        assert report.survived
        assert report.crashes_injected == 0
        assert report.stalls_injected == 0
        assert report.torn_bytes == 0

    def test_chaos_seed_override_still_survives(self, tmp_path):
        # Counts are timing-dependent (a duplicate only fires while the
        # dispatcher observes the job running), so assert the contract,
        # not the exact schedule, under re-seeded plans.
        for seed in (1, 2):
            report = run_service_chaos(
                CFG, "crashy", spool=tmp_path / f"s{seed}",
                n_jobs=1, n_cycles=2, chaos_seed=seed,
            )
            assert report.survived, report.render()
