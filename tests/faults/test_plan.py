"""Fault plans: deterministic decisions, bounded engine faults, corruption."""

import pickle
import time

import pytest

from repro.core import StudyConfig, SweepEngine
from repro.core.engine import ProfileJob, execute_profile_job
from repro.faults import PLANS, FaultPlan, InjectedFault, get_plan

JOB = ProfileJob("threshold", 12, "blobs", 7)


def _ok(job):
    return {"ok": 1.0}


class TestDecisions:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=3)
        for key in ("a", "b", "c#0", "c#1"):
            first = plan.decide("site", key, 0.5)
            assert all(plan.decide("site", key, 0.5) == first for _ in range(5))

    def test_decide_edge_probabilities(self):
        plan = FaultPlan(seed=3)
        keys = [f"k{i}" for i in range(200)]
        assert not any(plan.decide("s", k, 0.0) for k in keys)
        assert all(plan.decide("s", k, 1.0) for k in keys)

    def test_decide_frequency_tracks_probability(self):
        plan = FaultPlan(seed=3)
        hits = sum(plan.decide("s", f"k{i}", 0.3) for i in range(2000))
        assert 0.2 < hits / 2000 < 0.4

    def test_gauss_deterministic_and_centered(self):
        plan = FaultPlan(seed=3)
        draws = [plan.gauss("s", f"k{i}", 2.0) for i in range(2000)]
        assert draws == [plan.gauss("s", f"k{i}", 2.0) for i in range(2000)]
        assert abs(sum(draws) / len(draws)) < 0.2
        assert plan.gauss("s", "k", 0.0) == 0.0

    def test_with_seed_changes_the_schedule(self):
        a, b = FaultPlan(seed=1), FaultPlan(seed=1).with_seed(2)
        keys = [f"k{i}" for i in range(100)]
        assert [a.decide("s", k, 0.5) for k in keys] != [b.decide("s", k, 0.5) for k in keys]

    def test_invalid_probabilities_rejected(self):
        for f in ("worker_crash_p", "sample_dropout_p", "point_corrupt_p"):
            with pytest.raises(ValueError, match="probability"):
                FaultPlan(**{f: 1.5})
            with pytest.raises(ValueError, match="probability"):
                FaultPlan(**{f: -0.1})
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(max_faults_per_job=-1)

    def test_get_plan(self):
        assert get_plan("default") is PLANS["default"]
        with pytest.raises(ValueError, match="unknown fault plan"):
            get_plan("nope")


class TestWrapJob:
    def test_crash_bounded_by_max_faults_per_job(self):
        plan = FaultPlan(seed=5, worker_crash_p=1.0, max_faults_per_job=2)
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                plan.wrap_job(_ok, attempt)(JOB)
        assert plan.wrap_job(_ok, 2)(JOB) == {"ok": 1.0}

    def test_hang_stalls_then_completes(self):
        plan = FaultPlan(seed=5, worker_hang_p=1.0, hang_s=0.05)
        t0 = time.perf_counter()
        assert plan.wrap_job(_ok, 0)(JOB) == {"ok": 1.0}
        assert time.perf_counter() - t0 >= 0.04

    def test_noop_plan_passes_through(self):
        assert FaultPlan().wrap_job(_ok, 0)(JOB) == {"ok": 1.0}

    def test_wrapped_job_is_picklable(self):
        plan = FaultPlan(seed=5, worker_crash_p=1.0)
        wrapped = plan.wrap_job(execute_profile_job, 0)
        clone = pickle.loads(pickle.dumps(wrapped))
        with pytest.raises(InjectedFault):
            clone(JOB)


class TestCorruptPoint:
    @pytest.fixture(scope="class")
    def points(self):
        cfg = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))
        return SweepEngine(n_cycles=1, workers=0).run(cfg).points

    def test_zero_probability_returns_point_unchanged(self, points):
        plan = FaultPlan(seed=5)
        assert all(plan.corrupt_point(p) is p for p in points)

    def test_corruption_is_deterministic(self, points):
        plan = FaultPlan(seed=5, point_corrupt_p=1.0)
        a = [plan.corrupt_point(p).to_jsonl() for p in points]
        b = [plan.corrupt_point(p).to_jsonl() for p in points]
        assert a == b

    def test_corruption_changes_a_checked_field(self, points):
        plan = FaultPlan(seed=5, point_corrupt_p=1.0)
        for p in points:
            c = plan.corrupt_point(p)
            assert c.key == p.key  # coordinates survive; values don't
            assert c.to_jsonl() != p.to_jsonl()
