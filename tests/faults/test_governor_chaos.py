"""Signal-feed chaos drills for governed power policies."""

import pytest

from repro.faults import (
    GOVERNOR_PLANS,
    GovernorFaultPlan,
    get_governor_plan,
    run_governor_chaos,
)
from repro.insitu.governors import CONTROL_METHODS


class TestPlans:
    def test_named_plans_resolve(self):
        assert set(GOVERNOR_PLANS) == {"none", "default", "blackout"}
        assert get_governor_plan("default").signal_dropout_p > 0
        with pytest.raises(ValueError, match="unknown governor fault plan"):
            get_governor_plan("nope")

    def test_dropout_indices_deterministic_and_seeded(self):
        plan = get_governor_plan("default")
        assert plan.dropout_indices(40) == plan.dropout_indices(40)
        reseeded = GovernorFaultPlan(
            name="x", seed=99, signal_dropout_p=plan.signal_dropout_p
        )
        assert plan.dropout_indices(40) != reseeded.dropout_indices(40)
        assert 0 not in plan.dropout_indices(40)  # first sample always kept
        assert GovernorFaultPlan(name="z").dropout_indices(40) == []

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            GovernorFaultPlan(name="bad", signal_dropout_p=1.5)
        with pytest.raises(ValueError):
            GovernorFaultPlan(name="bad", truncate_frac=0.0)


class TestDrillsSurvive:
    @pytest.mark.parametrize("control", sorted(CONTROL_METHODS))
    def test_default_plan_survives_every_control(self, control):
        report = run_governor_chaos(
            get_governor_plan("default"), control=control, n_epochs=6, n_steps=30
        )
        assert report.survived, report.render()
        assert report.bitwise_identical
        assert set(report.violations) == {
            "reference",
            "signal-dropout",
            "step-discontinuity",
            "trace-truncation",
        }
        assert all(n == 0 for n in report.violations.values())

    def test_blackout_plan_survives(self):
        report = run_governor_chaos(
            get_governor_plan("blackout"), n_epochs=6, n_steps=30
        )
        assert report.survived, report.render()
        # Blackout really does degrade the feed, not just nominally.
        assert report.samples_dropped > report.samples_total // 2
        assert report.truncated_to < report.samples_total // 4

    def test_governor_spec_and_linear_policy(self):
        report = run_governor_chaos(
            get_governor_plan("default"),
            governor="linear:50:250:0.4",
            n_epochs=5,
            n_steps=30,
        )
        assert report.survived, report.render()
        assert report.governor.startswith("linear:")

    def test_render_is_greppable(self):
        report = run_governor_chaos(get_governor_plan("none"), n_epochs=4, n_steps=30)
        text = report.render()
        assert "governor invariants intact under chaos: yes" in text
        assert "clean replay bitwise identical: yes" in text

    def test_broken_contract_reports_no(self):
        report = run_governor_chaos(get_governor_plan("none"), n_epochs=4, n_steps=30)
        report.violations["signal-dropout"] = 2
        assert not report.survived
        assert "governor invariants intact under chaos: NO" in report.render()
