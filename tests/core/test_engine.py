"""Sweep engine: parallel == serial bitwise, resume, retry, fallback."""

import pytest

from repro.core import (
    ProfileJob,
    ResultStore,
    StoreMismatchError,
    StudyConfig,
    StudyRunner,
    SweepEngine,
    SweepError,
)
from repro.core.engine import execute_profile_job

CFG = StudyConfig(name="t", algorithms=("threshold", "clip"), sizes=(12,))


def _assert_identical(a, b):
    assert len(a.points) == len(b.points)
    for pa, pb in zip(a.points, b.points):
        assert pa.to_dict() == pb.to_dict()  # bitwise: dict holds raw floats


class _CountingJob:
    """Picklable-free counting wrapper (serial mode only)."""

    def __init__(self):
        self.calls = []

    def __call__(self, job):
        self.calls.append((job.algorithm, job.size))
        return execute_profile_job(job)


class _FlakyJob:
    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self, job):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("injected transient failure")
        return execute_profile_job(job)


class TestSerialEquivalence:
    def test_serial_engine_matches_runner_bitwise(self):
        serial = StudyRunner(n_cycles=2).run_config(CFG)
        engine = SweepEngine(n_cycles=2, workers=0)
        _assert_identical(serial, engine.run(CFG))

    def test_parallel_engine_matches_runner_bitwise(self):
        serial = StudyRunner(n_cycles=2).run_config(CFG)
        engine = SweepEngine(n_cycles=2, workers=2)
        _assert_identical(serial, engine.run(CFG))
        assert engine.stats.profile_jobs_run == 2
        assert not engine.stats.fell_back_serial


class TestResume:
    def test_resume_from_partial_store(self, tmp_path):
        """A store holding a strict subset of points completes the rest."""
        store_path = tmp_path / "s.jsonl"
        full = SweepEngine(n_cycles=2, workers=0, store=store_path).run(CFG)

        # Rebuild a store containing only the first 5 points (a sweep
        # killed mid-run), then resume.
        partial_path = tmp_path / "partial.jsonl"
        partial = ResultStore(partial_path)
        full_store = ResultStore(store_path)
        partial.ensure_compatible(full_store.fingerprint, full_store.meta)
        for p in full.points[:5]:
            partial.append(p)

        engine = SweepEngine(n_cycles=2, workers=0, store=ResultStore(partial_path))
        resumed = engine.run(CFG)
        _assert_identical(full, resumed)
        assert engine.stats.points_resumed == 5
        assert engine.stats.points_computed == len(full.points) - 5

    def test_resume_skips_completed_profile_jobs(self, tmp_path):
        """Only (algorithm, size) groups with missing points re-execute."""
        store_path = tmp_path / "s.jsonl"
        one = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))
        counter1 = _CountingJob()
        SweepEngine(n_cycles=2, workers=0, store=store_path, profile_fn=counter1).run(one)
        assert counter1.calls == [("threshold", 12)]

        # Extend the sweep: same store, an extra algorithm.
        counter2 = _CountingJob()
        engine = SweepEngine(n_cycles=2, workers=0, store=store_path, profile_fn=counter2)
        extended = engine.run(CFG)
        assert counter2.calls == [("clip", 12)]  # threshold group not re-run
        assert engine.stats.groups_skipped == 1
        _assert_identical(StudyRunner(n_cycles=2).run_config(CFG), extended)

    def test_interrupted_sweep_resumes_only_missing(self, tmp_path):
        """Kill mid-sweep (job 2 explodes), rerun, count executed jobs."""
        store_path = tmp_path / "s.jsonl"

        class _DiesOnSecond(_CountingJob):
            def __call__(self, job):
                if len(self.calls) >= 1:
                    raise KeyboardInterrupt("killed mid-sweep")
                return super().__call__(job)

        with pytest.raises(KeyboardInterrupt):
            SweepEngine(
                n_cycles=2, workers=0, store=store_path, profile_fn=_DiesOnSecond()
            ).run(CFG)
        assert 0 < len(ResultStore(store_path)) < CFG.n_configurations

        counter = _CountingJob()
        engine = SweepEngine(n_cycles=2, workers=0, store=store_path, profile_fn=counter)
        resumed = engine.run(CFG)
        assert counter.calls == [("clip", 12)]  # only the missing group
        _assert_identical(StudyRunner(n_cycles=2).run_config(CFG), resumed)

    def test_no_resume_wipes_store(self, tmp_path):
        store_path = tmp_path / "s.jsonl"
        SweepEngine(n_cycles=2, workers=0, store=store_path).run(CFG)
        engine = SweepEngine(n_cycles=2, workers=0, store=store_path)
        engine.run(CFG, resume=False)
        assert engine.stats.points_resumed == 0
        assert engine.stats.points_computed == CFG.n_configurations

    def test_fingerprint_mismatch_refuses_to_mix(self, tmp_path):
        store_path = tmp_path / "s.jsonl"
        SweepEngine(n_cycles=2, workers=0, store=store_path).run(CFG)
        with pytest.raises(StoreMismatchError, match="refusing to mix"):
            SweepEngine(n_cycles=3, workers=0, store=store_path).run(CFG)
        with pytest.raises(StoreMismatchError):
            SweepEngine(n_cycles=2, seed=8, workers=0, store=store_path).run(CFG)


class TestFailureHandling:
    def test_retry_then_succeed(self):
        flaky = _FlakyJob(failures=2)
        engine = SweepEngine(
            n_cycles=2, workers=0, max_retries=2, backoff_s=0.001, profile_fn=flaky
        )
        one = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))
        result = engine.run(one)
        assert len(result.points) == 9
        assert engine.stats.retries == 2
        _assert_identical(StudyRunner(n_cycles=2).run_config(one), result)

    def test_retry_budget_exhausted_raises(self):
        flaky = _FlakyJob(failures=10)
        engine = SweepEngine(
            n_cycles=2, workers=0, max_retries=1, backoff_s=0.001, profile_fn=flaky
        )
        with pytest.raises(SweepError, match="after 2 attempts"):
            engine.run(StudyConfig(name="t", algorithms=("threshold",), sizes=(12,)))

    def test_pool_failure_falls_back_to_serial(self):
        """An unpicklable job body breaks the pool; the sweep still finishes."""
        engine = SweepEngine(
            n_cycles=2, workers=2, profile_fn=lambda job: execute_profile_job(job)
        )
        result = engine.run(CFG)
        assert engine.stats.fell_back_serial
        _assert_identical(StudyRunner(n_cycles=2).run_config(CFG), result)


class TestProgressAndStats:
    def test_progress_events_emitted(self):
        events = []
        engine = SweepEngine(n_cycles=1, workers=0, progress=events.append)
        engine.run(CFG)
        kinds = [e["kind"] for e in events]
        assert kinds.count("profile-done") == 2
        assert kinds[-1] == "summary"
        summary = events[-1]
        assert summary["points"] == CFG.n_configurations
        assert summary["wall_s"] > 0
        assert summary["throughput_pts_s"] > 0

    def test_ledger_cache_short_circuits_jobs(self, tmp_path):
        cache_path = tmp_path / "c.json"
        from repro.core import ProfileCache

        e1 = SweepEngine(n_cycles=2, workers=0, profile_cache=ProfileCache(cache_path))
        e1.run(CFG)
        assert e1.stats.profile_jobs_run == 2
        e2 = SweepEngine(n_cycles=2, workers=0, profile_cache=ProfileCache(cache_path))
        _assert_identical(e1.run(CFG), e2.run(CFG))
        assert e2.stats.profile_jobs_run == 0
        assert e2.stats.profile_jobs_cached == 2

    def test_profile_job_is_picklable(self):
        import pickle

        job = ProfileJob("threshold", 12, "blobs", 7)
        assert pickle.loads(pickle.dumps(job)) == job
