"""Counter-based class prediction (the §VIII extension)."""

import pytest

from repro.core import (
    PowerClass,
    StudyConfig,
    StudyRunner,
    classify_result,
    predict_class,
    predicted_cap,
)
from repro.core.study import ALGORITHM_NAMES

SIZE = 32


@pytest.fixture(scope="module")
def sweep_and_runs():
    runner = StudyRunner()
    cfg = StudyConfig(name="pred", algorithms=ALGORITHM_NAMES, sizes=(SIZE,))
    result = runner.run_config(cfg)
    tdp_runs = {
        alg: runner.processor.run(runner.profile_for(alg, SIZE), 120.0)
        for alg in ALGORITHM_NAMES
    }
    return result, tdp_runs


class TestPredictClass:
    def test_matches_sweep_ground_truth(self, sweep_and_runs):
        """One-run prediction must agree with the 9-cap sweep for every
        study algorithm."""
        result, tdp_runs = sweep_and_runs
        truth = classify_result(result, size=SIZE)
        for alg, run in tdp_runs.items():
            pred = predict_class(run)
            assert pred.power_class is truth[alg].power_class, alg

    def test_confidence_in_range(self, sweep_and_runs):
        _, tdp_runs = sweep_and_runs
        for run in tdp_runs.values():
            p = predict_class(run)
            assert 0.5 <= p.confidence <= 1.0

    def test_sensitive_pair_high_signals(self, sweep_and_runs):
        _, tdp_runs = sweep_and_runs
        for alg in ("advection", "volume"):
            p = predict_class(tdp_runs[alg])
            assert p.power_class is PowerClass.SENSITIVE
            assert p.draw_fraction > 0.6
            assert p.ipc > 1.6

    def test_knees_are_tunable(self, sweep_and_runs):
        """Absurd knees flip the prediction (the knobs are live)."""
        _, tdp_runs = sweep_and_runs
        p = predict_class(tdp_runs["threshold"], draw_knee=0.01, ipc_knee=0.01)
        assert p.power_class is PowerClass.SENSITIVE


class TestPredictedCap:
    def test_within_rapl_range(self, sweep_and_runs):
        _, tdp_runs = sweep_and_runs
        for run in tdp_runs.values():
            cap = predicted_cap(run)
            assert 40.0 <= cap <= 120.0

    def test_prediction_is_safe(self, sweep_and_runs):
        """Running at the predicted cap must keep the slowdown within
        ~the tolerance for every algorithm (checked against the real
        sweep, with one 10 W bin of slack)."""
        result, tdp_runs = sweep_and_runs
        runner = StudyRunner()
        for alg, run in tdp_runs.items():
            cap = predicted_cap(run, tolerance=0.10)
            pts = result.select(algorithm=alg, size=SIZE)
            base = max(pts, key=lambda p: p.cap_w)
            at_or_above = [p for p in pts if p.cap_w >= cap - 1e-9]
            worst = max(p.tratio for p in at_or_above)
            assert worst <= 1.18, f"{alg}: cap {cap} -> tratio {worst}"

    def test_hungrier_algorithms_get_higher_caps(self, sweep_and_runs):
        _, tdp_runs = sweep_and_runs
        assert predicted_cap(tdp_runs["advection"]) > predicted_cap(tdp_runs["threshold"])
