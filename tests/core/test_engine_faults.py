"""Engine under injected faults: retry, timeout, fallback, quarantine, ^C."""

import pytest

from repro.core import ResultStore, StudyConfig, StudyRunner, SweepEngine, SweepError
from repro.core.engine import execute_profile_job
from repro.faults import FaultPlan

CFG = StudyConfig(name="t", algorithms=("threshold", "clip"), sizes=(12,))
ONE = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))


def _assert_identical(a, b):
    assert len(a.points) == len(b.points)
    for pa, pb in zip(a.points, b.points):
        assert pa.to_dict() == pb.to_dict()


class _InterruptsOnClip:
    """Picklable job body: raises KeyboardInterrupt inside the clip worker."""

    def __call__(self, job):
        if job.algorithm == "clip":
            raise KeyboardInterrupt("user hit ^C")
        return execute_profile_job(job)


class TestInjectedCrashes:
    def test_serial_crash_retried_to_completion(self):
        plan = FaultPlan(seed=5, worker_crash_p=1.0, max_faults_per_job=1)
        engine = SweepEngine(
            n_cycles=2, workers=0, max_retries=2, backoff_s=0.001, faults=plan
        )
        result = engine.run(ONE)
        assert engine.stats.faults_injected == 1
        assert engine.stats.retries == 1
        _assert_identical(StudyRunner(n_cycles=2).run_config(ONE), result)

    def test_pool_crash_retried_to_completion(self):
        plan = FaultPlan(seed=5, worker_crash_p=1.0, max_faults_per_job=1)
        engine = SweepEngine(
            n_cycles=2, workers=2, max_retries=2, backoff_s=0.001, faults=plan
        )
        result = engine.run(CFG)
        assert engine.stats.faults_injected == 2  # one per profile job
        assert not engine.stats.fell_back_serial
        _assert_identical(StudyRunner(n_cycles=2).run_config(CFG), result)

    def test_crash_budget_deeper_than_retries_aborts(self):
        plan = FaultPlan(seed=5, worker_crash_p=1.0, max_faults_per_job=5)
        engine = SweepEngine(
            n_cycles=2, workers=0, max_retries=2, backoff_s=0.001, faults=plan
        )
        with pytest.raises(SweepError, match="injected worker crash"):
            engine.run(ONE)
        assert engine.stats.faults_injected == 3  # initial try + 2 retries


class TestInjectedHangs:
    def test_hang_trips_timeout_then_retry_completes(self):
        # Seed 0 hangs exactly one of the two jobs (clip@12, attempt 0),
        # so its timed-out retry runs on the other, idle worker.
        plan = FaultPlan(seed=0, worker_hang_p=0.5, hang_s=0.6, max_faults_per_job=1)
        assert plan.decide("worker-hang", "clip@12#0", plan.worker_hang_p)
        assert not plan.decide("worker-hang", "threshold@12#0", plan.worker_hang_p)
        engine = SweepEngine(
            n_cycles=2,
            workers=2,
            timeout_s=0.2,
            max_retries=2,
            backoff_s=0.001,
            faults=plan,
        )
        result = engine.run(CFG)
        assert engine.stats.retries >= 1  # at least one job timed out
        _assert_identical(StudyRunner(n_cycles=2).run_config(CFG), result)


class TestSerialFallback:
    def test_broken_pool_with_faults_still_completes_identically(self):
        """An unpicklable job body breaks the pool even before any fault
        fires; the serial fallback then absorbs the injected crashes too."""
        plan = FaultPlan(seed=5, worker_crash_p=1.0, max_faults_per_job=1)
        engine = SweepEngine(
            n_cycles=2,
            workers=2,
            max_retries=2,
            backoff_s=0.001,
            faults=plan,
            profile_fn=lambda job: execute_profile_job(job),
        )
        result = engine.run(CFG)
        assert engine.stats.fell_back_serial
        assert engine.stats.faults_injected >= 1
        parallel = SweepEngine(n_cycles=2, workers=2).run(CFG)
        _assert_identical(parallel, result)


class TestQuarantineGate:
    def test_corrupted_points_quarantined_not_stored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        plan = FaultPlan(seed=41, point_corrupt_p=0.4)
        events = []
        engine = SweepEngine(
            n_cycles=2, workers=0, store=path, faults=plan, progress=events.append
        )
        result = engine.run(ONE)
        assert engine.stats.points_quarantined > 0

        store = ResultStore(path)
        quarantined = store.quarantined()
        assert len(quarantined) == engine.stats.points_quarantined
        qkeys = {p.key for p, _ in quarantined}
        # Quarantined cells are absent from both the store and the result.
        assert not qkeys & store.completed_keys()
        assert not qkeys & {p.key for p in result.points}
        assert all(reasons for _, reasons in quarantined)
        # Survivors are bitwise identical to a fault-free sweep.
        clean = {p.key: p.to_dict() for p in StudyRunner(n_cycles=2).run_config(ONE).points}
        assert all(p.to_dict() == clean[p.key] for p in result.points)
        kinds = [e["kind"] for e in events]
        assert kinds.count("point-quarantined") == engine.stats.points_quarantined

    def test_validation_can_be_disabled(self):
        plan = FaultPlan(seed=41, point_corrupt_p=0.4)
        engine = SweepEngine(n_cycles=2, workers=0, faults=plan, validate=False)
        result = engine.run(ONE)
        assert engine.stats.points_quarantined == 0
        assert len(result.points) == ONE.n_configurations  # corruption flows through


class TestKeyboardInterrupt:
    def test_pool_interrupt_syncs_store_and_resumes_exactly(self, tmp_path):
        """Satellite: ^C mid-pool-sweep cancels in-flight work, leaves a
        valid store, and a plain --resume completes bitwise identically."""
        path = tmp_path / "s.jsonl"
        events = []
        engine = SweepEngine(
            n_cycles=2,
            workers=2,
            store=path,
            profile_fn=_InterruptsOnClip(),
            progress=events.append,
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(CFG)
        assert engine.stats.interrupted
        assert any(e["kind"] == "interrupted" for e in events)

        # The store is valid and holds only complete points (0, 9, or 18
        # depending on how the race between the two workers resolved).
        saved = ResultStore(path)
        assert len(saved) % len(CFG.caps_w) == 0

        resume = SweepEngine(n_cycles=2, workers=0, store=path)
        resumed = resume.run(CFG)
        assert resume.stats.points_resumed == len(saved)
        assert not resume.stats.interrupted
        _assert_identical(StudyRunner(n_cycles=2).run_config(CFG), resumed)

    def test_serial_interrupt_marks_stats_and_syncs(self, tmp_path):
        path = tmp_path / "s.jsonl"
        engine = SweepEngine(
            n_cycles=2, workers=0, store=path, profile_fn=_InterruptsOnClip()
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(CFG)
        assert engine.stats.interrupted
        assert len(ResultStore(path)) == len(CFG.caps_w)  # threshold group landed
