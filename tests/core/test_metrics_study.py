"""Study metrics and configuration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALGORITHM_NAMES,
    DATASET_SIZES,
    POWER_CAPS_W,
    Ratios,
    StudyConfig,
    element_rate,
    first_slowdown_cap,
    phase1_config,
    phase2_config,
    phase3_config,
)


class TestRatios:
    def test_orientation_matches_paper(self):
        """Paper §V: Pratio and Fratio put the default on top; Tratio is
        reversed, so all exceed 1 as the cap tightens."""
        r = Ratios.from_measurements(
            cap_default_w=120,
            cap_w=40,
            time_default_s=10.0,
            time_s=12.0,
            freq_default_ghz=2.6,
            freq_ghz=2.0,
        )
        assert r.pratio == pytest.approx(3.0)
        assert r.tratio == pytest.approx(1.2)
        assert r.fratio == pytest.approx(1.3)

    def test_good_tradeoff(self):
        r = Ratios(pratio=3.0, tratio=1.2, fratio=1.3)
        assert r.is_good_tradeoff
        r2 = Ratios(pratio=1.1, tratio=1.5, fratio=1.5)
        assert not r2.is_good_tradeoff

    def test_slowdown_threshold(self):
        assert Ratios(2.0, 1.10, 1.1).slowed_down
        assert not Ratios(2.0, 1.09, 1.1).slowed_down

    def test_validation(self):
        with pytest.raises(ValueError):
            Ratios.from_measurements(
                cap_default_w=120, cap_w=0, time_default_s=1, time_s=1,
                freq_default_ghz=2.6, freq_ghz=2.6,
            )


class TestMetrics:
    def test_element_rate(self):
        assert element_rate(128**3, 2.0) == pytest.approx(128**3 / 2.0)
        with pytest.raises(ValueError):
            element_rate(100, 0.0)

    def test_first_slowdown_cap_highest_slowed(self):
        rows = [(120, 1.0), (80, 1.0), (60, 1.12), (40, 1.5)]
        assert first_slowdown_cap(rows) == 60

    def test_first_slowdown_none(self):
        assert first_slowdown_cap([(120, 1.0), (40, 1.05)]) is None

    def test_first_slowdown_custom_threshold(self):
        rows = [(80, 1.06), (40, 1.2)]
        assert first_slowdown_cap(rows, threshold=0.05) == 80

    @given(
        tratios=st.lists(st.floats(min_value=0.9, max_value=3.0), min_size=1, max_size=9)
    )
    @settings(max_examples=40, deadline=None)
    def test_property_result_is_slowed_cap(self, tratios):
        rows = list(zip(range(120, 120 - 10 * len(tratios), -10), tratios))
        cap = first_slowdown_cap(rows)
        if cap is None:
            assert all(t < 1.1 for _, t in rows)
        else:
            assert dict(rows)[cap] >= 1.1


class TestStudyConfig:
    def test_paper_factors(self):
        assert len(POWER_CAPS_W) == 9
        assert POWER_CAPS_W[0] == 120.0 and POWER_CAPS_W[-1] == 40.0
        assert DATASET_SIZES == (32, 64, 128, 256)
        assert len(ALGORITHM_NAMES) == 8

    def test_phase_sizes_match_paper(self):
        assert phase1_config().n_configurations == 9
        assert phase2_config().n_configurations == 72
        assert phase3_config().n_configurations == 288

    def test_configurations_iteration(self):
        cfg = phase1_config()
        configs = list(cfg.configurations())
        assert len(configs) == 9
        assert configs[0] == ("contour", 128, 120.0)

    def test_default_cap(self):
        assert phase2_config().default_cap_w == 120.0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            StudyConfig(name="x", algorithms=("nope",), sizes=(32,))

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            StudyConfig(name="x", algorithms=("contour",), sizes=(1,))


class TestEnergyDelayProduct:
    def test_edp_and_ed2p(self):
        from repro.core import energy_delay_product

        assert energy_delay_product(100.0, 2.0) == pytest.approx(200.0)
        assert energy_delay_product(100.0, 2.0, weight=2) == pytest.approx(400.0)

    def test_validation(self):
        from repro.core import energy_delay_product

        with pytest.raises(ValueError):
            energy_delay_product(-1.0, 1.0)
        with pytest.raises(ValueError):
            energy_delay_product(1.0, 1.0, weight=0)

    def test_deep_caps_cost_opportunity_class_little_edp(self):
        """Free-region caps leave a power-opportunity algorithm's EDP
        untouched, while the same relative cap costs a compute-bound
        algorithm far more — the facility-level version of the paper's
        tradeoff."""
        from repro.core import StudyRunner, energy_delay_product
        from repro.machine import Processor

        runner = StudyRunner(n_cycles=2)
        proc = Processor()
        degradation = {}
        for alg in ("threshold", "volume"):
            prof = runner.profile_for(alg, 16)
            base = proc.run(prof, 120.0)
            deep = proc.run(prof, 60.0)
            degradation[alg] = energy_delay_product(
                deep.energy_j, deep.time_s
            ) / energy_delay_product(base.energy_j, base.time_s)
        assert degradation["threshold"] == pytest.approx(1.0, abs=0.02)
        assert degradation["volume"] > degradation["threshold"] + 0.1
