"""Tests for crash-safe persistence (atomicio) and the bench tracker."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.atomicio import atomic_write_json, atomic_write_text
from repro.core.benchtrack import BenchTracker, time_kernel
from repro.core.profiles import ProfileCache


class TestAtomicWrite:
    def test_creates_and_replaces(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "doc.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_no_temp_leftovers(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"k": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_failed_replace_leaves_original_intact(self, tmp_path, monkeypatch):
        """A crash mid-save must never truncate the existing document."""
        target = tmp_path / "doc.json"
        atomic_write_text(target, "original")

        def boom(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "partial new content")
        monkeypatch.undo()
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_json_sorted_round_trip(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"b": 2, "a": [1.5, None]})
        assert json.loads(target.read_text()) == {"a": [1.5, None], "b": 2}
        assert target.read_text().index('"a"') < target.read_text().index('"b"')


class TestProfileCacheAtomicSave:
    def test_interrupted_save_keeps_previous_entries(self, tmp_path, monkeypatch):
        path = tmp_path / "profiles.json"
        cache = ProfileCache(path)
        cache.put("contour", 32, {"cells_classified": 1.0})

        def boom(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            cache.put("slice", 32, {"planes": 1.0})
        monkeypatch.undo()

        reloaded = ProfileCache(path)
        assert reloaded.get("contour", 32) == {"cells_classified": 1.0}
        assert reloaded.get("slice", 32) is None
        assert [p.name for p in tmp_path.iterdir()] == ["profiles.json"]


class TestTimeKernel:
    def test_reports_min_and_mean(self):
        calls = []
        timing = time_kernel(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert timing["repeats"] == 3.0
        assert 0.0 <= timing["best_s"] <= timing["mean_s"]

    def test_rejects_nonpositive_repeats(self):
        with pytest.raises(ValueError):
            time_kernel(lambda: None, repeats=0)


class TestBenchTracker:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        tracker = BenchTracker(path)
        tracker.record("contour", 128, 1.25, baseline_s=5.0)
        tracker.save()
        reloaded = BenchTracker(path)
        entry = reloaded.get("contour", 128)
        assert entry["seconds"] == 1.25
        assert entry["speedup_vs_baseline"] == 4.0
        assert len(reloaded) == 1

    def test_rerecord_preserves_baseline(self, tmp_path):
        tracker = BenchTracker(tmp_path / "bench.json")
        tracker.record("clip", 128, 2.0, baseline_s=4.0)
        entry = tracker.record("clip", 128, 1.0)
        assert entry["baseline_s"] == 4.0
        assert entry["speedup_vs_baseline"] == 4.0

    def test_explicit_baseline_overrides(self, tmp_path):
        tracker = BenchTracker(tmp_path / "bench.json")
        tracker.record("clip", 128, 2.0, baseline_s=4.0)
        entry = tracker.record("clip", 128, 2.0, baseline_s=8.0)
        assert entry["baseline_s"] == 8.0

    def test_meta_kwargs_stored(self, tmp_path):
        tracker = BenchTracker(tmp_path / "bench.json")
        entry = tracker.record("volume", 32, 0.5, mean_s=0.6, repeats=3)
        assert entry["mean_s"] == 0.6
        assert entry["repeats"] == 3

    def test_rejects_foreign_document(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a kernel benchmark file"):
            BenchTracker(path)

    def test_rejects_newer_version(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"format": "repro-bench-kernels", "version": 99}))
        with pytest.raises(ValueError, match="newer"):
            BenchTracker(path)

    def test_record_observes_into_metrics_registry(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

        old = get_registry()
        try:
            reg = set_registry(MetricsRegistry())
            tracker = BenchTracker(tmp_path / "bench.json")
            tracker.record("contour", 32, 0.2)
            tracker.record("contour", 32, 0.4)
            h = reg.histogram("repro_bench_kernel_seconds", kernel="contour", size="32")
            assert h.count == 2
            assert h.sum == pytest.approx(0.6)
        finally:
            set_registry(old)
