"""Content-addressed ledger cache and bitwise batch repricing."""

import dataclasses
import json

import pytest

from repro.core.pricing import (
    BatchRepricer,
    LedgerCache,
    dataset_fingerprint,
    ledger_key,
    machine_spec_hash,
)
from repro.core.profiles import ProfileCache, profile_from_ledger, run_algorithm_ledger
from repro.core.runner import make_run_point
from repro.core.study import POWER_CAPS_W
from repro.machine.simulator import Processor
from repro.machine.spec import BROADWELL_E5_2695V4

SIZE = 16
DATASET = dataset_fingerprint()
MACHINE = machine_spec_hash(BROADWELL_E5_2695V4)


@pytest.fixture(scope="module")
def ledgers():
    """Real op-count ledgers for a few algorithms at a small size."""
    return {
        alg: run_algorithm_ledger(alg, SIZE)
        for alg in ("contour", "threshold", "volume")
    }


def engine_points(spec, algorithm, ledger, caps, n_cycles=5):
    """The engine's per-point path: Processor.run + make_run_point."""
    processor = Processor(spec)
    profile = profile_from_ledger(algorithm, SIZE, ledger, n_cycles=n_cycles)
    default_cap = max(caps)
    base = processor.run(profile, default_cap)
    return [
        make_run_point(
            algorithm, SIZE, cap,
            base if cap == default_cap else processor.run(profile, cap),
            base, default_cap,
        )
        for cap in caps
    ]


class TestContentAddressing:
    def test_key_deterministic(self):
        a = ledger_key("contour", SIZE, dataset=DATASET, machine=MACHINE)
        b = ledger_key("contour", SIZE, dataset=DATASET, machine=MACHINE)
        assert a == b

    def test_key_separates_coordinates(self):
        base = ledger_key("contour", SIZE, dataset=DATASET, machine=MACHINE)
        assert ledger_key("volume", SIZE, dataset=DATASET, machine=MACHINE) != base
        assert ledger_key("contour", 32, dataset=DATASET, machine=MACHINE) != base
        assert ledger_key("contour", SIZE, dataset="other", machine=MACHINE) != base
        assert ledger_key("contour", SIZE, dataset=DATASET, machine="other") != base

    def test_machine_hash_sensitive_to_spec(self):
        tweaked = dataclasses.replace(BROADWELL_E5_2695V4, tdp_watts=100.0)
        assert machine_spec_hash(tweaked) != MACHINE

    def test_dataset_fingerprint_seed(self):
        assert dataset_fingerprint(seed=7) == DATASET
        assert dataset_fingerprint(seed=8) != DATASET


class TestLedgerCache:
    def test_round_trip_and_persistence(self, tmp_path, ledgers):
        path = tmp_path / "cache.json"
        cache = LedgerCache(path)
        cache.put("contour", SIZE, ledgers["contour"],
                  dataset=DATASET, machine=MACHINE)
        assert ("contour", SIZE, DATASET, MACHINE) in cache
        reloaded = LedgerCache(path)
        got = reloaded.get("contour", SIZE, dataset=DATASET, machine=MACHINE)
        assert got == ledgers["contour"]
        assert len(reloaded) == 1

    def test_miss_then_hit_counters(self, tmp_path, ledgers):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = LedgerCache(tmp_path / "c.json", metrics=registry)
        assert cache.get("volume", SIZE, dataset=DATASET, machine=MACHINE) is None
        cache.put("volume", SIZE, ledgers["volume"], dataset=DATASET, machine=MACHINE)
        assert cache.get("volume", SIZE, dataset=DATASET, machine=MACHINE) is not None
        rendered = registry.to_prometheus()
        assert 'outcome="miss"' in rendered
        assert 'outcome="hit"' in rendered

    def test_integrity_check_drops_tampered_entries(self, tmp_path, ledgers):
        path = tmp_path / "cache.json"
        cache = LedgerCache(path)
        cache.put("contour", SIZE, ledgers["contour"], dataset=DATASET, machine=MACHINE)
        cache.put("volume", SIZE, ledgers["volume"], dataset=DATASET, machine=MACHINE)

        doc = json.loads(path.read_text())
        # Corrupt one entry's coordinates so its content address no
        # longer matches the stored key.
        victim = next(iter(doc["entries"]))
        doc["entries"][victim]["algorithm"] = "tampered"
        path.write_text(json.dumps(doc))

        reloaded = LedgerCache(path)
        assert len(reloaded) == 1

    def test_invalidate_by_coordinate(self, tmp_path, ledgers):
        cache = LedgerCache(tmp_path / "c.json")
        for alg in ("contour", "volume"):
            cache.put(alg, SIZE, ledgers[alg], dataset=DATASET, machine=MACHINE)
        assert cache.invalidate(algorithm="contour") == 1
        assert cache.get("contour", SIZE, dataset=DATASET, machine=MACHINE) is None
        assert cache.get("volume", SIZE, dataset=DATASET, machine=MACHINE) is not None
        assert cache.invalidate(machine=MACHINE) == 1
        assert len(cache) == 0

    def test_ingest_profile_cache(self, tmp_path, ledgers):
        pcache = ProfileCache(tmp_path / "profiles.json")
        pcache.put("threshold", SIZE, ledgers["threshold"])
        cache = LedgerCache(tmp_path / "ledgers.json")
        n = cache.ingest_profile_cache(pcache, dataset=DATASET, machine=MACHINE)
        assert n == 1
        assert cache.get("threshold", SIZE, dataset=DATASET, machine=MACHINE) == ledgers["threshold"]


class TestBitwiseRepricing:
    def test_identical_to_engine_path(self, ledgers):
        repricer = BatchRepricer(n_cycles=5)
        caps = list(POWER_CAPS_W)
        for alg, ledger in ledgers.items():
            expected = engine_points(BROADWELL_E5_2695V4, alg, ledger, caps)
            got = repricer.reprice(alg, SIZE, ledger, caps)
            assert got == expected  # frozen float dataclasses: bitwise

    def test_identical_on_duty_cycle_path(self, ledgers):
        # A 5 W floor admits caps the P-state range cannot satisfy, so
        # the controller falls back to duty-cycle bisection (and below
        # ~22.5 W cannot meet the cap even at MIN_DUTY).
        spec = dataclasses.replace(BROADWELL_E5_2695V4, rapl_floor_watts=5.0)
        caps = [5.0, 15.0, 20.0, 22.5, 23.5, 25.0, 30.0, 120.0]
        repricer = BatchRepricer(spec, n_cycles=5)
        ledger = ledgers["contour"]

        # The scenario must actually exercise duty cycling.
        from repro.machine.exec_model import ExecutionModel
        from repro.machine.rapl import RaplController

        profile = profile_from_ledger("contour", SIZE, ledger, n_cycles=5)
        ev = ExecutionModel(spec).evaluate(next(iter(profile)))
        op = RaplController(spec).operating_point(ev, 23.5)
        assert op.duty < 1.0

        expected = engine_points(spec, "contour", ledger, caps)
        got = repricer.reprice("contour", SIZE, ledger, caps)
        assert got == expected
        # Below ~22.5 W even MIN_DUTY overshoots: delivered power > cap.
        assert any(p.power_w > p.cap_w for p in got)

    def test_random_cap_grids_property(self, ledgers):
        import random

        rng = random.Random(42)
        repricer = BatchRepricer(n_cycles=5)
        for trial in range(5):
            caps = sorted(
                {round(rng.uniform(40.0, 120.0), 2) for _ in range(rng.randint(2, 7))}
            )
            alg = rng.choice(list(ledgers))
            expected = engine_points(BROADWELL_E5_2695V4, alg, ledgers[alg], caps)
            got = repricer.reprice(alg, SIZE, ledgers[alg], caps)
            assert got == expected, f"trial {trial}: caps={caps}"

    def test_table_cache_reused_and_bounded(self, ledgers):
        repricer = BatchRepricer(n_cycles=5, max_tables=2)
        caps = [40.0, 120.0]
        for alg in ledgers:
            repricer.reprice(alg, SIZE, ledgers[alg], caps)
        assert repricer.cached_tables == 2  # LRU evicted the oldest

    def test_rejects_bad_caps(self, ledgers):
        repricer = BatchRepricer(n_cycles=5)
        with pytest.raises(ValueError):
            repricer.reprice("contour", SIZE, ledgers["contour"], [float("nan")])
        with pytest.raises(ValueError):
            repricer.reprice("contour", SIZE, ledgers["contour"], [-10.0])
