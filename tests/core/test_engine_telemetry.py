"""End-to-end telemetry: one traced, sampled, metered sweep."""

import json

import pytest

from repro.core import StudyConfig, SweepEngine
from repro.obs.manifest import manifest_path_for, read_manifest
from repro.obs.metrics import MetricsRegistry, load_metrics
from repro.obs.samples import read_samples, samples_path_for, summarize_samples
from repro.obs.trace import get_tracer, read_trace, summarize_trace

CFG = StudyConfig(name="tele", algorithms=("threshold", "contour"), sizes=(32,))


@pytest.fixture(scope="module")
def traced_sweep(tmp_path_factory):
    """One serial traced sweep with samples, metrics, store, manifest."""
    tmp = tmp_path_factory.mktemp("telemetry")
    store = tmp / "sweep.jsonl"
    trace = tmp / "sweep.trace.jsonl"
    registry = MetricsRegistry()
    engine = SweepEngine(
        n_cycles=2,
        workers=0,
        store=store,
        trace=str(trace),
        samples=True,
        metrics=registry,
    )
    result = engine.run(CFG)
    engine.tracer.close()
    engine.sample_writer.close()
    return engine, result, store, trace


class TestTrace:
    def test_trace_parses_with_engine_and_kernel_spans(self, traced_sweep):
        _, _, _, trace = traced_sweep
        header, records = read_trace(trace)
        assert header["format"] == "repro-trace"
        names = {r["name"] for r in records if r["kind"] == "span"}
        # Engine spans and (serial mode) in-process kernel spans.
        assert {"sweep", "profile-job", "price-group", "kernel"} <= names
        summary = summarize_trace(records)
        assert summary["profile-job"]["count"] == 2
        assert summary["price-group"]["count"] == 2
        assert summary["kernel"]["count"] >= 2

    def test_spans_nest_under_the_sweep_root(self, traced_sweep):
        _, _, _, trace = traced_sweep
        _, records = read_trace(trace)
        spans = {r["span_id"]: r for r in records if r["kind"] == "span"}
        root = [r for r in spans.values() if r["name"] == "sweep"]
        assert len(root) == 1
        for r in spans.values():
            if r["name"] == "price-group":
                assert spans[r["parent_id"]]["name"] == "sweep"

    def test_default_tracer_restored_after_run(self, traced_sweep):
        assert get_tracer() is None


class TestSamples:
    def test_stream_exists_per_point_at_10hz(self, traced_sweep):
        _, result, store, _ = traced_sweep
        header, records = read_samples(samples_path_for(store))
        stats = summarize_samples(records)
        assert set(stats) == {p.key for p in result.points}
        for agg in stats.values():
            assert agg["rate_hz"] >= 10.0 - 1e-9

    def test_stream_mean_power_matches_reported(self, traced_sweep):
        _, result, store, _ = traced_sweep
        stats = summarize_samples(read_samples(samples_path_for(store))[1])
        for p in result.points:
            agg = stats[p.key]
            # Acceptance bar: within 1%.  Synthesis is exact, so equal.
            assert agg["mean_power_w"] == pytest.approx(p.power_w, rel=1e-9)
            assert agg["duration_s"] == pytest.approx(p.time_s, rel=1e-9)


class TestManifest:
    def test_manifest_written_next_to_store(self, traced_sweep):
        engine, _, store, _ = traced_sweep
        doc = read_manifest(manifest_path_for(store))
        assert doc["config"]["name"] == "tele"
        assert doc["config"]["algorithms"] == ["threshold", "contour"]
        assert doc["seed"] == engine.seed
        assert doc["fingerprint"] == engine.fingerprint()
        assert doc["fault_plan"] is None
        assert doc["spec"]["tdp_watts"] == engine.spec.tdp_watts


class TestMetrics:
    def test_counters_reflect_the_run(self, traced_sweep):
        engine, result, _, _ = traced_sweep
        reg = engine.metrics
        assert reg.counter("repro_profile_jobs_total", source="executed").value == 2
        assert reg.counter("repro_points_total", outcome="computed").value == len(
            result.points
        )
        assert reg.counter("repro_rapl_decisions_total").value > 0
        assert reg.gauge("repro_sweep_wall_seconds").value > 0

    def test_metrics_dumped_next_to_store(self, traced_sweep):
        engine, _, store, _ = traced_sweep
        dumped = load_metrics(store.with_suffix(".metrics.json"))
        assert dumped.to_json() == engine.metrics.to_json()

    def test_prometheus_exposition(self, traced_sweep):
        engine, _, _, _ = traced_sweep
        text = engine.metrics.to_prometheus()
        assert "# TYPE repro_points_total counter" in text
        assert 'repro_points_total{outcome="computed"}' in text
        assert "repro_sweep_wall_seconds" in text


class TestResumeTelemetry:
    def test_resumed_run_appends_to_the_same_trace(self, traced_sweep, tmp_path):
        engine, result, store, trace = traced_sweep
        again = SweepEngine(
            n_cycles=2,
            workers=0,
            store=store,
            trace=str(trace),
            samples=True,
            metrics=MetricsRegistry(),
        )
        resumed = again.run(CFG)
        again.tracer.close()
        assert again.stats.points_resumed == len(result.points)
        _, records = read_trace(trace)
        sweeps = [r for r in records if r.get("name") == "sweep"]
        assert len(sweeps) == 2
        assert again.metrics.counter("repro_points_total", outcome="resumed").value == len(
            resumed.points
        )

    def test_samples_flag_without_store_rejected(self):
        with pytest.raises(ValueError, match="needs a store"):
            SweepEngine(samples=True)
