"""Study runner, classification, advisor, and reports (small sweeps)."""

import numpy as np
import pytest

from repro.core import (
    PowerClass,
    StudyConfig,
    StudyRunner,
    classify,
    classify_result,
    figure2_series,
    figure3_series,
    ipc_by_size_series,
    recommend_cap,
    recommend_split,
    render_slowdown_table,
    render_table1,
)


@pytest.fixture(scope="module")
def mini_result():
    """Small but complete sweep: 3 algorithms x 2 sizes x all caps."""
    runner = StudyRunner(n_cycles=5)
    cfg = StudyConfig(name="mini", algorithms=("contour", "threshold", "volume"), sizes=(16, 24))
    return runner.run_config(cfg), runner


class TestRunner:
    def test_point_grid_complete(self, mini_result):
        result, _ = mini_result
        assert len(result.points) == 3 * 2 * 9

    def test_baseline_is_highest_cap(self, mini_result):
        result, _ = mini_result
        base = result.baseline("contour", 16)
        assert base.cap_w == 120.0
        assert base.tratio == pytest.approx(1.0)
        assert base.pratio == pytest.approx(1.0)

    def test_select_filters(self, mini_result):
        result, _ = mini_result
        sel = result.select(algorithm="volume", size=24)
        assert len(sel) == 9
        assert all(p.algorithm == "volume" and p.size == 24 for p in sel)

    def test_tratio_non_decreasing_with_tighter_caps(self, mini_result):
        result, _ = mini_result
        for alg in result.algorithms:
            pts = sorted(result.select(algorithm=alg, size=16), key=lambda p: -p.cap_w)
            tr = [p.tratio for p in pts]
            assert all(b >= a - 1e-9 for a, b in zip(tr, tr[1:]))

    def test_profiles_cached(self, mini_result):
        _, runner = mini_result
        p1 = runner.profile_for("contour", 16)
        p2 = runner.profile_for("contour", 16)
        assert p1 is p2

    def test_profile_scaled_by_cycles(self):
        r1 = StudyRunner(n_cycles=1)
        r5 = StudyRunner(n_cycles=5)
        i1 = r1.profile_for("threshold", 16).total_instructions
        i5 = r5.profile_for("threshold", 16).total_instructions
        assert i5 == pytest.approx(5 * i1, rel=1e-9)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            StudyRunner().profile_for("nope", 16)

    def test_set_dataset_invalidates_cache(self, blobs_ds):
        runner = StudyRunner(n_cycles=1)
        p_before = runner.profile_for("threshold", 16)
        runner.set_dataset(16, blobs_ds)
        p_after = runner.profile_for("threshold", 16)
        assert p_before is not p_after


class TestClassification:
    def test_volume_sensitive_cellcentered_opportunity(self, mini_result):
        result, _ = mini_result
        classes = classify_result(result, size=16)
        assert classes["volume"].power_class is PowerClass.SENSITIVE
        assert classes["contour"].power_class is PowerClass.OPPORTUNITY
        assert classes["threshold"].power_class is PowerClass.OPPORTUNITY

    def test_classification_carries_evidence(self, mini_result):
        result, _ = mini_result
        c = classify_result(result, size=16)["volume"]
        assert c.natural_power_w > 70
        assert c.baseline_ipc > 1.5

    def test_classify_rejects_mixed_input(self, mini_result):
        result, _ = mini_result
        with pytest.raises(ValueError):
            classify(result.points)

    def test_classify_result_needs_single_size(self, mini_result):
        result, _ = mini_result
        with pytest.raises(ValueError, match="spans sizes"):
            classify_result(result)


class TestAdvisor:
    def test_opportunity_algorithm_gets_deep_cap(self, mini_result):
        result, _ = mini_result
        rec = recommend_cap(result.select(algorithm="threshold", size=16))
        assert rec.cap_w <= 50.0
        assert rec.predicted_tratio <= 1.10

    def test_sensitive_algorithm_keeps_high_cap(self, mini_result):
        result, _ = mini_result
        rec = recommend_cap(result.select(algorithm="volume", size=16))
        assert rec.cap_w >= 70.0

    def test_recommend_split_opportunity(self, mini_result):
        result, _ = mini_result
        c = classify_result(result, size=16)["contour"]
        sim_cap, viz_cap = recommend_split(c, node_budget_w=160.0)
        assert viz_cap == 40.0
        assert sim_cap == 120.0  # all headroom, clamped to TDP

    def test_recommend_split_sensitive(self, mini_result):
        result, _ = mini_result
        c = classify_result(result, size=16)["volume"]
        _, viz_cap = recommend_split(c, node_budget_w=200.0)
        assert viz_cap > 40.0  # sensitive algorithms keep their natural draw

    def test_recommend_split_respects_feasible_budget(self, mini_result):
        result, _ = mini_result
        for name, c in classify_result(result, size=16).items():
            for budget in (80.0, 100.0, 130.0, 200.0):
                sim_cap, viz_cap = recommend_split(c, node_budget_w=budget)
                assert sim_cap + viz_cap <= budget + 1e-9, (name, budget)
                assert sim_cap >= 40.0 and viz_cap >= 40.0

    def test_split_budget_validation(self, mini_result):
        result, _ = mini_result
        c = classify_result(result, size=16)["volume"]
        with pytest.raises(ValueError):
            recommend_split(c, node_budget_w=0.0)


class TestReports:
    def test_table1_renders(self, mini_result):
        result, _ = mini_result
        text = render_table1(result, algorithm="contour", size=16)
        assert "Table I" in text
        assert "120W" in text and "40W" in text
        assert text.count("\n") >= 10

    def test_slowdown_table_lists_all_algorithms(self, mini_result):
        result, _ = mini_result
        text = render_slowdown_table(result, size=16)
        for alg in ("contour", "threshold", "volume"):
            assert alg in text

    def test_missing_data_raises(self, mini_result):
        result, _ = mini_result
        with pytest.raises(KeyError):
            render_table1(result, algorithm="contour", size=999)

    def test_figure2_series(self, mini_result):
        result, _ = mini_result
        fig = figure2_series(result, size=16)
        assert set(fig) == {"frequency", "ipc", "llc_miss_rate"}
        s = fig["frequency"]["contour"]
        assert s.x == tuple(sorted(s.x))
        assert len(s.y) == 9

    def test_figure3_series(self, mini_result):
        result, _ = mini_result
        fig = figure3_series(result, size=16, algorithms=("contour", "threshold"))
        rate = fig["threshold"].y
        assert all(r > 0 for r in rate)

    def test_ipc_by_size_series(self, mini_result):
        result, _ = mini_result
        series = ipc_by_size_series(result, algorithm="contour")
        assert set(series) == {16, 24}
