"""Shared retry backoff: capped exponential with deterministic jitter."""

import pytest

from repro.core.backoff import retry_backoff


class TestRetryBackoff:
    def test_grows_exponentially_until_the_cap(self):
        # jitter draws in [raw/2, raw), so compare against the raw curve
        raws = [min(5.0, 0.1 * 2 ** (a - 1)) for a in range(1, 12)]
        for attempt, raw in enumerate(raws, start=1):
            d = retry_backoff(attempt, base_s=0.1, cap_s=5.0, seed=1, key="k")
            assert raw / 2 <= d < raw

    def test_never_exceeds_the_cap(self):
        for attempt in (1, 5, 10, 63, 200, 10_000):
            assert retry_backoff(attempt, base_s=1.0, cap_s=2.5, seed=0) < 2.5

    def test_huge_attempt_counts_do_not_overflow(self):
        assert retry_backoff(10**9, base_s=1.0, cap_s=3.0, seed=0) < 3.0

    def test_deterministic_for_same_inputs(self):
        a = retry_backoff(3, base_s=0.1, cap_s=5.0, seed=42, key="contour@128")
        b = retry_backoff(3, base_s=0.1, cap_s=5.0, seed=42, key="contour@128")
        assert a == b

    def test_distinct_keys_decorrelate(self):
        # The point of jitter: two jobs failing in lockstep must not
        # retry in lockstep.
        delays = {
            retry_backoff(3, base_s=0.1, cap_s=5.0, seed=42, key=f"job-{i}")
            for i in range(16)
        }
        assert len(delays) == 16

    def test_distinct_seeds_decorrelate(self):
        a = retry_backoff(3, base_s=0.1, cap_s=5.0, seed=1, key="k")
        b = retry_backoff(3, base_s=0.1, cap_s=5.0, seed=2, key="k")
        assert a != b

    @pytest.mark.parametrize("attempt", [0, -1, -100])
    def test_nonpositive_attempt_is_zero(self, attempt):
        assert retry_backoff(attempt, base_s=0.1) == 0.0

    def test_disabled_base_is_zero(self):
        assert retry_backoff(3, base_s=0.0) == 0.0
        assert retry_backoff(3, base_s=-1.0) == 0.0
