"""Invariant guardrails: every violation code fires, clean data never does."""

import pytest

from repro.core import (
    PointValidator,
    ResultStore,
    StudyConfig,
    StudyResult,
    SweepEngine,
    validate_store,
)
from repro.core.runner import RunPoint

CFG = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))


@pytest.fixture(scope="module")
def clean():
    return SweepEngine(n_cycles=2, workers=0).run(CFG)


def mutate(point: RunPoint, **changes) -> RunPoint:
    d = point.to_dict()
    d.update(changes)
    return RunPoint.from_dict(d)


def swap(result: StudyResult, idx: int, **changes):
    """A copy of ``result`` with one point mutated; returns (result, key)."""
    points = list(result.points)
    points[idx] = mutate(points[idx], **changes)
    return StudyResult(config_name=result.config_name, points=points), points[idx].key


def codes_at(report, key):
    return {v.code for v in report.violations.get(key, [])}


class TestCleanData:
    def test_clean_sweep_validates(self, clean):
        report = PointValidator().check_result(clean)
        assert report.ok
        assert report.n_points == len(clean.points)
        assert "all invariants hold" in report.render()

    def test_empty_group_is_fine(self):
        assert PointValidator().check_group([]) == {}


class TestPointInvariants:
    def test_power_over_cap(self, clean):
        bad, key = swap(clean, 4, power_w=clean.points[4].cap_w * 2)
        report = PointValidator().check_result(bad)
        assert codes_at(report, key) == {"power-over-cap"}

    def test_non_finite_short_circuits(self, clean):
        bad, key = swap(clean, 4, ipc=float("nan"), power_w=1e9)
        report = PointValidator().check_result(bad)
        assert codes_at(report, key) == {"non-finite"}  # range checks skipped

    def test_non_positive(self, clean):
        bad, key = swap(clean, 4, energy_j=-1.0)
        assert "non-positive" in codes_at(PointValidator().check_result(bad), key)

    def test_freq_out_of_range(self, clean):
        bad, key = swap(clean, 4, freq_ghz=10.0)
        assert "freq-out-of-range" in codes_at(PointValidator().check_result(bad), key)

    def test_ipc_out_of_range(self, clean):
        bad, key = swap(clean, 4, ipc=50.0)
        assert "ipc-out-of-range" in codes_at(PointValidator().check_result(bad), key)

    def test_llc_rate_out_of_range(self, clean):
        bad, key = swap(clean, 4, llc_miss_rate=1.5)
        assert "llc-rate-out-of-range" in codes_at(PointValidator().check_result(bad), key)


class TestGroupInvariants:
    def test_runtime_not_monotone_blames_the_fast_point(self, clean):
        # A mid-group point claiming to run 1000x faster under a lower cap.
        bad, key = swap(clean, 4, time_s=clean.points[4].time_s * 1e-3)
        report = PointValidator().check_result(bad)
        assert "runtime-not-monotone" in codes_at(report, key)
        others = set(report.violations) - {key}
        assert not others  # the clean neighbours are never blamed

    def test_corrupt_baseline_blamed_by_majority(self, clean):
        # points[0] is the highest (default) cap — the ratio baseline.
        assert clean.points[0].cap_w == max(p.cap_w for p in clean.points)
        bad, key = swap(clean, 0, time_s=clean.points[0].time_s * 1e-3)
        report = PointValidator().check_result(bad)
        assert "baseline-inconsistent" in codes_at(report, key)

    def test_counts_by_code(self, clean):
        bad, _ = swap(clean, 4, time_s=clean.points[4].time_s * 1e-3)
        counts = PointValidator().check_result(bad).counts_by_code()
        assert counts["runtime-not-monotone"] == 1


class TestValidateStore:
    def _damaged_store(self, tmp_path):
        path = tmp_path / "s.jsonl"
        SweepEngine(n_cycles=2, workers=0, store=path).run(CFG)
        store = ResultStore(path)
        victim = list(store.points.values())[4]
        broken = mutate(victim, power_w=victim.cap_w * 3)
        store.remove([victim.key])
        store.append(broken)
        return path, victim

    def test_clean_store_ok(self, tmp_path):
        path = tmp_path / "s.jsonl"
        SweepEngine(n_cycles=2, workers=0, store=path).run(CFG)
        report = validate_store(path)
        assert report.ok and report.quarantined == 0
        assert str(path) in report.render()

    def test_damage_detected_read_only(self, tmp_path):
        path, victim = self._damaged_store(tmp_path)
        report = validate_store(path)
        assert not report.ok
        assert "power-over-cap" in report.counts_by_code()
        assert len(ResultStore(path)) == len(CFG.caps_w)  # untouched

    def test_quarantine_moves_violators_to_sidecar(self, tmp_path):
        path, victim = self._damaged_store(tmp_path)
        report = validate_store(path, quarantine=True)
        assert report.quarantined == 1
        store = ResultStore(path)
        assert victim.key not in store
        [(qpoint, reasons)] = store.quarantined()
        assert qpoint.key == victim.key
        assert reasons[0]["code"] == "power-over-cap"
        assert validate_store(path).ok  # the main store is clean again
