"""Result store format and RunPoint/StudyResult serialization."""

import json

import pytest

from repro.core import ResultStore, StudyConfig, StudyResult, StudyRunner
from repro.core.runner import RunPoint


@pytest.fixture(scope="module")
def result() -> StudyResult:
    cfg = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))
    return StudyRunner(n_cycles=2).run_config(cfg)


class TestRunPointSerialization:
    def test_dict_roundtrip_bitwise(self, result):
        for p in result.points:
            q = RunPoint.from_dict(p.to_dict())
            assert q == p  # frozen dataclass: field-by-field equality

    def test_jsonl_roundtrip_bitwise(self, result):
        for p in result.points:
            assert RunPoint.from_jsonl(p.to_jsonl()) == p

    def test_key(self, result):
        p = result.points[0]
        assert p.key == (p.algorithm, p.size, p.cap_w)


class TestStudyResultSerialization:
    def test_jsonl_roundtrip(self, result, tmp_path):
        path = tmp_path / "r.jsonl"
        text = result.to_jsonl(path)
        assert path.read_text() == text
        back = StudyResult.from_jsonl(path)
        assert back.config_name == result.config_name
        assert back.points == result.points

    def test_dict_roundtrip(self, result):
        back = StudyResult.from_dict(result.to_dict())
        assert back.points == result.points

    def test_header_carries_format_and_version(self, result):
        header = json.loads(result.to_jsonl().splitlines()[0])
        assert header["format"] == "repro-study-result"
        assert header["version"] == 1

    def test_newer_version_rejected(self, result):
        doc = result.to_dict()
        doc["version"] = 99
        with pytest.raises(ValueError, match="newer than supported"):
            StudyResult.from_dict(doc)

    def test_garbage_rejected(self, tmp_path):
        p = tmp_path / "r.jsonl"
        p.write_text('{"format": "nonsense"}\n')
        with pytest.raises(ValueError, match="not a study result"):
            StudyResult.from_jsonl(p)

    def test_from_jsonl_inline_text(self, result):
        back = StudyResult.from_jsonl(result.to_jsonl())
        assert back.points == result.points

    def test_from_jsonl_header_only_single_line(self):
        """A point-free result is one JSON line with no newline; the text
        starts with ``{`` so it must parse as inline text, not a path."""
        empty = StudyResult(config_name="empty")
        text = empty.to_jsonl().strip()
        assert "\n" not in text
        back = StudyResult.from_jsonl(text)
        assert back.config_name == "empty"
        assert back.points == []

    def test_from_jsonl_string_path(self, result, tmp_path):
        path = tmp_path / "r.jsonl"
        result.to_jsonl(path)
        back = StudyResult.from_jsonl(str(path))
        assert back.points == result.points


class TestResultStore:
    def test_append_and_reload(self, result, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.ensure_compatible("fp", {"config_name": "t"})
        for p in result.points:
            store.append(p)

        again = ResultStore(path)
        assert again.fingerprint == "fp"
        assert len(again) == len(result.points)
        assert again.load_result().points == result.points
        assert result.points[0].key in again

    def test_append_without_fingerprint_refused(self, result, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(RuntimeError, match="fingerprint"):
            store.append(result.points[0])

    def test_torn_tail_truncated(self, result, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.ensure_compatible("fp")
        for p in result.points[:3]:
            store.append(p)
        with open(path, "a") as fh:
            fh.write('{"algorithm": "threshold", "size": 12, "cap')  # killed mid-write

        again = ResultStore(path)
        assert len(again) == 3
        # The torn bytes are gone: appending after reload stays parseable.
        again.append(result.points[3])
        assert len(ResultStore(path)) == 4

    def test_corrupt_middle_line_raises(self, result, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.ensure_compatible("fp")
        store.append(result.points[0])
        lines = path.read_text().splitlines()
        lines.insert(1, "garbage not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt record"):
            ResultStore(path)

    def test_foreign_file_rejected(self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('{"format": "other"}\n')
        with pytest.raises(ValueError, match="not a sweep store"):
            ResultStore(p)

    def test_duplicate_key_keeps_latest(self, result, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.ensure_compatible("fp")
        store.append(result.points[0])
        store.append(result.points[0])
        assert len(store) == 1
