"""Benchmark trajectory: baseline backfill, trend rows, floor gate, CLI.

PR 8 closed the trajectory's baseline gaps — every recorded entry now
carries a ``baseline_s`` (explicit > previously pinned > previous
measurement > itself) so ``repro bench --trend`` and the CI floor gate
always have a reference to regress against.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.benchtrack import (
    SPEEDUP_FLOORS,
    BenchTracker,
    check_floors,
    format_trend,
    trend_rows,
)


class TestBaselineBackfill:
    def test_fresh_key_anchors_to_itself(self, tmp_path):
        entry = BenchTracker(tmp_path / "b.json").record("contour", 64, 0.5)
        assert entry["baseline_s"] == 0.5
        assert entry["speedup_vs_baseline"] == 1.0

    def test_rerecord_anchors_to_previous_measurement(self, tmp_path):
        """A key first recorded without a baseline regresses against its
        own history once re-measured — the gap the old format left."""
        tracker = BenchTracker(tmp_path / "b.json")
        tracker.record("contour", 64, 0.5)
        entry = tracker.record("contour", 64, 0.25)
        assert entry["baseline_s"] == 0.5
        assert entry["speedup_vs_baseline"] == 2.0

    def test_pinned_baseline_survives_backfill_chain(self, tmp_path):
        tracker = BenchTracker(tmp_path / "b.json")
        tracker.record("clip", 64, 2.0, baseline_s=4.0)
        tracker.record("clip", 64, 1.0)
        entry = tracker.record("clip", 64, 0.5)
        assert entry["baseline_s"] == 4.0
        assert entry["speedup_vs_baseline"] == 8.0

    def test_committed_trajectory_has_no_gaps(self):
        """The repo-level BENCH_kernels.json every PR regresses against."""
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        tracker = BenchTracker(repo_root / "BENCH_kernels.json")
        assert len(tracker) > 0
        for key, entry in tracker.entries.items():
            assert "baseline_s" in entry, f"{key} has no baseline"
            assert "speedup_vs_baseline" in entry, f"{key} has no speedup"


class TestTrend:
    @pytest.fixture
    def tracker(self, tmp_path):
        t = BenchTracker(tmp_path / "b.json")
        t.record("contour", 128, 1.0, baseline_s=4.0)  # 4.0x >= 3.0 floor
        t.record("clip", 128, 1.0, baseline_s=1.5)  # 1.5x < 2.0 floor
        t.record("volume", 32, 0.2, baseline_s=0.2)  # no floor
        return t

    def test_rows_sorted_and_flagged(self, tracker):
        rows = trend_rows(tracker)
        assert [(r["kernel"], r["size"]) for r in rows] == [
            ("clip", 128),
            ("contour", 128),
            ("volume", 32),
        ]
        by_kernel = {r["kernel"]: r for r in rows}
        assert by_kernel["contour"]["ok"] and by_kernel["contour"]["floor"] == 3.0
        assert not by_kernel["clip"]["ok"]
        assert by_kernel["volume"]["ok"] and by_kernel["volume"]["floor"] is None

    def test_format_trend_marks_failures(self, tracker):
        table = format_trend(trend_rows(tracker))
        assert "<< BELOW FLOOR" in table
        assert table.count("<< BELOW FLOOR") == 1
        assert "contour" in table and "128^3" in table

    def test_check_floors_reports_only_failures(self, tracker):
        failures = check_floors(tracker)
        assert len(failures) == 1
        assert "clip@128^3" in failures[0] and "2.0x floor" in failures[0]

    def test_table3_scale_floors_pinned(self):
        for kernel in ("contour", "clip", "isovolume"):
            assert SPEEDUP_FLOORS[(kernel, 256)] >= 2.0


class TestBenchCli:
    @pytest.fixture
    def bench_path(self, tmp_path):
        t = BenchTracker(tmp_path / "b.json")
        t.record("contour", 128, 1.0, baseline_s=4.0)
        t.record("clip", 128, 1.0, baseline_s=1.5)
        t.save()
        return tmp_path / "b.json"

    def test_trend_prints_table(self, capsys, bench_path):
        assert main(["bench", "--path", str(bench_path)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "contour" in out

    def test_check_fails_below_floor(self, capsys, bench_path):
        assert main(["bench", "--path", str(bench_path), "--check"]) == 1
        assert "REGRESSION: clip@128^3" in capsys.readouterr().err

    def test_check_passes_clean_file(self, capsys, tmp_path):
        t = BenchTracker(tmp_path / "clean.json")
        t.record("contour", 128, 1.0, baseline_s=4.0)
        t.save()
        assert main(["bench", "--path", str(tmp_path / "clean.json"), "--check"]) == 0

    def test_missing_file_is_an_error(self, capsys, tmp_path):
        assert main(["bench", "--path", str(tmp_path / "nope.json")]) == 2

    def test_foreign_file_is_an_error(self, capsys, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "other"}))
        assert main(["bench", "--path", str(path)]) == 2
