"""PowerAdvisor service, recommend_cap edge cases, recommend_split budget."""

import pytest

from repro.core.advisor import PowerAdvisor, recommend_cap, recommend_split
from repro.core.classify import Classification, PowerClass
from repro.core.metrics import Ratios
from repro.core.pricing import LedgerCache
from repro.core.runner import RunPoint
from repro.core.study import ALGORITHM_NAMES
from repro.obs.metrics import MetricsRegistry

SIZE = 12


def _point(cap_w, tratio, power_w=None, algorithm="contour", size=16):
    """Minimal RunPoint for recommendation-logic tests."""
    return RunPoint(
        algorithm=algorithm,
        size=size,
        cap_w=cap_w,
        time_s=tratio,
        energy_j=1.0,
        power_w=cap_w if power_w is None else power_w,
        freq_ghz=2.0,
        ipc=1.0,
        llc_miss_rate=0.01,
        ratios=Ratios(pratio=120.0 / cap_w, tratio=tratio, fratio=1.0),
    )


def _classification(power_class, natural_power_w):
    return Classification(
        algorithm="contour",
        size=16,
        power_class=power_class,
        first_slowdown_cap_w=None,
        natural_power_w=natural_power_w,
        baseline_ipc=1.0,
        llc_miss_rate=0.01,
    )


class TestRecommendCap:
    def test_picks_deepest_tolerable(self):
        pts = [_point(120.0, 1.0), _point(80.0, 1.05), _point(40.0, 1.5)]
        rec = recommend_cap(pts, tolerance=0.10)
        assert rec.cap_w == 80.0

    def test_empty_tolerable_falls_back_to_tdp_baseline(self):
        pts = [_point(120.0, 1.2), _point(80.0, 1.4), _point(40.0, 1.9)]
        rec = recommend_cap(pts, tolerance=0.10)
        assert rec.cap_w == 120.0
        assert rec.power_saved_w == 0.0

    def test_cap_ties_resolve_deterministically(self):
        # Two tolerable points share the deepest cap; the earliest in
        # input order must win, every time.
        first = _point(60.0, 1.01, power_w=55.0)
        second = _point(60.0, 1.02, power_w=50.0)
        pts = [_point(120.0, 1.0), first, second]
        for _ in range(5):
            rec = recommend_cap(pts, tolerance=0.10)
            assert rec.predicted_tratio == first.tratio

    def test_single_point_input(self):
        rec = recommend_cap([_point(120.0, 1.0)])
        assert rec.cap_w == 120.0
        assert rec.power_saved_w == 0.0

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            recommend_cap([])


class TestRecommendSplit:
    def test_budget_respected_for_opportunity(self):
        cls = _classification(PowerClass.OPPORTUNITY, natural_power_w=45.0)
        for budget in (80.0, 100.0, 130.0, 200.0, 240.0):
            sim, viz = recommend_split(cls, node_budget_w=budget)
            assert sim + viz <= budget + 1e-9, f"budget {budget}: {sim}+{viz}"
            assert sim >= 40.0 and viz >= 40.0

    def test_budget_respected_for_sensitive(self):
        # The old allocator handed the simulation the full remaining
        # headroom *plus* the floor, overshooting the budget.
        cls = _classification(PowerClass.SENSITIVE, natural_power_w=95.0)
        for budget in (80.0, 110.0, 135.0, 160.0, 240.0):
            sim, viz = recommend_split(cls, node_budget_w=budget)
            assert sim + viz <= budget + 1e-9, f"budget {budget}: {sim}+{viz}"
            assert sim >= 40.0 and viz >= 40.0

    def test_sensitive_keeps_natural_draw_when_budget_allows(self):
        cls = _classification(PowerClass.SENSITIVE, natural_power_w=95.0)
        sim, viz = recommend_split(cls, node_budget_w=200.0)
        assert viz == 95.0
        assert sim == 105.0

    def test_opportunity_gets_floor(self):
        cls = _classification(PowerClass.OPPORTUNITY, natural_power_w=45.0)
        sim, viz = recommend_split(cls, node_budget_w=160.0)
        assert viz == 40.0
        assert sim == 120.0  # headroom clamped to TDP

    def test_infeasible_budget_clamps_to_floors(self):
        # Below two floors the pair cannot fit; both sides still get a
        # valid RAPL cap (the floor) rather than an out-of-range value.
        cls = _classification(PowerClass.OPPORTUNITY, natural_power_w=45.0)
        sim, viz = recommend_split(cls, node_budget_w=60.0)
        assert sim == 40.0 and viz == 40.0

    def test_non_positive_budget_raises(self):
        cls = _classification(PowerClass.OPPORTUNITY, natural_power_w=45.0)
        with pytest.raises(ValueError):
            recommend_split(cls, node_budget_w=0.0)


class TestPowerAdvisor:
    @pytest.fixture(scope="class")
    def advisor(self, tmp_path_factory):
        cache = LedgerCache(tmp_path_factory.mktemp("advise") / "ledgers.json")
        registry = MetricsRegistry()
        return PowerAdvisor(cache=cache, n_cycles=5, metrics=registry), registry

    def test_cold_miss_then_warm_hit(self, advisor):
        adv, _ = advisor
        first = adv.advise("contour", SIZE)
        assert not first.cache_hit
        second = adv.advise("contour", SIZE)
        assert second.cache_hit
        assert second.recommendation == first.recommendation
        assert second.latency_s < first.latency_s

    def test_metrics_instrumented(self, advisor):
        adv, registry = advisor
        adv.advise("contour", SIZE)
        rendered = registry.to_prometheus()
        assert "repro_advise_queries_total" in rendered
        assert "repro_advise_latency_seconds" in rendered
        assert 'outcome="hit"' in rendered

    def test_cap_override_prices_requested_cap(self, advisor):
        adv, _ = advisor
        advice = adv.advise("contour", SIZE, cap_w=60.0)
        assert advice.point.cap_w == 60.0
        # The recommendation is independent of the priced cap.
        assert advice.recommendation.cap_w in adv.caps_w

    def test_off_grid_cap_priced_consistently(self, advisor):
        adv, _ = advisor
        advice = adv.advise("contour", SIZE, cap_w=63.5)
        assert advice.point.cap_w == 63.5
        assert advice.point.time_s > 0

    def test_warm_counts_only_new_ledgers(self, advisor):
        adv, _ = advisor
        assert adv.warm(["threshold"], [SIZE]) == 1
        assert adv.warm(["threshold"], [SIZE]) == 0

    def test_grid_matches_per_point_recommendation(self, advisor):
        # Property: recommending from the batch-repriced grid gives the
        # same answer as recommending from a per-query advise() call.
        adv, _ = advisor
        algorithms = list(ALGORITHM_NAMES[:3])
        points = adv.reprice_grid(algorithms, [SIZE])
        for alg in algorithms:
            grid_pts = [p for p in points if p.algorithm == alg]
            grid_rec = recommend_cap(grid_pts, tolerance=adv.tolerance)
            assert grid_rec == adv.advise(alg, SIZE).recommendation

    def test_advice_latency_is_measured(self, advisor):
        adv, _ = advisor
        advice = adv.advise("contour", SIZE)
        assert advice.latency_s > 0.0
