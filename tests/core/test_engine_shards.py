"""Engine shard granularity: large jobs fan out, results stay bitwise.

A pool whose grid holds fewer jobs than workers used to idle most of the
pool on a single 256³ profile.  ``SweepEngine`` now splits shard-capable
jobs at ``shard_min_size`` or larger into :class:`ShardTask` k-spans and
merges the span ledgers deterministically; these tests pin the fan-out
bookkeeping (stats, metrics, spans) and the study-level bitwise
equivalence against the serial engine.
"""

from __future__ import annotations

import pytest

from repro.core import ProfileJob, StudyConfig, SweepEngine
from repro.core.engine import ShardTask, execute_profile_job, execute_shard_task
from repro.core.profiles import (
    merge_shard_ledgers,
    run_algorithm_ledger,
    run_algorithm_ledger_shard,
    supports_sharding,
)
from repro.obs.metrics import MetricsRegistry

# One shardable algorithm above the lowered threshold, one below it, and
# one that never shards — exercises every _shards_for branch in one run.
CFG = StudyConfig(name="t", algorithms=("contour", "threshold"), sizes=(16,))


def _assert_identical(a, b):
    assert len(a.points) == len(b.points)
    for pa, pb in zip(a.points, b.points):
        assert pa.to_dict() == pb.to_dict()  # bitwise: dict holds raw floats


class TestShardTaskUnits:
    def test_supports_sharding_registry(self):
        assert supports_sharding("contour")
        assert supports_sharding("isovolume")
        assert not supports_sharding("threshold")
        with pytest.raises(KeyError):
            supports_sharding("nope")

    def test_shard_ledgers_merge_to_whole_job(self):
        whole = run_algorithm_ledger("clip", 16)
        parts = [run_algorithm_ledger_shard("clip", 16, s, 4) for s in range(4)]
        assert merge_shard_ledgers(parts) == whole

    def test_execute_shard_task_matches_direct_call(self):
        task = ShardTask(
            algorithm="contour", size=16, dataset_kind="blobs", seed=7, shard=1, n_shards=3
        )
        assert execute_shard_task(task) == run_algorithm_ledger_shard(
            "contour", 16, 1, 3
        )


class TestEngineFanOut:
    def test_large_job_fans_out_and_matches_serial(self, tmp_path):
        serial = SweepEngine(n_cycles=2, workers=0).run(CFG)
        reg = MetricsRegistry()
        engine = SweepEngine(
            n_cycles=2,
            workers=2,
            shard_min_size=16,
            job_shards=3,
            metrics=reg,
        )
        _assert_identical(serial, engine.run(CFG))

        # contour@16 split 3 ways; threshold@16 ran whole.
        assert engine.stats.shard_tasks_run == 3
        assert engine.stats.profile_jobs_run == 2
        assert not engine.stats.fell_back_serial
        jobs = reg.counter("repro_profile_jobs_total", source="executed")
        shards = reg.counter("repro_profile_jobs_total", source="sharded")
        assert jobs.value == 2  # the merged group counts once
        assert shards.value == 3

    def test_single_shardable_job_still_uses_pool(self):
        """One job used to force serial; a shardable one now fans out."""
        cfg = StudyConfig(name="t", algorithms=("clip",), sizes=(16,))
        serial = SweepEngine(n_cycles=2, workers=0).run(cfg)
        engine = SweepEngine(
            n_cycles=2, workers=2, shard_min_size=16, metrics=MetricsRegistry()
        )
        _assert_identical(serial, engine.run(cfg))
        assert engine.stats.shard_tasks_run == 2  # job_shards defaults to pool width

    def test_below_min_size_runs_whole(self):
        engine = SweepEngine(
            n_cycles=2, workers=2, shard_min_size=64, metrics=MetricsRegistry()
        )
        engine.run(CFG)
        assert engine.stats.shard_tasks_run == 0
        assert engine.stats.profile_jobs_run == 2

    def test_profile_fn_override_disables_sharding(self):
        """The fault-injection hook must see whole jobs."""
        engine = SweepEngine(
            n_cycles=2,
            workers=2,
            shard_min_size=16,
            profile_fn=execute_profile_job,
        )
        job = ProfileJob(algorithm="contour", size=16, dataset_kind="blobs", seed=7)
        # Same callable object as the default keeps sharding on...
        assert engine._shards_for(job) > 1

        def wrapped(j):
            return execute_profile_job(j)

        engine._profile_fn = wrapped
        assert engine._shards_for(job) == 1

    def test_job_shards_validated(self):
        with pytest.raises(ValueError, match="job_shards"):
            SweepEngine(job_shards=0)
