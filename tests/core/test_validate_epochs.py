"""Piecewise (per-epoch) invariants for governed, time-varying caps."""

import dataclasses

import pytest

from repro.cloverleaf import step_profile
from repro.core.validate import PointValidator
from repro.insitu.governors import (
    CONTROL_METHODS,
    GovernedRuntime,
    PowerCapControl,
    SignalSample,
    SignalTrace,
    make_control,
    parse_governor,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def profile():
    return step_profile(32**3, 60)


@pytest.fixture(scope="module")
def validator(processor):
    return PointValidator(processor.spec)


def governed_epochs(processor, profile, *, control="power", n_epochs=8):
    # Pace the trace to simulated epoch length so the signal actually
    # moves between epochs; alternating samples guarantee cap changes.
    epoch_s = processor.run(profile, processor.spec.tdp_watts).time_s
    trace = SignalTrace(
        tuple(
            SignalSample(k * epoch_s, 250.0 if k % 2 else 50.0) for k in range(64)
        ),
        name="alternating",
    )
    runtime = GovernedRuntime(
        processor,
        parse_governor("step:100=0.7:200=0.4"),
        make_control(control, processor.spec),
        trace,
        metrics=MetricsRegistry(),
    )
    return runtime.run(profile, n_epochs).epochs


class TestEpochInvariantsHold:
    @pytest.mark.parametrize("control", sorted(CONTROL_METHODS))
    def test_governed_traces_validate_clean(self, processor, profile, validator, control):
        epochs = governed_epochs(processor, profile, control=control)
        assert validator.check_epochs(epochs) == {}

    def test_varying_caps_are_fine_piecewise(self, processor, profile, validator):
        """The whole point of the restatement: a run whose cap changes
        epoch to epoch would violate a *global* monotone walk read as one
        group, but is legitimate when each epoch is checked against its
        own cap."""
        epochs = governed_epochs(processor, profile)
        assert len({round(e.cap_w, 6) for e in epochs}) >= 2  # caps really varied
        assert validator.check_epochs(epochs) == {}


class TestEpochViolationsCaught:
    def test_power_over_epoch_cap_quarantined(self, processor, profile, validator):
        epochs = list(governed_epochs(processor, profile))
        bad = dataclasses.replace(epochs[3], power_w=epochs[3].cap_w + 50.0)
        epochs[3] = bad
        found = validator.check_epochs(epochs)
        key = (bad.control, bad.epoch, bad.cap_w)
        assert key in found
        assert any(v.code == "power-over-cap" for v in found[key])

    def test_nonmonotone_epoch_quarantined(self, processor, profile, validator):
        """A genuine violation inside one epoch — running *faster* at a
        *lower* granted capacity — is still caught across epochs."""
        epochs = list(governed_epochs(processor, profile))
        lowest = min(epochs, key=lambda e: e.fraction)
        fastest = min(e.time_s for e in epochs)
        assert lowest.fraction < max(e.fraction for e in epochs)
        tampered = dataclasses.replace(lowest, time_s=fastest * 0.5)
        epochs[epochs.index(lowest)] = tampered
        found = validator.check_epochs(epochs)
        key = (tampered.control, tampered.epoch, tampered.cap_w)
        assert key in found
        assert any(v.code == "runtime-not-monotone" for v in found[key])

    def test_same_setting_disagreement_quarantined(self, processor, profile, validator):
        runtime = GovernedRuntime(
            processor,
            parse_governor("const:0.8"),
            PowerCapControl(processor.spec),
            SignalTrace.constant(0.0),
            metrics=MetricsRegistry(),
        )
        epochs = list(runtime.run(profile, 4).epochs)
        # Same programmed setting every epoch, but one record's time was
        # corrupted: deterministic replay cannot disagree legitimately.
        epochs[2] = dataclasses.replace(epochs[2], time_s=epochs[2].time_s * 1.5)
        found = validator.check_epochs(epochs)
        codes = {v.code for vs in found.values() for v in vs}
        assert "epoch-inconsistent" in codes

    def test_nonfinite_and_nonpositive_epochs_quarantined(
        self, processor, profile, validator
    ):
        epochs = list(governed_epochs(processor, profile, n_epochs=4))
        epochs[0] = dataclasses.replace(epochs[0], energy_j=float("nan"))
        epochs[1] = dataclasses.replace(epochs[1], power_w=-1.0)
        found = validator.check_epochs(epochs)
        codes = {v.code for vs in found.values() for v in vs}
        assert {"non-finite", "non-positive"} <= codes
