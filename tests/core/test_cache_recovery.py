"""Torn-file recovery: truncated JSON caches recover instead of raising."""

import json

import pytest

from repro.core.pricing import LedgerCache
from repro.core.profiles import ProfileCache
from repro.obs.metrics import MetricsRegistry


class TestProfileCacheRecovery:
    def test_truncated_file_starts_empty_with_sidecar(self, tmp_path):
        path = tmp_path / "profiles.json"
        warm = ProfileCache(path)
        warm.put("threshold", 12, {"flops": 1.0})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn mid-record

        cache = ProfileCache(path)
        assert len(cache) == 0
        assert (tmp_path / "profiles.json.corrupt").exists()
        assert not path.exists()  # damage moved aside, not reparsed forever

    def test_recovered_cache_is_usable_and_persists(self, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text('{"format": "repro-profile-cache", "version')
        cache = ProfileCache(path)
        cache.put("threshold", 12, {"flops": 2.0})
        assert ProfileCache(path).get("threshold", 12) == {"flops": 2.0}

    def test_intact_wrong_format_file_still_raises(self, tmp_path):
        # An intact file of the wrong format must not be destroyed.
        path = tmp_path / "profiles.json"
        path.write_text(json.dumps({"format": "something-else", "entries": {}}))
        with pytest.raises(ValueError, match="not a profile cache"):
            ProfileCache(path)
        assert path.exists()

    def test_too_new_version_still_raises(self, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text(json.dumps({
            "format": ProfileCache.FORMAT,
            "version": ProfileCache.VERSION + 1,
            "entries": {},
        }))
        with pytest.raises(ValueError, match="newer than supported"):
            ProfileCache(path)


class TestLedgerCacheRecovery:
    def test_truncated_file_starts_empty_with_sidecar(self, tmp_path):
        path = tmp_path / "ledgers.json"
        path.write_text('{"format": "repro-ledger-cach')
        cache = LedgerCache(path, metrics=MetricsRegistry())
        assert len(cache) == 0
        assert (tmp_path / "ledgers.json.corrupt").exists()
        assert not path.exists()

    def test_intact_wrong_format_file_still_raises(self, tmp_path):
        path = tmp_path / "ledgers.json"
        path.write_text(json.dumps({"format": "something-else", "entries": {}}))
        with pytest.raises(ValueError, match="not a ledger cache"):
            LedgerCache(path, metrics=MetricsRegistry())
        assert path.exists()
