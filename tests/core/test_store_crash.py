"""Crash safety: a writer SIGKILLed mid-append never corrupts the store."""

import json
import subprocess
import sys
from pathlib import Path

from repro.core import ResultStore, StudyConfig, SweepEngine

CFG = StudyConfig(name="t", algorithms=("threshold",), sizes=(12,))

# The child appends complete points through the real ResultStore API,
# writes HALF of the next record raw (a write(2) cut short by the kill),
# then SIGKILLs itself — no atexit, no flush-on-close, no cleanup.
_WRITER = """
import json, os, signal, sys
sys.path.insert(0, {src!r})
from repro.core.runner import RunPoint
from repro.core.store import ResultStore

spec = json.load(open({spec_path!r}))
store = ResultStore({store_path!r})
store.ensure_compatible(spec["fingerprint"], spec["meta"])
points = [RunPoint.from_dict(d) for d in spec["points"]]
for p in points[: spec["complete"]]:
    store.append(p)
torn = points[spec["complete"]].to_jsonl()
with open({store_path!r}, "a") as fh:
    fh.write(torn[: len(torn) // 2])
    fh.flush()
    os.fsync(fh.fileno())
os.kill(os.getpid(), signal.SIGKILL)
"""


def _kill_writer_mid_append(tmp_path, n_complete: int):
    """Run the child; returns (store_path, the points it was given)."""
    src = str(Path(__file__).resolve().parents[2] / "src")
    engine = SweepEngine(n_cycles=2, workers=0)
    reference = engine.run(CFG)
    spec_path = tmp_path / "spec.json"
    store_path = tmp_path / "s.jsonl"
    spec_path.write_text(
        json.dumps(
            {
                "fingerprint": engine.fingerprint(),
                "meta": {"config_name": CFG.name},
                "points": [p.to_dict() for p in reference.points],
                "complete": n_complete,
            }
        )
    )
    script = _WRITER.format(src=src, spec_path=str(spec_path), store_path=str(store_path))
    proc = subprocess.run([sys.executable, "-c", script], capture_output=True, text=True)
    assert proc.returncode == -9, proc.stderr  # died by SIGKILL, not by error
    return store_path, reference.points


def test_reload_recovers_every_complete_point(tmp_path):
    store_path, points = _kill_writer_mid_append(tmp_path, n_complete=5)
    store = ResultStore(store_path)
    assert store.completed_keys() == {p.key for p in points[:5]}
    assert [p.to_dict() for p in store] == [p.to_dict() for p in points[:5]]


def test_append_and_resume_after_crash(tmp_path):
    store_path, points = _kill_writer_mid_append(tmp_path, n_complete=5)
    # Recovery truncated the torn record; appends continue cleanly...
    store = ResultStore(store_path)
    store.append(points[5])
    assert ResultStore(store_path).completed_keys() == {p.key for p in points[:6]}
    # ...and a resumed sweep completes the grid bitwise identically.
    engine = SweepEngine(n_cycles=2, workers=0, store=store_path)
    resumed = engine.run(CFG)
    assert engine.stats.points_resumed == 6
    assert [p.to_dict() for p in resumed.points] == [p.to_dict() for p in points]


def test_crash_before_any_complete_point(tmp_path):
    """Even the very first record torn in half leaves a usable store."""
    store_path, points = _kill_writer_mid_append(tmp_path, n_complete=0)
    store = ResultStore(store_path)
    assert len(store) == 0
    engine = SweepEngine(n_cycles=2, workers=0, store=store_path)
    result = engine.run(CFG)
    assert [p.to_dict() for p in result.points] == [p.to_dict() for p in points]
