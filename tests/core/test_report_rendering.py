"""Report rendering details: red-cell markers and table structure."""

import pytest

from repro.core import (
    StudyConfig,
    StudyRunner,
    render_slowdown_table,
    render_table1,
)


@pytest.fixture(scope="module")
def result():
    runner = StudyRunner(n_cycles=3)
    cfg = StudyConfig(name="r", algorithms=("contour", "volume"), sizes=(16,))
    return runner.run_config(cfg)


class TestRedMarkers:
    def test_table1_marks_exactly_one_cap(self, result):
        text = render_table1(result, algorithm="contour", size=16)
        rows = [l for l in text.splitlines() if l.strip().endswith("X") or "X*" in l]
        starred = [l for l in text.splitlines() if "X*" in l]
        assert len(starred) == 1

    def test_table1_star_is_on_slowed_row(self, result):
        text = render_table1(result, algorithm="contour", size=16)
        starred = next(l for l in text.splitlines() if "X*" in l)
        tratio = float(starred.split("X*")[0].split()[-1])
        assert tratio >= 1.1

    def test_slowdown_table_one_star_per_slowed_algorithm(self, result):
        text = render_slowdown_table(result, size=16)
        for alg in ("contour", "volume"):
            line = next(l for l in text.splitlines() if l.strip().startswith(alg))
            assert line.count("*") <= 1

    def test_legend_present(self, result):
        for text in (
            render_table1(result, algorithm="contour", size=16),
            render_slowdown_table(result, size=16),
        ):
            assert "10%" in text


class TestStructure:
    def test_table1_has_nine_cap_rows(self, result):
        text = render_table1(result, algorithm="contour", size=16)
        cap_rows = [l for l in text.splitlines() if l.strip().endswith("X") or "X*" in l]
        assert len([l for l in text.splitlines() if "W " in l and "GHz" in l]) == 9

    def test_slowdown_table_two_rows_per_algorithm(self, result):
        text = render_slowdown_table(result, size=16)
        assert sum(1 for l in text.splitlines() if "Tratio" in l) == 2
        assert sum(1 for l in text.splitlines() if "Fratio" in l) == 2

    def test_pratio_header_row(self, result):
        text = render_slowdown_table(result, size=16)
        pr = next(l for l in text.splitlines() if "Pratio" in l)
        assert "1.0X" in pr and "3.0X" in pr
