"""Command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    # Keep CLI runs tiny and isolated from the repo-level cache.
    monkeypatch.setenv("REPRO_MAX_SIZE", "16")
    return tmp_path


class TestCli:
    def test_table1(self, capsys, small):
        assert main(["table1", "--cache", str(small / "c.pkl"), "--cycles", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "120W" in out

    def test_table2_with_csv(self, capsys, small):
        rc = main([
            "table2", "--cache", str(small / "c.pkl"), "--cycles", "2",
            "--csv", str(small / "out"),
        ])
        assert rc == 0
        assert (small / "out" / "table2.csv").exists()
        out = capsys.readouterr().out
        assert "volume" in out

    def test_classify(self, capsys, small):
        assert main(["classify", "--cache", str(small / "c.pkl"), "--cycles", "2"]) == 0
        out = capsys.readouterr().out
        assert "power opportunity" in out or "power sensitive" in out

    def test_max_size_flag(self, capsys, small, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_SIZE")
        assert main([
            "table1", "--max-size", "12", "--cache", "", "--cycles", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "@ 12^3" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_help_documents_repro_max_size(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "REPRO_MAX_SIZE" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_runs_and_reports_throughput(self, capsys, small):
        rc = main([
            "sweep", "phase1", "--workers", "0", "--cycles", "2",
            "--store", str(small / "sweep.jsonl"), "--cache", str(small / "c.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "9 configurations" in out
        assert "pts/s" in out
        assert "1 profiled" in out
        assert (small / "sweep.jsonl").exists()

    def test_sweep_resumes_from_store(self, capsys, small):
        argv = [
            "sweep", "phase1", "--workers", "0", "--cycles", "2",
            "--store", str(small / "sweep.jsonl"), "--cache", str(small / "c.json"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 profiled" in out
        assert "9 resumed from store" in out

    def test_sweep_no_resume_recomputes(self, capsys, small):
        argv = [
            "sweep", "phase1", "--workers", "0", "--cycles", "2",
            "--store", str(small / "sweep.jsonl"), "--cache", str(small / "c.json"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--no-resume"]) == 0
        out = capsys.readouterr().out
        assert "0 resumed from store" in out

    def test_sweep_parallel_workers(self, capsys, small):
        rc = main([
            "sweep", "phase1", "--workers", "2", "--cycles", "1",
            "--store", str(small / "p.jsonl"), "--cache", "",
        ])
        assert rc == 0
        assert "2 workers" in capsys.readouterr().out

    def test_sweep_rejects_unknown_phase(self, small):
        with pytest.raises(SystemExit):
            main(["sweep", "phase9"])


class TestAdviseCommand:
    def test_single_query_renders_recommendation(self, capsys, small):
        rc = main([
            "advise", "threshold", "12",
            "--cache", str(small / "ledgers.json"), "--cycles", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "threshold@12^3" in out
        assert "recommended cap" in out

    def test_json_output_round_trips(self, capsys, small):
        import json

        rc = main([
            "advise", "contour", "12", "--cap", "60", "--json",
            "--cache", str(small / "ledgers.json"), "--cycles", "2",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["algorithm"] == "contour"
        assert doc["cap_w"] == 60.0
        from repro import api

        assert api.AdviseResponse.from_dict(doc).point.cap_w == 60.0

    def test_requires_algorithm_and_size(self, capsys, small):
        assert main(["advise", "--cache", ""]) == 2
        assert "need ALGORITHM and SIZE" in capsys.readouterr().err

    def test_serve_loop_protocol(self, capsys, small, monkeypatch):
        import io
        import json

        lines = "\n".join([
            json.dumps({"algorithm": "threshold", "size": 12, "id": 1}),
            "",  # blank lines are skipped
            json.dumps({"algorithm": "nope", "size": 12, "id": 2}),
            json.dumps({"algorithm": "threshold", "size": 12, "cap_w": 60.0}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        rc = main([
            "advise", "--serve",
            "--cache", str(small / "ledgers.json"), "--cycles", "2",
        ])
        assert rc == 0
        out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(out) == 3
        assert out[0]["ok"] and out[0]["id"] == 1
        assert out[0]["recommended_cap_w"] >= 40.0
        assert not out[1]["ok"] and out[1]["id"] == 2
        assert "nope" in out[1]["error"]
        assert out[2]["ok"] and out[2]["cap_w"] == 60.0 and "id" not in out[2]

    def test_cache_persists_across_invocations(self, capsys, small):
        argv = [
            "advise", "volume", "12", "--json",
            "--cache", str(small / "ledgers.json"), "--cycles", "2",
        ]
        import json

        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert not first["cache_hit"]
        assert second["cache_hit"]
        assert second["recommended_cap_w"] == first["recommended_cap_w"]


class TestTelemetryCommands:
    def _traced_sweep(self, small):
        store = small / "sweep.jsonl"
        trace = small / "sweep.trace.jsonl"
        rc = main([
            "sweep", "phase1", "--workers", "0", "--cycles", "2",
            "--store", str(store), "--cache", str(small / "c.json"),
            "--trace", str(trace), "--samples",
        ])
        assert rc == 0
        return store, trace

    def test_sweep_writes_telemetry_artifacts(self, capsys, small):
        store, trace = self._traced_sweep(small)
        out = capsys.readouterr().out
        assert "trace:" in out and "samples:" in out
        assert trace.exists()
        assert store.with_suffix(".samples.jsonl").exists()
        assert store.with_suffix(".metrics.json").exists()
        assert store.with_suffix(".manifest.json").exists()

    def test_trace_command_prints_phase_breakdown(self, capsys, small):
        _, trace = self._traced_sweep(small)
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "profile-job" in out and "price-group" in out
        assert "phases" in out

    def test_trace_command_name_filter_and_events(self, capsys, small):
        _, trace = self._traced_sweep(small)
        capsys.readouterr()
        assert main(["trace", str(trace), "--name", "kernel", "--events"]) == 0
        out = capsys.readouterr().out
        assert "kernel" in out
        assert "profile-job" not in out

    def test_metrics_command_prometheus_and_json(self, capsys, small):
        store, _ = self._traced_sweep(small)
        metrics = store.with_suffix(".metrics.json")
        capsys.readouterr()
        assert main(["metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_points_total counter" in out
        assert 'repro_points_total{outcome="computed"}' in out
        assert main(["metrics", str(metrics), "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert '"format": "repro-metrics"' in out


class TestAdviseServeHardening:
    def _serve(self, monkeypatch, small, lines):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        return main([
            "advise", "--serve",
            "--cache", str(small / "ledgers.json"), "--cycles", "2",
        ])

    def test_oversized_line_is_answered_and_loop_survives(
        self, capsys, small, monkeypatch
    ):
        import json

        huge = json.dumps({"algorithm": "threshold", "size": 12, "pad": "x" * 70_000})
        good = json.dumps({"algorithm": "threshold", "size": 12, "id": 9})
        rc = self._serve(monkeypatch, small, huge + "\n" + good + "\n")
        assert rc == 0
        out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(out) == 2
        assert not out[0]["ok"] and "exceeds" in out[0]["error"]
        assert out[1]["ok"] and out[1]["id"] == 9  # the loop kept serving

    def test_invalid_json_is_answered_not_fatal(self, capsys, small, monkeypatch):
        import json

        good = json.dumps({"algorithm": "threshold", "size": 12})
        rc = self._serve(monkeypatch, small, "{truncated\n" + good + "\n")
        assert rc == 0
        out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert not out[0]["ok"]
        assert out[1]["ok"]

    def test_errors_are_counted_by_reason(self, small, monkeypatch, capsys):
        from repro.obs.metrics import get_registry

        counter = get_registry().counter(
            "repro_advise_errors_total", reason="invalid-json"
        )
        before = counter.value
        assert self._serve(monkeypatch, small, "nope\n") == 0
        capsys.readouterr()
        assert counter.value == before + 1


class TestServeAndJobsCommands:
    def test_jobs_submit_then_serve_drain_completes(self, capsys, small):
        import json

        spool = str(small / "spool")
        rc = main(["jobs", spool, "--submit", "phase1", "--cycles", "2",
                   "--cache", ""])
        assert rc == 0
        receipt = json.loads(capsys.readouterr().out)
        assert receipt["ok"] and receipt["status"] == "queued"

        rc = main(["serve", spool, "--drain", "--lease", "5", "--cycles", "2",
                   "--cache", ""])
        assert rc == 0
        assert "1 completed, 0 failed" in capsys.readouterr().out

        rc = main(["jobs", spool, "--status", receipt["job_id"], "--cache", ""])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["status"] == "completed" and snap["points"] > 0

    def test_jobs_cancel_and_report(self, capsys, small):
        import json

        spool = str(small / "spool")
        assert main(["jobs", spool, "--submit", "phase1", "--cache", ""]) == 0
        job_id = json.loads(capsys.readouterr().out)["job_id"]
        assert main(["jobs", spool, "--cancel", job_id, "--report",
                     "--cache", ""]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["op"] == "cancel" and lines[0]["status"] == "cancelled"
        assert lines[1]["op"] == "report"
        assert lines[1]["counts"]["cancelled"] == 1

    def test_jobs_unknown_id_exits_nonzero(self, capsys, small):
        import json

        rc = main(["jobs", str(small / "spool"), "--status", "job-nope",
                   "--cache", ""])
        assert rc == 1
        assert not json.loads(capsys.readouterr().out)["ok"]

    def test_jobs_stdin_protocol_survives_bad_requests(
        self, capsys, small, monkeypatch
    ):
        import io
        import json

        spool = str(small / "spool")
        lines = "\n".join([
            json.dumps({"op": "submit", "study": "phase1", "id": 1}),
            "not json at all",
            json.dumps({"op": "bogus", "id": 2}),
            json.dumps({"op": "report", "id": 3}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        rc = main(["jobs", spool, "--cycles", "2", "--cache", ""])
        assert rc == 0
        out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(out) == 4
        assert out[0]["ok"] and out[0]["id"] == 1 and out[0]["status"] == "queued"
        assert not out[1]["ok"]
        assert not out[2]["ok"] and "unknown op" in out[2]["error"]
        assert out[3]["ok"] and out[3]["id"] == 3
        assert out[3]["counts"]["pending"] == 1

    def test_chaos_service_plan_requires_service_flag(self, capsys, small):
        rc = main(["chaos", "--plan", "torn", "--cache", ""])
        assert rc == 2
        assert "--service" in capsys.readouterr().err


class TestChaosServiceCommand:
    def test_service_drill_reports_survival(self, capsys, small):
        rc = main([
            "chaos", "--service", "--plan", "torn",
            "--spool", str(small / "spool"), "--jobs", "1", "--cycles", "2",
            "--cache", "",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "service chaos report" in out
        assert "bitwise identical" in out
