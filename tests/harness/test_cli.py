"""Command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    # Keep CLI runs tiny and isolated from the repo-level cache.
    monkeypatch.setenv("REPRO_MAX_SIZE", "16")
    return tmp_path


class TestCli:
    def test_table1(self, capsys, small):
        assert main(["table1", "--cache", str(small / "c.pkl"), "--cycles", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "120W" in out

    def test_table2_with_csv(self, capsys, small):
        rc = main([
            "table2", "--cache", str(small / "c.pkl"), "--cycles", "2",
            "--csv", str(small / "out"),
        ])
        assert rc == 0
        assert (small / "out" / "table2.csv").exists()
        out = capsys.readouterr().out
        assert "volume" in out

    def test_classify(self, capsys, small):
        assert main(["classify", "--cache", str(small / "c.pkl"), "--cycles", "2"]) == 0
        out = capsys.readouterr().out
        assert "power opportunity" in out or "power sensitive" in out

    def test_max_size_flag(self, capsys, small, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_SIZE")
        assert main([
            "table1", "--max-size", "12", "--cache", "", "--cycles", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "@ 12^3" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])
