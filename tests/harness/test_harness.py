"""Experiment harness and emitters."""

import os

import pytest

from repro.core import StudyConfig, StudyRunner
from repro.harness import (
    ExperimentHarness,
    effective_sizes,
    result_to_csv,
    result_to_markdown,
    series_to_csv,
)
from repro.core.report import FigureSeries


@pytest.fixture()
def small_result():
    runner = StudyRunner(n_cycles=2)
    cfg = StudyConfig(name="t", algorithms=("threshold",), sizes=(16,))
    return runner.run_config(cfg)


class TestEffectiveSizes:
    def test_no_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_SIZE", raising=False)
        assert effective_sizes((32, 64)) == (32, 64)

    def test_capped(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "64")
        assert effective_sizes((32, 64, 128, 256)) == (32, 64)

    def test_cap_below_all_substitutes_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "8")
        assert effective_sizes((32, 64)) == (8,)


class TestHarnessCache:
    def test_profile_persisted_and_reloaded(self, tmp_path):
        cache = tmp_path / "counts.pkl"
        h1 = ExperimentHarness(cache, n_cycles=2)
        p1 = h1.profile("threshold", 12)
        assert cache.exists()

        h2 = ExperimentHarness(cache, n_cycles=2)
        p2 = h2.profile("threshold", 12)
        assert p2.total_instructions == pytest.approx(p1.total_instructions)

    def test_cached_profile_matches_fresh(self, tmp_path):
        cache = tmp_path / "counts.pkl"
        h = ExperimentHarness(cache, n_cycles=3)
        fresh = h.profile("clip", 12)
        h2 = ExperimentHarness(cache, n_cycles=3)
        cached = h2.profile("clip", 12)
        assert [s.name for s in cached] == [s.name for s in fresh]
        assert cached.total_instructions == pytest.approx(fresh.total_instructions)

    def test_no_cache_path(self):
        h = ExperimentHarness(None, n_cycles=1)
        assert h.profile("threshold", 12).total_instructions > 0

    def test_sweep_uses_cache(self, tmp_path):
        h = ExperimentHarness(tmp_path / "c.pkl", n_cycles=1)
        cfg = StudyConfig(name="s", algorithms=("threshold",), sizes=(12,))
        res = h.sweep(cfg)
        assert len(res.points) == 9


class TestEmitters:
    def test_csv_roundtrip_fields(self, small_result, tmp_path):
        text = result_to_csv(small_result, tmp_path / "r.csv")
        lines = text.strip().splitlines()
        assert lines[0].startswith("algorithm,size,cap_w")
        assert len(lines) == 1 + len(small_result.points)
        assert (tmp_path / "r.csv").read_text() == text

    def test_markdown_table(self, small_result):
        md = result_to_markdown(small_result, size=16)
        assert md.startswith("| algorithm |")
        assert "threshold" in md
        assert "120W" in md

    def test_series_csv(self, tmp_path):
        s = {"a": FigureSeries("a", (1.0, 2.0), (3.0, 4.0))}
        text = series_to_csv(s, tmp_path / "s.csv")
        assert "label,x,y" in text
        assert "a,1,3" in text
