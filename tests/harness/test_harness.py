"""Experiment harness, ledger cache (JSON + pickle migration), emitters."""

import pickle

import pytest

from repro.core import StudyConfig, StudyRunner
from repro.core.profiles import ProfileCache
from repro.harness import (
    ExperimentHarness,
    TableHarness,
    effective_sizes,
    result_to_csv,
    result_to_markdown,
    series_to_csv,
)
from repro.core.report import FigureSeries


@pytest.fixture()
def small_result():
    runner = StudyRunner(n_cycles=2)
    cfg = StudyConfig(name="t", algorithms=("threshold",), sizes=(16,))
    return runner.run_config(cfg)


class TestEffectiveSizes:
    def test_no_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_SIZE", raising=False)
        assert effective_sizes((32, 64)) == (32, 64)

    def test_capped(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "64")
        assert effective_sizes((32, 64, 128, 256)) == (32, 64)

    def test_cap_below_all_substitutes_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "8")
        assert effective_sizes((32, 64)) == (8,)

    def test_zero_and_blank_disable_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "0")
        assert effective_sizes((32, 64)) == (32, 64)
        monkeypatch.setenv("REPRO_MAX_SIZE", "  ")
        assert effective_sizes((32, 64)) == (32, 64)

    @pytest.mark.parametrize("bad", ["64.5", "big", "1e3"])
    def test_non_integer_raises_clear_error(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_MAX_SIZE", bad)
        with pytest.raises(ValueError, match="REPRO_MAX_SIZE must be a whole number"):
            effective_sizes((32, 64))


class TestHarnessCache:
    def test_profile_persisted_and_reloaded(self, tmp_path):
        cache = tmp_path / "counts.json"
        h1 = TableHarness(cache, n_cycles=2)
        p1 = h1.profile("threshold", 12)
        assert cache.exists()

        h2 = TableHarness(cache, n_cycles=2)
        p2 = h2.profile("threshold", 12)
        assert p2.total_instructions == pytest.approx(p1.total_instructions)

    def test_cached_profile_matches_fresh(self, tmp_path):
        cache = tmp_path / "counts.json"
        h = TableHarness(cache, n_cycles=3)
        fresh = h.profile("clip", 12)
        h2 = TableHarness(cache, n_cycles=3)
        cached = h2.profile("clip", 12)
        assert [s.name for s in cached] == [s.name for s in fresh]
        # Ledger reconstruction is the single pricing path: exact, not approx.
        assert cached.total_instructions == fresh.total_instructions

    def test_no_cache_path(self):
        h = TableHarness(None, n_cycles=1)
        assert h.profile("threshold", 12).total_instructions > 0

    def test_sweep_uses_cache(self, tmp_path):
        h = TableHarness(tmp_path / "c.json", n_cycles=1)
        cfg = StudyConfig(name="s", algorithms=("threshold",), sizes=(12,))
        res = h.sweep(cfg)
        assert len(res.points) == 9

    def test_pkl_path_redirects_to_json(self, tmp_path):
        """A legacy .pkl cache path transparently becomes its .json sibling."""
        h = TableHarness(tmp_path / "counts.pkl", n_cycles=1)
        h.profile("threshold", 12)
        assert h.cache_path == tmp_path / "counts.json"
        assert h.cache_path.exists()
        assert not (tmp_path / "counts.pkl").exists()

    def test_legacy_pickle_cache_migrates_once(self, tmp_path):
        # Record a ledger the old way: pickle of {(alg, size): counts}.
        fresh = TableHarness(None, n_cycles=2)
        expected = fresh.profile("threshold", 12)
        raw = fresh.engine.profile_cache.get("threshold", 12)
        legacy = tmp_path / "counts.pkl"
        legacy.write_bytes(pickle.dumps({("threshold", 12): raw}))

        h = TableHarness(legacy, n_cycles=2)
        assert (tmp_path / "counts.json").exists()  # one-time migration
        migrated = h.profile("threshold", 12)
        assert migrated.total_instructions == expected.total_instructions
        # The original pickle is left untouched.
        assert legacy.exists()

    def test_cache_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "c.json"
        p.write_text('{"format": "something-else", "entries": {}}')
        with pytest.raises(ValueError, match="not a profile cache"):
            ProfileCache(p)

    def test_corrupt_legacy_pickle_warns_and_moves_aside(self, tmp_path, caplog):
        import logging

        legacy = tmp_path / "counts.pkl"
        legacy.write_bytes(b"\x80\x04 definitely not a pickle")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            cache = ProfileCache(legacy)
        # Migration failed loudly: a warning fired, the unreadable file
        # was renamed to its .corrupt sidecar, and the cache starts empty.
        assert "profile-cache-corrupt" in caplog.text
        assert not legacy.exists()
        corrupt = tmp_path / "counts.pkl.corrupt"
        assert corrupt.exists()
        assert corrupt.read_bytes().startswith(b"\x80\x04")
        assert len(cache) == 0
        # The cache still works: record and reload normally.
        cache.put("threshold", 12, {"flops": 1.0})
        assert ProfileCache(tmp_path / "counts.json").get("threshold", 12) == {
            "flops": 1.0
        }


class TestDeprecatedShim:
    def test_experiment_harness_warns_but_works(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            h = ExperimentHarness(tmp_path / "c.json", n_cycles=1)
        assert isinstance(h, TableHarness)
        assert h.profile("threshold", 12).total_instructions > 0


class TestEmitters:
    def test_csv_roundtrip_fields(self, small_result, tmp_path):
        text = result_to_csv(small_result, tmp_path / "r.csv")
        lines = text.strip().splitlines()
        assert lines[0].startswith("algorithm,size,cap_w")
        assert len(lines) == 1 + len(small_result.points)
        assert (tmp_path / "r.csv").read_text() == text

    def test_markdown_table(self, small_result):
        md = result_to_markdown(small_result, size=16)
        assert md.startswith("| algorithm |")
        assert "threshold" in md
        assert "120W" in md

    def test_series_csv(self, tmp_path):
        s = {"a": FigureSeries("a", (1.0, 2.0), (3.0, 4.0))}
        text = series_to_csv(s, tmp_path / "s.csv")
        assert "label,x,y" in text
        assert "a,1,3" in text
