"""CSV round-trips: fractional caps survive emit → parse bitwise."""

import pytest

from repro.core import StudyConfig, SweepEngine
from repro.harness import result_from_csv, result_to_csv

# 62.5 W: a cap with no exact decimal-1 representation of its repr path
# through ``%.0f`` — the regression this file guards against.
CFG = StudyConfig(
    name="frac", algorithms=("threshold",), sizes=(12,), caps_w=(120.0, 62.5, 55.25)
)


@pytest.fixture(scope="module")
def result():
    return SweepEngine(n_cycles=2, workers=0).run(CFG)


class TestFractionalCapRoundTrip:
    def test_cap_column_is_full_precision(self, result):
        text = result_to_csv(result)
        assert ",62.5," in text
        assert ",55.25," in text
        assert ",62," not in text  # the old %.0f rendering

    def test_round_trip_is_bitwise_on_caps(self, result):
        back = result_from_csv(result_to_csv(result), config_name="frac")
        assert [p.cap_w for p in back.points] == [p.cap_w for p in result.points]
        assert [p.key for p in back.points] == [p.key for p in result.points]

    def test_filter_finds_fractional_cap_after_round_trip(self, result):
        back = result_from_csv(result_to_csv(result))
        hits = back.filter(cap_w=62.5)
        assert len(hits) == 1
        assert hits[0].cap_w == 62.5
        assert back.filter(algorithm="threshold", cap_w=55.25)

    def test_select_tolerates_last_ulp_wobble(self, result):
        wobbled = 62.5 * (1 + 1e-12)
        assert result.select(cap_w=wobbled) == result.select(cap_w=62.5)

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "frac.csv"
        result_to_csv(result, path)
        back = result_from_csv(path)
        assert back.config_name == "frac"
        assert [p.to_dict()["cap_w"] for p in back.points] == [
            p.cap_w for p in result.points
        ]

    def test_measurement_columns_carry_emitted_precision(self, result):
        back = result_from_csv(result_to_csv(result))
        for orig, rt in zip(result.points, back.points):
            assert rt.time_s == pytest.approx(orig.time_s, abs=1e-6)
            assert rt.power_w == pytest.approx(orig.power_w, abs=1e-3)
            assert rt.tratio == pytest.approx(orig.tratio, abs=1e-4)

    def test_foreign_csv_rejected(self):
        with pytest.raises(ValueError, match="missing column"):
            result_from_csv("a,b\n1,2\n")
