"""Pragma semantics: justified suppression, audited abuse, docstring inertness."""

from __future__ import annotations

from repro.lint import check_source

_VIOLATION = 'path.write_text(text)'


def _codes(findings):
    return [f.code for f in findings]


def test_justified_trailing_pragma_suppresses():
    src = f"def f(path, text):\n    {_VIOLATION}  # repro: lint-ignore[RPR001]: fixture damage on purpose\n"
    assert check_source(src) == []


def test_justified_standalone_pragma_covers_next_line():
    src = (
        "def f(path, text):\n"
        "    # repro: lint-ignore[RPR001]: fixture damage on purpose\n"
        f"    {_VIOLATION}\n"
    )
    assert check_source(src) == []


def test_unjustified_pragma_suppresses_nothing_and_is_flagged():
    src = f"def f(path, text):\n    {_VIOLATION}  # repro: lint-ignore[RPR001]\n"
    findings = check_source(src)
    assert sorted(_codes(findings)) == ["RPR000", "RPR001"]
    assert any("no justification" in f.message for f in findings)


def test_pragma_for_wrong_rule_does_not_suppress():
    src = f"def f(path, text):\n    {_VIOLATION}  # repro: lint-ignore[RPR003]: wrong rule\n"
    findings = check_source(src)
    # The RPR001 finding survives and the pragma is stale (suppressed nothing).
    assert sorted(_codes(findings)) == ["RPR000", "RPR001"]
    assert any("stale" in f.message for f in findings)


def test_unknown_rule_code_is_flagged():
    src = "x = 1  # repro: lint-ignore[RPR999]: no such rule\n"
    findings = check_source(src)
    assert _codes(findings) == ["RPR000"]
    assert "unknown rule" in findings[0].message


def test_empty_code_list_is_flagged():
    src = "x = 1  # repro: lint-ignore[]: why even\n"
    findings = check_source(src)
    assert _codes(findings) == ["RPR000"]
    assert "no rule codes" in findings[0].message


def test_framework_findings_cannot_be_suppressed():
    src = "x = 1  # repro: lint-ignore[RPR000]: nice try\n"
    findings = check_source(src)
    assert _codes(findings) == ["RPR000"]
    assert "cannot be suppressed" in findings[0].message


def test_stale_pragma_is_flagged():
    src = "x = 1  # repro: lint-ignore[RPR001]: nothing here to excuse\n"
    findings = check_source(src)
    assert _codes(findings) == ["RPR000"]
    assert "stale" in findings[0].message


def test_pragma_text_in_docstring_is_inert():
    src = (
        '"""Example: x  # repro: lint-ignore[RPR001]: docstring only."""\n'
        "x = 1\n"
    )
    assert check_source(src) == []


def test_one_pragma_may_cover_multiple_rules():
    src = (
        "import pickle\n"
        "def f(path, obj):\n"
        "    path.write_text(pickle.dumps(obj))  "
        "# repro: lint-ignore[RPR001, RPR003]: exercising both escapes\n"
    )
    assert check_source(src) == []
