"""``repro lint`` / ``repro doctor --lint`` exit codes and artifacts."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

BAD = "def f(path, text):\n    path.write_text(text)\n"


def test_lint_clean_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_lint_findings_exit_one(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(BAD)
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "1 finding(s)" in out


def test_lint_json_report_artifact(tmp_path, capsys):
    artifact = tmp_path / "lint-report.json"
    assert main(["lint", "--format", "json", "--report", str(artifact)]) == 0
    on_stdout = json.loads(capsys.readouterr().out)
    on_disk = json.loads(artifact.read_text())
    assert on_stdout == on_disk
    assert on_disk["format"] == "repro-lint-report"
    assert on_disk["ok"] is True


def test_lint_stats_tables(capsys):
    assert main(["lint", "--stats"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR004", "RPR007"):
        assert code in out


def test_lint_update_baseline_roundtrip(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(BAD)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tmp_path), "--baseline", str(baseline), "--update-baseline"]) == 0
    capsys.readouterr()
    assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
    assert "grandfathered" in capsys.readouterr().out


def test_doctor_lint_runs_the_gate(capsys):
    assert main(["doctor", "--lint"]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_doctor_with_nothing_to_check_is_a_usage_error(capsys):
    assert main(["doctor"]) == 2
    assert "nothing to check" in capsys.readouterr().err


def test_doctor_lint_failure_propagates(tmp_path, capsys, monkeypatch):
    from repro import cli
    from repro.lint import lint_paths
    from repro.obs.metrics import MetricsRegistry

    (tmp_path / "mod.py").write_text(BAD)
    dirty = lint_paths([tmp_path], metrics=MetricsRegistry())
    monkeypatch.setattr(cli.api, "lint", lambda *a, **k: dirty)
    assert main(["doctor", "--lint"]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_unknown_rule_selection_is_an_error():
    from repro.lint import lint_paths

    with pytest.raises(KeyError):
        lint_paths(rules=("RPR999",))


def test_lint_changed_scopes_reporting(tmp_path, capsys, monkeypatch):
    from repro import cli

    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text(BAD)

    # Only `clean.py` is "changed": the dirty file's finding is out of scope.
    monkeypatch.setattr(cli, "_git_changed_files", lambda: [clean])
    assert main(["lint", "--changed", str(tmp_path)]) == 0
    assert "lint: clean" in capsys.readouterr().out

    monkeypatch.setattr(cli, "_git_changed_files", lambda: [dirty])
    assert main(["lint", "--changed", str(tmp_path)]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_lint_changed_with_no_changes_short_circuits(capsys, monkeypatch):
    from repro import cli

    monkeypatch.setattr(cli, "_git_changed_files", lambda: [])
    assert main(["lint", "--changed"]) == 0
    assert "no changed python files" in capsys.readouterr().out


def test_lint_changed_outside_git_is_a_usage_error(capsys, monkeypatch):
    from repro import cli

    monkeypatch.setattr(cli, "_git_changed_files", lambda: None)
    assert main(["lint", "--changed"]) == 2
    assert "requires a git checkout" in capsys.readouterr().err


def test_sanitize_runs_inner_command_and_reports(tmp_path, capsys):
    import json as _json

    from repro.lint import sanitizer

    artifact = tmp_path / "sanitizer.json"
    try:
        assert main(["sanitize", "--show", "--report", str(artifact), "lint"]) == 0
    finally:
        sanitizer.uninstall()
        sanitizer.reset()
    out = capsys.readouterr().out
    assert "lint: clean" in out and "sanitizer:" in out
    doc = _json.loads(artifact.read_text())
    assert doc["format"] == "repro-sanitizer-report"
    assert doc["ok"] is True and doc["cycles"] == [] and doc["races"] == []


def test_sanitize_without_a_command_is_a_usage_error(capsys):
    assert main(["sanitize"]) == 2
    assert "subcommand" in capsys.readouterr().err


def test_sanitize_refuses_to_nest(capsys):
    assert main(["sanitize", "sanitize", "lint"]) == 2
    assert "nest" in capsys.readouterr().err
