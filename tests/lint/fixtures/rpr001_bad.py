"""RPR001 fixture: truncating writes that can tear a document."""

from pathlib import Path


def dump_text(path, text):
    with open(path, "w") as fh:
        fh.write(text)


def dump_bytes(path, data):
    with open(path, mode="wb") as fh:
        fh.write(data)


def dump_exclusive(path, text):
    with open(path, "x") as fh:
        fh.write(text)


def dump_path(path: Path, text):
    path.write_text(text)


def dump_path_bytes(path: Path, data):
    path.write_bytes(data)
