"""RPR007 fixture: module registry mutated lock-free (lint as repro.core.fake)."""

import threading

_REGISTRY = {}
_LOCK = threading.Lock()


def register(name, value):
    _REGISTRY[name] = value


def forget(name):
    _REGISTRY.pop(name, None)
