"""Good: units line up across every call/return boundary."""


def runtime_of(scale):
    total_s = scale * 2.0
    return total_s


def apply_cap(cap_w):
    return cap_w


def configure(freq_ghz=1.0):
    return freq_ghz


def measure():
    elapsed_s = runtime_of(3.0)
    cap_w = 65.0
    apply_cap(cap_w)
    configure(freq_ghz=2.4)
    return elapsed_s, cap_w
