"""RPR003 fixture: pickle outside the legacy-migration shim."""

import pickle
from pickle import dumps


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def freeze(obj):
    return dumps(obj)
