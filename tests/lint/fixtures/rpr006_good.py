"""RPR006 fixture: consistent units, explicit conversions, derived units."""


def total_time(time_s, latency_ms):
    return time_s + latency_ms / 1000.0


def elapsed(start_s, end_s):
    return end_s - start_s


def energy(power_w, time_s):
    return power_w * time_s
