"""RPR004 fixture: downward and deferred imports (lint as repro.viz.fake)."""

import math

from repro.data import fields

__all__ = ["math", "fields", "render"]


def render(dataset, path):
    from repro.core.atomicio import atomic_write_text  # deferred: crosses up at call time

    atomic_write_text(path, str(dataset))
