"""RPR003 fixture: versioned JSON, the sanctioned persistence format."""

import json


def roundtrip(obj):
    return json.loads(json.dumps(obj))
