"""Bad: blocking primitives while a lock is held."""

import os
import subprocess
import threading
import time

LOCK = threading.Lock()


def waiter():
    with LOCK:
        time.sleep(0.5)  # every contender stalls half a second


def syncer(fh):
    with LOCK:
        os.fsync(fh.fileno())  # disk latency under the lock


def _save(path):
    subprocess.run(["sync", path])  # reachable with LOCK held (see persist)


def persist(path):
    with LOCK:
        _save(path)
