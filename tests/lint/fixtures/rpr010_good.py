"""Good: flush + fsync always precede visibility."""

import os


def append_record(path, line):
    with open(path, "a") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def publish(tmp_path, final_path, payload):
    with open(tmp_path, "a") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, final_path)
