"""Bad: unit suffixes disagree across call/return boundaries."""


def runtime_of(scale):
    total_s = scale * 2.0
    return total_s


def apply_cap(cap_w):
    return cap_w


def configure(freq_ghz=1.0):
    return freq_ghz


def measure():
    cap_w = runtime_of(3.0)  # binds a watts name to a seconds return
    delay_s = 0.5
    apply_cap(delay_s)  # seconds argument into a watts parameter
    configure(freq_ghz=delay_s)  # seconds value for a gigahertz keyword
    return cap_w
