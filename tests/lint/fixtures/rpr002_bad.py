"""RPR002 fixture: exact equality on cap/frequency floats."""


def point_at(points, cap_w):
    for p in points:
        if p.cap_w == cap_w:
            return p
    return None


def frequency_changed(old_hz, new_hz):
    return old_hz != new_hz
