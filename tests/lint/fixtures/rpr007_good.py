"""RPR007 fixture: registry mutation under its lock (lint as repro.core.fake)."""

import threading

_REGISTRY = {}
_LOCK = threading.Lock()

# Import-time table building is single-threaded and exempt.
_REGISTRY["default"] = None


def register(name, value):
    with _LOCK:
        _REGISTRY[name] = value


def forget(name):
    with _LOCK:
        _REGISTRY.pop(name, None)


def snapshot():
    return dict(_REGISTRY)
