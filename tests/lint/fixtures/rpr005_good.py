"""RPR005 fixture: spans entered via `with`, or kept for a later `with`."""


def timed_phase(tracer, work):
    with tracer.span("extract"):
        work()


def make_span(tracer):
    handle = tracer.span("later")
    return handle
