"""Bad: shared state written under inconsistent locksets (seeded races)."""

import threading

JOBS = {}
EVENTS = []
JOBS_LOCK = threading.Lock()


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def record(self, key):
        with self._lock:
            self.entries[key] = True

    def wipe(self):
        self.entries.clear()  # same cell, no lock


def locked_writer():
    with JOBS_LOCK:
        JOBS["a"] = 1


def raw_writer():
    JOBS["b"] = 2  # same dict, no lock


def worker(reg: Registry):
    reg.record("x")
    reg.wipe()
    EVENTS.append("wrote")  # never locked, many worker instances


def start():
    reg = Registry()
    threading.Thread(target=locked_writer).start()
    threading.Thread(target=raw_writer).start()
    for _ in range(3):
        threading.Thread(target=worker, args=(reg,)).start()
