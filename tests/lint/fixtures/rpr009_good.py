"""Good: every shared cell keeps one consistent lock across all roots."""

import threading

JOBS = {}
EVENTS = []
JOBS_LOCK = threading.Lock()
EVENTS_LOCK = threading.Lock()


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def record(self, key):
        with self._lock:
            self.entries[key] = True

    def wipe(self):
        with self._lock:
            self.entries.clear()


def locked_writer():
    with JOBS_LOCK:
        JOBS["a"] = 1


def raw_writer():
    with JOBS_LOCK:
        JOBS["b"] = 2


def worker(reg: Registry):
    reg.record("x")
    reg.wipe()
    with EVENTS_LOCK:
        EVENTS.append("wrote")


def start():
    reg = Registry()
    threading.Thread(target=locked_writer).start()
    threading.Thread(target=raw_writer).start()
    for _ in range(3):
        threading.Thread(target=worker, args=(reg,)).start()
