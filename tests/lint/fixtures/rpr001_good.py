"""RPR001 fixture: sanctioned I/O — reads, fsynced appends, tail repair."""

import os


def read(path):
    with open(path) as fh:
        return fh.read()


def append_record(path, line):
    with open(path, "a") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def truncate_tail(path, keep):
    with open(path, "r+b") as fh:
        fh.truncate(keep)


def open_dynamic(path, mode):
    return open(path, mode)
