"""Bad: records become visible before they are durable."""

import os


def append_without_sync(path, line):
    with open(path, "a") as fh:
        fh.write(line + "\n")  # neither flushed nor fsynced


def append_flush_only(path, line):
    with open(path, "a") as fh:
        fh.write(line + "\n")  # flushed to the OS but never fsynced
        fh.flush()


def publish(tmp_path, final_path):
    os.replace(tmp_path, final_path)  # rename lands before the data
