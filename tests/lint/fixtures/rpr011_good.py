"""Good: the lock only covers in-memory state; blocking happens outside."""

import os
import subprocess
import threading
import time

LOCK = threading.Lock()


def waiter():
    with LOCK:
        ready = True
    time.sleep(0.5)
    return ready


def syncer(fh):
    os.fsync(fh.fileno())
    with LOCK:
        fh.seek(0)


def _save(path):
    subprocess.run(["sync", path])


def persist(path):
    with LOCK:
        target = path
    _save(target)
