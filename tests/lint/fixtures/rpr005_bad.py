"""RPR005 fixture: spans evaluated and discarded (never entered)."""


def timed_phase(tracer, span):
    tracer.span("extract")
    span("render")
    return None
