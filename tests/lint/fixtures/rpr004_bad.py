"""RPR004 fixture: upward and facade imports (lint as repro.viz.fake)."""

import repro.api as api
from repro.core import engine

__all__ = ["api", "engine"]
