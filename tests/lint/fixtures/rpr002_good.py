"""RPR002 fixture: tolerant cap matching and non-cap comparisons."""

import math


def point_at(points, cap_w):
    for p in points:
        if math.isclose(p.cap_w, cap_w, rel_tol=1e-9, abs_tol=1e-6):
            return p
    return None


def cap_is_unset(cap_w):
    return cap_w is None


def count_matches(n_points):
    return n_points == 3
