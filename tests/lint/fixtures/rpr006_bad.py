"""RPR006 fixture: arithmetic/comparison across different unit suffixes."""


def total_time(time_s, latency_ms):
    return time_s + latency_ms


def overran(elapsed_s, budget_ms):
    return elapsed_s > budget_ms
