"""The gate, turned on itself: the shipped package must lint clean."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import lint_paths, render_text, rule_codes, scan_pragmas
from repro.obs.metrics import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"


def test_repro_package_is_lint_clean():
    report = lint_paths(metrics=MetricsRegistry())
    assert report.ok, "\n" + render_text(report)
    assert not report.expired
    assert report.files_scanned >= 80
    assert report.rules_run == (
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        "RPR007", "RPR008", "RPR009", "RPR010", "RPR011",
    )


def test_all_eleven_rules_are_registered():
    assert rule_codes() == (
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        "RPR007", "RPR008", "RPR009", "RPR010", "RPR011",
    )


def test_every_in_tree_pragma_is_justified():
    for path in sorted(PACKAGE.rglob("*.py")):
        for pragma in scan_pragmas(path.read_text()):
            assert pragma.justification, f"unjustified pragma at {path}:{pragma.comment_line}"


def test_checked_in_baseline_is_empty():
    doc = json.loads((REPO_ROOT / "lint_baseline.json").read_text())
    assert doc["format"] == "repro-lint-baseline"
    assert doc["entries"] == []


def test_lint_outcome_lands_in_metrics_registry():
    registry = MetricsRegistry()
    lint_paths(metrics=registry)
    dump = registry.to_json()
    names = {m["name"] for m in dump["metrics"]}
    assert "repro_lint_runs_total" in names
    assert "repro_lint_files_scanned" in names
    assert "repro_lint_findings" in names
