"""Unit tests for the project-wide analysis engine behind RPR008–RPR011."""

from __future__ import annotations

from pathlib import Path

from repro.lint import check_source
from repro.lint.analysis import ProjectContext
from repro.lint.registry import FileContext

FIXTURES = Path(__file__).parent / "fixtures"


def _project(*sources: tuple[str, str, str]) -> ProjectContext:
    """Build a ProjectContext from (relpath, module, source) triples."""
    return ProjectContext(
        [
            FileContext.from_source(src, relpath=rel, module=mod)
            for rel, mod, src in sources
        ]
    )


RACY = '''
import threading

TABLE = {}
LOCK = threading.Lock()


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.cells = {}

    def put(self, k, v):
        with self._lock:
            self.cells[k] = v


def safe():
    with LOCK:
        TABLE["a"] = 1


def unsafe():
    TABLE["b"] = 2


def start():
    threading.Thread(target=safe).start()
    threading.Thread(target=unsafe).start()
'''


def test_symbol_table_collects_functions_classes_and_locks():
    project = _project(("pkg/mod.py", "pkg.mod", RACY))
    mod = project.modules["pkg.mod"]
    assert set(mod.functions) >= {"safe", "unsafe", "start"}
    store = mod.classes["Store"]
    assert "cells" in store.mutable_attrs
    assert "_lock" in store.lock_attrs
    assert "TABLE" in mod.global_mutables


def test_thread_roots_discovered_from_spawns():
    project = _project(("pkg/mod.py", "pkg.mod", RACY))
    by_fn = {r.function: r for r in project.thread_roots if r.kind == "thread"}
    assert "pkg.mod:safe" in by_fn and "pkg.mod:unsafe" in by_fn
    assert not by_fn["pkg.mod:safe"].multi  # spawned once, straight-line


def test_thread_spawned_in_loop_is_multi_instance():
    src = (
        "import threading\n"
        "def work():\n    pass\n"
        "def boot():\n"
        "    for _ in range(4):\n"
        "        threading.Thread(target=work).start()\n"
    )
    project = _project(("pkg/m.py", "pkg.m", src))
    roots = {r.function: r for r in project.thread_roots if r.kind == "thread"}
    assert roots["pkg.m:work"].multi


def test_lockset_propagates_through_call_graph():
    src = (
        "import threading\n"
        "LOCK = threading.Lock()\n"
        "def inner():\n    pass\n"
        "def outer():\n"
        "    with LOCK:\n"
        "        inner()\n"
    )
    project = _project(("pkg/m.py", "pkg.m", src))
    entry = project.lock_entries()["pkg.m:inner"]
    assert any("LOCK" in lock for lock in entry.locks)
    assert entry.chain[0] == "pkg.m:outer"


def test_access_map_intersects_locksets_per_location():
    project = _project(("pkg/mod.py", "pkg.mod", RACY))
    table = next(
        loc for loc in project.access_map() if loc.name == "TABLE" and loc.kind == "global"
    )
    locksets = {ra.lockset for ra in project.access_map()[table]}
    assert frozenset() in locksets  # the unsafe write
    assert any(ls for ls in locksets)  # the locked write


def test_return_units_propagate_through_wrappers():
    src = (
        "def base():\n    total_s = 1.0\n    return total_s\n"
        "def wrapper():\n    return base()\n"
        "def use():\n    cap_w = wrapper()\n    return cap_w\n"
    )
    project = _project(("pkg/m.py", "pkg.m", src))
    assert project.graph.functions["pkg.m:wrapper"].return_unit == "s"
    findings = check_source(src, relpath="m.py", module="pkg.m", rules=("RPR008",))
    assert [f.code for f in findings] == ["RPR008"]


def test_cross_file_call_resolution():
    helper = "def delay_of(n):\n    wait_s = n * 0.5\n    return wait_s\n"
    user = (
        "from pkg.helper import delay_of\n"
        "def go():\n    cap_w = delay_of(3)\n    return cap_w\n"
    )
    project = _project(
        ("pkg/helper.py", "pkg.helper", helper),
        ("pkg/user.py", "pkg.user", user),
    )
    fn = project.graph.functions["pkg.user:go"]
    call = next(c for c in fn.calls if c.callee.name == "delay_of")
    resolved = project.graph.resolve(fn, call.callee)
    assert resolved is not None and resolved.qualname == "pkg.helper:delay_of"


def test_seeded_race_fixture_is_caught_by_rpr009():
    source = (FIXTURES / "rpr009_bad.py").read_text()
    findings = check_source(
        source, relpath="fixtures/rpr009_bad.py", module="repro.serve.fake"
    )
    assert {f.code for f in findings} == {"RPR009"}
    messages = " ".join(f.message for f in findings)
    assert "JOBS" in messages and "entries" in messages


def test_constructor_writes_are_not_races():
    src = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.cells = {}\n"
        "        self.cells['k'] = 1\n"
        "def make():\n    return C()\n"
        "def boot():\n"
        "    for _ in range(3):\n"
        "        threading.Thread(target=make).start()\n"
    )
    findings = check_source(src, relpath="m.py", module="pkg.m", rules=("RPR009",))
    assert findings == []
