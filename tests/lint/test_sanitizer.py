"""The runtime sanitizer: lock-order cycles, lockset races, env gating."""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.lint import sanitizer
from repro.obs.metrics import get_registry

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def sanitized():
    sanitizer.install()
    sanitizer.reset()
    try:
        yield sanitizer
    finally:
        sanitizer.reset()
        sanitizer.uninstall()


def test_install_uninstall_roundtrip():
    was_installed = sanitizer.installed()  # e.g. REPRO_SANITIZE=1 test runs
    sanitizer.uninstall()
    real = threading.Lock
    sanitizer.install()
    try:
        assert sanitizer.installed()
        assert threading.Lock is not real
        lock = threading.Lock()
        assert isinstance(lock, sanitizer.SanitizedLock)
        with lock:
            assert lock.locked()
        assert not lock.locked()
    finally:
        sanitizer.uninstall()
    assert threading.Lock is real
    assert not sanitizer.installed()
    if was_installed:
        sanitizer.install()


def test_lock_order_cycle_detected_without_deadlocking(sanitized):
    a = threading.Lock()
    b = threading.Lock()

    def ab():
        with a:
            with b:
                pass

    def ba():
        with b:
            with a:
                pass

    # Run the two orders sequentially: the graph records the hazard even
    # though this interleaving never actually deadlocks.
    t1 = threading.Thread(target=ab)
    t1.start()
    t1.join()
    t2 = threading.Thread(target=ba)
    t2.start()
    t2.join()

    doc = sanitized.report()
    assert len(doc["cycles"]) == 1
    assert not doc["ok"]


def test_consistent_order_has_no_cycle(sanitized):
    a = threading.Lock()
    b = threading.Lock()

    def ab():
        with a:
            with b:
                pass

    for _ in range(2):
        t = threading.Thread(target=ab)
        t.start()
        t.join()
    doc = sanitized.report()
    assert doc["cycles"] == []
    assert doc["ok"]


def test_same_site_locks_do_not_self_cycle(sanitized):
    def make():
        return threading.Lock()

    locks = [make() for _ in range(2)]
    with locks[0]:
        with locks[1]:
            pass
    with locks[1]:
        with locks[0]:
            pass
    assert sanitized.report()["cycles"] == []


def test_watched_dict_reports_unsynchronized_access(sanitized):
    shared = sanitized.watch("test.shared")

    def writer():
        shared["w"] = 1

    t = threading.Thread(target=writer)
    t.start()
    t.join()
    shared["m"] = 2  # second thread, still no lock

    doc = sanitized.report()
    assert [r["name"] for r in doc["races"]] == ["test.shared"]
    assert not doc["ok"]


def test_watched_dict_with_consistent_lock_is_quiet(sanitized):
    lock = threading.Lock()
    shared = sanitized.watch("test.locked")

    def writer():
        with lock:
            shared["w"] = 1

    t = threading.Thread(target=writer)
    t.start()
    t.join()
    with lock:
        shared["m"] = 2

    assert sanitized.report()["races"] == []


def test_single_thread_access_is_never_a_race(sanitized):
    shared = sanitized.watch("test.local")
    for i in range(10):
        shared[i] = i
    assert sanitized.report()["races"] == []


def test_rlock_reentrancy_survives_wrapping(sanitized):
    r = threading.RLock()
    with r:
        with r:
            assert r._is_owned()
    doc = sanitized.report()
    assert doc["cycles"] == []


def test_report_publishes_sanitizer_metrics(sanitized):
    lock = threading.Lock()
    with lock:
        pass
    sanitized.report()
    dump = get_registry().to_json()
    names = {m["name"] for m in dump["metrics"]}
    assert {
        "repro_sanitizer_locks_tracked",
        "repro_sanitizer_lock_order_cycles",
        "repro_sanitizer_races",
    } <= names


def test_env_gate_installs_on_import():
    code = (
        "import repro\n"
        "from repro.lint import sanitizer\n"
        "raise SystemExit(0 if sanitizer.installed() else 3)\n"
    )
    env = dict(os.environ, REPRO_SANITIZE="1", PYTHONPATH=str(REPO_SRC))
    proc = subprocess.run([sys.executable, "-c", code], env=env)
    assert proc.returncode == 0

    env.pop("REPRO_SANITIZE")
    proc = subprocess.run([sys.executable, "-c", code], env=env)
    assert proc.returncode == 3


def test_condition_and_event_still_work_when_sanitized(sanitized):
    ev = threading.Event()

    def setter():
        time.sleep(0.01)
        ev.set()

    t = threading.Thread(target=setter)
    t.start()
    assert ev.wait(timeout=5.0)
    t.join()
