"""Baseline semantics: grandfather, still-block-new, expire, burn down."""

from __future__ import annotations

import json

from repro.lint import Baseline, Finding, finding_fingerprint, lint_paths
from repro.obs.metrics import MetricsRegistry

BAD = "def f(path, text):\n    path.write_text(text)\n"
BAD_TWICE = BAD + "\n\ndef g(path, data):\n    path.write_bytes(data)\n"
CLEAN = "def f():\n    return 1\n"


def _lint(tmp_path, **kw):
    return lint_paths([tmp_path], metrics=MetricsRegistry(), **kw)


def test_no_baseline_means_findings_block(tmp_path):
    (tmp_path / "mod.py").write_text(BAD)
    report = _lint(tmp_path, baseline_path=tmp_path / "absent.json")
    assert not report.ok
    assert [f.code for f in report.findings] == ["RPR001"]


def test_update_baseline_grandfathers_current_findings(tmp_path):
    (tmp_path / "mod.py").write_text(BAD)
    baseline = tmp_path / "baseline.json"

    first = _lint(tmp_path, baseline_path=baseline, update_baseline=True)
    assert first.ok and len(first.baselined) == 1

    doc = json.loads(baseline.read_text())
    assert doc["format"] == "repro-lint-baseline"
    assert len(doc["entries"]) == 1

    again = _lint(tmp_path, baseline_path=baseline)
    assert again.ok and len(again.baselined) == 1 and not again.expired


def test_baseline_does_not_hide_new_findings(tmp_path):
    (tmp_path / "mod.py").write_text(BAD)
    baseline = tmp_path / "baseline.json"
    _lint(tmp_path, baseline_path=baseline, update_baseline=True)

    (tmp_path / "mod.py").write_text(BAD_TWICE)
    report = _lint(tmp_path, baseline_path=baseline)
    assert not report.ok
    assert len(report.baselined) == 1  # the old one stays grandfathered
    assert len(report.findings) == 1  # the new one blocks
    assert "write_bytes" in report.findings[0].message


def test_fixed_violation_expires_its_entry(tmp_path):
    (tmp_path / "mod.py").write_text(BAD)
    baseline = tmp_path / "baseline.json"
    _lint(tmp_path, baseline_path=baseline, update_baseline=True)

    (tmp_path / "mod.py").write_text(CLEAN)
    report = _lint(tmp_path, baseline_path=baseline)
    assert report.ok  # expiry warns, it does not block
    assert len(report.expired) == 1

    _lint(tmp_path, baseline_path=baseline, update_baseline=True)
    assert json.loads(baseline.read_text())["entries"] == []


def test_fingerprint_survives_line_shifts(tmp_path):
    (tmp_path / "mod.py").write_text(BAD)
    baseline = tmp_path / "baseline.json"
    _lint(tmp_path, baseline_path=baseline, update_baseline=True)

    # Push the violation down the file; the fingerprint must still match.
    (tmp_path / "mod.py").write_text("import os\n\nX = 1\n\n\n" + BAD)
    report = _lint(tmp_path, baseline_path=baseline)
    assert report.ok and len(report.baselined) == 1 and not report.expired


def test_fingerprint_is_line_number_independent():
    a = Finding(code="RPR001", path="m.py", line=3, col=4, message="x")
    b = Finding(code="RPR001", path="m.py", line=40, col=4, message="x")
    assert finding_fingerprint(a, "  p.write_text(t)") == finding_fingerprint(
        b, "p.write_text(t)"  # whitespace-normalized too
    )


def test_identical_lines_get_distinct_occurrences():
    f = Finding(code="RPR001", path="m.py", line=3, col=4, message="x")
    assert finding_fingerprint(f, "p.write_text(t)", 0) != finding_fingerprint(
        f, "p.write_text(t)", 1
    )


def test_baseline_rejects_foreign_format(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"format": "something-else", "entries": []}))
    try:
        Baseline.load(bad)
    except ValueError as exc:
        assert "not a lint baseline" in str(exc)
    else:
        raise AssertionError("foreign format should be rejected")
