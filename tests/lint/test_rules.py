"""Every RPR rule fires on its bad fixture and stays quiet on its good one."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import check_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Rules scoped by module path (RPR004/RPR007 to repro subpackages,
#: RPR010 to the durability modules) lint their fixtures under a
#: pretend module path.
_FIXTURE_MODULES = {
    "RPR004": "repro.viz.fake",
    "RPR007": "repro.core.fake",
    "RPR009": "repro.serve.fake",
    "RPR010": "repro.fixtures.wal",
    "RPR011": "repro.serve.fake",
}

RULES = (
    "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007",
    "RPR008", "RPR009", "RPR010", "RPR011",
)


def _lint_fixture(code: str, kind: str):
    path = FIXTURES / f"{code.lower()}_{kind}.py"
    return check_source(
        path.read_text(),
        relpath=f"fixtures/{path.name}",
        module=_FIXTURE_MODULES.get(code, "<module>"),
    )


@pytest.mark.parametrize("code", RULES)
def test_bad_fixture_fires_only_its_rule(code):
    findings = _lint_fixture(code, "bad")
    assert findings, f"{code} bad fixture produced no findings"
    assert {f.code for f in findings} == {code}


@pytest.mark.parametrize("code", RULES)
def test_good_fixture_is_clean(code):
    assert _lint_fixture(code, "good") == []


@pytest.mark.parametrize(
    "code, expected",
    [("RPR001", 5), ("RPR002", 2), ("RPR003", 3), ("RPR004", 2),
     ("RPR005", 2), ("RPR006", 2), ("RPR007", 2), ("RPR008", 3),
     ("RPR009", 3), ("RPR010", 3), ("RPR011", 3)],
)
def test_bad_fixture_flags_every_site(code, expected):
    assert len(_lint_fixture(code, "bad")) == expected


def test_findings_carry_location_and_render():
    f = _lint_fixture("RPR001", "bad")[0]
    assert f.line > 0
    rendered = f.render()
    assert rendered.startswith("fixtures/rpr001_bad.py:")
    assert "RPR001" in rendered


def test_parse_error_is_reported_not_raised():
    findings = check_source("def broken(:\n", relpath="x.py")
    assert [f.code for f in findings] == ["RPR000"]
    assert "parse-error" in findings[0].message


def test_rule_selection_limits_the_run():
    source = (FIXTURES / "rpr001_bad.py").read_text()
    findings = check_source(source, rules=("RPR003",))
    assert findings == []
