"""The repro.api facade: run, persist, reload, classify."""

import pytest

import repro
from repro import api
from repro.core import StudyConfig

SMALL = StudyConfig(name="small", algorithms=("threshold", "contour"), sizes=(12,))


class TestRunStudy:
    def test_explicit_config(self):
        result = api.run_study(SMALL, n_cycles=2)
        assert result.config_name == "small"
        assert len(result.points) == SMALL.n_configurations

    def test_phase_name_respects_max_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "12")
        result = api.run_study("phase1", n_cycles=1)
        assert result.sizes == [12]
        assert len(result.points) == 9

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown study phase"):
            api.run_study("phase9")

    def test_workers_do_not_change_results(self):
        a = api.run_study(SMALL, n_cycles=2, workers=0)
        b = api.run_study(SMALL, n_cycles=2, workers=2)
        assert [p.to_dict() for p in a.points] == [p.to_dict() for p in b.points]

    def test_trace_and_samples_passthrough(self, tmp_path):
        from repro.obs.samples import read_samples, samples_path_for
        from repro.obs.trace import read_trace

        store = tmp_path / "store.jsonl"
        trace = tmp_path / "run.trace.jsonl"
        result = api.run_study(SMALL, n_cycles=2, store=store, trace=str(trace), samples=True)
        _, records = read_trace(trace)
        assert {"sweep", "kernel"} <= {r["name"] for r in records if r["kind"] == "span"}
        _, samples = read_samples(samples_path_for(store))
        assert {(r["algorithm"], r["size"], r["cap_w"]) for r in samples} == {
            p.key for p in result.points
        }


class TestRoundTrip:
    def test_jsonl_roundtrip_preserves_classification(self, tmp_path):
        result = api.run_study(SMALL, n_cycles=2)
        path = tmp_path / "small.jsonl"
        result.to_jsonl(path)

        loaded = api.load_result(path)
        assert loaded.points == result.points

        before = api.classify_study(result)
        after = api.classify_study(loaded)
        assert before == after
        assert set(before) == {"threshold", "contour"}

    def test_load_result_reads_store_files(self, tmp_path):
        store = tmp_path / "store.jsonl"
        result = api.run_study(SMALL, n_cycles=2, store=store)
        loaded = api.load_result(store)
        assert sorted(p.key for p in loaded.points) == sorted(p.key for p in result.points)
        assert {p.key: p for p in loaded.points} == {p.key: p for p in result.points}

    def test_resume_through_facade(self, tmp_path):
        store = tmp_path / "store.jsonl"
        api.run_study(SMALL, n_cycles=2, store=store)
        engine = api.sweep_engine(n_cycles=2, store=store)
        engine.run(api.resolve_config(SMALL))
        assert engine.stats.profile_jobs_run == 0
        assert engine.stats.points_resumed == SMALL.n_configurations


class TestClassifyStudy:
    def test_multi_size_uses_largest(self):
        cfg = StudyConfig(name="m", algorithms=("threshold",), sizes=(8, 12))
        result = api.run_study(cfg, n_cycles=1)
        classes = api.classify_study(result)
        assert classes["threshold"].size == 12


class TestStudyRequest:
    def test_typed_request_matches_legacy_kwargs(self):
        typed = api.run_study(api.StudyRequest(config=SMALL, n_cycles=2))
        with pytest.warns(DeprecationWarning):
            legacy = api.run_study(SMALL, n_cycles=2)
        assert [p.to_dict() for p in typed.points] == [p.to_dict() for p in legacy.points]

    def test_typed_request_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.run_study(api.StudyRequest(config=SMALL, n_cycles=1))

    def test_legacy_kwargs_emit_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="StudyRequest"):
            api.run_study(SMALL, n_cycles=1)

    def test_typed_request_rejects_extra_kwargs(self):
        with pytest.raises(TypeError):
            api.run_study(api.StudyRequest(config=SMALL), n_cycles=1)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="n_cycle"):
            api.run_study(SMALL, n_cycle=2)


class TestAdvise:
    def test_typed_round_trip(self, tmp_path):
        advisor = api.advisor(cache=tmp_path / "ledgers.json")
        req = api.AdviseRequest(algorithm="threshold", size=12)
        resp = api.advise(req, advisor=advisor)
        assert resp.algorithm == "threshold"
        assert resp.size == 12
        assert not resp.cache_hit  # first query profiles
        again = api.advise(req, advisor=advisor)
        assert again.cache_hit
        assert again.recommended_cap_w == resp.recommended_cap_w

    def test_kwargs_convenience_form(self, tmp_path):
        advisor = api.advisor(cache=tmp_path / "ledgers.json")
        resp = api.advise(algorithm="threshold", size=12, cap_w=60.0, advisor=advisor)
        assert resp.cap_w == 60.0
        assert resp.point.cap_w == 60.0

    def test_dict_request_accepted(self, tmp_path):
        advisor = api.advisor(cache=tmp_path / "ledgers.json")
        resp = api.advise({"algorithm": "threshold", "size": 12}, advisor=advisor)
        assert resp.algorithm == "threshold"

    def test_response_serialization_round_trip(self, tmp_path):
        import json

        advisor = api.advisor(cache=tmp_path / "ledgers.json")
        resp = api.advise(api.AdviseRequest(algorithm="contour", size=12), advisor=advisor)
        doc = json.loads(json.dumps(resp.to_dict()))
        assert api.AdviseResponse.from_dict(doc) == resp

    def test_request_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            api.AdviseRequest.from_dict({"algorithm": "contour", "size": 12, "bogus": 1})

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="machine"):
            api.advise(algorithm="contour", size=12, machine="pentium")
        with pytest.raises(ValueError, match="machine"):
            api.advisor(machine="pentium")


class TestTopLevelExports:
    def test_facade_reexported_from_package_root(self):
        assert repro.run_study is api.run_study
        assert repro.advise is api.advise
        assert repro.StudyRequest is api.StudyRequest
        assert repro.AdviseRequest is api.AdviseRequest
        assert repro.AdviseResponse is api.AdviseResponse
        assert repro.load_result is api.load_result
        assert repro.classify_study is api.classify_study
        assert repro.regenerate_tables is api.regenerate_tables

    def test_regenerate_tables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "12")
        out = api.regenerate_tables(
            ("table1",), cache=tmp_path / "c.json", csv_dir=tmp_path / "csv", n_cycles=1
        )
        assert set(out) == {"table1"}
        assert (tmp_path / "csv" / "table1.csv").exists()

    def test_regenerate_unknown_table_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown table"):
            api.regenerate_tables(("table9",), cache=None)
