"""The repro.api facade: run, persist, reload, classify."""

import pytest

import repro
from repro import api
from repro.core import StudyConfig

SMALL = StudyConfig(name="small", algorithms=("threshold", "contour"), sizes=(12,))


class TestRunStudy:
    def test_explicit_config(self):
        result = api.run_study(SMALL, n_cycles=2)
        assert result.config_name == "small"
        assert len(result.points) == SMALL.n_configurations

    def test_phase_name_respects_max_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "12")
        result = api.run_study("phase1", n_cycles=1)
        assert result.sizes == [12]
        assert len(result.points) == 9

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown study phase"):
            api.run_study("phase9")

    def test_workers_do_not_change_results(self):
        a = api.run_study(SMALL, n_cycles=2, workers=0)
        b = api.run_study(SMALL, n_cycles=2, workers=2)
        assert [p.to_dict() for p in a.points] == [p.to_dict() for p in b.points]

    def test_trace_and_samples_passthrough(self, tmp_path):
        from repro.obs.samples import read_samples, samples_path_for
        from repro.obs.trace import read_trace

        store = tmp_path / "store.jsonl"
        trace = tmp_path / "run.trace.jsonl"
        result = api.run_study(SMALL, n_cycles=2, store=store, trace=str(trace), samples=True)
        _, records = read_trace(trace)
        assert {"sweep", "kernel"} <= {r["name"] for r in records if r["kind"] == "span"}
        _, samples = read_samples(samples_path_for(store))
        assert {(r["algorithm"], r["size"], r["cap_w"]) for r in samples} == {
            p.key for p in result.points
        }


class TestRoundTrip:
    def test_jsonl_roundtrip_preserves_classification(self, tmp_path):
        result = api.run_study(SMALL, n_cycles=2)
        path = tmp_path / "small.jsonl"
        result.to_jsonl(path)

        loaded = api.load_result(path)
        assert loaded.points == result.points

        before = api.classify_study(result)
        after = api.classify_study(loaded)
        assert before == after
        assert set(before) == {"threshold", "contour"}

    def test_load_result_reads_store_files(self, tmp_path):
        store = tmp_path / "store.jsonl"
        result = api.run_study(SMALL, n_cycles=2, store=store)
        loaded = api.load_result(store)
        assert sorted(p.key for p in loaded.points) == sorted(p.key for p in result.points)
        assert {p.key: p for p in loaded.points} == {p.key: p for p in result.points}

    def test_resume_through_facade(self, tmp_path):
        store = tmp_path / "store.jsonl"
        api.run_study(SMALL, n_cycles=2, store=store)
        engine = api.sweep_engine(n_cycles=2, store=store)
        engine.run(api.resolve_config(SMALL))
        assert engine.stats.profile_jobs_run == 0
        assert engine.stats.points_resumed == SMALL.n_configurations


class TestClassifyStudy:
    def test_multi_size_uses_largest(self):
        cfg = StudyConfig(name="m", algorithms=("threshold",), sizes=(8, 12))
        result = api.run_study(cfg, n_cycles=1)
        classes = api.classify_study(result)
        assert classes["threshold"].size == 12


class TestTopLevelExports:
    def test_facade_reexported_from_package_root(self):
        assert repro.run_study is api.run_study
        assert repro.load_result is api.load_result
        assert repro.classify_study is api.classify_study
        assert repro.regenerate_tables is api.regenerate_tables

    def test_regenerate_tables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SIZE", "12")
        out = api.regenerate_tables(
            ("table1",), cache=tmp_path / "c.json", csv_dir=tmp_path / "csv", n_cycles=1
        )
        assert set(out) == {"table1"}
        assert (tmp_path / "csv" / "table1.csv").exists()

    def test_regenerate_unknown_table_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown table"):
            api.regenerate_tables(("table9",), cache=None)
