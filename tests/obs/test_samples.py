"""Sample streams: synthesis fidelity, the writer, and crash tolerance."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.machine.simulator import Processor
from repro.obs.samples import (
    SAMPLES_FORMAT,
    SampleWriter,
    read_samples,
    samples_path_for,
    summarize_samples,
)
from repro.viz import ALGORITHMS
from repro.data.generators import make_dataset


@pytest.fixture(scope="module")
def run():
    """One closed-form run long enough to need many 100 ms samples."""
    result = ALGORITHMS["contour"]().execute(make_dataset(16, seed=7))
    profile = result.profile
    scaled_segments = [s.scaled(40) for s in profile.segments]
    profile.segments = scaled_segments
    return Processor().run(profile, 70.0)


class TestSampleStream:
    def test_rate_is_at_least_10hz(self, run):
        samples = run.sample_stream(0.1)
        assert len(samples) >= run.time_s / 0.1  # ceil(time/interval) samples
        assert len(samples) / run.time_s >= 10.0 - 1e-9

    def test_time_weighted_mean_matches_power(self, run):
        samples = run.sample_stream(0.1)
        total_dt = sum(s.dt_s for s in samples)
        mean_w = sum(s.power_w * s.dt_s for s in samples) / total_dt
        assert total_dt == pytest.approx(run.time_s, rel=1e-12)
        # The acceptance bar is 1%; piecewise-constant synthesis is exact.
        assert mean_w == pytest.approx(run.avg_power_w, rel=1e-9)

    def test_counters_partition_totals(self, run):
        samples = run.sample_stream(0.1)
        assert sum(s.instructions for s in samples) == pytest.approx(
            run.msr.inst_retired, rel=1e-9
        )
        assert sum(s.llc_misses for s in samples) == pytest.approx(
            run.msr.llc_miss, rel=1e-9
        )

    def test_rejects_nonpositive_interval(self, run):
        with pytest.raises(ValueError, match="positive"):
            run.sample_stream(0.0)


class TestSampleWriter:
    def test_writes_header_and_round_trips(self, tmp_path, run):
        path = tmp_path / "s.samples.jsonl"
        with SampleWriter(path) as w:
            n = w.write_stream(
                algorithm="contour", size=16, cap_w=70.0, samples=run.sample_stream(0.1)
            )
        header, records = read_samples(path)
        assert header["format"] == SAMPLES_FORMAT
        assert len(records) == n
        assert records[0]["algorithm"] == "contour"
        assert records[0]["i"] == 0
        assert [r["i"] for r in records] == list(range(n))

    def test_small_buffer_spills_and_loses_nothing(self, tmp_path, run):
        samples = run.sample_stream(0.1)
        path = tmp_path / "s.samples.jsonl"
        with SampleWriter(path, buffer_records=2) as w:
            w.write_stream(algorithm="contour", size=16, cap_w=70.0, samples=samples)
        assert len(read_samples(path)[1]) == len(samples)

    def test_summarize_recovers_run_aggregates(self, tmp_path, run):
        path = tmp_path / "s.samples.jsonl"
        with SampleWriter(path) as w:
            w.write_stream(
                algorithm="contour", size=16, cap_w=70.0, samples=run.sample_stream(0.1)
            )
        stats = summarize_samples(read_samples(path)[1])
        agg = stats[("contour", 16, 70.0)]
        assert agg["mean_power_w"] == pytest.approx(run.avg_power_w, rel=1e-9)
        assert agg["duration_s"] == pytest.approx(run.time_s, rel=1e-9)
        assert agg["rate_hz"] >= 10.0 - 1e-9

    def test_torn_tail_is_dropped(self, tmp_path, run):
        path = tmp_path / "s.samples.jsonl"
        with SampleWriter(path) as w:
            w.write_stream(
                algorithm="contour", size=16, cap_w=70.0, samples=run.sample_stream(0.1)
            )
        complete = len(read_samples(path)[1])
        with open(path, "a") as fh:
            fh.write('{"algorithm": "contour", "size": 16, "cap_')
        assert len(read_samples(path)[1]) == complete

    def test_rejects_nonpositive_buffer(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            SampleWriter(tmp_path / "s.jsonl", buffer_records=0)

    def test_samples_path_for(self):
        assert samples_path_for("x/sweep.jsonl") == Path("x/sweep.samples.jsonl")


# The child streams samples through the real writer (fsync per stream),
# starts another record raw, then SIGKILLs itself mid-write — the same
# harness shape as tests/core/test_store_crash.py.
_WRITER = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.data.generators import make_dataset
from repro.machine.simulator import Processor
from repro.obs.samples import SampleWriter
from repro.viz import ALGORITHMS

result = ALGORITHMS["threshold"]().execute(make_dataset(12, seed=7))
profile = result.profile
profile.segments = [s.scaled(20) for s in profile.segments]
run = Processor().run(profile, 70.0)
w = SampleWriter({path!r})
w.write_stream(algorithm="threshold", size=12, cap_w=70.0, samples=run.sample_stream(0.1))
w._ensure_open()
w._fh.write('{{"algorithm": "threshold", "size": 12, "cap')
w._fh.flush()
os.fsync(w._fh.fileno())
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestCrashSafety:
    def test_sigkill_mid_write_keeps_flushed_streams(self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        path = tmp_path / "s.samples.jsonl"
        script = _WRITER.format(src=src, path=str(path))
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert proc.returncode == -9, proc.stderr  # died by SIGKILL, not error
        header, records = read_samples(path)
        assert header["format"] == SAMPLES_FORMAT
        # Every record of the completed (fsynced) stream survived; the
        # torn tail of the in-flight record was dropped on read.
        assert len(records) >= 1
        assert all(r["algorithm"] == "threshold" for r in records)
        assert [r["i"] for r in records] == list(range(len(records)))
        last_line = path.read_text().splitlines()[-1]
        with pytest.raises(ValueError):
            json.loads(last_line)
