"""Run manifests: provenance next to every store."""

import pytest

import repro
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    manifest_path_for,
    read_manifest,
    write_manifest,
)


def _manifest(**overrides):
    kw = dict(
        spec={"name": "bdw", "tdp_watts": 120.0},
        config={"name": "phase1", "algorithms": ["contour"], "sizes": [32], "caps_w": [120.0]},
        seed=7,
        n_cycles=2,
        dataset_kind="blobs",
        fingerprint="abc123",
    )
    kw.update(overrides)
    return build_manifest(**kw)


def test_build_carries_provenance_and_version():
    doc = _manifest(fault_plan="default", extra={"workers": 4})
    assert doc["format"] == MANIFEST_FORMAT
    assert doc["package_version"] == repro.__version__
    assert doc["spec"]["name"] == "bdw"
    assert doc["config"]["caps_w"] == [120.0]
    assert doc["fingerprint"] == "abc123"
    assert doc["fault_plan"] == "default"
    assert doc["workers"] == 4
    assert doc["created_unix"] > 0


def test_write_and_read_round_trip(tmp_path):
    path = manifest_path_for(tmp_path / "sweep.jsonl")
    assert path.name == "sweep.manifest.json"
    written = write_manifest(path, _manifest())
    assert read_manifest(written) == _manifest() | {
        "created_unix": read_manifest(written)["created_unix"]
    }


def test_read_rejects_foreign_document(tmp_path):
    p = tmp_path / "m.json"
    p.write_text('{"format": "not-a-manifest"}')
    with pytest.raises(ValueError, match="not a run manifest"):
        read_manifest(p)
