"""Span tracing: nesting, thread safety, file format, analysis."""

import json
import logging
import threading

import pytest

from repro.obs.trace import (
    TRACE_FORMAT,
    Tracer,
    configure,
    event,
    get_tracer,
    log_event,
    read_trace,
    render_summary,
    span,
    summarize_trace,
)


@pytest.fixture(autouse=True)
def no_default_tracer():
    """Each test starts (and leaves) with tracing off."""
    configure(None)
    yield
    configure(None)


class TestSpans:
    def test_span_records_duration_and_attrs(self):
        tr = Tracer()
        with tr.span("work", algorithm="contour", n_cells=8):
            pass
        (rec,) = tr.records()
        assert rec["kind"] == "span"
        assert rec["name"] == "work"
        assert rec["dur_s"] >= 0
        assert rec["attrs"] == {"algorithm": "contour", "n_cells": 8}
        assert rec["parent_id"] is None

    def test_nested_spans_link_parent_ids(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
            with tr.span("sibling"):
                pass
        recs = {r["name"]: r for r in tr.records()}
        # Children close before the parent, so all three are present.
        assert recs["inner"]["parent_id"] == recs["outer"]["span_id"]
        assert recs["sibling"]["parent_id"] == recs["outer"]["span_id"]
        assert recs["outer"]["parent_id"] is None

    def test_span_records_exception_and_propagates(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("doomed"):
                raise RuntimeError("boom")
        (rec,) = tr.records()
        assert "RuntimeError" in rec["error"]

    def test_event_carries_parent_span(self):
        tr = Tracer()
        with tr.span("outer"):
            tr.event("retry", attempt=1)
        ev = [r for r in tr.records() if r["kind"] == "event"][0]
        sp = [r for r in tr.records() if r["kind"] == "span"][0]
        assert ev["parent_id"] == sp["span_id"]
        assert ev["attrs"] == {"attempt": 1}

    def test_record_span_for_remote_work(self):
        tr = Tracer()
        tr.record_span("pool-job", 0.25, algorithm="contour")
        (rec,) = tr.records()
        assert rec["dur_s"] == 0.25
        assert rec["attrs"]["algorithm"] == "contour"

    def test_threads_keep_independent_stacks(self):
        tr = Tracer()
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with tr.span(f"outer-{name}"):
                        with tr.span(f"inner-{name}"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        recs = tr.records()
        assert len(recs) == 4 * 50 * 2
        by_id = {r["span_id"]: r for r in recs}
        for rec in recs:
            # Every inner span's parent is an outer span from its own thread.
            if rec["name"].startswith("inner"):
                parent = by_id[rec["parent_id"]]
                assert parent["thread"] == rec["thread"]
                assert parent["name"] == rec["name"].replace("inner", "outer")


class TestDefaultTracer:
    def test_module_helpers_are_noops_when_unconfigured(self):
        assert get_tracer() is None
        with span("anything", x=1):  # must not raise or record
            event("ping")

    def test_configure_and_module_span(self):
        tr = configure(Tracer())
        with span("phase"):
            event("tick")
        assert {r["name"] for r in tr.records()} == {"phase", "tick"}

    def test_as_default_is_reentrant(self):
        outer, inner = Tracer(), Tracer()
        with outer.as_default():
            assert get_tracer() is outer
            with inner.as_default():
                assert get_tracer() is inner
            assert get_tracer() is outer
        assert get_tracer() is None

    def test_log_event_logs_and_traces(self, caplog):
        tr = configure(Tracer())
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            log_event("cache-corrupt", "the cache is toast", path="/x")
        assert "the cache is toast" in caplog.text
        (rec,) = tr.records()
        assert rec["name"] == "cache-corrupt"
        assert rec["attrs"]["path"] == "/x"

    def test_log_event_without_tracer_still_logs(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            log_event("orphan", "nobody is tracing")
        assert "nobody is tracing" in caplog.text


class TestTraceFile:
    def test_file_gets_header_and_round_trips(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with Tracer(path) as tr:
            with tr.span("a"):
                tr.event("e")
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "header", "format": TRACE_FORMAT, "version": 1}
        header, records = read_trace(path)
        assert header["format"] == TRACE_FORMAT
        assert [r["name"] for r in records] == ["e", "a"]

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with Tracer(path) as tr:
            with tr.span("first"):
                pass
        with Tracer(path) as tr:
            with tr.span("second"):
                pass
        headers = [
            ln for ln in path.read_text().splitlines() if '"kind": "header"' in ln
        ]
        assert len(headers) == 1
        assert len(read_trace(path)[1]) == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with Tracer(path) as tr:
            with tr.span("kept"):
                pass
        with open(path, "a") as fh:
            fh.write('{"kind": "span", "name": "to')  # killed mid-write
        _, records = read_trace(path)
        assert [r["name"] for r in records] == ["kept"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with Tracer(path) as tr:
            with tr.span("ok"):
                pass
        with open(path, "a") as fh:
            fh.write("garbage\n")
            fh.write(json.dumps({"kind": "span", "name": "later"}) + "\n")
        with pytest.raises(ValueError, match="corrupt trace record"):
            read_trace(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "header", "format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a trace"):
            read_trace(path)


class TestSummaries:
    def _records(self):
        tr = Tracer()
        for dur in (0.1, 0.3):
            tr.record_span("kernel", dur)
        tr.record_span("sweep", 1.0)
        tr.event("retry")
        return tr.records()

    def test_summarize_aggregates_per_name(self):
        summary = summarize_trace(self._records())
        k = summary["kernel"]
        assert k["count"] == 2
        assert k["total_s"] == pytest.approx(0.4)
        assert k["mean_s"] == pytest.approx(0.2)
        assert k["max_s"] == pytest.approx(0.3)
        assert summary["sweep"]["count"] == 1

    def test_summarize_name_filter(self):
        summary = summarize_trace(self._records(), name="kern")
        assert set(summary) == {"kernel"}

    def test_render_summary_table(self):
        text = render_summary(summarize_trace(self._records()), n_events=1)
        assert "kernel" in text and "sweep" in text
        assert "1 events" in text

    def test_render_empty_summary(self):
        assert "no spans" in render_summary({})
