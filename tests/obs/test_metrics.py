"""Metrics registry: instruments, identity, and both exporters."""

import json

import pytest

from repro.obs.metrics import (
    METRICS_FORMAT,
    MetricsRegistry,
    get_registry,
    load_metrics,
    set_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("jobs_total").inc(-1)

    def test_gauge_sets_and_moves(self):
        g = MetricsRegistry().gauge("wall_seconds")
        g.set(4.2)
        g.inc(-0.2)
        assert g.value == pytest.approx(4.0)

    def test_histogram_buckets_and_sum(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)

    def test_same_name_and_labels_share_identity(self):
        reg = MetricsRegistry()
        reg.counter("points", outcome="computed").inc()
        reg.counter("points", outcome="computed").inc()
        reg.counter("points", outcome="quarantined").inc()
        assert reg.counter("points", outcome="computed").value == 2
        assert reg.counter("points", outcome="quarantined").value == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_points_total", "points by outcome", outcome="computed").inc(9)
        reg.gauge("repro_wall_seconds", "sweep wall time").set(1.25)
        h = reg.histogram("repro_kernel_seconds", "kernel time", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_json_round_trip_is_lossless(self):
        reg = self._populated()
        doc = reg.to_json()
        assert doc["format"] == METRICS_FORMAT
        back = MetricsRegistry.from_json(doc)
        assert back.to_json() == doc

    def test_json_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="not a metrics document"):
            MetricsRegistry.from_json({"format": "nope"})

    def test_load_metrics_from_file(self, tmp_path):
        p = tmp_path / "m.metrics.json"
        p.write_text(json.dumps(self._populated().to_json()))
        reg = load_metrics(p)
        assert reg.counter("repro_points_total", outcome="computed").value == 9

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        assert "# TYPE repro_points_total counter" in text
        assert '# HELP repro_points_total points by outcome' in text
        assert 'repro_points_total{outcome="computed"} 9.0' in text
        assert "# TYPE repro_wall_seconds gauge" in text
        assert "repro_wall_seconds 1.25" in text
        # Histogram: cumulative buckets, +Inf, _sum, _count.
        assert 'repro_kernel_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_kernel_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_kernel_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_kernel_seconds_count 2" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c", reason='say "hi"\nthere').inc()
        text = reg.to_prometheus()
        assert r'reason="say \"hi\"\nthere"' in text


class TestDefaultRegistry:
    def test_set_registry_swaps_the_default(self):
        old = get_registry()
        try:
            fresh = set_registry(MetricsRegistry())
            assert get_registry() is fresh
            assert get_registry() is not old
        finally:
            set_registry(old)
