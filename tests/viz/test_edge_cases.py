"""Edge cases and degenerate inputs across the filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Association, DataSet, UniformGrid
from repro.data.generators import linear_ramp, sphere_distance
from repro.viz import (
    Contour,
    Isovolume,
    ParticleAdvection,
    RayTracer,
    Slice,
    SphericalClip,
    Threshold,
    VolumeRenderer,
)


def tiny_ds(n=2, value=None):
    grid = UniformGrid.cube(n)
    ds = DataSet(grid)
    field = np.full(grid.n_points, 1.0) if value is None else value
    ds.add_field("energy", field, Association.POINT)
    ds.add_field("velocity", np.ones((grid.n_points, 3)), Association.POINT)
    return ds


class TestConstantField:
    """A constant field has no isosurfaces and no straddling cells."""

    def test_contour_empty(self):
        res = Contour(field="energy", isovalues=[0.5]).execute(tiny_ds(4))
        assert res.output.n_triangles == 0
        assert res.counts["active_cells"] == 0

    def test_isovolume_all_or_nothing(self):
        ds = tiny_ds(4)
        inside = Isovolume(field="energy", lo=0.0, hi=2.0).execute(ds).output
        outside = Isovolume(field="energy", lo=5.0, hi=6.0).execute(ds).output
        assert inside.kept.n_cells == ds.grid.n_cells
        assert outside.kept.n_cells == 0 and outside.cut.n_tets == 0

    def test_threshold_boundary_inclusive(self):
        ds = tiny_ds(4)
        out = Threshold(field="energy", lo=1.0, hi=1.0).execute(ds).output
        assert out.n_cells == ds.grid.n_cells


class TestMinimalGrids:
    @pytest.mark.parametrize("n", [1, 2])
    def test_all_filters_survive_tiny_grids(self, n):
        grid = UniformGrid.cube(max(n, 1))
        ds = DataSet(grid)
        ds.add_field("energy", sphere_distance(grid), Association.POINT)
        ds.add_field("velocity", np.ones((grid.n_points, 3)), Association.POINT)
        filters = [
            Contour(field="energy", n_isovalues=2),
            Threshold(field="energy"),
            SphericalClip(field="energy"),
            Isovolume(field="energy"),
            Slice(field="energy"),
            ParticleAdvection(n_seeds=8, n_steps=5),
            RayTracer(n_images=1, images_per_cycle=1, resolution=(8, 8)),
            VolumeRenderer(n_images=1, images_per_cycle=1, resolution=(8, 8)),
        ]
        for f in filters:
            res = f.execute(ds)
            assert res.profile.total_instructions > 0, f.name


class TestContourSymmetry:
    @given(iso=st.floats(min_value=0.2, max_value=0.8))
    @settings(max_examples=10, deadline=None)
    def test_field_negation_preserves_geometry(self, iso):
        """contour(f, iso) and contour(-f, -iso) produce the same surface
        (possibly with flipped orientation)."""
        grid = UniformGrid.cube(8)
        f = linear_ramp(grid)
        ds_pos = DataSet(grid)
        ds_pos.add_field("e", f, Association.POINT)
        ds_neg = DataSet(grid)
        ds_neg.add_field("e", -f, Association.POINT)
        m1 = Contour(field="e", isovalues=[iso]).execute(ds_pos).output
        m2 = Contour(field="e", isovalues=[-iso]).execute(ds_neg).output
        assert m1.n_triangles == m2.n_triangles
        assert m1.area() == pytest.approx(m2.area(), rel=1e-9)

    @given(scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=10, deadline=None)
    def test_field_scaling_invariance(self, scale):
        """Scaling field and isovalue together leaves the surface fixed."""
        grid = UniformGrid.cube(8)
        f = sphere_distance(grid)
        ds1 = DataSet(grid)
        ds1.add_field("e", f, Association.POINT)
        ds2 = DataSet(grid)
        ds2.add_field("e", f * scale, Association.POINT)
        m1 = Contour(field="e", isovalues=[0.3]).execute(ds1).output
        m2 = Contour(field="e", isovalues=[0.3 * scale]).execute(ds2).output
        np.testing.assert_allclose(
            np.sort(m1.points.ravel()), np.sort(m2.points.ravel()), atol=1e-9
        )


class TestAnisotropicGrids:
    def test_contour_on_stretched_grid(self):
        grid = UniformGrid(cell_dims=(8, 8, 8), spacing=(1.0, 2.0, 0.5))
        ds = DataSet(grid)
        pts = grid.point_coords()
        ds.add_field("e", pts[:, 0], Association.POINT)
        mesh = Contour(field="e", isovalues=[4.0]).execute(ds).output
        # Plane x = 4 has area (8*2) * (8*0.5) = 64.
        assert mesh.area() == pytest.approx(64.0, rel=1e-9)
        np.testing.assert_allclose(mesh.points[:, 0], 4.0, atol=1e-12)

    def test_clip_volume_on_stretched_grid(self):
        grid = UniformGrid(cell_dims=(8, 8, 8), spacing=(1.0, 2.0, 0.5))
        ds = DataSet(grid)
        ds.add_field("e", np.ones(grid.n_points), Association.POINT)
        out = SphericalClip(field="e", center=(0, 0, 0), radius=1e-9).execute(ds).output
        total = out.total_volume(cell_volume=float(np.prod(grid.spacing)))
        assert total == pytest.approx(8 * 16 * 4, rel=1e-9)


class TestWorkloadInvariants:
    @given(factor=st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_segment_scaling(self, factor):
        from repro.workload import AccessPattern, InstructionMix, WorkSegment

        seg = WorkSegment(
            name="s",
            mix=InstructionMix(fp=100, load=50),
            bytes_read=1000,
            bytes_written=100,
            working_set_bytes=1e6,
            extra_stall_cycles=200.0,
        )
        scaled = seg.scaled(factor)
        assert scaled.mix.total == pytest.approx(150 * factor)
        assert scaled.bytes_read == pytest.approx(1000 * factor)
        assert scaled.extra_stall_cycles == pytest.approx(200 * factor)
        # Working set and memory character are NOT scaled.
        assert scaled.working_set_bytes == seg.working_set_bytes
        assert scaled.pattern is seg.pattern
