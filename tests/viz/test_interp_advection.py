"""Trilinear interpolation and RK4 particle advection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Association, DataSet, UniformGrid
from repro.data.generators import linear_ramp, rotation_vector_field
from repro.viz import ParticleAdvection, trilinear
from repro.viz.advection import seed_grid


class TestTrilinear:
    def test_reproduces_linear_field_exactly(self, grid16, rng):
        vals = linear_ramp(grid16, direction=(1.0, 2.0, 3.0))
        q = rng.random((50, 3))
        out, inside = trilinear(grid16, vals, q)
        d = np.array([1.0, 2.0, 3.0]) / np.sqrt(14.0)
        np.testing.assert_allclose(out, q @ d, atol=1e-12)
        assert inside.all()

    def test_exact_at_grid_points(self, grid16, rng):
        vals = rng.random(grid16.n_points)
        pids = rng.integers(0, grid16.n_points, size=20)
        q = grid16.point_coords(pids)
        out, _ = trilinear(grid16, vals, q)
        np.testing.assert_allclose(out, vals[pids], atol=1e-12)

    def test_out_of_bounds_zero_and_flagged(self, grid16):
        vals = np.ones(grid16.n_points)
        out, inside = trilinear(grid16, vals, np.array([[2.0, 0.5, 0.5]]))
        assert not inside[0]
        assert out[0] == 0.0

    def test_vector_field(self, grid16):
        vel = np.tile([1.0, -2.0, 0.5], (grid16.n_points, 1))
        out, _ = trilinear(grid16, vel, np.array([[0.3, 0.7, 0.2]]))
        np.testing.assert_allclose(out[0], [1.0, -2.0, 0.5])

    def test_boundary_point_uses_clamped_cell(self, grid16):
        vals = linear_ramp(grid16)
        out, inside = trilinear(grid16, vals, np.array([[1.0, 1.0, 1.0]]))
        assert inside[0]
        assert out[0] == pytest.approx(1.0)

    def test_convex_combination_bounds(self, grid16, rng):
        vals = rng.random(grid16.n_points)
        q = rng.random((100, 3))
        out, _ = trilinear(grid16, vals, q)
        assert (out >= vals.min() - 1e-12).all()
        assert (out <= vals.max() + 1e-12).all()


class TestSeedGrid:
    def test_count_and_bounds(self, grid16):
        seeds = seed_grid(grid16.bounds, 64)
        assert seeds.shape == (64, 3)
        assert grid16.contains(seeds).all()

    def test_matches_per_axis_loop_bitwise(self, grid16):
        """The batched linspace reproduces the per-dimension loop exactly."""
        bounds = np.asarray(grid16.bounds, dtype=np.float64)
        per_axis = max(1, int(round(64 ** (1.0 / 3.0))))
        axes = []
        for lo, hi in bounds:
            pad = 0.15 * (hi - lo)
            axes.append(np.linspace(lo + pad, hi - pad, per_axis))
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        expected = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        np.testing.assert_array_equal(seed_grid(grid16.bounds, 64), expected)

    def test_margin(self, grid16):
        seeds = seed_grid(grid16.bounds, 27, margin=0.2)
        assert seeds.min() >= 0.2 - 1e-12
        assert seeds.max() <= 0.8 + 1e-12


class TestAdvection:
    def test_circular_streamlines_stay_on_circles(self, blobs_ds):
        """In a pure rotation field, each streamline keeps its radius."""
        adv = ParticleAdvection(n_seeds=27, n_steps=200)
        lines = adv.execute(blobs_ds).output
        center = blobs_ds.grid.center
        checked = 0
        for i in range(lines.n_lines):
            pts = lines.line(i)
            if pts.shape[0] < 50:
                continue  # died early near the boundary
            r = np.linalg.norm((pts - center)[:, :2], axis=1)
            if r[0] < 0.05:
                continue  # near the axis the direction is ill-conditioned
            np.testing.assert_allclose(r, r[0], rtol=0.08)
            checked += 1
        assert checked > 3

    def test_step_length_controls_displacement(self, blobs_ds):
        h = 0.01
        adv = ParticleAdvection(n_seeds=8, n_steps=20, step_length=h)
        lines = adv.execute(blobs_ds).output
        for i in range(lines.n_lines):
            pts = lines.line(i)
            if pts.shape[0] > 2:
                seg = np.linalg.norm(np.diff(pts, axis=0), axis=1)
                np.testing.assert_allclose(seg, h, rtol=1e-6)

    def test_all_points_inside_domain(self, blobs_ds):
        adv = ParticleAdvection(n_seeds=27, n_steps=100)
        lines = adv.execute(blobs_ds).output
        assert blobs_ds.grid.contains(lines.points).all()

    def test_line_count_matches_seeds(self, blobs_ds):
        adv = ParticleAdvection(n_seeds=27, n_steps=10)
        lines = adv.execute(blobs_ds).output
        assert lines.n_lines == 27  # 3^3 lattice

    def test_counts_bound_by_seeds_steps(self, abc_ds):
        adv = ParticleAdvection(n_seeds=27, n_steps=50)
        res = adv.execute(abc_ds)
        assert res.counts["steps"] <= 27 * 50
        assert res.counts["interp_evals"] == 4 * res.counts["steps"]

    def test_particles_exit_small_domain(self, abc_ds):
        """The paper's observation: with fixed world-space step lengths,
        particles fall out of the box and terminate."""
        adv = ParticleAdvection(n_seeds=27, n_steps=500, step_length=0.02)
        res = adv.execute(abc_ds)
        assert res.counts["steps"] < 27 * 500

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ParticleAdvection(n_seeds=0)
        with pytest.raises(ValueError):
            ParticleAdvection(n_steps=0)

    def test_scalar_velocity_rejected(self, ramp_ds):
        with pytest.raises(ValueError, match="vector"):
            ParticleAdvection(field="energy").execute(ramp_ds)
