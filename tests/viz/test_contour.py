"""Contour (marching cubes) correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Association, DataSet, UniformGrid
from repro.data.generators import linear_ramp, sphere_distance
from repro.viz import Contour
from repro.viz.contour import default_isovalues


class TestGeometry:
    def test_sphere_surface_area(self, sphere_ds):
        mesh = Contour(field="energy", isovalues=[0.3]).execute(sphere_ds).output
        assert mesh.area() == pytest.approx(4 * np.pi * 0.3**2, rel=0.02)

    def test_vertices_on_isosurface(self, sphere_ds):
        mesh = Contour(field="energy", isovalues=[0.3]).execute(sphere_ds).output
        r = np.linalg.norm(mesh.points - sphere_ds.grid.center, axis=1)
        np.testing.assert_allclose(r, 0.3, atol=0.01)

    def test_planar_isosurface_exact(self, ramp_ds):
        """A linear field's isosurface is an exact plane with exact area."""
        mesh = Contour(field="energy", isovalues=[0.5]).execute(ramp_ds).output
        np.testing.assert_allclose(mesh.points[:, 0], 0.5, atol=1e-12)
        assert mesh.area() == pytest.approx(1.0, rel=1e-9)

    def test_normals_oriented_against_gradient(self, ramp_ds):
        """Inside = value > iso, so normals point toward smaller x."""
        mesh = Contour(field="energy", isovalues=[0.5]).execute(ramp_ds).output
        normals = mesh.triangle_normals()
        areas = np.linalg.norm(
            np.cross(
                mesh.points[mesh.triangles[:, 1]] - mesh.points[mesh.triangles[:, 0]],
                mesh.points[mesh.triangles[:, 2]] - mesh.points[mesh.triangles[:, 0]],
            ),
            axis=1,
        )
        nonsliver = areas > 1e-12
        assert (normals[nonsliver, 0] < 0).all()

    def test_empty_when_iso_outside_range(self, sphere_ds):
        mesh = Contour(field="energy", isovalues=[99.0]).execute(sphere_ds).output
        assert mesh.n_triangles == 0

    def test_multiple_isovalues_nested_spheres(self, sphere_ds):
        res = Contour(field="energy", isovalues=[0.2, 0.35]).execute(sphere_ds)
        scal = res.output.scalars
        assert set(np.round(np.unique(scal), 6)) == {0.2, 0.35}

    def test_chunking_invariant(self, sphere_ds):
        """Different chunk sizes must produce identical geometry."""
        big = Contour(field="energy", isovalues=[0.3], chunk_cells=1 << 20)
        small = Contour(field="energy", isovalues=[0.3], chunk_cells=97)
        m1 = big.execute(sphere_ds).output
        m2 = small.execute(sphere_ds).output
        assert m1.n_triangles == m2.n_triangles
        np.testing.assert_allclose(
            np.sort(m1.points.sum(axis=1)), np.sort(m2.points.sum(axis=1)), atol=1e-12
        )

    def test_watertight_on_random_field(self, rng):
        """Every interior triangle edge must be shared by exactly 2
        triangles (crack-free across cells and tets)."""
        grid = UniformGrid.cube(6)
        ds = DataSet(grid)
        ds.add_field("f", rng.normal(size=grid.n_points), Association.POINT)
        mesh = Contour(field="f", isovalues=[0.0]).execute(ds).output
        assert mesh.n_triangles > 0
        # Weld duplicated vertices, then count edge incidences.
        key = np.round(mesh.points / 1e-9).astype(np.int64)
        _, inv = np.unique(key, axis=0, return_inverse=True)
        tris = inv[mesh.triangles]
        edges = np.sort(
            np.concatenate([tris[:, [0, 1]], tris[:, [1, 2]], tris[:, [2, 0]]]), axis=1
        )
        # Drop degenerate (zero-length) edges from sliver triangles.
        edges = edges[edges[:, 0] != edges[:, 1]]
        _, counts = np.unique(edges, axis=0, return_counts=True)
        # The random field never crosses zero exactly on the boundary of
        # the domain here, but boundary cells still clip the surface, so
        # allow count==1 edges only on the domain boundary.
        bad = counts > 2
        assert not bad.any(), f"{bad.sum()} non-manifold edges"


class TestWorkProfile:
    def test_counts_scale_with_isovalues(self, sphere_ds):
        r1 = Contour(field="energy", isovalues=[0.3]).execute(sphere_ds)
        r2 = Contour(field="energy", isovalues=[0.3, 0.31]).execute(sphere_ds)
        assert r2.counts["cells_classified"] == 2 * r1.counts["cells_classified"]

    def test_profile_has_expected_segments(self, sphere_ds):
        prof = Contour(field="energy").execute(sphere_ds).profile
        names = [s.name for s in prof]
        assert names == ["framework", "classify", "generate"]

    def test_keep_output_false_counts_only(self, sphere_ds):
        res = Contour(field="energy", isovalues=[0.3], keep_output=False).execute(sphere_ds)
        assert res.output.n_triangles == 0
        assert res.counts["triangles"] > 0

    def test_default_isovalues_strictly_inside(self):
        iso = default_isovalues(0.0, 1.0, 10)
        assert len(iso) == 10
        assert iso.min() > 0.0 and iso.max() < 1.0

    def test_vector_field_rejected(self, grid16):
        ds = DataSet(grid16)
        ds.add_field("v", np.ones((grid16.n_points, 3)), Association.POINT)
        with pytest.raises(ValueError, match="scalar"):
            Contour(field="v").execute(ds)


@given(iso=st.floats(min_value=0.05, max_value=0.45))
@settings(max_examples=15, deadline=None)
def test_property_sphere_radius_tracks_isovalue(iso):
    grid = UniformGrid.cube(12)
    ds = DataSet(grid)
    ds.add_field("d", sphere_distance(grid), Association.POINT)
    mesh = Contour(field="d", isovalues=[iso]).execute(ds).output
    if mesh.n_points == 0:
        return
    r = np.linalg.norm(mesh.points - grid.center, axis=1)
    np.testing.assert_allclose(r, iso, atol=grid.spacing[0])
