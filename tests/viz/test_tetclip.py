"""Tetrahedral clipping engine: exact volume partitions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Association, DataSet, TetMesh, UniformGrid
from repro.data.generators import linear_ramp
from repro.viz.tetclip import clip_grid_cells, clip_tet_soup, tet_cut_recipes


class TestRecipes:
    def test_all_16_cases_present(self):
        recipes = tet_cut_recipes()
        assert set(recipes) == set(range(16))

    def test_case_counts(self):
        recipes = tet_cut_recipes()
        assert len(recipes[0]) == 0          # all outside
        assert len(recipes[0b1111]) == 1     # all inside: passthrough
        for case in (1, 2, 4, 8):
            assert len(recipes[case]) == 1   # single corner kept
        for case in (0b1110, 0b1101, 0b1011, 0b0111):
            assert len(recipes[case]) == 3   # frustum
        for case in (0b0011, 0b0101, 0b1001, 0b0110, 0b1010, 0b1100):
            assert len(recipes[case]) == 3   # prism

    def test_edges_cross_boundary(self):
        recipes = tet_cut_recipes()
        for case, tets in recipes.items():
            inside = {i for i in range(4) if (case >> i) & 1}
            for tet in tets:
                for rv in tet:
                    if rv[0] == "e":
                        _, a, b = rv
                        assert (a in inside) != (b in inside)

    @given(case=st.integers(min_value=1, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_volume_partition_per_tet(self, case):
        """Cut volume of the kept side + complement's kept side = tet volume."""
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        g = np.array([1.0 if (case >> i) & 1 else -1.0 for i in range(4)])
        soup = TetMesh(pts, np.array([[0, 1, 2, 3]]), scalars=g)
        kept, _ = clip_tet_soup(soup, g)
        comp, _ = clip_tet_soup(soup, -g)
        total = kept.total_volume() + comp.total_volume()
        assert total == pytest.approx(1.0 / 6.0, rel=1e-9)


class TestGridClip:
    def test_halfspace_keeps_half(self, grid8):
        g = linear_ramp(grid8) - 0.5
        res = clip_grid_cells(grid8, g)
        cell_vol = float(np.prod(grid8.spacing))
        vol = res.kept_cell_ids.size * cell_vol + res.cut.total_volume()
        assert vol == pytest.approx(0.5, rel=1e-9)

    def test_all_inside(self, grid8):
        res = clip_grid_cells(grid8, np.ones(grid8.n_points))
        assert res.kept_cell_ids.size == grid8.n_cells
        assert res.cut.n_tets == 0
        assert res.n_cells_straddling == 0

    def test_all_outside(self, grid8):
        res = clip_grid_cells(grid8, -np.ones(grid8.n_points))
        assert res.kept_cell_ids.size == 0
        assert res.cut.n_tets == 0

    def test_oblique_halfspace(self, grid8):
        """Plane not aligned with the lattice still partitions exactly."""
        pts = grid8.point_coords()
        g = (pts @ np.array([1.0, 1.0, 0.0])) / np.sqrt(2) - np.sqrt(2) / 2
        cell_vol = float(np.prod(grid8.spacing))
        res = clip_grid_cells(grid8, g)
        vol = res.kept_cell_ids.size * cell_vol + res.cut.total_volume()
        assert vol == pytest.approx(0.5, rel=1e-9)

    def test_scalars_interpolated_on_cut(self, grid8):
        """Cut-tet vertex scalars must equal the carried field's value."""
        g = linear_ramp(grid8) - 0.5
        scal = linear_ramp(grid8) * 2.0  # carried field = 2x
        res = clip_grid_cells(grid8, g, scalars=scal)
        assert res.cut.n_tets > 0
        np.testing.assert_allclose(res.cut.scalars, res.cut.points[:, 0] * 2.0, atol=1e-9)

    def test_chunking_invariant(self, grid8):
        g = linear_ramp(grid8) - 0.37
        r1 = clip_grid_cells(grid8, g, chunk_cells=1 << 20)
        r2 = clip_grid_cells(grid8, g, chunk_cells=13)
        assert r1.kept_cell_ids.size == r2.kept_cell_ids.size
        assert r1.cut.total_volume() == pytest.approx(r2.cut.total_volume(), rel=1e-12)

    def test_keep_output_false(self, grid8):
        g = linear_ramp(grid8) - 0.5
        res = clip_grid_cells(grid8, g, keep_output=False)
        assert res.cut.n_tets == 0
        assert res.n_tets_cut > 0

    def test_subset_cell_ids(self, grid8):
        g = linear_ramp(grid8) - 0.5
        subset = np.arange(0, grid8.n_cells, 2)
        res = clip_grid_cells(grid8, g, cell_ids=subset)
        assert set(res.kept_cell_ids).issubset(set(subset))


class TestTetSoupClip:
    def test_empty_mesh(self):
        out, n = clip_tet_soup(TetMesh.empty(), np.empty(0))
        assert out.n_tets == 0 and n == 0

    def test_wrong_g_length(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        soup = TetMesh(pts, np.array([[0, 1, 2, 3]]))
        with pytest.raises(ValueError):
            clip_tet_soup(soup, np.zeros(3))

    @given(
        n=st.floats(min_value=-0.8, max_value=0.8),
        axis=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_plane_clip_volume(self, n, axis):
        """Clipping a unit cube's tets by an axis plane keeps the exact
        fraction of the volume on the kept side."""
        grid = UniformGrid.cube(4)
        pts = grid.point_coords()
        offset = 0.5 + n / 2.0
        g = pts[:, axis] - offset
        res = clip_grid_cells(grid, g)
        cell_vol = float(np.prod(grid.spacing))
        vol = res.kept_cell_ids.size * cell_vol + res.cut.total_volume()
        assert vol == pytest.approx(1.0 - offset, abs=1e-9)
