"""Filter infrastructure: op ledgers, profiles, the registry."""

import numpy as np
import pytest

from repro.viz import ALGORITHMS, CELL_CENTERED, framework_segment
from repro.viz.base import OpCounts
from repro.viz.costs import COSTS
from repro.workload import AccessPattern


class TestOpCounts:
    def test_add_accumulates(self):
        oc = OpCounts()
        oc.add("x", 2)
        oc.add("x", 3.5)
        assert oc["x"] == 5.5

    def test_missing_is_zero(self):
        assert OpCounts()["nope"] == 0.0

    def test_contains(self):
        oc = OpCounts()
        oc.add("x", 1)
        assert "x" in oc and "y" not in oc


class TestFrameworkSegment:
    def test_scales_with_worklets(self):
        s1 = framework_segment(1)
        s3 = framework_segment(3)
        assert s3.mix.total == pytest.approx(3 * s1.mix.total)
        assert s3.extra_stall_cycles == pytest.approx(3 * s1.extra_stall_cycles)

    def test_low_parallel_efficiency(self):
        assert framework_segment(1).parallel_efficiency < 0.5


class TestRegistry:
    def test_eight_algorithms(self):
        assert len(ALGORITHMS) == 8
        assert set(CELL_CENTERED) <= set(ALGORITHMS)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_algorithm_runs_and_profiles(self, name, blobs_ds):
        res = ALGORITHMS[name]().execute(blobs_ds)
        prof = res.profile
        assert prof.total_instructions > 0
        assert prof.n_elements == blobs_ds.grid.n_cells
        assert prof.segments[0].name == "framework"
        assert all(s.mix.total > 0 for s in prof)
        assert "counts" in prof.metadata

    def test_profiles_rebuildable_from_counts(self, blobs_ds):
        """profile_from_counts must reproduce execute()'s profile."""
        f = ALGORITHMS["threshold"]()
        res = f.execute(blobs_ds)
        rebuilt = f.profile_from_counts(blobs_ds, res.counts)
        assert rebuilt.total_instructions == pytest.approx(res.profile.total_instructions)
        assert [s.name for s in rebuilt] == [s.name for s in res.profile]


class TestCostTable:
    def test_all_phases_have_positive_instructions(self):
        for key, cost in COSTS.items():
            assert cost.instr_per_op > 0, key

    def test_patterns_are_valid(self):
        for cost in COSTS.values():
            assert isinstance(cost.pattern, AccessPattern)

    def test_compute_bound_phases_have_low_stalls(self):
        """The two power-sensitive algorithms' hot phases are pipelined."""
        assert COSTS[("advection", "step")].stall_cycles < 50
        assert COSTS[("volume", "sample")].stall_cycles < 50

    def test_data_bound_phases_have_heavy_stalls(self):
        for key in [("contour", "classify"), ("threshold", "predicate"), ("clip", "classify")]:
            cost = COSTS[key]
            assert cost.stall_cycles > cost.instr_per_op * 0.3, key
