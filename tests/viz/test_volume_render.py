"""Volume renderer and rendering support (cameras, colormaps, images)."""

import numpy as np
import pytest

from repro.viz import Camera, ColorMap, Image, VolumeRenderer, orbit_cameras


class TestCamera:
    def test_rays_unit_length(self):
        cam = Camera(eye=np.array([3.0, 0, 0]), look_at=np.zeros(3), up=np.array([0, 0, 1.0]))
        o, d = cam.rays(8, 8)
        assert o.shape == (64, 3) and d.shape == (64, 3)
        np.testing.assert_allclose(np.linalg.norm(d, axis=1), 1.0)

    def test_center_ray_points_at_target(self):
        cam = Camera(eye=np.array([3.0, 0, 0]), look_at=np.zeros(3), up=np.array([0, 0, 1.0]))
        _, d = cam.rays(9, 9)
        center = d[4 * 9 + 4]
        np.testing.assert_allclose(center, [-1, 0, 0], atol=1e-12)

    def test_orbit_count_and_distance(self):
        bounds = np.array([[0, 1], [0, 1], [0, 1.0]])
        cams = orbit_cameras(bounds, 5)
        assert len(cams) == 5
        center = bounds.mean(axis=1)
        dists = [np.linalg.norm(c.eye - center) for c in cams]
        np.testing.assert_allclose(dists, dists[0])

    def test_orbit_rejects_zero(self):
        with pytest.raises(ValueError):
            orbit_cameras(np.array([[0, 1], [0, 1], [0, 1.0]]), 0)


class TestColorMap:
    def test_endpoints(self):
        cm = ColorMap()
        np.testing.assert_allclose(cm(np.array([0.0])), [ColorMap.COOL_WARM[0]])
        np.testing.assert_allclose(cm(np.array([1.0])), [ColorMap.COOL_WARM[-1]])

    def test_clipping(self):
        cm = ColorMap()
        np.testing.assert_allclose(cm(np.array([-5.0])), cm(np.array([0.0])))
        np.testing.assert_allclose(cm(np.array([5.0])), cm(np.array([1.0])))

    def test_interpolation_midpoint(self):
        table = np.array([[0.0, 0, 0], [1.0, 1, 1]])
        cm = ColorMap(table)
        np.testing.assert_allclose(cm(np.array([0.5])), [[0.5, 0.5, 0.5]])

    def test_bad_table(self):
        with pytest.raises(ValueError):
            ColorMap(np.array([[0.0, 0, 0]]))


class TestImage:
    def test_save_ppm(self, tmp_path):
        img = Image.blank(4, 3, color=(1.0, 0.0, 0.0))
        path = img.save_ppm(tmp_path / "x.ppm")
        data = path.read_bytes()
        assert data.startswith(b"P6\n4 3\n255\n")
        body = data.split(b"255\n", 1)[1]
        assert len(body) == 4 * 3 * 3
        assert body[0] == 255 and body[1] == 0


class TestVolumeRenderer:
    def test_produces_images(self, blobs_ds):
        vr = VolumeRenderer(n_images=2, images_per_cycle=4, resolution=(24, 24))
        res = vr.execute(blobs_ds)
        assert len(res.output) == 2
        assert res.output[0].rgb.shape == (24, 24, 3)
        assert res.counts["samples"] > 0
        assert res.counts["rays"] == 2 * 24 * 24

    def test_center_differs_from_background(self, blobs_ds):
        vr = VolumeRenderer(n_images=1, images_per_cycle=1, resolution=(25, 25), opacity=0.4)
        img = vr.execute(blobs_ds).output[0]
        bg = np.array([0.08, 0.08, 0.10])
        assert not np.allclose(img.rgb[12, 12], bg, atol=1e-3)

    def test_rgb_in_unit_range(self, blobs_ds):
        vr = VolumeRenderer(n_images=1, images_per_cycle=1, resolution=(16, 16))
        img = vr.execute(blobs_ds).output[0]
        assert img.rgb.min() >= 0.0
        assert img.rgb.max() <= 1.0 + 1e-9

    def test_zero_opacity_passes_background(self, blobs_ds):
        vr = VolumeRenderer(n_images=1, images_per_cycle=1, resolution=(8, 8), opacity=0.0)
        img = vr.execute(blobs_ds).output[0]
        np.testing.assert_allclose(img.rgb, np.broadcast_to([0.08, 0.08, 0.10], img.rgb.shape))

    def test_sample_count_scales_with_rate(self, blobs_ds):
        lo = VolumeRenderer(n_images=1, images_per_cycle=1, resolution=(16, 16), samples_per_cell=1.0)
        hi = VolumeRenderer(n_images=1, images_per_cycle=1, resolution=(16, 16), samples_per_cell=2.0)
        s_lo = lo.execute(blobs_ds).counts["samples"]
        s_hi = hi.execute(blobs_ds).counts["samples"]
        assert s_hi == pytest.approx(2 * s_lo, rel=0.1)

    def test_early_termination_reduces_samples(self, blobs_ds):
        full = VolumeRenderer(
            n_images=1, images_per_cycle=1, resolution=(16, 16), opacity=0.9, early_termination=2.0
        )
        term = VolumeRenderer(
            n_images=1, images_per_cycle=1, resolution=(16, 16), opacity=0.9, early_termination=0.5
        )
        assert term.execute(blobs_ds).counts["samples"] < full.execute(blobs_ds).counts["samples"]

    def test_bad_params(self):
        with pytest.raises(ValueError):
            VolumeRenderer(samples_per_cell=0)
        with pytest.raises(ValueError):
            VolumeRenderer(n_images=3, images_per_cycle=2)
