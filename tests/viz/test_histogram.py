"""The ninth algorithm (histogram) and its out-of-sample classification."""

import numpy as np
import pytest

from repro.core import PowerClass, classify, predict_class
from repro.core.runner import RunPoint, StudyRunner
from repro.core.metrics import Ratios
from repro.machine import Processor
from repro.viz import Histogram


class TestHistogram:
    def test_counts_partition_cells(self, blobs_ds):
        edges, hist = Histogram(field="energy").execute(blobs_ds).output
        assert hist.sum() == blobs_ds.grid.n_cells
        assert len(edges) == len(hist) + 1

    def test_bin_count_respected(self, blobs_ds):
        _, hist = Histogram(field="energy", n_bins=32).execute(blobs_ds).output
        assert len(hist) == 32

    def test_values_fall_in_their_bins(self, blobs_ds):
        edges, hist = Histogram(field="energy", n_bins=16).execute(blobs_ds).output
        values = blobs_ds.cell_field("energy").values
        ref, _ = np.histogram(values, bins=edges)
        np.testing.assert_array_equal(hist, ref)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(n_bins=0)


class TestOutOfSampleClassification:
    """§VIII: classify an algorithm the study never measured."""

    @pytest.fixture(scope="class")
    def sweep(self, request):
        proc = Processor()
        ds = __import__("repro.data.generators", fromlist=["make_dataset"]).make_dataset(32)
        prof = Histogram(field="energy").execute(ds).profile
        base = proc.run(prof, 120.0)
        points = []
        for cap in range(120, 30, -10):
            r = proc.run(prof, float(cap))
            points.append(
                RunPoint(
                    algorithm="histogram",
                    size=32,
                    cap_w=float(cap),
                    time_s=r.time_s,
                    energy_j=r.energy_j,
                    power_w=r.avg_power_w,
                    freq_ghz=r.effective_freq_ghz,
                    ipc=r.ipc,
                    llc_miss_rate=r.llc_miss_rate,
                    ratios=Ratios.from_measurements(
                        cap_default_w=120.0,
                        cap_w=float(cap),
                        time_default_s=base.time_s,
                        time_s=r.time_s,
                        freq_default_ghz=base.effective_freq_ghz,
                        freq_ghz=r.effective_freq_ghz,
                    ),
                )
            )
        return points, proc.run(prof, 120.0)

    def test_sweep_classifies_as_opportunity(self, sweep):
        points, _ = sweep
        c = classify(points)
        assert c.power_class is PowerClass.OPPORTUNITY
        assert c.natural_power_w < 60.0

    def test_predictor_agrees_with_sweep(self, sweep):
        points, tdp_run = sweep
        assert predict_class(tdp_run).power_class is classify(points).power_class

    def test_more_data_bound_than_threshold(self, blobs_ds):
        """Histogram's IPC sits at or below threshold's (one pass, no
        compaction output)."""
        from repro.viz import Threshold

        proc = Processor()
        ipc = {}
        for f in (Histogram(field="energy"), Threshold(field="energy")):
            prof = f.execute(blobs_ds).profile
            ipc[f.name] = proc.run(prof, 120.0).ipc
        assert ipc["histogram"] <= ipc["threshold"] * 1.2
