"""Threshold and three-slice filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Association, DataSet, UniformGrid
from repro.data.generators import linear_ramp
from repro.viz import Slice, Threshold


class TestThreshold:
    def test_kept_cells_satisfy_predicate(self, blobs_ds):
        cells = blobs_ds.cell_field("energy").values
        lo, hi = float(np.median(cells)), float(cells.max())
        out = Threshold(field="energy", lo=lo, hi=hi).execute(blobs_ds).output
        assert ((cells[out.cell_ids] >= lo) & (cells[out.cell_ids] <= hi)).all()

    def test_complement_partitions_cells(self, blobs_ds):
        cells = blobs_ds.cell_field("energy").values
        mid = float(np.median(cells))
        a = Threshold(field="energy", lo=mid, hi=np.inf).execute(blobs_ds).output
        b = Threshold(field="energy", lo=-np.inf, hi=np.nextafter(mid, -np.inf)).execute(
            blobs_ds
        ).output
        assert a.n_cells + b.n_cells == blobs_ds.grid.n_cells
        assert len(set(a.cell_ids) & set(b.cell_ids)) == 0

    def test_output_scalars_match(self, blobs_ds):
        cells = blobs_ds.cell_field("energy").values
        out = Threshold(field="energy", lo=0.1, hi=10).execute(blobs_ds).output
        np.testing.assert_array_equal(out.cell_scalars, cells[out.cell_ids])

    def test_default_range_upper_half(self, blobs_ds):
        res = Threshold(field="energy").execute(blobs_ds)
        cells = blobs_ds.cell_field("energy").values
        mid = 0.5 * (cells.min() + cells.max())
        assert (cells[res.output.cell_ids] >= mid).all()

    def test_counts(self, blobs_ds):
        res = Threshold(field="energy", lo=-np.inf, hi=np.inf).execute(blobs_ds)
        assert res.counts["cells_scanned"] == blobs_ds.grid.n_cells
        assert res.counts["cells_kept"] == blobs_ds.grid.n_cells

    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_kept_count_matches_ramp_fraction(self, frac):
        """On a linear ramp, keeping values >= q keeps ~ (1-q) of cells."""
        grid = UniformGrid.cube(10)
        ds = DataSet(grid)
        ds.add_field("r", linear_ramp(grid), Association.POINT)
        out = Threshold(field="r", lo=frac, hi=2.0).execute(ds).output
        expected = (1.0 - frac) * grid.n_cells
        assert abs(out.n_cells - expected) <= grid.cell_dims[0] ** 2 + 1


class TestSlice:
    def test_three_planes_through_center(self, blobs_ds):
        mesh = Slice(field="energy").execute(blobs_ds).output
        center = blobs_ds.grid.center
        # Every vertex lies on one of the three center planes.
        d = np.abs(mesh.points - center)
        on_plane = (d < 1e-9).any(axis=1)
        assert on_plane.all()

    def test_single_plane_area(self, blobs_ds):
        mesh = Slice(field="energy", planes=("xy",)).execute(blobs_ds).output
        assert mesh.area() == pytest.approx(1.0, rel=1e-6)

    def test_three_plane_area(self, blobs_ds):
        mesh = Slice(field="energy").execute(blobs_ds).output
        assert mesh.area() == pytest.approx(3.0, rel=1e-6)

    def test_unknown_plane_rejected(self):
        with pytest.raises(ValueError, match="unknown plane"):
            Slice(planes=("xy", "zz"))

    def test_counts_scale_with_planes(self, blobs_ds):
        r1 = Slice(field="energy", planes=("xy",)).execute(blobs_ds)
        r3 = Slice(field="energy").execute(blobs_ds)
        assert r3.counts["points_evaluated"] == 3 * r1.counts["points_evaluated"]

    def test_profile_segments(self, blobs_ds):
        prof = Slice(field="energy").execute(blobs_ds).profile
        assert [s.name for s in prof] == ["framework", "distance", "classify", "generate"]
