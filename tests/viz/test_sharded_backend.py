"""Sharded kernel backend: bitwise ledgers, identical geometry, shard hooks.

``backend="sharded"`` fans the shard-capable kernels out over k-spans of
the lattice and merges in ascending span order; the determinism contract
is that ledgers equal the serial pass *bitwise* and geometry is
identical cell-for-cell.  These tests pin that contract across shard
counts (including more shards than planes) plus the backend-resolution
and engine-facing ``apply_shard`` surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import make_dataset
from repro.viz import ALGORITHMS, Contour, Isovolume, SphericalClip
from repro.viz.base import ENV_BACKEND, OpCounts, resolve_backend
from repro.viz.sharding import ENV_SHARD_WORKERS, resolve_shards, run_spans

SHARDABLE = ("contour", "clip", "isovolume")


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(24, kind="blobs", seed=7)


class TestResolveBackend:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None) == "serial"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "sharded")
        assert resolve_backend(None) == "sharded"

    def test_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "sharded")
        assert resolve_backend("serial") == "serial"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")


class TestResolveShards:
    def test_arg_clamped_to_planes(self):
        assert resolve_shards(64, 24) == 24

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_SHARD_WORKERS, "3")
        assert resolve_shards(None, 24) == 3

    def test_env_junk_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_SHARD_WORKERS, "many")
        with pytest.raises(ValueError, match=ENV_SHARD_WORKERS):
            resolve_shards(None, 24)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_shards(0, 24)


class TestRunSpans:
    def test_results_in_span_order(self):
        out = run_spans(lambda lo, hi: (lo, hi), [(0, 3), (3, 7), (7, 8)])
        assert out == [(0, 3), (3, 7), (7, 8)]

    def test_empty_spans_skipped(self):
        out = run_spans(lambda lo, hi: (lo, hi), [(0, 4), (4, 4), (4, 8)])
        assert out == [(0, 4), (4, 8)]


class TestShardedEqualsSerial:
    """The core contract: ledgers bitwise, geometry identical."""

    @pytest.mark.parametrize("name", SHARDABLE)
    @pytest.mark.parametrize("shards", [1, 3, 5, 24, 64])
    def test_ledger_bitwise(self, dataset, name, shards):
        filt = ALGORITHMS[name]()
        serial = filt.execute(dataset).counts.as_dict()
        sharded = filt.execute(dataset, backend="sharded", shards=shards)
        assert sharded.counts.as_dict() == serial

    def test_contour_geometry_identical(self, dataset):
        # Points batch per (slab, isovalue); span boundaries reorder the
        # batches but never their contents, so compare as a multiset.
        a = Contour(keep_output=True).execute(dataset).output
        b = Contour(keep_output=True).execute(
            dataset, backend="sharded", shards=5
        ).output
        assert a.n_triangles == b.n_triangles
        np.testing.assert_array_equal(
            np.sort(np.asarray(a.points), axis=0),
            np.sort(np.asarray(b.points), axis=0),
        )

    @pytest.mark.parametrize("cls", [SphericalClip, Isovolume])
    def test_clip_family_geometry_identical(self, dataset, cls):
        a = cls().execute(dataset).output
        b = cls().execute(dataset, backend="sharded", shards=5).output
        np.testing.assert_array_equal(a.kept.cell_ids, b.kept.cell_ids)
        np.testing.assert_array_equal(a.kept.cell_scalars, b.kept.cell_scalars)
        assert a.cut.n_tets == b.cut.n_tets
        np.testing.assert_allclose(
            a.cut.total_volume(), b.cut.total_volume(), rtol=1e-9
        )

    def test_env_backend_applies(self, dataset, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "sharded")
        monkeypatch.setenv(ENV_SHARD_WORKERS, "4")
        filt = ALGORITHMS["contour"]()
        serial = filt.execute(dataset, backend="serial").counts.as_dict()
        assert filt.execute(dataset).counts.as_dict() == serial

    def test_unsupported_filter_runs_serial(self, dataset):
        """Filters without the hooks accept the backend and stay exact."""
        filt = ALGORITHMS["threshold"]()
        assert not filt.supports_sharding
        serial = filt.execute(dataset).counts.as_dict()
        assert filt.execute(dataset, backend="sharded").counts.as_dict() == serial


class TestApplyShard:
    """The engine-facing ledger-only span API."""

    @pytest.mark.parametrize("name", SHARDABLE)
    def test_span_ledgers_sum_to_serial(self, dataset, name):
        filt = ALGORITHMS[name]()
        serial = filt.execute(dataset).counts.as_dict()
        total = OpCounts()
        for shard in range(5):
            filt.apply_shard(dataset, total, shard, 5)
        assert total.as_dict() == serial

    def test_empty_span_adds_nothing(self, dataset):
        counts = OpCounts()
        # 64 shards over 24 planes: the tail shards are empty spans.
        ALGORITHMS["contour"]().apply_shard(dataset, counts, 63, 64)
        assert counts.as_dict() == {}

    def test_unsupported_filter_rejected(self, dataset):
        with pytest.raises(ValueError, match="does not support sharding"):
            ALGORITHMS["threshold"]().apply_shard(dataset, OpCounts(), 0, 2)

    def test_isovolume_keep_output_rejected(self, dataset):
        """Pass 2b's ledger lives in _finish: shard ledgers are only
        exact for the counting configuration the engine profiles with."""
        with pytest.raises(ValueError, match="keep_output"):
            Isovolume(keep_output=True).apply_shard(dataset, OpCounts(), 0, 2)
