"""Spherical clip and isovolume filters."""

import numpy as np
import pytest

from repro.data import Association, DataSet, UniformGrid
from repro.data.generators import linear_ramp, sphere_distance
from repro.viz import Isovolume, SphericalClip


@pytest.fixture(scope="module")
def grid24():
    return UniformGrid.cube(24)


@pytest.fixture(scope="module")
def sphere24(grid24):
    ds = DataSet(grid24)
    ds.add_field("energy", sphere_distance(grid24), Association.POINT)
    return ds


@pytest.fixture(scope="module")
def ramp24(grid24):
    ds = DataSet(grid24)
    ds.add_field("energy", linear_ramp(grid24), Association.POINT)
    return ds


class TestSphericalClip:
    def test_volume_outside_sphere(self, sphere24, grid24):
        out = SphericalClip(field="energy", radius=0.3).execute(sphere24).output
        vol = out.total_volume(cell_volume=float(np.prod(grid24.spacing)))
        assert vol == pytest.approx(1.0 - 4 / 3 * np.pi * 0.3**3, rel=5e-3)

    def test_kept_cells_fully_outside(self, sphere24, grid24):
        out = SphericalClip(field="energy", radius=0.3).execute(sphere24).output
        centers = grid24.cell_centers(out.kept.cell_ids)
        d = np.linalg.norm(centers - grid24.center, axis=1)
        # Every kept whole cell's center is at least (r - half diagonal).
        assert d.min() > 0.3 - grid24.spacing[0] * np.sqrt(3) / 2

    def test_cut_points_near_sphere_region(self, sphere24, grid24):
        out = SphericalClip(field="energy", radius=0.3).execute(sphere24).output
        d = np.linalg.norm(out.cut.points - grid24.center, axis=1)
        # Cut tets live in straddling cells: within one cell diagonal of r.
        assert d.min() > 0.3 - 2 * grid24.spacing[0] * np.sqrt(3)
        assert d.max() < 0.3 + 2 * grid24.spacing[0] * np.sqrt(3)

    def test_radius_zero_keeps_everything(self, sphere24, grid24):
        out = SphericalClip(field="energy", radius=1e-12).execute(sphere24).output
        vol = out.total_volume(cell_volume=float(np.prod(grid24.spacing)))
        assert vol == pytest.approx(1.0, rel=1e-6)

    def test_huge_radius_drops_everything(self, sphere24, grid24):
        out = SphericalClip(field="energy", radius=10.0).execute(sphere24).output
        assert out.kept.n_cells == 0
        assert out.cut.n_tets == 0

    def test_counts_consistent(self, sphere24, grid24):
        res = SphericalClip(field="energy", radius=0.3).execute(sphere24)
        c = res.counts
        assert c["cells_classified"] == grid24.n_cells
        assert (
            c["cells_kept_whole"] + c["cells_straddling"] <= grid24.n_cells
        )
        assert c["tets_cut"] == c["cells_straddling"] * 6

    def test_profile_segments(self, sphere24):
        prof = SphericalClip(field="energy").execute(sphere24).profile
        assert [s.name for s in prof] == ["framework", "evaluate", "classify", "cut", "copy"]


class TestIsovolume:
    def test_exact_slab_volume(self, ramp24, grid24):
        out = Isovolume(field="energy", lo=0.25, hi=0.75).execute(ramp24).output
        vol = out.total_volume(cell_volume=float(np.prod(grid24.spacing)))
        assert vol == pytest.approx(0.5, rel=1e-9)

    def test_spherical_shell_volume(self, sphere24, grid24):
        out = Isovolume(field="energy", lo=0.2, hi=0.4).execute(sphere24).output
        vol = out.total_volume(cell_volume=float(np.prod(grid24.spacing)))
        expected = 4 / 3 * np.pi * (0.4**3 - 0.2**3)
        assert vol == pytest.approx(expected, rel=1e-2)

    def test_cut_scalars_within_range(self, sphere24):
        out = Isovolume(field="energy", lo=0.2, hi=0.4).execute(sphere24).output
        assert out.cut.scalars.min() >= 0.2 - 1e-9
        assert out.cut.scalars.max() <= 0.4 + 1e-9

    def test_degenerate_range_near_empty(self, ramp24, grid24):
        out = Isovolume(field="energy", lo=0.5, hi=0.5).execute(ramp24).output
        vol = out.total_volume(cell_volume=float(np.prod(grid24.spacing)))
        assert vol == pytest.approx(0.0, abs=1e-9)

    def test_lo_above_hi_rejected(self, ramp24):
        with pytest.raises(ValueError, match="must not exceed"):
            Isovolume(field="energy", lo=0.8, hi=0.2).execute(ramp24)

    def test_full_range_keeps_all(self, ramp24, grid24):
        out = Isovolume(field="energy", lo=-10, hi=10).execute(ramp24).output
        assert out.kept.n_cells == grid24.n_cells

    def test_union_of_complement_ranges(self, ramp24, grid24):
        """[0, .5] and [.5, 1] volumes sum to the whole cube."""
        cv = float(np.prod(grid24.spacing))
        lo = Isovolume(field="energy", lo=-1, hi=0.5).execute(ramp24).output
        hi = Isovolume(field="energy", lo=0.5, hi=2).execute(ramp24).output
        assert lo.total_volume(cv) + hi.total_volume(cv) == pytest.approx(1.0, rel=1e-9)

    def test_profile_segments(self, ramp24):
        prof = Isovolume(field="energy").execute(ramp24).profile
        assert [s.name for s in prof] == ["framework", "classify", "cut", "copy"]
