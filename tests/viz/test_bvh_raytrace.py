"""BVH construction/traversal and the ray tracer."""

import numpy as np
import pytest

from repro.data import Association, DataSet, UniformGrid
from repro.data.generators import gaussian_blobs
from repro.viz import Bvh, RayTracer, TraversalStats, external_surface
from repro.viz.bvh import morton_codes
from repro.viz.render import orbit_cameras


def brute_force_trace(points, tris, origins, dirs):
    """Reference nearest-hit via Möller–Trumbore over every triangle."""
    n_rays = origins.shape[0]
    t_best = np.full(n_rays, np.inf)
    hit = np.full(n_rays, -1, dtype=np.int64)
    for ti, tri in enumerate(tris):
        p0 = points[tri[0]]
        e1 = points[tri[1]] - p0
        e2 = points[tri[2]] - p0
        pvec = np.cross(dirs, e2)
        det = pvec @ e1
        ok = np.abs(det) > 1e-12
        inv = np.where(ok, 1.0 / np.where(ok, det, 1.0), 0.0)
        tvec = origins - p0
        u = np.einsum("ij,ij->i", tvec, pvec) * inv
        qvec = np.cross(tvec, np.broadcast_to(e1, tvec.shape))
        v = np.einsum("ij,ij->i", dirs, qvec) * inv
        t = qvec @ e2 * inv
        h = ok & (u >= 0) & (v >= 0) & (u + v <= 1) & (t > 1e-9) & (t < t_best)
        t_best[h] = t[h]
        hit[h] = ti
    return t_best, hit


@pytest.fixture(scope="module")
def surface12():
    grid = UniformGrid.cube(12)
    cells = gaussian_blobs(grid, seed=1)[: grid.n_cells]  # any values
    ds = DataSet(grid)
    ds.add_field("energy", gaussian_blobs(grid, seed=1), Association.POINT)
    cell_scal = ds.cell_field("energy").values
    return external_surface(grid, cell_scal), grid


class TestMorton:
    def test_codes_monotone_along_diagonal(self):
        pts = np.linspace([0, 0, 0], [1, 1, 1], 16)
        codes = morton_codes(pts, np.zeros(3), np.ones(3))
        assert (np.diff(codes.astype(np.int64)) >= 0).all()

    def test_spatial_locality(self):
        """Close points get closer codes than far points, on average."""
        rng = np.random.default_rng(0)
        base = rng.random((64, 3)) * 0.9
        near = base + 0.01
        far = (base + 0.5) % 1.0
        lo, hi = np.zeros(3), np.ones(3)
        c0 = morton_codes(base, lo, hi).astype(np.int64)
        cn = morton_codes(near, lo, hi).astype(np.int64)
        cf = morton_codes(far, lo, hi).astype(np.int64)
        assert np.median(np.abs(cn - c0)) < np.median(np.abs(cf - c0))


class TestExternalSurface:
    def test_face_count_scales_n_squared(self):
        for n in (4, 8):
            grid = UniformGrid.cube(n)
            _, tris, _ = external_surface(grid, np.zeros(grid.n_cells))
            assert tris.shape[0] == 6 * n * n * 2

    def test_closed_surface_area(self):
        grid = UniformGrid.cube(6)
        pts, tris, _ = external_surface(grid, np.zeros(grid.n_cells))
        e1 = pts[tris[:, 1]] - pts[tris[:, 0]]
        e2 = pts[tris[:, 2]] - pts[tris[:, 0]]
        area = 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1).sum()
        assert area == pytest.approx(6.0)

    def test_scalars_come_from_boundary_cells(self):
        grid = UniformGrid.cube(4)
        cells = np.arange(grid.n_cells, dtype=float)
        _, tris, scal = external_surface(grid, cells)
        assert scal.shape[0] == tris.shape[0]
        assert set(np.unique(scal)).issubset(set(cells))


class TestBvh:
    def test_matches_brute_force(self, surface12):
        (pts, tris, _), grid = surface12
        bvh = Bvh(pts, tris)
        cam = orbit_cameras(grid.bounds, 1)[0]
        o, d = cam.rays(12, 12)
        t_bvh, hit_bvh = bvh.trace(o, d)
        t_ref, _ = brute_force_trace(pts, tris, o, d)
        np.testing.assert_allclose(t_bvh, t_ref, rtol=1e-9)

    def test_visits_far_below_brute_force(self, surface12):
        (pts, tris, _), grid = surface12
        bvh = Bvh(pts, tris)
        cam = orbit_cameras(grid.bounds, 1)[0]
        o, d = cam.rays(16, 16)
        stats = TraversalStats()
        bvh.trace(o, d, stats)
        assert stats.tri_tests < 0.05 * tris.shape[0] * o.shape[0]
        assert stats.node_visits / o.shape[0] < 100

    def test_miss_rays_return_inf(self, surface12):
        (pts, tris, _), grid = surface12
        bvh = Bvh(pts, tris)
        o = np.array([[5.0, 5.0, 5.0]])
        d = np.array([[1.0, 0.0, 0.0]])  # pointing away
        t, hit = bvh.trace(o, d)
        assert np.isinf(t[0]) and hit[0] == -1

    def test_source_rows_is_permutation(self, surface12):
        (pts, tris, _), _ = surface12
        bvh = Bvh(pts, tris)
        assert sorted(bvh.source_rows.tolist()) == list(range(tris.shape[0]))
        np.testing.assert_array_equal(bvh.tris, tris[bvh.source_rows])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Bvh(np.zeros((3, 3)), np.empty((0, 3), dtype=np.int64))

    def test_leaf_size_variants_agree(self, surface12):
        (pts, tris, _), grid = surface12
        cam = orbit_cameras(grid.bounds, 1)[0]
        o, d = cam.rays(8, 8)
        t4, _ = Bvh(pts, tris, leaf_size=4).trace(o, d)
        t16, _ = Bvh(pts, tris, leaf_size=16).trace(o, d)
        np.testing.assert_allclose(t4, t16, rtol=1e-9)


class TestRayTracer:
    def test_images_and_counts(self, blobs_ds):
        rt = RayTracer(n_images=2, images_per_cycle=10, resolution=(32, 32))
        res = rt.execute(blobs_ds)
        assert len(res.output) == 2
        assert res.output[0].rgb.shape == (32, 32, 3)
        assert res.counts["rays"] == 2 * 32 * 32
        assert res.counts["surface_triangles"] == 6 * 16 * 16 * 2

    def test_center_pixel_hits(self, blobs_ds):
        rt = RayTracer(n_images=1, images_per_cycle=1, resolution=(33, 33))
        img = rt.execute(blobs_ds).output[0]
        center = img.rgb[16, 16]
        background = np.array([0.08, 0.08, 0.10])
        assert not np.allclose(center, background)

    def test_profile_scaling(self, blobs_ds):
        r1 = RayTracer(n_images=1, images_per_cycle=1, resolution=(16, 16)).execute(blobs_ds)
        r50 = RayTracer(n_images=1, images_per_cycle=50, resolution=(16, 16)).execute(blobs_ds)
        t1 = next(s for s in r1.profile if s.name == "trace")
        t50 = next(s for s in r50.profile if s.name == "trace")
        assert t50.mix.total == pytest.approx(50 * t1.mix.total, rel=1e-9)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RayTracer(n_images=0)
        with pytest.raises(ValueError):
            RayTracer(n_images=5, images_per_cycle=2)
