"""Golden-ledger equivalence guard.

The extraction kernels were optimized (interval culling, shared gather
caches, lattice classification, active-set compaction) under the
contract that the *measured work* — the op-count ledger, and hence every
WorkProfile, RunPoint, table, and figure — stays bitwise identical.
``tests/golden/ledgers.json`` and ``geometry.json`` were recorded from
the pre-optimization kernels; these tests pin the optimized kernels to
them exactly (ledgers) and to tolerance (geometry, whose emission order
legitimately changed).

``REPRO_MAX_SIZE`` skips the sizes it excludes, so CI at 32 runs the
32³ entries only while the full tier-1 run covers 64³ too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.profiles import profile_from_ledger, run_algorithm_ledger
from repro.core.runner import make_run_point
from repro.core.study import POWER_CAPS_W

_GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
_LEDGERS = json.loads((_GOLDEN_DIR / "ledgers.json").read_text())
_GEOMETRY = json.loads((_GOLDEN_DIR / "geometry.json").read_text())


def _skip_if_capped(size: int) -> None:
    raw = os.environ.get("REPRO_MAX_SIZE", "").strip()
    if raw and size > int(raw):
        pytest.skip(f"REPRO_MAX_SIZE={raw} excludes {size}^3")


@pytest.mark.parametrize("key", sorted(_LEDGERS["entries"]))
def test_ledger_bitwise_identical(key):
    """Optimized kernels reproduce the recorded ledgers exactly."""
    algorithm, size = key.split("/")
    _skip_if_capped(int(size))
    fresh = run_algorithm_ledger(
        algorithm,
        int(size),
        dataset_kind=_LEDGERS["dataset_kind"],
        seed=_LEDGERS["seed"],
    )
    golden = _LEDGERS["entries"][key]
    assert fresh == golden, {
        k: (golden.get(k), fresh.get(k))
        for k in sorted(set(fresh) | set(golden))
        if fresh.get(k) != golden.get(k)
    }


_SHARDED_DATASETS: dict[tuple[int, str, int], object] = {}


def _golden_dataset(size: int):
    key = (size, _LEDGERS["dataset_kind"], _LEDGERS["seed"])
    if key not in _SHARDED_DATASETS:
        from repro.data.generators import make_dataset

        _SHARDED_DATASETS[key] = make_dataset(size, kind=key[1], seed=key[2])
    return _SHARDED_DATASETS[key]


@pytest.mark.parametrize("key", sorted(_LEDGERS["entries"]))
def test_sharded_backend_ledger_equals_serial(key):
    """backend="sharded" reproduces every golden ledger bitwise.

    Shard-capable kernels fan out over k-spans and merge; the rest run
    serial under the sharded backend — either way the ledger contract
    holds for every recorded (algorithm, size) case.
    """
    from repro.viz import ALGORITHMS

    algorithm, size = key.split("/")
    _skip_if_capped(int(size))
    ds = _golden_dataset(int(size))
    result = ALGORITHMS[algorithm]().execute(ds, backend="sharded", shards=3)
    golden = _LEDGERS["entries"][key]
    fresh = result.counts.as_dict()
    assert fresh == golden, {
        k: (golden.get(k), fresh.get(k))
        for k in sorted(set(fresh) | set(golden))
        if fresh.get(k) != golden.get(k)
    }


def test_runpoints_identical_through_ledger(processor):
    """Identical ledgers price to identical RunPoints (the full chain)."""
    default_cap, capped = max(POWER_CAPS_W), min(POWER_CAPS_W)
    for algorithm in ("contour", "clip"):
        golden = _LEDGERS["entries"][f"{algorithm}/32"]
        fresh = run_algorithm_ledger(algorithm, 32)
        points = []
        for ledger in (golden, fresh):
            profile = profile_from_ledger(algorithm, 32, ledger, n_cycles=3)
            base = processor.run(profile, default_cap)
            run = processor.run(profile, capped)
            points.append(make_run_point(algorithm, 32, capped, run, base, default_cap))
        assert points[0] == points[1]


class TestGoldenGeometry:
    """Output geometry matches the pre-optimization path to tolerance.

    Emission order changed (batched tet cuts group by case, not by tet
    slot), so the stats compared are order-insensitive: counts, per-axis
    coordinate sums, bounds, and exact volumes.
    """

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data.generators import make_dataset

        return make_dataset(32, kind=_GEOMETRY["dataset_kind"], seed=_GEOMETRY["seed"])

    def _check_points(self, key, points):
        ref = _GEOMETRY["entries"][key]
        pts = np.asarray(points, dtype=np.float64)
        assert pts.shape[0] == ref["n_points"]
        np.testing.assert_allclose(pts.sum(axis=0), ref["coord_sum"], rtol=1e-9)
        np.testing.assert_allclose(pts.min(axis=0), ref["bbox_lo"], atol=1e-12)
        np.testing.assert_allclose(pts.max(axis=0), ref["bbox_hi"], atol=1e-12)
        return ref

    def test_contour(self, dataset):
        from repro.viz import Contour

        mesh = Contour(keep_output=True).execute(dataset).output
        ref = self._check_points("contour/32", mesh.points)
        assert mesh.n_triangles == ref["n_triangles"]

    def test_clip(self, dataset):
        from repro.viz import SphericalClip

        out = SphericalClip(keep_output=True).execute(dataset).output
        ref = self._check_points("clip/32", out.cut.points)
        assert out.cut.n_tets == ref["n_tets"]
        assert out.kept.n_cells == ref["kept_cells"]
        np.testing.assert_allclose(out.cut.total_volume(), ref["cut_volume"], rtol=1e-9)

    def test_isovolume(self, dataset):
        from repro.viz import Isovolume

        out = Isovolume(keep_output=True).execute(dataset).output
        ref = self._check_points("isovolume/32", out.cut.points)
        assert out.cut.n_tets == ref["n_tets"]
        assert out.kept.n_cells == ref["kept_cells"]
        np.testing.assert_allclose(out.cut.total_volume(), ref["cut_volume"], rtol=1e-9)

    def test_slice(self, dataset):
        from repro.viz import Slice

        mesh = Slice(keep_output=True).execute(dataset).output
        ref = self._check_points("slice/32", mesh.points)
        assert mesh.n_triangles == ref["n_triangles"]

    def test_advection(self, dataset):
        from repro.viz import ParticleAdvection

        lines = ParticleAdvection(n_seeds=512, n_steps=100).execute(dataset).output
        ref = self._check_points("advection/32", lines.points)
        assert len(lines.offsets) - 1 == ref["n_lines"]
        assert int(np.sum(lines.offsets)) == ref["offsets_sum"]
