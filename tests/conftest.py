"""Shared fixtures: small grids and datasets so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Association, DataSet, UniformGrid
from repro.data.generators import (
    abc_flow,
    gaussian_blobs,
    linear_ramp,
    rotation_vector_field,
    sphere_distance,
)
from repro.machine import Processor


@pytest.fixture(scope="session")
def grid16() -> UniformGrid:
    return UniformGrid.cube(16)


@pytest.fixture(scope="session")
def grid8() -> UniformGrid:
    return UniformGrid.cube(8)


@pytest.fixture(scope="session")
def sphere_ds(grid16) -> DataSet:
    """16³ dataset whose scalar is distance from the center."""
    ds = DataSet(grid16)
    ds.add_field("energy", sphere_distance(grid16), Association.POINT)
    return ds


@pytest.fixture(scope="session")
def ramp_ds(grid16) -> DataSet:
    """16³ dataset with a linear x-ramp (exact planar isosurfaces)."""
    ds = DataSet(grid16)
    ds.add_field("energy", linear_ramp(grid16), Association.POINT)
    return ds


@pytest.fixture(scope="session")
def blobs_ds(grid16) -> DataSet:
    """16³ dataset with Gaussian blobs and a rotational velocity field."""
    ds = DataSet(grid16)
    ds.add_field("energy", gaussian_blobs(grid16), Association.POINT)
    ds.add_field("velocity", rotation_vector_field(grid16), Association.POINT)
    return ds


@pytest.fixture(scope="session")
def abc_ds(grid16) -> DataSet:
    ds = DataSet(grid16)
    ds.add_field("energy", gaussian_blobs(grid16), Association.POINT)
    ds.add_field("velocity", abc_flow(grid16), Association.POINT)
    return ds


@pytest.fixture(scope="session")
def processor() -> Processor:
    return Processor()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
