"""Table I — Phase 1: contour at 128³ under the nine power caps.

Regenerates the paper's Table I rows (P, Pratio, T, Tratio, F, Fratio)
and asserts its qualitative claims: the execution time holds flat until
a deep cap, and the slowdown never reaches the power reduction
(``Tratio < Pratio``).
"""

import pytest

from repro.core import first_slowdown_cap, render_table1
from repro.harness import effective_sizes


def _table1_size() -> int:
    return effective_sizes((128,))[0]


def bench_table1_contour_sweep(benchmark, harness):
    size = _table1_size()
    result = benchmark.pedantic(harness.table1, rounds=1, iterations=1)
    print()
    print(render_table1(result, algorithm="contour", size=size))

    pts = sorted(result.select(algorithm="contour", size=size), key=lambda p: -p.cap_w)
    base = pts[0]

    # Paper: at 120 W the contour runs at the all-core turbo frequency.
    assert base.freq_ghz == pytest.approx(harness.processor.spec.f_turbo)

    # Paper: "the execution time remains unaffected until an extreme
    # power cap" — no significant slowdown above 60 W.
    red = first_slowdown_cap([(p.cap_w, p.tratio) for p in pts])
    assert red is not None and red <= 60.0

    # Paper: the slowdown never reaches the reduction in power
    # (the contour is "sufficiently data intensive").
    for p in pts:
        assert p.tratio < p.pratio or p.pratio == 1.0

    # Paper: at 40 W both T and F degrade, and roughly together.
    p40 = pts[-1]
    assert p40.tratio > 1.1
    assert abs(p40.tratio - p40.fratio) < 0.4

    benchmark.extra_info["first_slowdown_cap_w"] = red
    benchmark.extra_info["tratio_40w"] = round(p40.tratio, 3)
    benchmark.extra_info["fratio_40w"] = round(p40.fratio, 3)
