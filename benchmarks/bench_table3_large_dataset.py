"""Table III — Phase 3 slice: all algorithms at 256³.

Regenerates the 256³ slowdown grid and asserts the paper's finding that
growing the dataset is a poor tradeoff for the data-bound algorithms:
their first significant slowdown moves to *higher* power caps than at
128³, while the compute-bound pair's draw (and hence throttle point)
barely moves.
"""

import pytest

from repro.core import classify_result, render_slowdown_table
from repro.harness import effective_sizes


def bench_table3_large_dataset(benchmark, harness):
    sizes = effective_sizes((256,))
    size = sizes[0]
    if size < 256:
        pytest.skip("REPRO_MAX_SIZE excludes the 256^3 configuration")

    result = benchmark.pedantic(harness.table3, rounds=1, iterations=1)
    print()
    print(render_slowdown_table(result, size=256))

    small = harness.table2()
    big_cls = classify_result(result, size=256)
    small_cls = classify_result(small, size=128)

    # Paper: for the data-bound algorithms the 10% slowdown appears at
    # higher caps with the larger dataset (e.g. contour 40 W -> 50 W).
    shifted = [
        alg
        for alg in ("contour", "threshold", "clip", "slice")
        if (big_cls[alg].first_slowdown_cap_w or 0) > (small_cls[alg].first_slowdown_cap_w or 0)
    ]
    assert len(shifted) >= 2, f"expected upward red-cap shifts, got {shifted}"
    assert (big_cls["contour"].first_slowdown_cap_w or 0) >= 50.0

    # Paper: the compute-bound pair's power usage does not move with
    # dataset size.
    for alg in ("advection", "volume"):
        assert big_cls[alg].natural_power_w == pytest.approx(
            small_cls[alg].natural_power_w, abs=5.0
        )
        assert big_cls[alg].first_slowdown_cap_w == small_cls[alg].first_slowdown_cap_w

    # Data-bound algorithms draw more power at 256³ (the shift's cause).
    for alg in ("contour", "threshold", "clip"):
        assert big_cls[alg].natural_power_w > small_cls[alg].natural_power_w + 3.0

    # Tratio at 40 W grows with the dataset for every data-bound
    # algorithm (Table II vs Table III).
    for alg in ("contour", "threshold", "clip", "slice"):
        t_small = [p for p in small.select(algorithm=alg, size=128) if p.cap_w == 40.0][0]
        t_big = [p for p in result.select(algorithm=alg, size=256) if p.cap_w == 40.0][0]
        assert t_big.tratio > t_small.tratio

    benchmark.extra_info["red_caps_256"] = {
        a: c.first_slowdown_cap_w for a, c in big_cls.items()
    }
