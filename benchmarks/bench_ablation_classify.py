"""Ablation A1 — sensitivity of the classification to its thresholds.

The study classifies with "first 10% slowdown" and an implicit cap
boundary between the classes.  This ablation sweeps both knobs and
checks the two-class split is robust: the paper's grouping should hold
for a band of thresholds, not just the published ones.
"""

from repro.core import classify_result
from repro.harness import effective_sizes

SENSITIVE = {"advection", "volume"}


def _memberships(result, size, slowdown_threshold, sensitive_cap):
    from repro.core.classify import classify

    out = {}
    for alg in result.algorithms:
        pts = result.select(algorithm=alg, size=size)
        c = classify(pts, sensitive_cap_w=sensitive_cap, threshold=slowdown_threshold)
        out[alg] = not c.is_opportunity
    return out


def bench_ablation_classify(benchmark, harness, phase2_result):
    size = effective_sizes((128,))[0]

    def sweep():
        grid = {}
        for threshold in (0.05, 0.10, 0.15):
            for cap in (65.0, 70.0, 75.0):
                grid[(threshold, cap)] = _memberships(phase2_result, size, threshold, cap)
        return grid

    grid = benchmark.pedantic(sweep, rounds=3, iterations=1)

    print("\n--- A1: class membership across thresholds ---")
    agree = 0
    for (threshold, cap), members in sorted(grid.items()):
        got_sensitive = {a for a, s in members.items() if s}
        match = got_sensitive == SENSITIVE
        agree += match
        print(f"slowdown>{threshold:.2f}, boundary {cap:.0f}W -> "
              f"sensitive={sorted(got_sensitive)} {'OK' if match else 'DIFFERS'}")

    # The paper's split must hold at the published knobs and most of
    # the neighborhood.
    assert grid[(0.10, 70.0)] == {a: a in SENSITIVE for a in grid[(0.10, 70.0)]}
    assert agree >= 6, f"classification too fragile: {agree}/9 settings agree"
    benchmark.extra_info["agreement"] = f"{agree}/9"
