"""Figs. 4–6 — IPC versus power cap, one line per dataset size.

The paper's three categories:

* Fig. 4 (rising): slice, contour, isovolume, threshold, clip — IPC
  increases with dataset size.
* Fig. 5 (falling): volume rendering — IPC decreases as the dataset
  outgrows the LLC.
* Fig. 6 (flat): particle advection and ray tracing — work is fixed by
  seeds/steps or scales sub-linearly (surface ~N²), so IPC barely moves.
"""

import pytest

from repro.core import ipc_by_size_series
from repro.harness import effective_sizes

RISING = ("slice", "contour", "isovolume", "threshold", "clip")
FALLING = ("volume",)
FLAT = ("advection", "raytrace")


def _ipc_at_tdp(series):
    """{size: IPC at the 120 W point} for one algorithm."""
    return {size: s.y[-1] for size, s in series.items()}


def bench_fig456_ipc_by_size(benchmark, harness, phase3_result):
    sizes = effective_sizes()
    if len(sizes) < 3:
        pytest.skip("need at least three dataset sizes for the trend")

    all_series = benchmark.pedantic(
        lambda: {
            alg: ipc_by_size_series(phase3_result, algorithm=alg)
            for alg in RISING + FALLING + FLAT
        },
        rounds=1,
        iterations=1,
    )

    print("\n--- Figs 4-6: IPC at 120W by dataset size ---")
    print(f"{'alg':>10s} " + " ".join(f"{s:>7d}" for s in sizes))
    for alg, series in all_series.items():
        vals = _ipc_at_tdp(series)
        print(f"{alg:>10s} " + " ".join(f"{vals[s]:7.2f}" for s in sizes))

    # Fig. 4: IPC rises monotonically with size for the first category.
    for alg in RISING:
        vals = [_ipc_at_tdp(all_series[alg])[s] for s in sizes]
        assert all(b > a for a, b in zip(vals, vals[1:])), f"{alg}: {vals}"

    # Fig. 5: volume rendering falls from the smallest to the largest
    # size (the LLC-capacity effect).
    v = [_ipc_at_tdp(all_series["volume"])[s] for s in sizes]
    assert v[-1] < v[0], f"volume: {v}"

    # Fig. 6: advection and ray tracing stay within a narrow band.
    for alg in FLAT:
        vals = [_ipc_at_tdp(all_series[alg])[s] for s in sizes]
        assert max(vals) / min(vals) < 1.45, f"{alg}: {vals}"

    # Cross-category: at every size the compute-bound pair leads.
    for s in sizes:
        rising_max = max(_ipc_at_tdp(all_series[a])[s] for a in RISING)
        assert _ipc_at_tdp(all_series["advection"])[s] > rising_max

    benchmark.extra_info["ipc_by_size"] = {
        alg: {s: round(v, 2) for s, v in _ipc_at_tdp(series).items()}
        for alg, series in all_series.items()
    }
