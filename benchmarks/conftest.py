"""Shared benchmark fixtures.

The harness fixture is session-scoped: real algorithm executions are
recorded once (persisted under .cache/) and every benchmark re-prices
them through the machine model, so the full table/figure suite runs in
seconds after the first warm-up.

Set ``REPRO_MAX_SIZE=64`` (for example) to smoke-test the benchmark
suite without the 256³ extractions.
"""

import pytest

from repro import api
from repro.harness import TableHarness


@pytest.fixture(scope="session")
def harness() -> TableHarness:
    return api.harness()


@pytest.fixture(scope="session")
def phase2_result(harness):
    """All algorithms at 128³ — shared by Table II and Figs. 2–3."""
    return harness.table2()


@pytest.fixture(scope="session")
def phase3_result(harness):
    """All algorithms at all sizes — shared by Figs. 4–6."""
    return harness.phase3()
