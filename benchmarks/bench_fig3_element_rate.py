"""Fig. 3 — elements processed per second for the cell-centered
algorithms (contour, isovolume, slice, clip, threshold) versus cap.

Asserts the paper's observations: the rate is near-constant across most
caps (the denominator doesn't move until the cap bites) and declines at
severe caps; fast algorithms sit higher than slow ones.
"""

from repro.core import figure3_series
from repro.harness import effective_sizes
from repro.viz import CELL_CENTERED


def bench_fig3_element_rate(benchmark, harness, phase2_result):
    size = effective_sizes((128,))[0]
    fig = benchmark.pedantic(
        lambda: figure3_series(phase2_result, size=size, algorithms=CELL_CENTERED),
        rounds=3,
        iterations=1,
    )

    print("\n--- Fig 3: elements/second (millions) ---")
    caps = next(iter(fig.values())).x
    print(f"{'cap(W)':>10s} " + " ".join(f"{c:7.0f}" for c in caps))
    for alg, s in fig.items():
        print(f"{alg:>10s} " + " ".join(f"{v / 1e6:7.2f}" for v in s.y))

    for alg, s in fig.items():
        # Near-constant from 120 W down to 70 W (within 12%).
        high_caps = [y for x, y in zip(s.x, s.y) if x >= 70.0]
        assert max(high_caps) / min(high_caps) < 1.12, alg
        # Declining at the severe cap.
        assert s.y[0] < s.y[-1], f"{alg} rate should drop at 40W"

    # "Algorithms with very fast execution times will have a high rate":
    # threshold (one cheap pass) beats contour (10 isovalue passes).
    assert fig["threshold"].y[-1] > fig["contour"].y[-1]

    benchmark.extra_info["rate_at_tdp_meps"] = {
        alg: round(s.y[-1] / 1e6, 2) for alg, s in fig.items()
    }
