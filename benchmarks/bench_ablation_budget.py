"""Ablation A2 — the power-budget runtime (§VII's use case).

Compares the naive uniform node-budget split against the
advisor-informed split (deep-cap the visualization, boost the
simulation) across node budgets and visualization pipelines, and prints
the makespan improvements.  The paper's claim: informed allocation
"may result in better overall performance"; with a data-bound
visualization the advisor should never lose and should win clearly at
tight budgets.
"""

from repro.cloverleaf import step_profile
from repro.harness import effective_sizes
from repro.insitu import advisor_allocation, uniform_allocation
from repro.workload import WorkProfile


def _scaled(profile, factor):
    out = WorkProfile(name=profile.name, n_elements=profile.n_elements)
    out.segments = [s.scaled(factor) for s in profile.segments]
    return out


def bench_ablation_budget(benchmark, harness):
    size = min(effective_sizes((128,))[0], 128)
    proc = harness.runner.processor
    # Paper-like composition: the simulation dominates; visualization is
    # a 10-20% tail (10 of the study's 87 cycles).
    sim = step_profile(size**3, 2500)

    def sweep():
        rows = []
        for viz_alg in ("contour", "volume"):
            viz = _scaled(harness.profile(viz_alg, size), 10.0 / 87.0)
            for budget in (100.0, 140.0, 180.0):
                uni = uniform_allocation(proc, sim, viz, budget)
                adv = advisor_allocation(proc, sim, viz, budget)
                rows.append((viz_alg, budget, uni, adv))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n--- A2: uniform vs advisor node-budget split ---")
    print(f"{'viz':>9s} {'budget':>7s} {'uniform(s)':>11s} {'advisor(s)':>11s} "
          f"{'speedup':>8s} {'viz cap':>8s} {'sim cap':>8s}")
    for viz_alg, budget, uni, adv in rows:
        speedup = uni.makespan_s / adv.makespan_s
        print(f"{viz_alg:>9s} {budget:6.0f}W {uni.makespan_s:11.3f} {adv.makespan_s:11.3f} "
              f"{speedup:7.2f}x {adv.viz_cap_w:7.0f}W {adv.sim_cap_w:7.0f}W")

    # The advisor (with its uniform fallback) never loses, for either
    # visualization class.
    for _, budget, uni, adv in rows:
        assert adv.makespan_s <= uni.makespan_s * 1.001

    # With a data-bound visualization it wins clearly at the middle
    # budget: the visualization does not need its half.
    contour_rows = [r for r in rows if r[0] == "contour"]
    mid = contour_rows[1]
    assert mid[3].makespan_s < mid[2].makespan_s * 0.95

    # The advisor grants the power-opportunity visualization a deeper
    # cap than the power-sensitive one (at the budget where both skew).
    adv_contour = contour_rows[1][3]
    adv_volume = [r for r in rows if r[0] == "volume"][1][3]
    assert adv_contour.viz_cap_w <= adv_volume.viz_cap_w
