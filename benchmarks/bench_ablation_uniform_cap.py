"""Ablation A3 — the cost of uniform power capping (§III-A).

The paper argues a uniform per-socket cap wastes capacity when the
workload distribution is non-uniform: sockets with light work leave
power stranded while heavily loaded sockets throttle.  This ablation
builds a two-socket node with imbalanced visualization work and
compares a uniform cap against a demand-aware split of the same total
budget.
"""

from repro.harness import effective_sizes


def bench_ablation_uniform_cap(benchmark, harness):
    sizes = effective_sizes((32, 128))
    small, large = sizes[0], sizes[-1]
    proc = harness.runner.processor

    light = harness.profile("contour", small)   # lightly loaded socket
    heavy = harness.profile("volume", large)    # heavily loaded socket
    budget = 160.0

    def run():
        # Uniform: 80 W each.
        u_light = proc.run(light, budget / 2)
        u_heavy = proc.run(heavy, budget / 2)
        uniform_makespan = max(u_light.time_s, u_heavy.time_s)

        # Demand-aware: give the light socket its floor, the rest to the
        # heavy one (clamped to the RAPL range).
        floor = proc.spec.rapl_floor_watts
        d_light = proc.run(light, floor)
        d_heavy = proc.run(heavy, proc.rapl.validate_cap(budget - floor))
        demand_makespan = max(d_light.time_s, d_heavy.time_s)
        return uniform_makespan, demand_makespan, (u_heavy, d_heavy)

    uniform_makespan, demand_makespan, (u_heavy, d_heavy) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    speedup = uniform_makespan / demand_makespan
    print("\n--- A3: uniform vs demand-aware cap across sockets ---")
    print(f"uniform 80W/80W      : makespan {uniform_makespan:.3f}s "
          f"(heavy socket at {u_heavy.effective_freq_ghz:.2f} GHz)")
    print(f"demand-aware 40W/120W: makespan {demand_makespan:.3f}s "
          f"(heavy socket at {d_heavy.effective_freq_ghz:.2f} GHz)")
    print(f"speedup: {speedup:.2f}x")

    # The heavy socket is power-sensitive: releasing the stranded power
    # must speed up the node.
    assert demand_makespan < uniform_makespan
    assert d_heavy.effective_freq_ghz > u_heavy.effective_freq_ghz
    benchmark.extra_info["speedup"] = round(speedup, 3)
