"""Table II — Phase 2: slowdown factors for all 8 algorithms at 128³.

Regenerates the Tratio/Fratio grid and asserts the study's central
result: the algorithms split into a power-opportunity class (first
slowdown at deep caps, low draw) and a power-sensitive class (particle
advection and volume rendering: high draw, early slowdown).
"""

from repro.core import classify_result, first_slowdown_cap, render_slowdown_table
from repro.harness import effective_sizes

OPPORTUNITY = ("contour", "threshold", "clip", "isovolume", "slice", "raytrace")
SENSITIVE = ("advection", "volume")


def bench_table2_all_algorithms(benchmark, harness):
    size = effective_sizes((128,))[0]
    result = benchmark.pedantic(harness.table2, rounds=1, iterations=1)
    print()
    print(render_slowdown_table(result, size=size))

    classes = classify_result(result, size=size)

    # The paper's two classes, by membership.
    for alg in SENSITIVE:
        assert not classes[alg].is_opportunity, f"{alg} should be power sensitive"
    for alg in OPPORTUNITY:
        assert classes[alg].is_opportunity, f"{alg} should be power opportunity"

    # Power-sensitive algorithms draw the most power (paper: ~85 W vs
    # 55-70 W for the rest).
    min_sensitive = min(classes[a].natural_power_w for a in SENSITIVE)
    max_opportunity = max(classes[a].natural_power_w for a in OPPORTUNITY)
    assert min_sensitive > max_opportunity

    # First-slowdown caps: the sensitive pair throttles at/above 70 W,
    # the opportunity class holds out to 60 W or deeper.
    for alg in SENSITIVE:
        red = classes[alg].first_slowdown_cap_w
        assert red is not None and red >= 70.0, f"{alg} red cap {red}"
    for alg in OPPORTUNITY:
        red = classes[alg].first_slowdown_cap_w
        assert red is None or red <= 60.0, f"{alg} red cap {red}"

    # Paper detail: contour survives until the very deepest cap.
    contour_red = classes["contour"].first_slowdown_cap_w
    assert contour_red == 40.0

    benchmark.extra_info["red_caps"] = {
        a: c.first_slowdown_cap_w for a, c in classes.items()
    }
    benchmark.extra_info["power_draw"] = {
        a: round(c.natural_power_w, 1) for a, c in classes.items()
    }
