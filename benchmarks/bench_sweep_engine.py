"""Sweep engine: resume throughput and parallel/serial equivalence.

Two properties worth tracking as the grids grow:

* a warm resume (every point already in the store) must stay orders of
  magnitude faster than recomputing the sweep — it is the path every
  regenerated table and figure takes after the first run;
* the parallel engine must keep producing bitwise-identical points to
  the serial runner, or cached results silently diverge between hosts.
"""

import pytest

from repro import api
from repro.core import StudyConfig, StudyRunner, SweepEngine
from repro.harness import effective_sizes


def _config() -> StudyConfig:
    size = effective_sizes((64,))[0]
    return StudyConfig(name="bench", algorithms=("contour", "threshold", "clip"), sizes=(size,))


def bench_sweep_engine_warm_resume(benchmark, tmp_path_factory):
    cfg = _config()
    store = tmp_path_factory.mktemp("store") / "bench.jsonl"
    engine = api.sweep_engine(store=store, n_cycles=8)
    cold = engine.run(cfg)

    def warm():
        e = api.sweep_engine(store=store, n_cycles=8)
        return e.run(cfg)

    result = benchmark(warm)
    assert [p.to_dict() for p in result.points] == [p.to_dict() for p in cold.points]


def bench_sweep_engine_parallel_matches_serial(benchmark):
    cfg = _config()
    serial = StudyRunner(n_cycles=8).run_config(cfg)

    def parallel():
        return SweepEngine(n_cycles=8, workers=2).run(cfg)

    result = benchmark.pedantic(parallel, rounds=1, iterations=1)
    assert len(result.points) == cfg.n_configurations
    for a, b in zip(serial.points, result.points):
        assert a.to_dict() == b.to_dict()
