"""Fig. 2 — effective frequency (a), IPC (b), LLC miss rate (c) versus
power cap for all eight algorithms at 128³.

Prints the three series grids and asserts their shapes: every algorithm
starts at turbo, the power-sensitive pair tops the IPC chart (above the
paper's IPC≈1 compute/memory divide), and the LLC miss-rate ordering is
the inverse of IPC (isovolume highest, the renderers lowest).
"""

import pytest

from repro.core import figure2_series
from repro.harness import effective_sizes


def _print_series(title, series, fmt="{:6.2f}"):
    print(f"\n--- {title} ---")
    caps = None
    for alg, s in series.items():
        if caps is None:
            caps = s.x
            print(f"{'cap(W)':>10s} " + " ".join(f"{c:6.0f}" for c in caps))
        print(f"{alg:>10s} " + " ".join(fmt.format(v) for v in s.y))


def bench_fig2_counters(benchmark, harness, phase2_result):
    size = effective_sizes((128,))[0]
    fig = benchmark.pedantic(
        lambda: figure2_series(phase2_result, size=size), rounds=3, iterations=1
    )

    _print_series("Fig 2a: effective frequency (GHz)", fig["frequency"])
    _print_series("Fig 2b: IPC", fig["ipc"])
    _print_series("Fig 2c: LLC miss rate", fig["llc_miss_rate"])

    spec = harness.runner.processor.spec

    # (a) Everyone runs at the all-core turbo at 120 W (paper: "all
    # algorithms ... run at the same frequency of 2.6 GHz at a 120 W cap").
    for s in fig["frequency"].values():
        assert s.y[-1] == pytest.approx(spec.f_turbo)
        # And frequency never increases as the cap tightens.
        assert all(b >= a - 1e-9 for a, b in zip(s.y, s.y[1:]))

    # (b) IPC divide: the compute-bound pair sits above 1, the
    # cell-centered data-bound group below ~1.3.
    ipc_at_tdp = {alg: s.y[-1] for alg, s in fig["ipc"].items()}
    assert ipc_at_tdp["advection"] > 1.8
    assert ipc_at_tdp["volume"] > 1.8
    for alg in ("contour", "threshold", "clip"):
        assert ipc_at_tdp[alg] < 1.0
    assert ipc_at_tdp["threshold"] == min(ipc_at_tdp.values())

    # (b) Compute-bound IPC collapses under deep caps (biggest change),
    # because the denominator (reference cycles) keeps ticking.
    drop = {alg: s.y[-1] - s.y[0] for alg, s in fig["ipc"].items()}
    assert drop["advection"] >= max(drop[a] for a in ("contour", "threshold", "slice"))

    # (c) Miss-rate ordering is the inverse of IPC: isovolume tops the
    # chart; the renderers' working sets fit on chip.
    miss_at_tdp = {alg: s.y[-1] for alg, s in fig["llc_miss_rate"].items()}
    assert miss_at_tdp["isovolume"] == max(miss_at_tdp.values())
    assert miss_at_tdp["volume"] < 0.1
    assert miss_at_tdp["advection"] < 0.15

    benchmark.extra_info["ipc_at_tdp"] = {k: round(v, 2) for k, v in ipc_at_tdp.items()}
    benchmark.extra_info["miss_rate_at_tdp"] = {k: round(v, 2) for k, v in miss_at_tdp.items()}
