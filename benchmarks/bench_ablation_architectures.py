"""Ablation A4 — cross-architecture power capping (the paper's §VIII
future work: "explore how the power and performance tradeoffs ...
compare across other architectures that provide power capping").

Prices the same measured work profiles on three cap-capable sockets
(the study's Broadwell, a Skylake-SP-like part, and a low-power
manycore) and compares where each algorithm's first slowdown lands.
"""

from repro.core import classify_result
from repro.core.runner import StudyRunner
from repro.core.study import ALGORITHM_NAMES, StudyConfig
from repro.harness import effective_sizes
from repro.machine import ALL_PRESETS


def bench_ablation_architectures(benchmark, harness):
    size = effective_sizes((128,))[0]
    # Warm the ledger cache through the shared harness.
    for alg in ALGORITHM_NAMES:
        harness.profile(alg, size)

    def sweep():
        out = {}
        for name, spec in ALL_PRESETS.items():
            runner = StudyRunner(spec)
            runner._profiles = dict(harness.runner._profiles)
            caps = tuple(
                float(w)
                for w in range(int(spec.tdp_watts), int(spec.rapl_floor_watts) - 1, -10)
            )
            cfg = StudyConfig(
                name=f"arch-{name}", algorithms=ALGORITHM_NAMES, sizes=(size,), caps_w=caps
            )
            out[name] = (spec, runner.run_config(cfg))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n--- A4: first-slowdown cap as a fraction of TDP, per architecture ---")
    print(f"{'alg':>10s} " + " ".join(f"{n:>10s}" for n in results))
    fractions = {}
    for name, (spec, result) in results.items():
        classes = classify_result(result, size=size, sensitive_cap_w=0.58 * spec.tdp_watts)
        fractions[name] = {
            alg: (c.first_slowdown_cap_w or spec.rapl_floor_watts) / spec.tdp_watts
            for alg, c in classes.items()
        }
    for alg in ALGORITHM_NAMES:
        print(f"{alg:>10s} " + " ".join(f"{fractions[n][alg]:>9.0%} " for n in results))

    # The class *structure* transfers across architectures: the
    # compute-bound pair throttles at a larger fraction of TDP than the
    # median data-bound algorithm everywhere.
    for name in results:
        f = fractions[name]
        data_bound = sorted(f[a] for a in ("contour", "threshold", "clip", "slice"))
        assert f["advection"] >= data_bound[-1], name
        assert f["volume"] >= data_bound[1], name

    # But the architecture moves the boundary: the low-power manycore's
    # narrow DVFS range leaves less room for caps to bite than
    # Broadwell's (smaller fraction gap between classes).
    spread = {
        n: max(f.values()) - min(f.values()) for n, f in fractions.items()
    }
    assert spread["manycore"] < spread["broadwell"]

    benchmark.extra_info["first_red_fraction_of_tdp"] = {
        n: {a: round(v, 2) for a, v in f.items()} for n, f in fractions.items()
    }
