"""Advisor throughput benchmark: warm vs cold pricing queries per second.

Times the hot path behind ``repro advise``: batch-repricing the full
8-algorithm × {32, 64, 128}³ × 9-cap grid (216 queries) through
:class:`repro.core.advisor.PowerAdvisor`.  Three phases are recorded
into ``BENCH_advisor.json``:

* **profile fill** — executing the real algorithms once to record their
  op-count ledgers (the one-time cost the cache amortizes away);
* **cold** — a fresh advisor process against a warm ledger cache: table
  construction plus repricing (the serve-loop restart cost);
* **warm** — repricing with built tables, the steady-state rate held to
  the ≥ 10,000 queries/sec floor.

Every run also re-verifies the golden-ledger guard: one repriced group
per size is compared bitwise against the engine's per-point path
(``Processor.run`` + ``make_run_point``) before any number is recorded.

Standalone (updates ``BENCH_advisor.json`` at the repo root)::

    python benchmarks/bench_advisor.py --sizes 32 64 128 --repeats 5

Under pytest the same suite runs once at a smoke size (capped by
``REPRO_MAX_SIZE``) into a temp file; the throughput floor is enforced
only for the full grid.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.advisor import PowerAdvisor
from repro.core.atomicio import atomic_write_json
from repro.core.pricing import LedgerCache
from repro.core.profiles import profile_from_ledger
from repro.core.runner import DEFAULT_VIZ_CYCLES, make_run_point
from repro.core.study import ALGORITHM_NAMES, POWER_CAPS_W
from repro.harness import effective_sizes
from repro.machine.simulator import Processor

BENCH_FORMAT = "repro-bench-advisor"
BENCH_VERSION = 1

DEFAULT_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_advisor.json"
DEFAULT_CACHE_PATH = Path(".cache") / "advise-ledgers.json"

#: The acceptance grid: every algorithm, three sizes, every paper cap.
GRID_SIZES: tuple[int, ...] = (32, 64, 128)

#: Steady-state floor for warm-cache batch repricing of the full grid.
FLOOR_WARM_QPS = 10_000.0


def verify_bitwise(advisor: PowerAdvisor, sizes: list[int]) -> None:
    """Golden-ledger guard: repriced points == engine per-point path.

    One (algorithm, size) group per size is executed through
    ``Processor.run`` + ``make_run_point`` and compared field-for-field
    (frozen float dataclasses: equality is bitwise).  Raises
    ``AssertionError`` on any divergence — a bench that records
    throughput for wrong answers is worse than no bench.
    """
    processor = Processor(advisor.spec)
    caps = list(advisor.caps_w)
    default_cap = max(caps)
    for i, size in enumerate(sizes):
        algorithm = ALGORITHM_NAMES[i % len(ALGORITHM_NAMES)]
        ledger, _ = advisor.ledger_for(algorithm, size)
        profile = profile_from_ledger(
            algorithm, size, ledger, n_cycles=advisor.repricer.n_cycles
        )
        base = processor.run(profile, default_cap)
        expected = [
            make_run_point(
                algorithm,
                size,
                cap,
                base if cap == default_cap else processor.run(profile, cap),
                base,
                default_cap,
            )
            for cap in caps
        ]
        got = advisor.repricer.reprice(algorithm, size, ledger, caps)
        for e, g in zip(expected, got):
            assert e == g, (
                f"repriced point diverges from engine path: "
                f"{algorithm}@{size}^3 {e.cap_w:g}W\n  engine: {e.to_dict()}\n"
                f"  repriced: {g.to_dict()}"
            )


def run_suite(
    sizes: list[int],
    *,
    repeats: int = 5,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    cache_path: str | Path | None = DEFAULT_CACHE_PATH,
    path: str | Path = DEFAULT_BENCH_PATH,
    save: bool = True,
    verify: bool = True,
) -> dict:
    """Measure fill/cold/warm advisor throughput; record and return the doc."""
    sizes = sorted(set(int(s) for s in sizes))
    cache = LedgerCache(cache_path)
    advisor = PowerAdvisor(cache=cache, n_cycles=n_cycles)
    n_queries = len(ALGORITHM_NAMES) * len(sizes) * len(POWER_CAPS_W)

    t0 = time.perf_counter()
    filled = advisor.warm(ALGORITHM_NAMES, sizes)
    fill_s = time.perf_counter() - t0
    print(f"profile fill: {filled} ledgers executed in {fill_s:.2f}s "
          f"({len(ALGORITHM_NAMES) * len(sizes) - filled} already cached)")

    if verify:
        verify_bitwise(advisor, sizes)
        print(f"golden-ledger guard: {len(sizes)} groups bitwise identical to the engine path")

    # Cold: a fresh advisor (empty pricing tables) over the warm ledger
    # cache — what a restarted serve loop pays on its first grid.
    cold_advisor = PowerAdvisor(cache=cache, n_cycles=n_cycles)
    t0 = time.perf_counter()
    cold_points = cold_advisor.reprice_grid(ALGORITHM_NAMES, sizes)
    cold_s = time.perf_counter() - t0
    assert len(cold_points) == n_queries
    cold_qps = n_queries / cold_s
    print(f"cold (tables rebuilt): {n_queries} queries in {cold_s * 1e3:.1f} ms "
          f"= {cold_qps:,.0f} q/s")

    # Warm: steady state — tables built, ledgers cached.  Best of
    # ``repeats`` passes, the same convention as the kernel bench.
    advisor.reprice_grid(ALGORITHM_NAMES, sizes)  # build tables untimed
    best_s = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        points = advisor.reprice_grid(ALGORITHM_NAMES, sizes)
        best_s = min(best_s, time.perf_counter() - t0)
    assert len(points) == n_queries
    warm_qps = n_queries / best_s
    print(f"warm (steady state): {n_queries} queries in {best_s * 1e3:.1f} ms "
          f"= {warm_qps:,.0f} q/s (best of {repeats})")

    full_grid = sizes == sorted(GRID_SIZES)
    doc = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "grid": {
            "algorithms": list(ALGORITHM_NAMES),
            "sizes": sizes,
            "caps_w": list(POWER_CAPS_W),
            "n_queries": n_queries,
        },
        "n_cycles": int(n_cycles),
        "profile_fill": {"executed": int(filled), "seconds": fill_s},
        "cold": {"seconds": cold_s, "queries_per_s": cold_qps},
        "warm": {"best_s": best_s, "repeats": int(max(1, repeats)), "queries_per_s": warm_qps},
        "floors": {"warm_queries_per_s": FLOOR_WARM_QPS if full_grid else None},
        "verified_bitwise": bool(verify),
    }
    if save:
        atomic_write_json(path, doc, indent=1)
        print(f"recorded -> {path}")
    return doc


def check_floors(doc: dict) -> list[str]:
    """Failure messages for any throughput below its recorded floor."""
    failures = []
    floor = doc.get("floors", {}).get("warm_queries_per_s")
    if floor is not None and doc["warm"]["queries_per_s"] < floor:
        failures.append(
            f"warm repricing: {doc['warm']['queries_per_s']:,.0f} q/s "
            f"< {floor:,.0f} q/s floor"
        )
    return failures


# --------------------------------------------------------------------- pytest
def bench_advisor_smoke(tmp_path):
    """One fill + cold + warm pass at a smoke size, bitwise guard included."""
    size = effective_sizes((32,))[0]
    doc = run_suite(
        [size],
        repeats=2,
        cache_path=tmp_path / "ledgers.json",
        path=tmp_path / "BENCH_advisor.json",
        verify=True,
    )
    assert doc["verified_bitwise"]
    assert doc["warm"]["queries_per_s"] > 0
    assert doc["cold"]["queries_per_s"] > 0
    assert (tmp_path / "BENCH_advisor.json").exists()


# ----------------------------------------------------------------------- main
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(GRID_SIZES),
                        help="dataset sizes (cells per axis) to price")
    parser.add_argument("--repeats", type=int, default=5,
                        help="warm grid passes (best is recorded)")
    parser.add_argument("--cycles", type=int, default=DEFAULT_VIZ_CYCLES,
                        help="visualization cycles per measurement")
    parser.add_argument("--path", default=str(DEFAULT_BENCH_PATH),
                        help="benchmark document to write")
    parser.add_argument("--cache", default=str(DEFAULT_CACHE_PATH),
                        help="ledger cache path ('' for in-memory)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the throughput-floor regression check")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the bitwise golden-ledger guard")
    args = parser.parse_args(argv)

    sizes = effective_sizes(tuple(args.sizes))
    doc = run_suite(
        list(sizes),
        repeats=args.repeats,
        n_cycles=args.cycles,
        cache_path=args.cache or None,
        path=args.path,
        verify=not args.no_verify,
    )
    if not args.no_check:
        failures = check_floors(doc)
        for msg in failures:
            print("REGRESSION:", msg, file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
