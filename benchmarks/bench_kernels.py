"""Kernel microbenchmarks: wall-clock timings of the real extraction kernels.

Unlike the table/figure benchmarks (which re-price cached ledgers through
the machine model), these time the *actual* NumPy kernel executions —
the cost center of every sweep — and record the trajectory into
``BENCH_kernels.json`` via :class:`repro.core.benchtrack.BenchTracker`,
so each PR leaves a perf point the next one can regress against.

Standalone (updates ``BENCH_kernels.json`` at the repo root)::

    python benchmarks/bench_kernels.py --sizes 32 128 --repeats 3

Under pytest the same measurements run once per kernel at a small size
(capped by ``REPRO_MAX_SIZE``) as a smoke test; thresholds are only
enforced where a pre-optimization baseline exists for the measured size
(the 128³ contour / clip / isovolume acceptance floors).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

from repro.core.benchtrack import DEFAULT_BENCH_PATH, BenchTracker, time_kernel
from repro.data.generators import make_dataset
from repro.harness import effective_sizes
from repro.viz import ALGORITHMS

#: Kernels timed at every requested size (the extraction layer).
EXTRACTION_KERNELS = ("contour", "threshold", "clip", "isovolume", "slice")

#: Heavier kernels timed only at the smallest requested size (their cost
#: is dominated by fixed factors: seeds x steps, rays x images).
RENDER_KERNELS = ("advection", "raytrace", "volume")

#: Minimum speedup vs the recorded pre-optimization baseline (PR 3's
#: acceptance criteria).  Only checked when the baseline is present.
SPEEDUP_FLOORS = {("contour", 128): 3.0, ("clip", 128): 2.0, ("isovolume", 128): 2.0}

_DATASETS: dict[int, object] = {}


def _dataset(size: int):
    if size not in _DATASETS:
        _DATASETS[size] = make_dataset(size, kind="blobs", seed=7)
    return _DATASETS[size]


def run_suite(
    sizes: list[int],
    *,
    repeats: int = 3,
    path: str | Path = DEFAULT_BENCH_PATH,
    save: bool = True,
) -> BenchTracker:
    """Time every kernel, record into the trajectory file, return it."""
    tracker = BenchTracker(path)
    sizes = sorted(set(sizes))
    for kernel in EXTRACTION_KERNELS + RENDER_KERNELS:
        kernel_sizes = sizes if kernel in EXTRACTION_KERNELS else sizes[:1]
        for size in kernel_sizes:
            ds = _dataset(size)
            filt = ALGORITHMS[kernel]()
            timing = time_kernel(lambda: filt.execute(ds), repeats=repeats)
            entry = tracker.record(
                kernel,
                size,
                timing["best_s"],
                mean_s=timing["mean_s"],
                repeats=int(timing["repeats"]),
            )
            speed = entry.get("speedup_vs_baseline")
            note = f"  ({speed:.2f}x vs baseline)" if speed else ""
            print(f"{kernel:>10s} @ {size:>3d}^3: {entry['seconds']:.3f}s{note}")
    if save:
        tracker.save()
    return tracker


def check_floors(tracker: BenchTracker) -> list[str]:
    """Return failure messages for any measured kernel below its floor."""
    failures = []
    for (kernel, size), floor in SPEEDUP_FLOORS.items():
        entry = tracker.get(kernel, size)
        if entry is None or "speedup_vs_baseline" not in entry:
            continue  # size not measured or no baseline recorded: nothing to check
        if entry["speedup_vs_baseline"] < floor:
            failures.append(
                f"{kernel}@{size}^3: {entry['speedup_vs_baseline']:.2f}x < {floor}x floor "
                f"({entry['seconds']:.3f}s vs baseline {entry['baseline_s']:.3f}s)"
            )
    return failures


# --------------------------------------------------------------------- pytest
@pytest.mark.parametrize("kernel", EXTRACTION_KERNELS + RENDER_KERNELS)
def bench_kernel_smoke(benchmark, kernel, tmp_path):
    """One real execution per kernel at a smoke size, trajectory recorded."""
    size = effective_sizes((32,))[0]
    ds = _dataset(size)
    filt = ALGORITHMS[kernel]()
    result = benchmark.pedantic(lambda: filt.execute(ds), rounds=1, iterations=1)
    assert result.counts.as_dict(), f"{kernel} recorded an empty ledger"
    tracker = BenchTracker(tmp_path / "BENCH_kernels.json")
    tracker.record(kernel, size, 0.0)
    tracker.save()
    assert tracker.get(kernel, size) is not None


# ----------------------------------------------------------------------- main
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[32, 128],
                        help="dataset sizes (cells per axis) to time")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per kernel (min is recorded)")
    parser.add_argument("--path", default=str(DEFAULT_BENCH_PATH),
                        help="trajectory file to update")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the speedup-floor regression check")
    args = parser.parse_args(argv)

    sizes = effective_sizes(tuple(args.sizes))
    tracker = run_suite(list(sizes), repeats=args.repeats, path=args.path)
    print(f"recorded {len(tracker)} entries -> {tracker.path}")
    if not args.no_check:
        failures = check_floors(tracker)
        for msg in failures:
            print("REGRESSION:", msg, file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
