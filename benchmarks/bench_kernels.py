"""Kernel microbenchmarks: wall-clock timings of the real extraction kernels.

Unlike the table/figure benchmarks (which re-price cached ledgers through
the machine model), these time the *actual* NumPy kernel executions —
the cost center of every sweep — and record the trajectory into
``BENCH_kernels.json`` via :class:`repro.core.benchtrack.BenchTracker`,
so each PR leaves a perf point the next one can regress against.

Standalone (updates ``BENCH_kernels.json`` at the repo root)::

    python benchmarks/bench_kernels.py --sizes 32 128 --repeats 3

Under pytest the same measurements run once per kernel at a small size
(capped by ``REPRO_MAX_SIZE``) as a smoke test; thresholds are only
enforced where a pre-optimization baseline exists for the measured size
(the 128³ contour / clip / isovolume acceptance floors).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import pytest

from repro.core.benchtrack import (
    DEFAULT_BENCH_PATH,
    SPEEDUP_FLOORS,
    BenchTracker,
    check_floors,
    format_trend,
    time_kernel,
    trend_rows,
)
from repro.data.generators import make_dataset
from repro.harness import effective_sizes
from repro.viz import ALGORITHMS

#: Kernels timed at every requested size (the extraction layer).
EXTRACTION_KERNELS = ("contour", "threshold", "clip", "isovolume", "slice")

#: Heavier kernels timed only at the smallest requested size (their cost
#: is dominated by fixed factors: seeds x steps, rays x images).
RENDER_KERNELS = ("advection", "raytrace", "volume")

#: At the Table 3 scale (256³ and up) only the floored tentpole kernels
#: are timed — a full-suite pass would take minutes for kernels with no
#: acceptance criterion at that size.
LARGE_SIZE = 256
LARGE_KERNELS = ("contour", "clip", "isovolume")

_DATASETS: dict[int, object] = {}


def _dataset(size: int):
    if size not in _DATASETS:
        _DATASETS[size] = make_dataset(size, kind="blobs", seed=7)
    return _DATASETS[size]


def run_suite(
    sizes: list[int],
    *,
    repeats: int = 3,
    path: str | Path = DEFAULT_BENCH_PATH,
    save: bool = True,
    kernels: list[str] | None = None,
    budget_s: float | None = None,
) -> BenchTracker:
    """Time every kernel, record into the trajectory file, return it.

    ``kernels`` restricts the suite (default: all); ``budget_s`` is a
    soft wall-clock bound — once elapsed time crosses it, remaining
    (kernel, size) pairs are skipped and reported, so a time-bounded CI
    smoke can run the 256³ tier without an unbounded tail.  Sizes at or
    above :data:`LARGE_SIZE` only time the :data:`LARGE_KERNELS`.
    """
    tracker = BenchTracker(path)
    sizes = sorted(set(sizes))
    wanted = set(kernels) if kernels else set(EXTRACTION_KERNELS + RENDER_KERNELS)
    t_start = time.perf_counter()
    skipped: list[str] = []
    for kernel in EXTRACTION_KERNELS + RENDER_KERNELS:
        if kernel not in wanted:
            continue
        kernel_sizes = sizes if kernel in EXTRACTION_KERNELS else sizes[:1]
        for size in kernel_sizes:
            if size >= LARGE_SIZE and kernel not in LARGE_KERNELS:
                continue
            if budget_s is not None and time.perf_counter() - t_start > budget_s:
                skipped.append(f"{kernel}@{size}")
                continue
            ds = _dataset(size)
            filt = ALGORITHMS[kernel]()
            timing = time_kernel(lambda: filt.execute(ds), repeats=repeats)
            entry = tracker.record(
                kernel,
                size,
                timing["best_s"],
                mean_s=timing["mean_s"],
                repeats=int(timing["repeats"]),
            )
            speed = entry.get("speedup_vs_baseline")
            note = f"  ({speed:.2f}x vs baseline)" if speed else ""
            print(f"{kernel:>10s} @ {size:>3d}^3: {entry['seconds']:.3f}s{note}")
    if skipped:
        print(f"budget of {budget_s:.0f}s exhausted; skipped: {', '.join(skipped)}")
    if save:
        tracker.save()
    return tracker


# --------------------------------------------------------------------- pytest
@pytest.mark.parametrize("kernel", EXTRACTION_KERNELS + RENDER_KERNELS)
def bench_kernel_smoke(benchmark, kernel, tmp_path):
    """One real execution per kernel at a smoke size, trajectory recorded."""
    size = effective_sizes((32,))[0]
    ds = _dataset(size)
    filt = ALGORITHMS[kernel]()
    result = benchmark.pedantic(lambda: filt.execute(ds), rounds=1, iterations=1)
    assert result.counts.as_dict(), f"{kernel} recorded an empty ledger"
    tracker = BenchTracker(tmp_path / "BENCH_kernels.json")
    tracker.record(kernel, size, 0.0)
    tracker.save()
    assert tracker.get(kernel, size) is not None


# ----------------------------------------------------------------------- main
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[32, 128],
                        help="dataset sizes (cells per axis) to time")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per kernel (min is recorded)")
    parser.add_argument("--path", default=str(DEFAULT_BENCH_PATH),
                        help="trajectory file to update")
    parser.add_argument("--kernels", nargs="+", default=None,
                        choices=EXTRACTION_KERNELS + RENDER_KERNELS,
                        help="only time these kernels (default: all)")
    parser.add_argument("--budget-s", type=float, default=None, metavar="S",
                        help="soft wall-clock budget; remaining pairs are skipped")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the speedup-floor regression check")
    args = parser.parse_args(argv)

    sizes = effective_sizes(tuple(args.sizes))
    tracker = run_suite(
        list(sizes),
        repeats=args.repeats,
        path=args.path,
        kernels=args.kernels,
        budget_s=args.budget_s,
    )
    print(f"recorded {len(tracker)} entries -> {tracker.path}")
    print(format_trend(trend_rows(tracker)))
    if not args.no_check:
        failures = check_floors(tracker)
        for msg in failures:
            print("REGRESSION:", msg, file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
