"""Calibration harness: compare simulated metrics against the paper's bands.

Runs each real algorithm once per size to record its op ledger (cached
in .cache/counts.pkl), then re-prices profiles from the ledgers on every
invocation — so edits to repro/viz/costs.py or repro/machine/spec.py are
evaluated in seconds.  Use --refresh after changing the *algorithms*
themselves (anything that alters the recorded counts).
"""
import argparse
import pickle
import sys
import time
from pathlib import Path

from repro.core import DEFAULT_VIZ_CYCLES, first_slowdown_cap
from repro.core.study import ALGORITHM_NAMES
from repro.data.fields import DataSet
from repro.data.generators import make_dataset
from repro.data.grid import UniformGrid
from repro.machine import Processor
from repro.viz import ALGORITHMS
from repro.viz.base import OpCounts
from repro.workload import WorkProfile

CACHE = Path(__file__).resolve().parent.parent / ".cache" / "counts.pkl"

# Paper targets at 128^3: (T_seconds~, P_watts, ipc, miss_rate, red_cap, Tr@40, Fr@40)
TARGETS_128 = {
    "contour":   (33.5, 55, 0.85, 0.25, 40, 1.17, 1.23),
    "threshold": (None, 58, 0.40, 0.35, 40, 1.31, 1.38),
    "clip":      (None, 60, 0.70, 0.30, 50, 1.48, 1.48),
    "isovolume": (None, 65, 0.60, 0.45, 60, 1.81, 2.55),
    "slice":     (None, 60, 1.20, 0.20, 40, 1.26, 1.22),
    "advection": (None, 86, 2.55, 0.05, 80, 3.12, 2.69),
    "raytrace":  (None, 70, 1.30, 0.15, 60, 1.75, 1.73),
    "volume":    (None, 85, 2.50, 0.08, 70, 1.86, 1.84),
}
TARGETS_RED_256 = {
    "contour": 50, "threshold": 60, "clip": 70, "isovolume": 60,
    "slice": 50, "advection": 80, "raytrace": 60, "volume": 70,
}


def load_counts(sizes, refresh=False):
    cached = {}
    if CACHE.exists() and not refresh:
        cached = pickle.loads(CACHE.read_bytes())
    out, dirty = {}, False
    for size in sizes:
        ds = None
        for alg in ALGORITHM_NAMES:
            key = (alg, size)
            if key in cached:
                out[key] = cached[key]
                continue
            if ds is None:
                ds = make_dataset(size)
            t0 = time.time()
            res = ALGORITHMS[alg]().execute(ds)
            out[key] = res.counts.as_dict()
            print(f"  extracted {alg}@{size}: {time.time()-t0:.1f}s", file=sys.stderr)
            dirty = True
    if dirty:
        cached.update(out)
        CACHE.parent.mkdir(exist_ok=True)
        CACHE.write_bytes(pickle.dumps(cached))
    return out


def build_profile(alg, size, counts_dict, n_cycles=DEFAULT_VIZ_CYCLES):
    ds = DataSet(UniformGrid.cube(size))
    f = ALGORITHMS[alg]()
    oc = OpCounts()
    oc.counts.update(counts_dict)
    prof = f.profile_from_counts(ds, oc)
    scaled = WorkProfile(name=prof.name, n_elements=prof.n_elements)
    scaled.segments = [s.scaled(n_cycles) for s in prof.segments]
    return scaled


def report(counts, sizes):
    proc = Processor()
    caps = [float(w) for w in range(120, 30, -10)]
    for size in sizes:
        print(f"\n=== size {size}^3 ===")
        hdr = (f"{'alg':10s} {'T':>8s} {'P':>6s} {'ipc':>5s} {'miss':>5s} {'red':>4s}"
               f" {'Tr40':>5s} {'Fr40':>5s}   || paper   P   ipc  miss red  Tr40 Fr40")
        print(hdr)
        for alg in ALGORITHM_NAMES:
            if (alg, size) not in counts:
                continue
            prof = build_profile(alg, size, counts[(alg, size)])
            base = proc.run(prof, 120.0)
            sweep = {cap: proc.run(prof, cap) for cap in caps}
            red = first_slowdown_cap([(c, r.time_s / base.time_s) for c, r in sweep.items()])
            r40 = sweep[40.0]
            line = (f"{alg:10s} {base.time_s:8.2f} {base.avg_power_w:6.1f} "
                    f"{base.ipc:5.2f} {base.llc_miss_rate:5.2f} "
                    f"{str(int(red)) if red else '-':>4s} "
                    f"{r40.time_s/base.time_s:5.2f} "
                    f"{base.effective_freq_ghz/r40.effective_freq_ghz:5.2f}")
            t = TARGETS_128.get(alg) if size == 128 else None
            if t:
                line += f"   || {t[1]:7.0f} {t[2]:5.2f} {t[3]:5.2f} {t[4]:3d} {t[5]:5.2f} {t[6]:5.2f}"
            elif size == 256 and alg in TARGETS_RED_256:
                line += f"   || red256={TARGETS_RED_256[alg]}"
            print(line)


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--sizes", type=int, nargs="+", default=[128])
    ap.add_argument("--refresh", action="store_true")
    args = ap.parse_args()
    counts = load_counts(args.sizes, refresh=args.refresh)
    report(counts, args.sizes)
