"""Per-run manifests: the provenance record next to every result store.

A sweep's points are only interpretable against the context that
produced them — machine spec, dataset seed, cycle count, fault plan,
package version.  The store header carries a *fingerprint* of that
context; the manifest carries the context itself, human-readable,
written atomically (via :mod:`repro.core.atomicio`) as
``<store>.manifest.json`` so a crash can never leave a half-written
provenance record beside an intact store.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "build_manifest",
    "write_manifest",
    "read_manifest",
    "manifest_path_for",
]

MANIFEST_FORMAT = "repro-run-manifest"
MANIFEST_VERSION = 1


def manifest_path_for(store_path: str | Path) -> Path:
    """The sidecar manifest file for a result-store path."""
    return Path(store_path).with_suffix(".manifest.json")


def build_manifest(
    *,
    spec: dict,
    config: dict,
    seed: int,
    n_cycles: int,
    dataset_kind: str,
    fingerprint: str,
    fault_plan: str | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the provenance document for one sweep run."""
    from .. import __version__  # deferred: obs sits below the package root

    doc = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "package_version": __version__,
        "created_unix": time.time(),
        "spec": dict(spec),
        "config": dict(config),
        "seed": int(seed),
        "n_cycles": int(n_cycles),
        "dataset_kind": dataset_kind,
        "fingerprint": fingerprint,
        "fault_plan": fault_plan,
    }
    if extra:
        doc.update(extra)
    return doc


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Atomically persist a manifest; returns the path written."""
    from ..core.atomicio import atomic_write_json  # deferred to avoid a layer cycle

    target = Path(path)
    atomic_write_json(target, manifest, indent=1)
    return target


def read_manifest(path: str | Path) -> dict:
    """Load and validate a manifest document."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path} is not a run manifest (format={doc.get('format')!r})")
    if int(doc.get("version", 1)) > MANIFEST_VERSION:
        raise ValueError(
            f"{path} has manifest version {doc['version']}, newer than supported {MANIFEST_VERSION}"
        )
    return doc
