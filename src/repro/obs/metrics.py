"""Metrics registry: counters, gauges, and histograms with exporters.

Production power stacks expose their health as scrape-able metrics; our
sweep stack does the same.  A :class:`MetricsRegistry` is a thread-safe
bag of named instruments:

* :class:`Counter` — monotonically increasing totals (jobs run, retries,
  faults injected, points quarantined, cache hits);
* :class:`Gauge` — last-value measurements (sweep wall time);
* :class:`Histogram` — bucketed distributions (per-kernel wall time).

Instruments carry optional Prometheus-style labels; requesting the same
``(name, labels)`` pair twice returns the same instrument, so call sites
never hold references across modules.  Two exporters:

* :meth:`MetricsRegistry.to_json` / :meth:`from_json` — a lossless JSON
  document (what the engine writes next to the result store);
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format, ready to serve or push.

A process-wide default registry (:func:`get_registry`) collects from
the engine, the RAPL controller accounting, and the bench tracker;
tests swap it with :func:`set_registry`.
"""

from __future__ import annotations

import bisect
import json
import threading
from pathlib import Path

__all__ = [
    "METRICS_FORMAT",
    "METRICS_VERSION",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "load_metrics",
]

METRICS_FORMAT = "repro-metrics"
METRICS_VERSION = 1

#: Seconds-oriented default histogram bounds (wall-time distributions).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _Instrument:
    """Shared identity/lock plumbing for all three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = dict(labels)
        self._lock = lock

    def _state(self) -> dict:
        raise NotImplementedError


class Counter(_Instrument):
    kind = "counter"

    def __init__(self, name, labels, lock):
        super().__init__(name, labels, lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += float(amount)

    def _state(self) -> dict:
        return {"value": self.value}


class Gauge(_Instrument):
    kind = "gauge"

    def __init__(self, name, labels, lock):
        super().__init__(name, labels, lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += float(amount)

    def _state(self) -> dict:
        return {"value": self.value}


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, name, labels, lock, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, labels, lock)
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # counts[i] pairs with bounds[i]; the final slot is the +Inf bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.bounds, float(value))] += 1
            self.sum += float(value)
            self.count += 1

    def _state(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


_KINDS = {c.kind: c for c in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Named, labeled instruments with JSON and Prometheus exporters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], _Instrument] = {}
        self._families: dict[str, tuple[str, str]] = {}  # name -> (kind, help)

    def _get(self, cls, name: str, help: str, labels: dict[str, str], **kw) -> _Instrument:
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        with self._lock:
            family = self._families.get(name)
            if family is not None and family[0] != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family[0]}, not a {cls.kind}"
                )
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, dict(key[1]), self._lock, **kw)
                self._instruments[key] = inst
                if family is None or (help and not family[1]):
                    self._families[name] = (cls.kind, help or (family[1] if family else ""))
            return inst

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", *, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    # -------------------------------------------------------------- export
    def to_json(self) -> dict:
        """Lossless document form (the ``<store>.metrics.json`` payload)."""
        with self._lock:
            metrics = [
                {
                    "name": inst.name,
                    "kind": inst.kind,
                    "help": self._families[inst.name][1],
                    "labels": inst.labels,
                    **inst._state(),
                }
                for inst in self._instruments.values()
            ]
        metrics.sort(key=lambda m: (m["name"], sorted(m["labels"].items())))
        return {"format": METRICS_FORMAT, "version": METRICS_VERSION, "metrics": metrics}

    @classmethod
    def from_json(cls, doc: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_json` output."""
        if doc.get("format") != METRICS_FORMAT:
            raise ValueError(f"not a metrics document (format={doc.get('format')!r})")
        if int(doc.get("version", 1)) > METRICS_VERSION:
            raise ValueError(
                f"metrics version {doc['version']} is newer than supported {METRICS_VERSION}"
            )
        reg = cls()
        for m in doc.get("metrics", []):
            kind, labels = m["kind"], dict(m.get("labels", {}))
            if kind == "counter":
                reg.counter(m["name"], m.get("help", ""), **labels).value = float(m["value"])
            elif kind == "gauge":
                reg.gauge(m["name"], m.get("help", ""), **labels).value = float(m["value"])
            elif kind == "histogram":
                h = reg.histogram(
                    m["name"], m.get("help", ""), buckets=tuple(m["bounds"]), **labels
                )
                h.counts = [int(c) for c in m["counts"]]
                h.sum = float(m["sum"])
                h.count = int(m["count"])
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return reg

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            instruments = list(self._instruments.values())
            families = dict(self._families)
        by_name: dict[str, list[_Instrument]] = {}
        for inst in instruments:
            by_name.setdefault(inst.name, []).append(inst)
        lines: list[str] = []
        for name in sorted(by_name):
            kind, help = families[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for inst in by_name[name]:
                if isinstance(inst, Histogram):
                    cumulative = 0
                    for bound, count in zip(inst.bounds, inst.counts):
                        cumulative += count
                        lines.append(
                            f"{name}_bucket{_labels(inst.labels, le=_fmt(bound))} {cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket{_labels(inst.labels, le='+Inf')} {inst.count}"
                    )
                    lines.append(f"{name}_sum{_labels(inst.labels)} {_fmt(inst.sum)}")
                    lines.append(f"{name}_count{_labels(inst.labels)} {inst.count}")
                else:
                    lines.append(f"{name}{_labels(inst.labels)} {_fmt(inst.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _labels(labels: dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests install a fresh one); returns it."""
    global _registry
    _registry = registry
    return registry


def load_metrics(path: str | Path) -> MetricsRegistry:
    """Read a ``*.metrics.json`` dump back into a registry."""
    return MetricsRegistry.from_json(json.loads(Path(path).read_text()))
