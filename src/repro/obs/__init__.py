"""Observability: tracing, metrics, sample streams, and run manifests.

The telemetry layer the sweep stack reports through — built because the
source paper is a *measurement* study and an unexplainable point is a
broken reproduction.  Four cooperating pieces:

* :mod:`repro.obs.trace` — span/event tracing to JSONL
  (``span("phase", **attrs)`` context managers, thread-safe, monotonic);
* :mod:`repro.obs.metrics` — counters/gauges/histograms with JSON and
  Prometheus-text exporters;
* :mod:`repro.obs.samples` — 100 ms power/frequency sample streams per
  run point, ring-buffered to ``<store>.samples.jsonl``;
* :mod:`repro.obs.manifest` — the atomic per-run provenance record
  (``<store>.manifest.json``).

This package imports nothing from the rest of ``repro`` at module scope
(manifest defers its two upward imports), so any layer — the machine
model, the kernels, the engine — may instrument itself freely.
See ``docs/observability.md``.
"""

from .manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    manifest_path_for,
    read_manifest,
    write_manifest,
)
from .metrics import (
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    load_metrics,
    set_registry,
)
from .samples import (
    SAMPLES_FORMAT,
    SampleWriter,
    read_samples,
    samples_path_for,
    summarize_samples,
)
from .trace import (
    TRACE_FORMAT,
    Tracer,
    configure,
    event,
    get_tracer,
    log_event,
    read_trace,
    render_summary,
    span,
    summarize_trace,
)

__all__ = [
    "TRACE_FORMAT",
    "Tracer",
    "configure",
    "get_tracer",
    "span",
    "event",
    "log_event",
    "read_trace",
    "summarize_trace",
    "render_summary",
    "METRICS_FORMAT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "load_metrics",
    "SAMPLES_FORMAT",
    "SampleWriter",
    "samples_path_for",
    "read_samples",
    "summarize_samples",
    "MANIFEST_FORMAT",
    "build_manifest",
    "manifest_path_for",
    "read_manifest",
    "write_manifest",
]
