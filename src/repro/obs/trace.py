"""Span tracing: lightweight JSONL traces of what the stack actually did.

The paper is a measurement study, and measurement studies live or die by
their ability to explain a single anomalous point.  This module gives
every layer of the sweep stack a shared tracing vocabulary:

* :class:`Tracer` — owns one trace (a JSONL file, or in-memory for
  tests), hands out spans and point events, thread-safe, monotonic-clock
  based so wall-clock adjustments can't produce negative durations.
* :func:`span` / :func:`event` — module-level helpers bound to the
  *default* tracer.  When no tracer is configured they are no-ops with
  near-zero cost, so instrumented hot paths (kernel executions, engine
  dispatch) pay nothing in untraced runs.
* :func:`read_trace` / :func:`summarize_trace` — the analysis half:
  parse a trace file (tolerating a torn final line from a killed run)
  and aggregate per-phase time, backing ``repro trace``.

Span records nest through per-thread stacks (``parent_id``), so a
serial sweep's trace shows kernel spans *inside* their profile-job span
inside the sweep root.  Pool workers run in other processes and emit
nothing; the engine records their job spans from the parent side.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from pathlib import Path

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "configure",
    "get_tracer",
    "span",
    "event",
    "log_event",
    "read_trace",
    "summarize_trace",
    "render_summary",
    "logger",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: The observability layer's logger: warnings that must reach a human
#: even when no tracer is active (cache corruption, dropped artifacts).
logger = logging.getLogger("repro.obs")


class _Span:
    """One in-flight span; a reentrant-unsafe, single-use context manager."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        tr = self._tracer
        self.span_id = tr._new_id()
        stack = tr._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._t0 = tr._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tr = self._tracer
        dur = tr._clock() - self._t0
        stack = tr._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "kind": "span",
            "name": self.name,
            "t_s": self._t0 - tr._t0,
            "dur_s": dur,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": threading.current_thread().name,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc is not None:
            record["error"] = repr(exc)
        tr.emit(record)
        return False


class _NullSpan:
    """Shared no-op span handed out when no tracer is configured."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """One trace: a thread-safe sink of span and event records.

    ``path=None`` keeps records in memory (:meth:`records`); a path
    appends JSONL, one record per line, flushed per write so a killed
    run loses at most the line being written (which :func:`read_trace`
    tolerates).  Opening an empty file writes a header line identifying
    the format, mirroring the result store's convention.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._clock = time.monotonic
        self._t0 = self._clock()
        self._records: list[dict] = []
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a")
            if fresh:
                self.emit({"kind": "header", "format": TRACE_FORMAT, "version": TRACE_VERSION})

    # ------------------------------------------------------------- plumbing
    def _new_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def emit(self, record: dict) -> None:
        """Append one record (thread-safe; flushed immediately on disk)."""
        with self._lock:
            if self._fh is not None:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
            else:
                self._records.append(record)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------ recording
    def span(self, name: str, **attrs) -> _Span:
        """Context manager timing one phase; nests via per-thread stacks."""
        return _Span(self, name, attrs)

    def record_span(self, name: str, duration_s: float, **attrs) -> None:
        """Record an already-completed span (e.g. a pool job timed remotely)."""
        stack = self._stack()
        now = self._clock()
        self.emit(
            {
                "kind": "span",
                "name": name,
                "t_s": max(0.0, now - self._t0 - duration_s),
                "dur_s": duration_s,
                "span_id": self._new_id(),
                "parent_id": stack[-1] if stack else None,
                "thread": threading.current_thread().name,
                "attrs": attrs,
            }
        )

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event (retry, fault, quarantine, ...)."""
        stack = self._stack()
        self.emit(
            {
                "kind": "event",
                "name": name,
                "t_s": self._clock() - self._t0,
                "parent_id": stack[-1] if stack else None,
                "thread": threading.current_thread().name,
                "attrs": attrs,
            }
        )

    def records(self) -> list[dict]:
        """All records so far (reads the file when backed by one)."""
        if self.path is not None:
            with self._lock:
                if self._fh is not None:
                    self._fh.flush()
            return read_trace(self.path)[1]
        with self._lock:
            return list(self._records)

    # ------------------------------------------------------------- defaults
    def as_default(self) -> "_DefaultGuard":
        """Context manager installing this tracer as the module default.

        Reentrant and nestable: the previous default is restored on
        exit, so a chaos driver can install its tracer around engines
        that install the same one again.
        """
        return _DefaultGuard(self)


class _DefaultGuard:
    __slots__ = ("_tracer", "_prev")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._prev: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _default
        self._prev = _default
        _default = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _default
        _default = self._prev
        return False


_default: Tracer | None = None


def configure(target: Tracer | str | Path | None) -> Tracer | None:
    """Set (or clear, with None) the process-wide default tracer."""
    global _default
    _default = target if isinstance(target, Tracer) or target is None else Tracer(target)
    return _default


def get_tracer() -> Tracer | None:
    """The current default tracer, or None when tracing is off."""
    return _default


def span(name: str, **attrs):
    """A span on the default tracer; a shared no-op when tracing is off."""
    tracer = _default
    return tracer.span(name, **attrs) if tracer is not None else NULL_SPAN


def event(name: str, **attrs) -> None:
    """A point event on the default tracer; dropped when tracing is off."""
    tracer = _default
    if tracer is not None:
        tracer.event(name, **attrs)


def log_event(name: str, message: str, *, level: int = logging.WARNING, **attrs) -> None:
    """Warn through the ``repro.obs`` logger *and* the active trace.

    The logging half always fires (operators see it even untraced); the
    trace half records the same fact next to the spans it explains.
    """
    logger.log(level, "%s: %s", name, message)
    tracer = _default
    if tracer is not None:
        tracer.event(name, message=message, **attrs)


# ---------------------------------------------------------------- analysis
def read_trace(source: str | Path) -> tuple[dict, list[dict]]:
    """Parse a trace file into (header, records).

    A torn final line (run killed mid-write) is dropped, matching the
    result store's recovery convention; corruption anywhere else raises.
    """
    lines = Path(source).read_text().splitlines()
    header: dict = {}
    records: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                break
            raise ValueError(f"{source}: corrupt trace record on line {i + 1}") from None
        if rec.get("kind") == "header":
            if rec.get("format") != TRACE_FORMAT:
                raise ValueError(f"{source} is not a trace (format={rec.get('format')!r})")
            header = rec
        else:
            records.append(rec)
    return header, records


def summarize_trace(records: list[dict], *, name: str | None = None) -> dict[str, dict]:
    """Per-phase aggregation of span records.

    Returns ``{span_name: {"count", "total_s", "mean_s", "max_s"}}``;
    ``name`` filters to span names containing the substring.
    """
    out: dict[str, dict] = {}
    for rec in records:
        if rec.get("kind") != "span":
            continue
        if name is not None and name not in rec.get("name", ""):
            continue
        agg = out.setdefault(
            rec["name"], {"count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
        )
        dur = float(rec.get("dur_s", 0.0))
        agg["count"] += 1
        agg["total_s"] += dur
        agg["max_s"] = max(agg["max_s"], dur)
    for agg in out.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return out


def render_summary(summary: dict[str, dict], *, n_events: int = 0) -> str:
    """Human-readable per-phase breakdown table (``repro trace``)."""
    if not summary:
        return "trace contains no spans" + (f" ({n_events} events)" if n_events else "")
    grand = sum(a["total_s"] for a in summary.values())
    lines = [f"{'phase':<24s} {'count':>6s} {'total':>10s} {'mean':>10s} {'max':>10s} {'share':>6s}"]
    for name, agg in sorted(summary.items(), key=lambda kv: -kv[1]["total_s"]):
        share = agg["total_s"] / grand if grand > 0 else 0.0
        lines.append(
            f"{name:<24s} {agg['count']:>6d} {agg['total_s']:>9.3f}s "
            f"{agg['mean_s'] * 1e3:>8.2f}ms {agg['max_s'] * 1e3:>8.2f}ms {share:>5.0%}"
        )
    lines.append(f"{len(summary)} phases, {sum(a['count'] for a in summary.values())} spans, "
                 f"{grand:.3f}s total span time" + (f", {n_events} events" if n_events else ""))
    return "\n".join(lines)
