"""Per-point power/frequency sample streams, persisted as JSONL.

The paper's Figures 4–5 are built from 100 ms RAPL/MSR samples, not
end-of-run aggregates.  The closed-form simulator reports aggregates
only, so :meth:`RunResult.sample_stream
<repro.machine.simulator.RunResult.sample_stream>` synthesizes the
sampler's readings from the per-segment records, and this module
persists them next to the result store as ``<store>.samples.jsonl``:

    {"kind": "header", "format": "repro-samples", ...}
    {"algorithm": "contour", "size": 32, "cap_w": 60.0, "i": 0,
     "t_s": 0.0, "dt_s": 0.1, "power_w": 58.9, "f_eff_ghz": 1.7, ...}

:class:`SampleWriter` bounds memory with a fixed-size buffer: records
accumulate in RAM and spill to disk whenever the buffer fills, and every
completed stream ends with a flush + fsync so a killed sweep keeps the
samples of every point it durably stored.  :func:`read_samples`
tolerates the torn final line such a kill can leave.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = [
    "SAMPLES_FORMAT",
    "SAMPLES_VERSION",
    "SampleWriter",
    "samples_path_for",
    "read_samples",
    "summarize_samples",
]

SAMPLES_FORMAT = "repro-samples"
SAMPLES_VERSION = 1


def samples_path_for(store_path: str | Path) -> Path:
    """The sidecar samples file for a result-store path."""
    return Path(store_path).with_suffix(".samples.jsonl")


class SampleWriter:
    """Ring-buffered, crash-tolerant JSONL sink for sample streams."""

    def __init__(self, path: str | Path, *, buffer_records: int = 1024):
        if buffer_records < 1:
            raise ValueError("buffer_records must be positive")
        self.path = Path(path)
        self.buffer_records = int(buffer_records)
        self._buf: list[str] = []
        self._lock = threading.Lock()
        self._fh = None

    def _ensure_open(self) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a")
            if fresh:
                self._fh.write(
                    json.dumps(
                        {"kind": "header", "format": SAMPLES_FORMAT, "version": SAMPLES_VERSION},
                        sort_keys=True,
                    )
                    + "\n"
                )

    def write_stream(self, *, algorithm: str, size: int, cap_w: float, samples) -> int:
        """Persist one run point's sample stream; returns the sample count.

        ``samples`` is an iterable of
        :class:`~repro.machine.simulator.PowerSample` (or anything with
        the same attributes).  The buffer spills whenever it fills —
        memory stays bounded no matter how long a single stream runs —
        and the stream ends with a durable flush.
        """
        n = 0
        with self._lock:
            for i, s in enumerate(samples):
                record = {
                    "algorithm": algorithm,
                    "size": int(size),
                    "cap_w": float(cap_w),
                    "i": i,
                    "t_s": s.t_s,
                    "dt_s": s.dt_s,
                    "power_w": s.power_w,
                    "f_eff_ghz": s.f_eff_ghz,
                    "instructions": s.instructions,
                    "llc_refs": s.llc_refs,
                    "llc_misses": s.llc_misses,
                }
                self._buf.append(json.dumps(record, sort_keys=True))
                n += 1
                if len(self._buf) >= self.buffer_records:
                    self._spill()
            self._spill(fsync=True)
        return n

    def _spill(self, *, fsync: bool = False) -> None:
        if not self._buf and not fsync:
            return
        self._ensure_open()
        if self._buf:
            self._fh.write("\n".join(self._buf) + "\n")
            self._buf.clear()
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())  # repro: lint-ignore[RPR011]: the writer lock must cover the spill so concurrently-recorded sample streams stay contiguous on disk

    def flush(self) -> None:
        with self._lock:
            if self._buf or self._fh is not None:
                self._spill(fsync=True)

    def close(self) -> None:
        with self._lock:
            if self._buf:
                self._spill(fsync=True)
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "SampleWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_samples(source: str | Path) -> tuple[dict, list[dict]]:
    """Parse a samples file into (header, records), dropping a torn tail."""
    lines = Path(source).read_text().splitlines()
    header: dict = {}
    records: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                break
            raise ValueError(f"{source}: corrupt sample record on line {i + 1}") from None
        if rec.get("kind") == "header":
            if rec.get("format") != SAMPLES_FORMAT:
                raise ValueError(f"{source} is not a samples file (format={rec.get('format')!r})")
            header = rec
        else:
            records.append(rec)
    return header, records


def summarize_samples(records: list[dict]) -> dict[tuple[str, int, float], dict]:
    """Per-(algorithm, size, cap) stream statistics.

    ``mean_power_w`` is time-weighted (Σ P·dt / Σ dt), matching how the
    run's aggregate ``power_w`` is defined, so the two agree for any
    complete stream; ``rate_hz`` is the achieved sampling rate.
    """
    out: dict[tuple[str, int, float], dict] = {}
    for r in records:
        key = (r["algorithm"], int(r["size"]), float(r["cap_w"]))
        agg = out.setdefault(key, {"n": 0, "duration_s": 0.0, "_p_dt": 0.0, "_f_dt": 0.0})
        agg["n"] += 1
        agg["duration_s"] += r["dt_s"]
        agg["_p_dt"] += r["power_w"] * r["dt_s"]
        agg["_f_dt"] += r["f_eff_ghz"] * r["dt_s"]
    for agg in out.values():
        dur = agg["duration_s"]
        agg["mean_power_w"] = agg.pop("_p_dt") / dur if dur > 0 else 0.0
        agg["mean_f_eff_ghz"] = agg.pop("_f_dt") / dur if dur > 0 else 0.0
        agg["rate_hz"] = agg["n"] / dur if dur > 0 else 0.0
    return out
