"""The sweep service: spool layout, client calls, and the daemon.

A :class:`SweepService` owns one *spool* directory::

    spool/
      wal.jsonl                     # the durable job queue (the IPC)
      stores/<job_id>.jsonl         # one fingerprinted ResultStore per job
      profiles-<dataset>-<seed>.json  # shared ledger caches
      service.metrics.json          # daemon metrics dump

Clients and the daemon are symmetric: both derive queue state by
replaying/polling the WAL, and a client *submission* is just an fsync'd
``submit`` record — once :meth:`SweepService.submit` returns an
accepted receipt, the job survives any crash.  The daemon tails the
same file, so submissions land in a live daemon without any socket.

Load shedding happens at the submission edge, in a ladder (see
``docs/robustness.md``):

1. ``queued`` — accepted;
2. ``queue-full`` — pending+running already at ``queue_limit``;
3. ``degraded`` — the circuit breaker is open (and its record is
   younger than ``breaker_cooldown_s``): the service is failing
   repeatedly, stop feeding it.

Studies execute through the normal :class:`~repro.core.engine.SweepEngine`
with ``resume=True`` against the job's own store, which is what makes
crash recovery *bitwise*: a resumed study recomputes only missing
points, and every recomputed point derives from the same deterministic
ledgers, so surviving points are identical to an uninterrupted run.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from ..core.engine import SweepEngine
from ..core.profiles import ProfileCache
from ..core.runner import DEFAULT_VIZ_CYCLES
from ..core.study import StudyConfig
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import Tracer
from .supervisor import Supervisor
from .wal import QueueState, WriteAheadLog

__all__ = [
    "DEFAULT_SPOOL",
    "SubmitReceipt",
    "SweepService",
    "study_from_dict",
    "study_to_dict",
]

DEFAULT_SPOOL = ".cache/serve"


def study_to_dict(config: StudyConfig) -> dict:
    """Serialize an *explicit* study grid into a WAL-storable dict.

    Phase names are resolved before submission (``api.submit_study``
    does it), so the WAL always records the exact grid a job will run —
    auditable, and immune to a later ``REPRO_MAX_SIZE`` change.
    """
    return {
        "name": config.name,
        "algorithms": list(config.algorithms),
        "sizes": [int(s) for s in config.sizes],
        "caps_w": [float(c) for c in config.caps_w],
    }


def study_from_dict(doc: dict) -> StudyConfig:
    return StudyConfig(
        name=str(doc["name"]),
        algorithms=tuple(str(a) for a in doc["algorithms"]),
        sizes=tuple(int(s) for s in doc["sizes"]),
        caps_w=tuple(float(c) for c in doc["caps_w"]),
    )


@dataclass(frozen=True)
class SubmitReceipt:
    """The submission edge's answer: accepted (with a job id) or shed."""

    job_id: str | None
    status: str  # "queued" | "queue-full" | "degraded"
    queue_depth: int

    @property
    def accepted(self) -> bool:
        return self.status == "queued"

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "accepted": self.accepted,
            "queue_depth": self.queue_depth,
        }


class SweepService:
    """Client + daemon surface over one spool directory (see module doc)."""

    def __init__(
        self,
        spool: str | Path = DEFAULT_SPOOL,
        *,
        workers: int = 2,
        lease_s: float = 30.0,
        heartbeat_s: float | None = None,
        poll_interval_s: float = 0.05,
        queue_limit: int = 16,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 60.0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 5.0,
        metrics: MetricsRegistry | None = None,
        trace: Tracer | str | Path | None = None,
        injector=None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        (self.spool / "stores").mkdir(exist_ok=True)
        self.wal = WriteAheadLog(self.spool / "wal.jsonl")
        self.state = QueueState()
        self.workers = int(workers)
        self.lease_s = float(lease_s)
        self.heartbeat_s = heartbeat_s
        self.poll_interval_s = float(poll_interval_s)
        self.queue_limit = int(queue_limit)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.metrics = metrics if metrics is not None else get_registry()
        self.tracer = trace if isinstance(trace, Tracer) or trace is None else Tracer(trace)
        self.injector = injector

    # ---------------------------------------------------------------- state
    def refresh(self) -> None:
        """Fold any new WAL records into the derived queue state."""
        self.state.apply_all(self.wal.poll())

    def _breaker_open(self, now_t: float) -> bool:
        return (
            self.state.breaker_view()[0] == "open"
            and now_t - self.state.breaker_t < self.breaker_cooldown_s
        )

    # --------------------------------------------------------------- client
    def submit(
        self,
        config: StudyConfig,
        *,
        dataset_kind: str = "blobs",
        seed: int = 7,
        n_cycles: int = DEFAULT_VIZ_CYCLES,
        max_retries: int = 2,
    ) -> SubmitReceipt:
        """Durably enqueue one study (or shed it, per the ladder above)."""
        if not isinstance(config, StudyConfig):
            raise TypeError(
                "submit() needs an explicit StudyConfig; resolve phase names "
                "first (repro.api.submit_study does)"
            )
        self.refresh()
        now_t = time.time()
        counts = self.state.counts()
        depth = counts["pending"] + counts["running"]
        if self._breaker_open(now_t):
            return SubmitReceipt(None, "degraded", depth)
        if depth >= self.queue_limit:
            return SubmitReceipt(None, "queue-full", depth)
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        self.wal.append(
            {
                "kind": "submit",
                "job_id": job_id,
                "spec": {
                    "study": study_to_dict(config),
                    "dataset_kind": str(dataset_kind),
                    "seed": int(seed),
                    "n_cycles": int(n_cycles),
                    "max_retries": int(max_retries),
                },
                "t": now_t,
            }
        )
        self.refresh()
        return SubmitReceipt(job_id, "queued", depth + 1)

    def status(self, job_id: str) -> dict:
        self.refresh()
        job = self.state.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job.snapshot()

    def cancel(self, job_id: str) -> dict:
        """Cancel a pending/running job (terminal jobs are left as-is).

        Cancellation is cooperative: a delivery already running is not
        killed, but terminal states are sticky — once the ``cancel``
        record lands, a straggler ``complete`` from the running delivery
        is ignored on replay (its store file stays on disk regardless).
        """
        self.refresh()
        job = self.state.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if not job.terminal:
            self.wal.append({"kind": "cancel", "job_id": job_id, "t": time.time()})
            self.refresh()
        return self.state.get(job_id).snapshot()

    def report(self) -> dict:
        """Service-wide snapshot: counts, breaker, damage counters, jobs."""
        self.refresh()
        counts = self.state.counts()
        return {
            "spool": str(self.spool),
            "counts": counts,
            "queue_depth": counts["pending"] + counts["running"],
            "queue_limit": self.queue_limit,
            "breaker": self.state.breaker_view()[0],
            "breaker_streak": self.state.breaker_view()[1],
            "wal_corrupt_lines": self.wal.corruption_count(),
            "duplicates_ignored": self.state.duplicates_ignored,
            "orphan_records": self.state.orphan_records,
            "jobs": self.state.job_snapshots(),
        }

    # ---------------------------------------------------------------- daemon
    def supervisor(self) -> Supervisor:
        return Supervisor(
            self.wal,
            self.state,
            self._run_job,
            workers=self.workers,
            lease_s=self.lease_s,
            heartbeat_s=self.heartbeat_s,
            poll_interval_s=self.poll_interval_s,
            backoff_base_s=self.backoff_base_s,
            backoff_cap_s=self.backoff_cap_s,
            breaker_threshold=self.breaker_threshold,
            metrics=self.metrics,
            tracer=self.tracer,
            injector=self.injector,
        )

    def run_daemon(self, *, drain: bool = False, supervisor: Supervisor | None = None) -> dict:
        """Replay the WAL, supervise until stopped (or drained), report.

        Orphaned leases from a killed daemon need no special casing:
        replay reconstructs them as ``running``, their heartbeats never
        resume, and lease expiry requeues them — each resumed study then
        continues from its fingerprinted store.
        """
        sup = supervisor if supervisor is not None else self.supervisor()
        try:
            sup.run(drain=drain)
        finally:
            self._dump_metrics()
            if self.tracer is not None:
                self.tracer.close()
        return self.report()

    def _dump_metrics(self) -> None:
        from ..core.atomicio import atomic_write_json

        atomic_write_json(
            self.spool / "service.metrics.json", self.metrics.to_json(), indent=1
        )

    # ------------------------------------------------------------ execution
    def store_path(self, job_id: str) -> Path:
        return self.spool / "stores" / f"{job_id}.jsonl"

    def _cache_path(self, dataset_kind: str, seed: int) -> Path:
        # ProfileCache keys on (algorithm, size) only, so ledgers from
        # different dataset recipes must not share a file.
        return self.spool / f"profiles-{dataset_kind}-{seed}.json"

    def _run_job(self, job, progress=None) -> dict:
        spec = job.spec
        config = study_from_dict(spec["study"])
        dataset_kind = spec.get("dataset_kind", "blobs")
        seed = int(spec.get("seed", 7))
        store = self.store_path(job.job_id)
        engine = SweepEngine(
            dataset_kind=dataset_kind,
            n_cycles=int(spec.get("n_cycles", DEFAULT_VIZ_CYCLES)),
            seed=seed,
            workers=0,
            store=store,
            profile_cache=ProfileCache(self._cache_path(dataset_kind, seed)),
            progress=progress,
            trace=self.tracer,
            metrics=self.metrics,
        )
        result = engine.run(config, resume=True)
        return {"points": len(result.points), "store": str(store)}
