"""Supervised sweep service: durable job queue + worker supervision.

``repro.serve`` turns the one-shot sweep machinery into a long-running,
crash-safe service.  Three pieces, bottom-up:

* :mod:`repro.serve.wal` — the durable job queue.  Every submission,
  claim, heartbeat, retry, and completion is one appended JSONL record
  in a write-ahead log; in-memory queue state is *always* derived by
  replaying that file, so a ``kill -9``'d daemon restarts into exactly
  the state it died in (torn tails tolerated, corrupt lines skipped and
  counted).

* :mod:`repro.serve.supervisor` — the worker supervisor.  A bounded
  thread pool runs studies under heartbeat leases; expired leases are
  reclaimed and requeued, failures retry on the capped+jittered
  backoff shared with the engine, and a circuit breaker degrades the
  pool (serial fallback, then load-shedding) instead of collapsing.

* :mod:`repro.serve.service` — the client/daemon surface.
  :class:`~repro.serve.service.SweepService` owns a *spool* directory
  (WAL + per-job result stores + shared profile caches) and exposes
  ``submit``/``status``/``cancel``/``report`` plus ``run_daemon``.
  Because the WAL is the IPC, clients and the daemon are just
  different processes polling the same file.

See ``docs/robustness.md`` ("service-layer failure modes") for the
failure matrix and the degradation ladder.
"""

from .service import DEFAULT_SPOOL, SubmitReceipt, SweepService, study_from_dict, study_to_dict
from .supervisor import Supervisor
from .wal import TERMINAL_STATUSES, WAL_FORMAT, WAL_VERSION, JobState, QueueState, WriteAheadLog

__all__ = [
    "DEFAULT_SPOOL",
    "JobState",
    "QueueState",
    "SubmitReceipt",
    "Supervisor",
    "SweepService",
    "TERMINAL_STATUSES",
    "WAL_FORMAT",
    "WAL_VERSION",
    "WriteAheadLog",
    "study_from_dict",
    "study_to_dict",
]
