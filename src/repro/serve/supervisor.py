"""Worker supervision: leases, retries, reclamation, circuit breaking.

The :class:`Supervisor` owns the daemon side of the queue.  One control
loop polls the WAL (its own appends *and* external client submissions
come back through the same ``poll()``), reclaims expired leases,
updates the circuit breaker, and dispatches eligible jobs to a bounded
pool of worker threads.  Worker threads run one study delivery each and
append the outcome (``complete``, ``requeue`` with backoff, or terminal
``fail``); a heartbeat thread extends the leases of in-flight
deliveries so a *healthy* long study is never reclaimed out from under
its worker.

Failure handling is budgeted on two axes:

* **retries** — a delivery that raises is requeued with the same
  capped+jittered backoff the engine uses
  (:func:`repro.core.backoff.retry_backoff`) until ``max_retries`` is
  exhausted, then failed terminally with the error recorded;
* **lease expirations** — a job whose lease keeps expiring (stalled
  heartbeats, repeatedly killed daemons) is requeued at most
  ``max_retries + 3`` times before being failed terminally, so a
  poisoned job cannot ping-pong forever.

The circuit breaker watches the *consecutive-failure streak* derived
from the WAL (so it too survives restarts): at ``breaker_threshold``
the pool degrades to serial dispatch, at twice that it opens — the
service sheds new submissions until a success closes it.  Transitions
are appended as ``breaker`` records, making the ladder auditable and
visible to clients.

Fault injection is duck-typed: anything with ``wrap_progress`` /
``stall_heartbeat`` / ``duplicate_claim`` methods (see
:class:`repro.faults.service.ServiceFaultInjector`) can perturb the
loop; the supervisor never imports the faults layer.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback

from ..core.backoff import retry_backoff
from ..core.engine import SweepInterrupted
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import NULL_SPAN, Tracer
from .wal import QueueState, WriteAheadLog

__all__ = ["Supervisor"]

#: Breaker escalation order (gauge value == index).
_BREAKER_LEVELS = ("closed", "degraded", "open")


class Supervisor:
    """Run queued jobs on a bounded, lease-supervised worker pool.

    ``runner(job, progress=...)`` executes one delivery and returns a
    dict merged into the ``complete`` record (at least ``points`` and
    ``store``); raising requeues or fails the job.  The supervisor is
    deliberately study-agnostic — :mod:`repro.serve.service` supplies
    the runner that builds a :class:`~repro.core.engine.SweepEngine`.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        state: QueueState,
        runner,
        *,
        workers: int = 2,
        lease_s: float = 30.0,
        heartbeat_s: float | None = None,
        poll_interval_s: float = 0.05,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 5.0,
        breaker_threshold: int = 3,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        injector=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.wal = wal
        self.state = state
        self.runner = runner
        self.workers = int(workers)
        self.lease_s = float(lease_s)
        self.heartbeat_s = float(heartbeat_s) if heartbeat_s else self.lease_s / 3.0
        self.poll_interval_s = float(poll_interval_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.breaker_threshold = int(breaker_threshold)
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else get_registry()
        self.tracer = tracer
        self.injector = injector
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        #: job_ids handed to the pool and not yet finished by a worker —
        #: the guard that keeps the dispatcher from double-delivering a
        #: job this daemon is already running (a *requeued* job stays
        #: here until its original delivery returns).
        self._inflight: set[str] = set()
        #: active deliveries whose leases the heartbeat thread extends.
        self._active: dict[str, int] = {}
        self._stalled: set[str] = set()

    # ----------------------------------------------------------------- knobs
    def stop(self) -> None:
        """Graceful shutdown: running studies are interrupted at the next
        progress event and requeued (``reason="shutdown"``), so nothing
        is lost and the next daemon resumes them."""
        self._stop.set()

    @property
    def max_lease_expirations(self) -> int:
        return self.breaker_threshold + 3

    # ------------------------------------------------------------------ run
    def run(self, *, drain: bool = False) -> None:
        """Supervise until :meth:`stop` (or, with ``drain=True``, until
        every known job is terminal)."""
        span = (
            self.tracer.span("serve", workers=self.workers, lease_s=self.lease_s)
            if self.tracer is not None
            else NULL_SPAN
        )
        threads = [
            threading.Thread(target=self._worker_loop, name=f"serve-w{i}", daemon=True)
            for i in range(self.workers)
        ]
        beat = threading.Thread(target=self._heartbeat_loop, name="serve-heartbeat", daemon=True)
        with span:
            for t in threads:
                t.start()
            beat.start()
            try:
                while not self._stop.is_set():
                    self.state.apply_all(self.wal.poll())
                    self._reclaim_leases()
                    self._update_breaker()
                    self._dispatch()
                    self._publish_metrics()
                    if drain and self._drained():
                        break
                    time.sleep(self.poll_interval_s)
            finally:
                self._stop.set()
                for _ in threads:
                    self._queue.put(None)
                for t in threads:
                    t.join(timeout=30.0)
                beat.join(timeout=self.heartbeat_s + 1.0)
                self.state.apply_all(self.wal.poll())
                self._publish_metrics()

    def _drained(self) -> bool:
        with self._lock:
            busy = len(self._inflight)
        return busy == 0 and not self.state.open_jobs()

    # ------------------------------------------------------------- dispatch
    def _capacity(self) -> int:
        level, _streak = self.state.breaker_view()
        limit = 1 if level in ("degraded", "open") else self.workers
        with self._lock:
            return limit - len(self._inflight)

    def _dispatch(self) -> None:
        now_t = time.time()
        slots = self._capacity()
        for job in self.state.eligible(now_t):
            if slots <= 0:
                break
            with self._lock:
                if job.job_id in self._inflight:
                    continue
                self._inflight.add(job.job_id)
            self._queue.put(job.job_id)
            slots -= 1
        self._inject_duplicates()

    def _inject_duplicates(self) -> None:
        """Chaos hook: redeliver a job that is already running, proving
        the at-least-once path (the second ``complete`` is ignored)."""
        dup = getattr(self.injector, "duplicate_claim", None)
        if dup is None:
            return
        for job in self.state.running():
            if dup(job.job_id):
                self._queue.put(job.job_id)
                with self._lock:
                    self._active[job.job_id] = self._active.get(job.job_id, 0)

    # ------------------------------------------------------------ lease care
    def _reclaim_leases(self) -> None:
        now_t = time.time()
        for job in self.state.running():
            if job.lease_deadline_t > now_t:
                continue
            expirations = job.expirations + 1
            if expirations > self.max_lease_expirations:
                self.wal.append(
                    {
                        "kind": "fail",
                        "job_id": job.job_id,
                        "error": f"lease expired {expirations} times "
                        f"(budget {self.max_lease_expirations})",
                        "failures": job.failures,
                        "t": now_t,
                    }
                )
                self._count_job("failed")
            else:
                self.wal.append(
                    {
                        "kind": "requeue",
                        "job_id": job.job_id,
                        "reason": "lease-expired",
                        "failures": job.failures,
                        "expirations": expirations,
                        "not_before_t": now_t,
                        "t": now_t,
                    }
                )
                self.metrics.counter(
                    "repro_serve_lease_expirations_total",
                    "leases reclaimed from stalled or dead workers",
                ).inc()
            if self.tracer is not None:
                self.tracer.event(
                    "lease-expired", job_id=job.job_id, expirations=expirations
                )
        self.state.apply_all(self.wal.poll())

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            with self._lock:
                beating = [j for j in self._active if j not in self._stalled]
            now_t = time.time()
            for job_id in beating:
                self.wal.append(
                    {
                        "kind": "heartbeat",
                        "job_id": job_id,
                        "deadline_t": now_t + self.lease_s,
                        "t": now_t,
                    }
                )
                self.metrics.counter(
                    "repro_serve_heartbeats_total", "lease extensions appended"
                ).inc()

    # -------------------------------------------------------------- breaker
    def _update_breaker(self) -> None:
        current, streak = self.state.breaker_view()
        if streak >= 2 * self.breaker_threshold:
            level = "open"
        elif streak >= self.breaker_threshold:
            level = "degraded"
        else:
            level = "closed"
        if level != current:
            now_t = time.time()
            self.wal.append({"kind": "breaker", "state": level, "streak": streak, "t": now_t})
            self.state.apply_all(self.wal.poll())
            if self.tracer is not None:
                self.tracer.event("breaker", state=level, streak=streak)

    # -------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            try:
                self._execute(name, job_id)
            finally:
                with self._lock:
                    self._inflight.discard(job_id)
                    count = self._active.get(job_id, 1) - 1
                    if count <= 0:
                        self._active.pop(job_id, None)
                        self._stalled.discard(job_id)
                    else:
                        self._active[job_id] = count

    def _claim(self, worker: str, job_id: str) -> None:
        now_t = time.time()
        self.wal.append(
            {
                "kind": "claim",
                "job_id": job_id,
                "worker": worker,
                "lease_s": self.lease_s,
                "deadline_t": now_t + self.lease_s,
                "t": now_t,
            }
        )
        with self._lock:
            self._active[job_id] = self._active.get(job_id, 0) + 1
        stall = getattr(self.injector, "stall_heartbeat", None)
        if stall is not None and stall(job_id, worker):
            with self._lock:
                self._stalled.add(job_id)

    def _execute(self, worker: str, job_id: str) -> None:
        job = self.state.get(job_id)
        if job is None or job.terminal or job.status == "cancelled":
            return
        self._claim(worker, job_id)

        def progress(event: dict) -> None:
            if self._stop.is_set():
                raise SweepInterrupted("daemon stopping")

        wrap = getattr(self.injector, "wrap_progress", None)
        if wrap is not None:
            progress = wrap(job_id, job.failures, progress)
        span = (
            self.tracer.span("serve-job", job_id=job_id, worker=worker)
            if self.tracer is not None
            else NULL_SPAN
        )
        now_t = time.time()
        try:
            with span:
                out = self.runner(job, progress=progress)
        except SweepInterrupted:
            self.wal.append(
                {
                    "kind": "requeue",
                    "job_id": job_id,
                    "reason": "shutdown",
                    "failures": job.failures,
                    "not_before_t": 0.0,
                    "t": time.time(),
                }
            )
        except Exception as exc:
            self._handle_failure(job, exc)
        else:
            self.wal.append(
                {
                    "kind": "complete",
                    "job_id": job_id,
                    "points": int(out.get("points", 0)),
                    "store": out.get("store"),
                    "elapsed_s": time.time() - now_t,
                    "t": time.time(),
                }
            )
            self._count_job("completed")

    def _handle_failure(self, job, exc: Exception) -> None:
        failures = job.failures + 1
        max_retries = int(job.spec.get("max_retries", 2))
        if getattr(exc, "injected", False):
            self.metrics.counter(
                "repro_serve_faults_injected_total", "injected service faults observed"
            ).inc()
        if self.tracer is not None:
            self.tracer.event("job-failed", job_id=job.job_id, attempt=failures, error=repr(exc))
        now_t = time.time()
        if failures > max_retries:
            self.wal.append(
                {
                    "kind": "fail",
                    "job_id": job.job_id,
                    "error": "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip(),
                    "failures": failures,
                    "t": now_t,
                }
            )
            self._count_job("failed")
        else:
            delay_s = retry_backoff(
                failures,
                base_s=self.backoff_base_s,
                cap_s=self.backoff_cap_s,
                seed=self.seed,
                key=job.job_id,
            )
            self.wal.append(
                {
                    "kind": "requeue",
                    "job_id": job.job_id,
                    "reason": "retry",
                    "failures": failures,
                    "not_before_t": now_t + delay_s,
                    "backoff_s": delay_s,
                    "t": now_t,
                }
            )
            self.metrics.counter(
                "repro_serve_retries_total", "job deliveries requeued for retry"
            ).inc()

    # -------------------------------------------------------------- metrics
    def _count_job(self, outcome: str) -> None:
        self.metrics.counter(
            "repro_serve_jobs_total", "job deliveries by terminal outcome", outcome=outcome
        ).inc()

    def _publish_metrics(self) -> None:
        counts = self.state.counts()
        self.metrics.gauge("repro_serve_queue_depth", "jobs waiting to run").set(
            counts["pending"]
        )
        self.metrics.gauge("repro_serve_running", "jobs currently leased").set(
            counts["running"]
        )
        self.metrics.gauge(
            "repro_serve_breaker_state", "circuit breaker (0 closed, 1 degraded, 2 open)"
        ).set(_BREAKER_LEVELS.index(self.state.breaker_view()[0]))
        self.metrics.gauge(
            "repro_serve_wal_corrupt_lines", "corrupt WAL lines skipped on replay"
        ).set(self.wal.corruption_count())
