"""The durable job queue: an append-only JSONL write-ahead log.

Every queue mutation is one appended record — ``submit``, ``claim``,
``heartbeat``, ``requeue``, ``fail``, ``complete``, ``cancel``,
``breaker`` — and the in-memory :class:`QueueState` is *only ever*
produced by replaying those records.  There is no second code path for
"live" state: the daemon applies the same records it just appended by
polling its own file, so crash recovery is the normal path run again,
not a special case.

Durability and damage tolerance mirror the result store's contract:

* every append is flushed and fsynced before the caller proceeds, so an
  acknowledged submission survives ``kill -9``;
* the reader parses only whole lines — a torn tail (a writer killed
  mid-append) is invisible until the line is completed or terminated;
* before appending, the writer repairs a missing trailing newline so a
  new record can never concatenate onto a torn one (which would lose
  *both* records on replay);
* corrupt interior lines are skipped, counted in
  :attr:`WriteAheadLog.corrupt_lines`, and reported through
  :func:`repro.obs.trace.log_event` — one bad record must not take the
  queue down.

Replay is idempotent: records for unknown jobs, second ``submit``s and
second ``complete``s for the same job are ignored (and counted), which
is what makes at-least-once delivery safe — a duplicated execution can
re-append ``complete`` without double-counting the job.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from ..obs.trace import log_event

__all__ = [
    "WAL_FORMAT",
    "WAL_VERSION",
    "TERMINAL_STATUSES",
    "WriteAheadLog",
    "JobState",
    "QueueState",
]

WAL_FORMAT = "repro-serve-wal"
WAL_VERSION = 1

#: Statuses a job never leaves.
TERMINAL_STATUSES = frozenset({"completed", "failed", "cancelled"})


class WriteAheadLog:
    """Append-only JSONL log with fsync'd appends and torn-tail-tolerant reads.

    ``append`` is safe to call from multiple threads of one process (an
    internal lock serializes the newline-repair + write + fsync
    sequence).  Multiple *processes* may append concurrently — appends
    open in ``"a"`` mode and records are single writes — which is how
    clients submit into a live daemon's queue.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.corrupt_lines = 0
        self._offset = 0
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.append({"format": WAL_FORMAT, "version": WAL_VERSION})

    # ---------------------------------------------------------------- append
    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        data = json.dumps(record, sort_keys=True).encode() + b"\n"
        with self._lock:
            with open(self.path, "a+b") as fh:
                # Repair a torn tail left by a crashed writer: without a
                # terminating newline this record would concatenate onto
                # the partial line and replay would lose both.
                fh.seek(0, os.SEEK_END)
                if fh.tell() < self._offset:
                    # The file shrank behind our back (externally torn or
                    # rotated).  Catch it *before* this append grows the
                    # file past the stale offset, or the next poll would
                    # read from the middle of this record.
                    log_event(
                        "serve-wal-shrank",
                        f"WAL {self.path} shrank below read offset "
                        f"{self._offset}; replaying from the start",
                        path=str(self.path),
                    )
                    self._offset = 0
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
                fh.write(data)
                fh.flush()
                # repro: lint-ignore[RPR011]: append ordering IS the durability contract — the lock must cover write+flush+fsync so acknowledged records reach disk in queue order
                os.fsync(fh.fileno())

    # ----------------------------------------------------------------- read
    def poll(self) -> list[dict]:
        """Records appended since the last poll (whole lines only).

        The header line and unparseable lines are filtered out; the
        latter are counted and reported.  A torn tail stays unread until
        a later append terminates it.
        """
        with self._lock:
            try:
                size = self.path.stat().st_size
            except FileNotFoundError:
                return []
            if size < self._offset:
                # The file shrank under us (externally torn/rotated) —
                # restart from the top; apply() is idempotent.
                log_event(
                    "serve-wal-shrank",
                    f"WAL {self.path} shrank from offset {self._offset} to "
                    f"{size}; replaying from the start",
                    path=str(self.path),
                )
                self._offset = 0
            if size == self._offset:
                return []
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                buf = fh.read()
            end = buf.rfind(b"\n")
            if end < 0:
                return []  # nothing but a torn tail so far
            self._offset += end + 1
            lines = buf[: end + 1].splitlines()
        records: list[dict] = []
        bad = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                bad += 1
                continue
            if not isinstance(doc, dict) or "kind" not in doc:
                continue  # header line (or foreign JSON): not a queue record
            records.append(doc)
        if bad:
            with self._lock:
                self.corrupt_lines += bad
                total = self.corrupt_lines  # noqa: consistent view for the log line
            log_event(
                "serve-wal-corrupt-line",
                f"skipped {bad} corrupt line(s) in WAL {self.path} "
                f"({total} total); queue state is rebuilt from "
                "the surviving records",
                path=str(self.path),
                skipped=bad,
                total=total,
            )
        return records

    def replay(self) -> list[dict]:
        """Re-read the whole log from the top (fresh-daemon startup)."""
        with self._lock:
            self._offset = 0
            self.corrupt_lines = 0
        return self.poll()

    def corruption_count(self) -> int:
        """Corrupt lines skipped so far (locked read for metrics/status)."""
        with self._lock:
            return self.corrupt_lines


@dataclass
class JobState:
    """One job's current position in the state machine.

    ``pending`` → ``running`` (under a heartbeat lease) → ``completed``
    / ``failed`` / ``cancelled``; ``requeue`` records send a running or
    failed-attempt job back to ``pending`` (with a backoff gate in
    ``not_before_t``).  Instances are *derived* — only
    :meth:`QueueState.apply` mutates them.
    """

    job_id: str
    spec: dict
    status: str = "pending"
    failures: int = 0
    expirations: int = 0
    worker: str | None = None
    lease_deadline_t: float = 0.0
    not_before_t: float = 0.0
    points: int | None = None
    store: str | None = None
    error: str | None = None
    submitted_t: float = 0.0
    finished_t: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def snapshot(self) -> dict:
        """JSON-ready view for status queries and reports."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "study": self.spec.get("study", {}).get("name"),
            "failures": self.failures,
            "expirations": self.expirations,
            "worker": self.worker,
            "points": self.points,
            "store": self.store,
            "error": self.error,
        }


class QueueState:
    """The queue, derived by replaying WAL records (and nothing else).

    ``apply`` is idempotent and tolerant of duplicates and records for
    unknown jobs (both counted in :attr:`duplicates_ignored` /
    :attr:`orphan_records`): replaying a log twice, or a log containing
    the effects of duplicate delivery, converges to the same state.
    """

    def __init__(self) -> None:
        # The control loop replays records while worker threads look up
        # their jobs; one lock covers every access to the jobs table.
        self._lock = threading.Lock()
        self.jobs: dict[str, JobState] = {}
        self.breaker = "closed"
        self.breaker_t = 0.0
        self.breaker_streak = 0
        self.duplicates_ignored = 0
        self.orphan_records = 0

    # ---------------------------------------------------------------- apply
    def apply(self, record: dict) -> None:
        with self._lock:
            self._apply_locked(record)

    def _apply_locked(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "submit":
            job_id = record.get("job_id", "")
            if job_id in self.jobs:
                self.duplicates_ignored += 1
                return
            self.jobs[job_id] = JobState(
                job_id=job_id,
                spec=record.get("spec", {}),
                submitted_t=float(record.get("t", 0.0)),
            )
            return
        if kind == "breaker":
            self.breaker = str(record.get("state", "closed"))
            self.breaker_t = float(record.get("t", 0.0))
            return
        job = self.jobs.get(record.get("job_id", ""))
        if job is None:
            self.orphan_records += 1  # e.g. the submit line was lost to a tear
            return
        if kind == "claim":
            if job.terminal:
                return
            job.status = "running"
            job.worker = record.get("worker")
            job.lease_deadline_t = float(record.get("deadline_t", 0.0))
        elif kind == "heartbeat":
            if job.status == "running":
                job.lease_deadline_t = max(
                    job.lease_deadline_t, float(record.get("deadline_t", 0.0))
                )
        elif kind == "requeue":
            if job.terminal:
                return
            job.status = "pending"
            job.worker = None
            job.failures = int(record.get("failures", job.failures))
            job.expirations = int(record.get("expirations", job.expirations))
            job.not_before_t = float(record.get("not_before_t", 0.0))
            if record.get("reason") == "retry":
                self.breaker_streak += 1
            elif record.get("reason") == "lease-expired":
                self.breaker_streak += 1
        elif kind == "fail":
            if job.terminal:
                return
            job.status = "failed"
            job.error = record.get("error")
            job.failures = int(record.get("failures", job.failures))
            job.finished_t = float(record.get("t", 0.0))
            self.breaker_streak += 1
        elif kind == "complete":
            if job.terminal:
                if job.status == "completed":
                    self.duplicates_ignored += 1  # duplicate delivery: second finish ignored
                return  # terminal states are sticky (a cancel stays cancelled)
            job.status = "completed"
            job.points = int(record.get("points", 0))
            job.store = record.get("store")
            job.error = None
            job.finished_t = float(record.get("t", 0.0))
            self.breaker_streak = 0
        elif kind == "cancel":
            if job.terminal:
                return
            job.status = "cancelled"
            job.finished_t = float(record.get("t", 0.0))

    def apply_all(self, records) -> None:
        with self._lock:
            for record in records:
                self._apply_locked(record)

    # ---------------------------------------------------------------- views
    def get(self, job_id: str) -> JobState | None:
        """The job's state object, or None — the worker-thread lookup."""
        with self._lock:
            return self.jobs.get(job_id)

    def breaker_view(self) -> tuple[str, int]:
        """(breaker level, failure streak) as one consistent read."""
        with self._lock:
            return self.breaker, self.breaker_streak

    def statuses(self) -> dict[str, str]:
        """job_id → status, one consistent snapshot of the whole table."""
        with self._lock:
            return {job_id: j.status for job_id, j in self.jobs.items()}

    def job_snapshots(self) -> list[dict]:
        """JSON-ready snapshots of every job (status-report view)."""
        with self._lock:
            jobs = list(self.jobs.values())
        return [j.snapshot() for j in jobs]

    def eligible(self, now_t: float) -> list[JobState]:
        """Pending jobs whose backoff gate has passed, submission order."""
        with self._lock:
            return [
                j
                for j in self.jobs.values()
                if j.status == "pending" and j.not_before_t <= now_t
            ]

    def running(self) -> list[JobState]:
        with self._lock:
            return [j for j in self.jobs.values() if j.status == "running"]

    def open_jobs(self) -> list[JobState]:
        """Jobs not yet terminal (the daemon's remaining work)."""
        with self._lock:
            return [j for j in self.jobs.values() if not j.terminal]

    def counts(self) -> dict[str, int]:
        out = {"pending": 0, "running": 0, "completed": 0, "failed": 0, "cancelled": 0}
        with self._lock:
            for job in self.jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
        return out
