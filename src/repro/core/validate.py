"""Invariant guardrails: is a sweep point physically sane?

The paper's Tables I–III rest on a handful of physical invariants that
a healthy measurement stack can never violate:

* modeled power stays at or under the programmed cap (within an
  enforcement tolerance);
* runtime is non-decreasing as the cap drops for a fixed
  (algorithm, size) — capping can only slow work down;
* IPC, LLC miss rate, and effective frequency are finite and inside
  the bins the machine spec allows;
* a point's stored ratios agree with its stored measurements.

:class:`PointValidator` checks every :class:`~repro.core.runner.RunPoint`
against them.  Violations never abort a sweep: the engine quarantines
the offending point to a ``*.quarantine.jsonl`` sidecar with a
machine-readable reason and keeps going, and ``repro doctor`` applies
the same checks to a store at rest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from ..machine.rapl import MIN_DUTY
from ..machine.spec import BROADWELL_E5_2695V4, MachineSpec
from .runner import RunPoint, StudyResult
from .store import ResultStore

__all__ = ["Violation", "PointValidator", "ValidationReport", "validate_store"]

#: RunPoint fields that must be finite for the point to mean anything.
_FINITE_FIELDS = ("time_s", "energy_j", "power_w", "freq_ghz", "ipc", "llc_miss_rate")

PointKey = tuple[str, int, float]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, machine-readable."""

    code: str
    message: str

    def to_dict(self) -> dict[str, str]:
        return {"code": self.code, "message": self.message}


@dataclass
class ValidationReport:
    """Outcome of validating a set of points (a group, a result, a store)."""

    n_points: int = 0
    violations: dict[PointKey, list[Violation]] = field(default_factory=dict)
    quarantined: int = 0
    source: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def n_bad(self) -> int:
        return len(self.violations)

    def counts_by_code(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for vs in self.violations.values():
            for v in vs:
                out[v.code] = out.get(v.code, 0) + 1
        return dict(sorted(out.items()))

    def render(self) -> str:
        """Human-readable report (the body of ``repro doctor``)."""
        head = f"validated {self.n_points} points" + (f" from {self.source}" if self.source else "")
        if self.ok:
            lines = [head, "  all invariants hold"]
        else:
            lines = [head, f"  {self.n_bad} point(s) violate invariants:"]
            for (alg, size, cap), vs in sorted(self.violations.items()):
                for v in vs:
                    lines.append(f"    {alg}@{size}^3 {cap:g}W  [{v.code}] {v.message}")
            counts = ", ".join(f"{c}={n}" for c, n in self.counts_by_code().items())
            lines.append(f"  by code: {counts}")
        if self.quarantined:
            lines.append(f"  quarantined {self.quarantined} point(s) to the sidecar")
        return "\n".join(lines)


class PointValidator:
    """Checks sweep points against the machine spec's physics.

    Tolerances default to comfortably outside anything the clean
    simulator produces (its worst legitimate point sits 0.06 W *under*
    its cap and its runtimes are strictly monotone), so a violation is
    always a real defect or an injected fault, never noise.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        *,
        power_abs_tol_w: float = 0.5,
        power_rel_tol: float = 0.01,
        time_rel_tol: float = 1e-9,
        ratio_rel_tol: float = 1e-6,
    ):
        self.spec = spec if spec is not None else BROADWELL_E5_2695V4
        self.power_abs_tol_w = power_abs_tol_w
        self.power_rel_tol = power_rel_tol
        self.time_rel_tol = time_rel_tol
        self.ratio_rel_tol = ratio_rel_tol
        # Reference-cycle IPC tops out at the best-case issue rate scaled
        # by turbo/base (APERF can run that much faster than REF_TSC).
        self._ipc_max = (1.0 / float(min(self.spec.cpi_vector()))) * (
            self.spec.f_turbo / self.spec.f_base
        ) * 1.05
        self._freq_min = self.spec.f_min * MIN_DUTY * 0.95
        self._freq_max = self.spec.f_turbo * 1.001

    # ------------------------------------------------------------ per point
    def check_point(self, p: RunPoint) -> list[Violation]:
        """All single-point invariants (no cross-cap context needed)."""
        out: list[Violation] = []
        bad_finite = [
            f for f in _FINITE_FIELDS if not math.isfinite(getattr(p, f))
        ] + [
            f"ratios.{r}" for r in ("pratio", "tratio", "fratio")
            if not math.isfinite(getattr(p.ratios, r))
        ]
        if bad_finite:
            out.append(Violation("non-finite", f"non-finite field(s): {', '.join(bad_finite)}"))
            return out  # range checks against NaN are meaningless

        if p.time_s <= 0 or p.energy_j <= 0 or p.power_w <= 0:
            out.append(
                Violation(
                    "non-positive",
                    f"time/energy/power must be positive "
                    f"(got {p.time_s:g}s, {p.energy_j:g}J, {p.power_w:g}W)",
                )
            )
        limit = p.cap_w * (1.0 + self.power_rel_tol) + self.power_abs_tol_w
        if p.power_w > limit:
            out.append(
                Violation(
                    "power-over-cap",
                    f"modeled power {p.power_w:.2f}W exceeds cap {p.cap_w:g}W "
                    f"(tolerance {limit - p.cap_w:.2f}W)",
                )
            )
        if not (self._freq_min <= p.freq_ghz <= self._freq_max):
            out.append(
                Violation(
                    "freq-out-of-range",
                    f"effective frequency {p.freq_ghz:.3f}GHz outside "
                    f"[{self._freq_min:.3f}, {self._freq_max:.3f}]GHz",
                )
            )
        if not (0.0 < p.ipc <= self._ipc_max):
            out.append(
                Violation(
                    "ipc-out-of-range",
                    f"IPC {p.ipc:.3f} outside (0, {self._ipc_max:.2f}]",
                )
            )
        if not (0.0 <= p.llc_miss_rate <= 1.0):
            out.append(
                Violation(
                    "llc-rate-out-of-range",
                    f"LLC miss rate {p.llc_miss_rate:.4f} outside [0, 1]",
                )
            )
        return out

    # ------------------------------------------------------------ per group
    def check_group(self, points: list[RunPoint]) -> dict[PointKey, list[Violation]]:
        """Per-point checks plus cross-cap invariants for one
        (algorithm, size) group.  Returns only keys with violations."""
        out: dict[PointKey, list[Violation]] = {p.key: self.check_point(p) for p in points}
        clean = [p for p in points if not out[p.key]]

        # Runtime monotone as the cap drops: walk caps high→low, flagging
        # any point that claims to run *faster* under *less* power than
        # the last trustworthy point above it.
        chain = sorted(clean, key=lambda p: -p.cap_w)
        if chain:
            last_good = chain[0]
            for p in chain[1:]:
                if p.time_s < last_good.time_s * (1.0 - self.time_rel_tol):
                    out[p.key].append(
                        Violation(
                            "runtime-not-monotone",
                            f"time {p.time_s:.6g}s at {p.cap_w:g}W is below "
                            f"{last_good.time_s:.6g}s at {last_good.cap_w:g}W",
                        )
                    )
                else:
                    last_good = p

        # Stored ratios must agree with stored measurements: tratio was
        # computed from the same times, so time_s ≈ tratio × baseline
        # time.  If most of the group disagrees with the baseline, the
        # baseline itself is the corrupt one.
        if len(chain) >= 2:
            base, rest = chain[0], chain[1:]
            mismatched = [
                p for p in rest
                if abs(p.time_s - p.tratio * base.time_s)
                > self.ratio_rel_tol * max(p.time_s, base.time_s)
            ]
            if len(mismatched) > len(rest) / 2:
                out[base.key].append(
                    Violation(
                        "baseline-inconsistent",
                        f"baseline time {base.time_s:.6g}s at {base.cap_w:g}W disagrees "
                        f"with the stored tratio of {len(mismatched)}/{len(rest)} "
                        f"points in the group",
                    )
                )
            else:
                for p in mismatched:
                    out[p.key].append(
                        Violation(
                            "ratio-inconsistent",
                            f"time {p.time_s:.6g}s disagrees with stored "
                            f"tratio {p.tratio:.6g} × baseline {base.time_s:.6g}s",
                        )
                    )
        return {k: v for k, v in out.items() if v}

    # ------------------------------------------------------------ per epoch
    def check_epochs(self, epochs) -> dict[PointKey, list[Violation]]:
        """The static invariants restated piecewise for governed runs.

        Under a governor the cap is constant only *within* one control
        epoch, so the global contracts become per-epoch ones.  ``epochs``
        is a sequence of :class:`~repro.insitu.governors.GovernorEpoch`
        records (any objects with the same fields work); each is checked
        like a static point against its own cap, then two cross-epoch
        contracts apply per control method:

        * epochs programmed with the *same* setting must agree on time
          (the simulator is deterministic, so disagreement means a
          corrupted record);
        * across settings, runtime is monotone as the granted capacity
          fraction drops — capping can only slow the same work down.

        Keys are ``(control, epoch_index, cap_w)``; only violating keys
        are returned.
        """
        out: dict[PointKey, list[Violation]] = {}
        clean = []
        for e in epochs:
            key: PointKey = (e.control, int(e.epoch), float(e.cap_w))
            vs: list[Violation] = []
            if not all(
                math.isfinite(v) for v in (e.time_s, e.energy_j, e.power_w, e.freq_ghz)
            ):
                vs.append(Violation("non-finite", f"non-finite field(s) in epoch {e.epoch}"))
            else:
                if e.time_s <= 0 or e.energy_j <= 0 or e.power_w <= 0:
                    vs.append(
                        Violation(
                            "non-positive",
                            f"epoch {e.epoch} time/energy/power must be positive "
                            f"(got {e.time_s:g}s, {e.energy_j:g}J, {e.power_w:g}W)",
                        )
                    )
                limit = e.cap_w * (1.0 + self.power_rel_tol) + self.power_abs_tol_w
                if e.power_w > limit:
                    vs.append(
                        Violation(
                            "power-over-cap",
                            f"epoch {e.epoch} power {e.power_w:.2f}W exceeds its "
                            f"cap {e.cap_w:g}W (tolerance {limit - e.cap_w:.2f}W)",
                        )
                    )
                if not (self._freq_min <= e.freq_ghz <= self._freq_max):
                    vs.append(
                        Violation(
                            "freq-out-of-range",
                            f"epoch {e.epoch} frequency {e.freq_ghz:.3f}GHz outside "
                            f"[{self._freq_min:.3f}, {self._freq_max:.3f}]GHz",
                        )
                    )
            if vs:
                out[key] = vs
            else:
                clean.append(e)

        # Group epochs by programmed setting within each control method.
        groups: dict[tuple, list] = {}
        for e in clean:
            setting = (
                e.control,
                round(float(e.cap_w), 9),
                None if e.f_ceiling_ghz is None else round(float(e.f_ceiling_ghz), 9),
                round(float(e.duty_cap), 9),
            )
            groups.setdefault(setting, []).append(e)

        # Same setting ⇒ same time: the simulator is deterministic and a
        # governed run re-executes the same profile every epoch.
        for members in groups.values():
            base = members[0]
            for e in members[1:]:
                if abs(e.time_s - base.time_s) > self.ratio_rel_tol * base.time_s:
                    out.setdefault((e.control, int(e.epoch), float(e.cap_w)), []).append(
                        Violation(
                            "epoch-inconsistent",
                            f"epoch {e.epoch} time {e.time_s:.6g}s disagrees with "
                            f"epoch {base.epoch} at the same setting "
                            f"({base.time_s:.6g}s)",
                        )
                    )

        # Monotone in granted capacity, walked per control method from
        # the most to the least capacity (the governor's fraction orders
        # every control method's actuator monotonically).
        by_control: dict[str, list] = {}
        for members in groups.values():
            by_control.setdefault(members[0].control, []).append(members[0])
        for reps in by_control.values():
            chain = sorted(reps, key=lambda e: -e.fraction)
            if not chain:
                continue
            last_good = chain[0]
            for e in chain[1:]:
                if e.time_s < last_good.time_s * (1.0 - self.time_rel_tol):
                    out.setdefault((e.control, int(e.epoch), float(e.cap_w)), []).append(
                        Violation(
                            "runtime-not-monotone",
                            f"epoch {e.epoch} time {e.time_s:.6g}s at capacity "
                            f"fraction {e.fraction:g} is below {last_good.time_s:.6g}s "
                            f"at fraction {last_good.fraction:g}",
                        )
                    )
                else:
                    last_good = e
        return out

    # ----------------------------------------------------------- aggregates
    def check_result(self, result: StudyResult) -> ValidationReport:
        """Validate every (algorithm, size) group of a result."""
        groups: dict[tuple[str, int], list[RunPoint]] = {}
        for p in result.points:
            groups.setdefault((p.algorithm, p.size), []).append(p)
        report = ValidationReport(n_points=len(result.points), source=result.config_name)
        for pts in groups.values():
            report.violations.update(self.check_group(pts))
        return report


def validate_store(
    path: str | Path,
    spec: MachineSpec | None = None,
    *,
    quarantine: bool = False,
) -> ValidationReport:
    """Validate a sweep store on disk (the engine behind ``repro doctor``).

    With ``quarantine=True``, violating points are moved out of the main
    store into its ``*.quarantine.jsonl`` sidecar (with reasons) so the
    store validates clean afterwards; the default is a read-only report.
    """
    store = ResultStore(path)
    report = PointValidator(spec).check_result(store.load_result())
    report.source = str(path)
    if quarantine and report.violations:
        points = store.points
        for key, reasons in report.violations.items():
            store.quarantine(points[key], reasons)
        report.quarantined = store.remove(report.violations)
    return report
