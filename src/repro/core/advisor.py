"""Power advisor: turn the study's findings into cap recommendations.

The paper's two use cases (§VII):

1. *Post hoc* on a shared cluster — request the least power that keeps
   the visualization's slowdown within tolerance, leaving headroom for
   power-hungry co-tenants (:func:`recommend_cap`).
2. *In situ* under a node budget — split power between simulation and
   visualization phases (:func:`recommend_split`, which drives
   :mod:`repro.insitu.budget`).

:class:`PowerAdvisor` packages the first use case as a hot-path query
service: op-count ledgers come from the content-addressed
:class:`~repro.core.pricing.LedgerCache` (recorded once per
(algorithm, size, dataset, machine) by executing the real algorithm),
caps are priced through the vectorized
:class:`~repro.core.pricing.BatchRepricer`, and every query is
instrumented with :mod:`repro.obs` spans and metrics — the backing for
``repro advise`` and :func:`repro.api.advise`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path

from ..machine.spec import BROADWELL_E5_2695V4, MachineSpec
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import span
from .classify import Classification
from .metrics import SLOWDOWN_THRESHOLD
from .pricing import BatchRepricer, LedgerCache, dataset_fingerprint, machine_spec_hash
from .profiles import run_algorithm_ledger
from .runner import DEFAULT_VIZ_CYCLES, RunPoint
from .study import POWER_CAPS_W

__all__ = [
    "CapRecommendation",
    "Advice",
    "PowerAdvisor",
    "ADVISE_LATENCY_BUCKETS",
    "recommend_cap",
    "recommend_split",
]

#: Sub-millisecond-oriented latency buckets for the advise histogram —
#: warm queries land in the 10–500 µs bands, cold (profile-executing)
#: queries in the right tail.
ADVISE_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


@dataclass(frozen=True)
class CapRecommendation:
    """Deepest tolerable cap for one algorithm, with predicted cost."""

    algorithm: str
    size: int
    cap_w: float
    predicted_tratio: float
    power_saved_w: float  # headroom released vs. the TDP baseline draw


def recommend_cap(
    points: list[RunPoint], *, tolerance: float = SLOWDOWN_THRESHOLD
) -> CapRecommendation:
    """Deepest cap whose slowdown stays within ``tolerance``.

    For power-opportunity algorithms this lands at or near the RAPL
    floor (the paper: "requesting the lowest amount of power will leave
    more for other power-hungry applications").  With no tolerable
    point at all, the TDP baseline itself is returned.  Ties on the cap
    resolve deterministically to the earliest point in input order
    (``min`` is stable), so repeated queries over the same grid always
    agree.
    """
    if not points:
        raise ValueError("need at least one run point")
    base = max(points, key=lambda p: p.cap_w)
    tolerable = [p for p in points if p.tratio <= 1.0 + tolerance]
    choice = min(tolerable, key=lambda p: p.cap_w) if tolerable else base
    return CapRecommendation(
        algorithm=choice.algorithm,
        size=choice.size,
        cap_w=choice.cap_w,
        predicted_tratio=choice.tratio,
        power_saved_w=max(base.power_w - choice.power_w, 0.0),
    )


def recommend_split(
    classification: Classification,
    *,
    node_budget_w: float,
    tdp_w: float = 120.0,
    floor_w: float = 40.0,
) -> tuple[float, float]:
    """(sim_cap, viz_cap) under a per-socket average budget.

    Power-opportunity visualizations get the floor; power-sensitive
    ones get their natural draw (capping them below it costs time
    proportionally, which the runtime should decide explicitly).  The
    simulation receives the *remaining* budget headroom, clamped to the
    RAPL range — whenever the budget is feasible (at least two floors),
    the pair is guaranteed to respect it: the visualization is trimmed
    so the simulation keeps at least the floor, and the simulation
    never receives more than the headroom the visualization left.
    """
    if node_budget_w <= 0:
        raise ValueError("budget must be positive")
    if classification.is_opportunity:
        viz_cap = floor_w
    else:
        viz_cap = min(max(classification.natural_power_w, floor_w), tdp_w)
    if node_budget_w >= 2.0 * floor_w:
        # Feasible: leave the simulation at least a floor's worth.
        viz_cap = min(viz_cap, node_budget_w - floor_w)
    headroom = max(node_budget_w - viz_cap, 0.0)
    sim_cap = min(max(headroom, floor_w), tdp_w)
    return sim_cap, viz_cap


@dataclass(frozen=True)
class Advice:
    """One advise query's complete answer."""

    point: RunPoint                      # priced at the requested (or recommended) cap
    recommendation: CapRecommendation    # deepest tolerable cap over the full grid
    cache_hit: bool                      # False when the query executed the algorithm
    latency_s: float


class PowerAdvisor:
    """Hot-path cap advisor over a ledger cache and a batch repricer.

    The first query for an (algorithm, size) executes the real
    algorithm once to record its op-count ledger (a cache fill — the
    same job body the sweep engine runs); every later query reprices
    the cached ledger closed-form in microseconds.

    Instrumentation: ``repro_advise_queries_total{outcome=hit|miss}``
    counters, a ``repro_advise_latency_seconds`` histogram, and
    ``advise``/``advise-fill`` trace spans.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        *,
        cache: LedgerCache | str | Path | None = None,
        dataset_kind: str = "blobs",
        seed: int = 7,
        n_cycles: int = DEFAULT_VIZ_CYCLES,
        caps_w: tuple[float, ...] = POWER_CAPS_W,
        tolerance: float = SLOWDOWN_THRESHOLD,
        metrics: MetricsRegistry | None = None,
    ):
        self.spec = spec if spec is not None else BROADWELL_E5_2695V4
        self.cache = cache if isinstance(cache, LedgerCache) else LedgerCache(cache)
        self.repricer = BatchRepricer(self.spec, n_cycles=n_cycles)
        self.dataset_kind = str(dataset_kind)
        self.seed = int(seed)
        self.caps_w = tuple(float(c) for c in caps_w)
        if not self.caps_w:
            raise ValueError("need at least one power cap")
        self.tolerance = float(tolerance)
        self.dataset = dataset_fingerprint(self.dataset_kind, seed=self.seed)
        self.machine = machine_spec_hash(self.spec)
        reg = metrics if metrics is not None else get_registry()
        self._q_hit = reg.counter(
            "repro_advise_queries_total", "advise queries", outcome="hit"
        )
        self._q_miss = reg.counter(
            "repro_advise_queries_total", "advise queries", outcome="miss"
        )
        self._latency = reg.histogram(
            "repro_advise_latency_seconds",
            "per-query advise latency",
            buckets=ADVISE_LATENCY_BUCKETS,
        )

    # ------------------------------------------------------------- ledgers
    def ledger_for(self, algorithm: str, size: int) -> tuple[dict[str, float], bool]:
        """The (ledger, cache_hit) pair for one key, filling on miss.

        A miss executes the real algorithm once — the same cache-fill
        body the sweep engine's profile jobs run — and stores the
        ledger under its content address for every later query.
        """
        ledger = self.cache.get(algorithm, size, dataset=self.dataset, machine=self.machine)
        if ledger is not None:
            return ledger, True
        with span("advise-fill", algorithm=algorithm, size=int(size)):
            ledger = run_algorithm_ledger(
                algorithm, size, dataset_kind=self.dataset_kind, seed=self.seed
            )
        self.cache.put(algorithm, size, ledger, dataset=self.dataset, machine=self.machine)
        return ledger, False

    def warm(self, algorithms, sizes) -> int:
        """Fill the ledger cache for a grid; returns the fill count."""
        filled = 0
        for algorithm in algorithms:
            for size in sizes:
                _, hit = self.ledger_for(algorithm, size)
                if not hit:
                    filled += 1
        return filled

    # -------------------------------------------------------------- queries
    def advise(
        self,
        algorithm: str,
        size: int,
        *,
        cap_w: float | None = None,
        tolerance: float | None = None,
    ) -> Advice:
        """Answer one pricing query.

        With ``cap_w=None`` the answer is priced at the recommended
        (deepest tolerable) cap; otherwise at the requested cap, with
        the recommendation still included for comparison.
        """
        tol = self.tolerance if tolerance is None else float(tolerance)
        t0 = time.perf_counter()
        with span("advise", algorithm=algorithm, size=int(size)):
            ledger, hit = self.ledger_for(algorithm, size)
            points = self.repricer.reprice(algorithm, size, ledger, self.caps_w)
            rec = recommend_cap(points, tolerance=tol)
            target = rec.cap_w if cap_w is None else float(cap_w)
            point = self._grid_point(points, target)
            if point is None:
                point = self.repricer.reprice(
                    algorithm, size, ledger, (target,), default_cap_w=max(self.caps_w)
                )[0]
        latency = time.perf_counter() - t0
        (self._q_hit if hit else self._q_miss).inc()
        self._latency.observe(latency)
        return Advice(point=point, recommendation=rec, cache_hit=hit, latency_s=latency)

    def reprice_grid(self, algorithms, sizes, caps_w=None) -> list[RunPoint]:
        """Batch-price a whole algorithm × size × cap grid.

        Ledgers are filled on first use; with a warm cache the entire
        grid is closed-form — the path ``benchmarks/bench_advisor.py``
        holds to its queries-per-second floor.
        """
        caps = tuple(float(c) for c in caps_w) if caps_w is not None else self.caps_w
        points: list[RunPoint] = []
        for algorithm in algorithms:
            for size in sizes:
                ledger, _ = self.ledger_for(algorithm, size)
                points.extend(self.repricer.reprice(algorithm, size, ledger, caps))
        return points

    @staticmethod
    def _grid_point(points: list[RunPoint], cap_w: float) -> RunPoint | None:
        for p in points:
            if math.isclose(p.cap_w, cap_w, rel_tol=1e-9, abs_tol=1e-6):
                return p
        return None
