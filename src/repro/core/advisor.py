"""Power advisor: turn the study's findings into cap recommendations.

The paper's two use cases (§VII):

1. *Post hoc* on a shared cluster — request the least power that keeps
   the visualization's slowdown within tolerance, leaving headroom for
   power-hungry co-tenants (:func:`recommend_cap`).
2. *In situ* under a node budget — split power between simulation and
   visualization phases (:func:`recommend_split`, which drives
   :mod:`repro.insitu.budget`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .classify import Classification
from .metrics import SLOWDOWN_THRESHOLD
from .runner import RunPoint

__all__ = ["CapRecommendation", "recommend_cap", "recommend_split"]


@dataclass(frozen=True)
class CapRecommendation:
    """Deepest tolerable cap for one algorithm, with predicted cost."""

    algorithm: str
    size: int
    cap_w: float
    predicted_tratio: float
    power_saved_w: float  # headroom released vs. the TDP baseline draw


def recommend_cap(
    points: list[RunPoint], *, tolerance: float = SLOWDOWN_THRESHOLD
) -> CapRecommendation:
    """Deepest cap whose slowdown stays within ``tolerance``.

    For power-opportunity algorithms this lands at or near the RAPL
    floor (the paper: "requesting the lowest amount of power will leave
    more for other power-hungry applications").
    """
    if not points:
        raise ValueError("need at least one run point")
    base = max(points, key=lambda p: p.cap_w)
    tolerable = [p for p in points if p.tratio <= 1.0 + tolerance]
    choice = min(tolerable, key=lambda p: p.cap_w) if tolerable else base
    return CapRecommendation(
        algorithm=choice.algorithm,
        size=choice.size,
        cap_w=choice.cap_w,
        predicted_tratio=choice.tratio,
        power_saved_w=max(base.power_w - choice.power_w, 0.0),
    )


def recommend_split(
    classification: Classification,
    *,
    node_budget_w: float,
    tdp_w: float = 120.0,
    floor_w: float = 40.0,
) -> tuple[float, float]:
    """(sim_cap, viz_cap) under a per-socket average budget.

    Power-opportunity visualizations get the floor; power-sensitive
    ones get their natural draw (capping them below it costs time
    proportionally, which the runtime should decide explicitly).  The
    simulation receives the rest of the budget headroom, clamped to
    the RAPL range.
    """
    if node_budget_w <= 0:
        raise ValueError("budget must be positive")
    if classification.is_opportunity:
        viz_cap = floor_w
    else:
        viz_cap = min(max(classification.natural_power_w, floor_w), tdp_w)
    headroom = max(node_budget_w - viz_cap, 0.0)
    sim_cap = min(max(node_budget_w + headroom, floor_w), tdp_w)
    return sim_cap, viz_cap
