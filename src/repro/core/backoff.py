"""Capped, jittered retry backoff shared by the engine and the service.

The naive ``base * 2 ** (attempt - 1)`` schedule has two operational
failure modes at scale (Schuchart et al., arXiv:1808.08106: variation,
not raw draw, dominates): it is *unbounded* (a deep retry budget turns
into minute-long stalls) and it is *deterministic in the worst way* —
every worker that failed together retries together, re-creating the
very contention that failed them.  :func:`retry_backoff` fixes both:
the exponential is capped at ``cap_s``, and the delay is scattered over
``[cap/2, cap)`` by a *seeded* jitter draw, so schedules stay
bit-reproducible per ``(seed, key, attempt)`` — the property every
fault-plan test in this repo depends on — while distinct keys (jobs,
studies) desynchronize instead of stampeding.
"""

from __future__ import annotations

import hashlib

__all__ = ["retry_backoff"]


def _unit(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (seed, key, attempt)."""
    digest = hashlib.sha256(f"backoff|{seed}|{key}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def retry_backoff(
    attempt: int,
    *,
    base_s: float,
    cap_s: float = 5.0,
    seed: int = 0,
    key: str = "",
) -> float:
    """Delay before retry ``attempt`` (1-based): capped exponential + jitter.

    The raw schedule is ``min(cap_s, base_s * 2 ** (attempt - 1))``; the
    returned delay is that value scaled into ``[0.5, 1.0)`` of itself by
    a deterministic draw on ``(seed, key, attempt)``.  Same inputs, same
    delay — different keys, different delays — so a retry storm across
    many jobs spreads out instead of synchronizing.
    """
    if attempt < 1 or base_s <= 0.0:
        return 0.0
    raw_s = min(float(cap_s), float(base_s) * 2.0 ** (min(attempt, 63) - 1))
    return raw_s * (0.5 + 0.5 * _unit(int(seed), key, int(attempt)))
