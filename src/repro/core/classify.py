"""Algorithm classification: power opportunity vs. power sensitive.

The study's central result: algorithms split into two classes.

* **Power opportunity** (data/memory-bound): insensitive to caps until
  deep into the range — they can be deep-capped for free, releasing
  power to other consumers.
* **Power sensitive** (compute-bound): high natural draw, slow down
  roughly with frequency once the cap bites, which happens near TDP.

Classification uses the paper's own evidence: where the first 10 %
slowdown appears, backed by the natural power draw and IPC signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .metrics import SLOWDOWN_THRESHOLD, first_slowdown_cap
from .runner import RunPoint, StudyResult

__all__ = ["PowerClass", "Classification", "classify", "classify_result"]


class PowerClass(Enum):
    OPPORTUNITY = "power opportunity"
    SENSITIVE = "power sensitive"


@dataclass(frozen=True)
class Classification:
    """One algorithm's class and the evidence behind it."""

    algorithm: str
    size: int
    power_class: PowerClass
    first_slowdown_cap_w: float | None
    natural_power_w: float
    baseline_ipc: float
    llc_miss_rate: float

    @property
    def is_opportunity(self) -> bool:
        return self.power_class is PowerClass.OPPORTUNITY


def classify(
    points: list[RunPoint],
    *,
    sensitive_cap_w: float = 70.0,
    threshold: float = SLOWDOWN_THRESHOLD,
) -> Classification:
    """Classify one algorithm from its cap sweep at one size.

    An algorithm is *power sensitive* when its first significant
    slowdown appears at or above ``sensitive_cap_w`` (the paper's two
    sensitive algorithms slow down at 70–80 W, ≈67 % of TDP; the
    opportunity class holds out to 60 W and below).
    """
    if not points:
        raise ValueError("need at least one run point")
    algs = {p.algorithm for p in points}
    sizes = {p.size for p in points}
    if len(algs) != 1 or len(sizes) != 1:
        raise ValueError("classify() expects one algorithm at one size")

    base = max(points, key=lambda p: p.cap_w)
    cap = first_slowdown_cap([(p.cap_w, p.tratio) for p in points], threshold=threshold)
    sensitive = cap is not None and cap >= sensitive_cap_w
    return Classification(
        algorithm=base.algorithm,
        size=base.size,
        power_class=PowerClass.SENSITIVE if sensitive else PowerClass.OPPORTUNITY,
        first_slowdown_cap_w=cap,
        natural_power_w=base.power_w,
        baseline_ipc=base.ipc,
        llc_miss_rate=base.llc_miss_rate,
    )


def classify_result(
    result: StudyResult, *, size: int | None = None, sensitive_cap_w: float = 70.0
) -> dict[str, Classification]:
    """Classify every algorithm in a sweep (at one size)."""
    sizes = result.sizes
    if size is None:
        if len(sizes) != 1:
            raise ValueError(f"result spans sizes {sizes}; pass size= explicitly")
        size = sizes[0]
    out: dict[str, Classification] = {}
    for alg in result.algorithms:
        pts = result.select(algorithm=alg, size=size)
        if pts:
            out[alg] = classify(pts, sensitive_cap_w=sensitive_cap_w)
    return out
