"""Crash-safe small-file persistence shared by the JSON side-stores.

The JSONL :class:`~repro.core.store.ResultStore` gets durability from
append + fsync; the whole-document JSON stores (the profile cache, the
kernel benchmark trajectory) instead rewrite their file on every save,
which a crash or a concurrent sweep worker can interrupt half-way.
:func:`atomic_write_text` closes that hole: write to a sibling temp
file, fsync it, then :func:`os.replace` over the target — readers only
ever observe the old complete document or the new complete document.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_bytes", "atomic_write_json"]


def _atomic_write(path: str | Path, payload, mode: str) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path``'s contents with ``text``.

    The temp file lives in the target's directory so ``os.replace`` is a
    same-filesystem rename (atomic on POSIX).  The data is fsynced
    before the rename, so a crash leaves either the previous file or the
    new one — never a truncated hybrid.
    """
    _atomic_write(path, text, "w")


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Binary sibling of :func:`atomic_write_text` (images, archives)."""
    _atomic_write(path, data, "wb")


def atomic_write_json(path: str | Path, doc: dict, *, indent: int | None = None) -> None:
    """Serialize ``doc`` (sorted keys) and atomically write it to ``path``."""
    atomic_write_text(path, json.dumps(doc, sort_keys=True, indent=indent))
