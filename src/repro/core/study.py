"""Study configuration: the paper's factors and phases (§IV).

The full study is 288 configurations: 9 processor power caps × 8
visualization algorithms × 4 dataset sizes.  Phase 1 fixes a base case
(contour, 128³) and sweeps caps; Phase 2 adds the algorithm factor;
Phase 3 adds the size factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

__all__ = [
    "POWER_CAPS_W",
    "DATASET_SIZES",
    "ALGORITHM_NAMES",
    "StudyConfig",
    "phase1_config",
    "phase2_config",
    "phase3_config",
]

#: The paper's caps: 120 W (TDP) down to 40 W in 10 W steps.
POWER_CAPS_W: tuple[float, ...] = tuple(float(w) for w in range(120, 30, -10))

#: The paper's dataset sizes (cells per axis).
DATASET_SIZES: tuple[int, ...] = (32, 64, 128, 256)

#: The eight algorithms, in the paper's presentation order.
ALGORITHM_NAMES: tuple[str, ...] = (
    "contour",
    "threshold",
    "clip",
    "isovolume",
    "slice",
    "advection",
    "raytrace",
    "volume",
)


@dataclass(frozen=True)
class StudyConfig:
    """One phase's factor grid."""

    name: str
    algorithms: tuple[str, ...]
    sizes: tuple[int, ...]
    caps_w: tuple[float, ...] = POWER_CAPS_W

    def __post_init__(self) -> None:
        unknown = set(self.algorithms) - set(ALGORITHM_NAMES)
        if unknown:
            raise ValueError(f"unknown algorithm(s): {sorted(unknown)}")
        if any(s < 2 for s in self.sizes):
            raise ValueError("sizes must be at least 2 cells per axis")
        if not self.caps_w:
            raise ValueError("need at least one power cap")

    @property
    def n_configurations(self) -> int:
        return len(self.algorithms) * len(self.sizes) * len(self.caps_w)

    def configurations(self):
        """Iterate (algorithm, size, cap) in sweep order."""
        return product(self.algorithms, self.sizes, self.caps_w)

    @property
    def default_cap_w(self) -> float:
        """The baseline (highest) cap — TDP in the paper."""
        return max(self.caps_w)


def phase1_config() -> StudyConfig:
    """Phase 1: contour at 128³ across all caps (9 tests)."""
    return StudyConfig(name="phase1", algorithms=("contour",), sizes=(128,))


def phase2_config() -> StudyConfig:
    """Phase 2: all algorithms at 128³ (72 tests)."""
    return StudyConfig(name="phase2", algorithms=ALGORITHM_NAMES, sizes=(128,))


def phase3_config(sizes: tuple[int, ...] = DATASET_SIZES) -> StudyConfig:
    """Phase 3: all algorithms × all sizes (288 tests)."""
    return StudyConfig(name="phase3", algorithms=ALGORITHM_NAMES, sizes=sizes)
