"""The study itself: sweeps, metrics, classification, recommendations."""

from .advisor import Advice, CapRecommendation, PowerAdvisor, recommend_cap, recommend_split
from .atomicio import atomic_write_json, atomic_write_text
from .pricing import (
    BatchRepricer,
    LedgerCache,
    dataset_fingerprint,
    ledger_key,
    machine_spec_hash,
)
from .benchtrack import (
    SPEEDUP_FLOORS,
    BenchTracker,
    check_floors,
    format_trend,
    time_kernel,
    trend_rows,
)
from .classify import Classification, PowerClass, classify, classify_result
from .engine import EngineStats, ProfileJob, ShardTask, SweepEngine, SweepError
from .metrics import SLOWDOWN_THRESHOLD, Ratios, element_rate, energy_delay_product, first_slowdown_cap
from .predict import ClassPrediction, predict_class, predicted_cap
from .profiles import (
    ProfileCache,
    merge_shard_ledgers,
    profile_from_ledger,
    run_algorithm_ledger,
    run_algorithm_ledger_shard,
    supports_sharding,
)
from .report import (
    FigureSeries,
    figure2_series,
    figure3_series,
    ipc_by_size_series,
    render_slowdown_table,
    render_table1,
)
from .runner import DEFAULT_VIZ_CYCLES, RunPoint, StudyResult, StudyRunner, make_run_point
from .store import ResultStore, StoreMismatchError, sweep_fingerprint
from .validate import PointValidator, ValidationReport, Violation, validate_store
from .study import (
    ALGORITHM_NAMES,
    DATASET_SIZES,
    POWER_CAPS_W,
    StudyConfig,
    phase1_config,
    phase2_config,
    phase3_config,
)

__all__ = [
    "Ratios",
    "element_rate",
    "energy_delay_product",
    "first_slowdown_cap",
    "SLOWDOWN_THRESHOLD",
    "StudyConfig",
    "phase1_config",
    "phase2_config",
    "phase3_config",
    "POWER_CAPS_W",
    "DATASET_SIZES",
    "ALGORITHM_NAMES",
    "StudyRunner",
    "StudyResult",
    "RunPoint",
    "make_run_point",
    "DEFAULT_VIZ_CYCLES",
    "SweepEngine",
    "SweepError",
    "EngineStats",
    "ProfileJob",
    "ShardTask",
    "ResultStore",
    "StoreMismatchError",
    "sweep_fingerprint",
    "PointValidator",
    "ValidationReport",
    "Violation",
    "validate_store",
    "ProfileCache",
    "profile_from_ledger",
    "run_algorithm_ledger",
    "run_algorithm_ledger_shard",
    "merge_shard_ledgers",
    "supports_sharding",
    "BenchTracker",
    "time_kernel",
    "SPEEDUP_FLOORS",
    "trend_rows",
    "format_trend",
    "check_floors",
    "atomic_write_json",
    "atomic_write_text",
    "PowerClass",
    "Classification",
    "classify",
    "classify_result",
    "CapRecommendation",
    "recommend_cap",
    "recommend_split",
    "Advice",
    "PowerAdvisor",
    "LedgerCache",
    "BatchRepricer",
    "machine_spec_hash",
    "dataset_fingerprint",
    "ledger_key",
    "ClassPrediction",
    "predict_class",
    "predicted_cap",
    "render_table1",
    "render_slowdown_table",
    "figure2_series",
    "figure3_series",
    "ipc_by_size_series",
    "FigureSeries",
]
