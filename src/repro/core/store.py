"""Resumable result store: completed sweep points as JSON lines.

A store file is a header line followed by one :class:`RunPoint` per
line, appended as the sweep engine completes them::

    {"format": "repro-sweep-store", "version": 1, "fingerprint": "...", "meta": {...}}
    {"algorithm": "contour", "size": 128, "cap_w": 120.0, ...}
    {"algorithm": "contour", "size": 128, "cap_w": 110.0, ...}

The header's *fingerprint* hashes everything that determines a point's
value besides the (algorithm, size, cap) coordinates — machine spec,
dataset kind, seed, cycle count — so a store can only ever accumulate
points from one sweep context.  Resuming or *extending* a sweep (more
algorithms, sizes, or caps) appends to the same file; pointing an engine
with different parameters at it raises :class:`StoreMismatchError`
rather than silently mixing incomparable measurements.

Appends are flushed per point and a torn final line (a run killed
mid-write) is detected and truncated on the next open, so an interrupted
sweep resumes from exactly the points that made it to disk.

Points that fail the invariant guardrails (:mod:`repro.core.validate`)
never enter the main store: :meth:`ResultStore.quarantine` appends them
to a ``*.quarantine.jsonl`` sidecar alongside machine-readable reasons,
keeping the main file clean enough to trust blindly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator

from .atomicio import atomic_write_text
from .runner import RunPoint, StudyResult

__all__ = ["ResultStore", "StoreMismatchError", "sweep_fingerprint"]


class StoreMismatchError(ValueError):
    """The store on disk was produced under a different sweep context."""


def sweep_fingerprint(payload: dict) -> str:
    """Stable digest of the sweep context (spec, dataset, seed, cycles)."""
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class ResultStore:
    """Append-only JSONL store of completed :class:`RunPoint`\\ s."""

    FORMAT = "repro-sweep-store"
    VERSION = 1

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.fingerprint: str | None = None
        self.meta: dict = {}
        self._points: dict[tuple[str, int, float], RunPoint] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()

    # -------------------------------------------------------------- loading
    def _load(self) -> None:
        text = self.path.read_text()
        lines = text.splitlines(keepends=True)
        header = json.loads(lines[0])
        if header.get("format") != self.FORMAT:
            raise ValueError(f"{self.path} is not a sweep store (format={header.get('format')!r})")
        if int(header.get("version", 1)) > self.VERSION:
            raise ValueError(
                f"{self.path} has store version {header['version']}, newer than supported {self.VERSION}"
            )
        self.fingerprint = header.get("fingerprint")
        self.meta = dict(header.get("meta", {}))
        good_bytes = len(lines[0])
        for i, line in enumerate(lines[1:], start=1):
            stripped = line.strip()
            if not stripped:
                good_bytes += len(line)
                continue
            try:
                point = RunPoint.from_jsonl(stripped)
            except (ValueError, KeyError):
                if i == len(lines) - 1:
                    # Torn tail from a killed run: drop it so later
                    # appends don't concatenate onto garbage.
                    with open(self.path, "r+") as fh:
                        fh.truncate(good_bytes)
                    break
                raise ValueError(f"{self.path}: corrupt record on line {i + 1}") from None
            self._points[point.key] = point
            good_bytes += len(line)

    # -------------------------------------------------------------- identity
    def ensure_compatible(self, fingerprint: str, meta: dict | None = None) -> None:
        """Bind a fresh store to a sweep context, or verify an existing one."""
        if self.fingerprint is None:
            self.fingerprint = fingerprint
            self.meta = dict(meta or {})
            self._write_header()
        elif self.fingerprint != fingerprint:
            raise StoreMismatchError(
                f"{self.path} was produced under fingerprint {self.fingerprint} "
                f"but this sweep has {fingerprint} (different machine spec, dataset, "
                f"seed, or cycle count); refusing to mix results — use a fresh --store path"
            )

    def reset(self, fingerprint: str, meta: dict | None = None) -> None:
        """Discard all stored points and rebind to a new context."""
        self._points.clear()
        self.fingerprint = fingerprint
        self.meta = dict(meta or {})
        self._write_header()

    def _write_header(self) -> None:
        header = {
            "format": self.FORMAT,
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "meta": self.meta,
        }
        # Atomic replace: a header rewrite (reset/remove) interrupted
        # half-way must not destroy the store it was compacting.
        body = "".join(p.to_jsonl() + "\n" for p in self._points.values())
        atomic_write_text(self.path, json.dumps(header, sort_keys=True) + "\n" + body)

    # -------------------------------------------------------------- contents
    def append(self, point: RunPoint) -> None:
        if self.fingerprint is None:
            raise RuntimeError("store has no fingerprint; call ensure_compatible() first")
        self._points[point.key] = point
        with open(self.path, "a") as fh:
            fh.write(point.to_jsonl() + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def sync(self) -> None:
        """Force file (and directory) durability — e.g. on interrupt.

        Appends already fsync per record; this additionally syncs the
        directory entry so a freshly-created store survives a crash of
        the whole machine, not just the process.
        """
        for target in (self.path, self.path.parent):
            try:
                fd = os.open(target, os.O_RDONLY)
            except OSError:
                continue
            try:
                os.fsync(fd)
            except OSError:
                pass  # some filesystems refuse directory fsync
            finally:
                os.close(fd)

    def remove(self, keys) -> int:
        """Drop points from the store (rewrites the file); returns count."""
        dropped = 0
        for key in list(keys):
            if self._points.pop(key, None) is not None:
                dropped += 1
        if dropped:
            self._write_header()
        return dropped

    # ----------------------------------------------------------- quarantine
    @property
    def quarantine_path(self) -> Path:
        """Sidecar file holding points that failed validation."""
        return self.path.with_suffix(".quarantine.jsonl")

    def quarantine(self, point: RunPoint, reasons) -> None:
        """Append a rejected point (with reasons) to the sidecar.

        ``reasons`` is an iterable of objects with ``code``/``message``
        attributes (:class:`repro.core.validate.Violation`) or plain
        dicts.  The sidecar is append-only and fsynced like the main
        store, so quarantined evidence survives a crash too.
        """
        record = {
            "point": point.to_dict(),
            "reasons": [
                r if isinstance(r, dict) else {"code": r.code, "message": r.message}
                for r in reasons
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.quarantine_path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def quarantined(self) -> list[tuple[RunPoint, list[dict]]]:
        """All sidecar records as (point, reasons) pairs."""
        if not self.quarantine_path.exists():
            return []
        out = []
        for line in self.quarantine_path.read_text().splitlines():
            if not line.strip():
                continue
            rec = json.loads(line)
            out.append((RunPoint.from_dict(rec["point"]), list(rec["reasons"])))
        return out

    def __contains__(self, key: tuple[str, int, float]) -> bool:
        return key in self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[RunPoint]:
        return iter(self._points.values())

    @property
    def points(self) -> dict[tuple[str, int, float], RunPoint]:
        """Completed points keyed by (algorithm, size, cap_w)."""
        return dict(self._points)

    def completed_keys(self) -> set[tuple[str, int, float]]:
        return set(self._points)

    def load_result(self, config_name: str | None = None) -> StudyResult:
        """All stored points as a :class:`StudyResult` (insertion order)."""
        name = config_name or self.meta.get("config_name") or self.path.stem
        return StudyResult(config_name=name, points=list(self._points.values()))
