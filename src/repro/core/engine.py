"""Parallel, resumable sweep-execution engine.

The paper's Phase 3 grid is 288 configurations, but only the 32
(algorithm, size) pairs cost real work — each one executes the actual
visualization algorithm to record its op-count ledger.  The 9 power
caps per pair are repriced from that ledger on the simulated socket in
microseconds.  The engine exploits exactly that structure:

1. decompose a :class:`~repro.core.study.StudyConfig` into independent
   *profile jobs*, one per (algorithm, size) pair that is neither fully
   present in the result store nor ledger-cached;
2. fan the profile jobs out across a ``ProcessPoolExecutor`` (chunked
   scheduling window, per-job timeout, bounded retry with exponential
   backoff, graceful degradation to serial execution when the pool
   itself fails);
3. reprice every missing cap in the parent process and stream each
   completed :class:`~repro.core.runner.RunPoint` into a
   :class:`~repro.core.store.ResultStore`, so a killed or extended
   sweep resumes from exactly the points already on disk.

Both the serial and the parallel path build profiles from the op-count
ledger through :func:`~repro.core.profiles.profile_from_ledger`, so the
engine's points are bitwise identical to the serial
:class:`~repro.core.runner.StudyRunner`'s regardless of worker count,
completion order, or how many times the sweep was interrupted.

Two robustness layers guard the pipeline:

* every completed point passes the invariant gate
  (:mod:`repro.core.validate`) before it reaches the store — violating
  points are quarantined to the store's sidecar with reasons, counted
  in :class:`EngineStats`, and excluded from the result instead of
  aborting the sweep;
* a ``faults`` plan (:mod:`repro.faults`) injects deterministic worker
  crashes, hangs, and sensor corruption, exercising the retry/timeout/
  fallback/quarantine paths for real (``repro chaos``).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

from ..machine.simulator import Processor
from ..machine.spec import MachineSpec
from ..obs.manifest import build_manifest, manifest_path_for, write_manifest
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.samples import SampleWriter, samples_path_for
from ..obs.trace import NULL_SPAN, Tracer
from .atomicio import atomic_write_json
from .backoff import retry_backoff
from .profiles import (
    ProfileCache,
    merge_shard_ledgers,
    profile_from_ledger,
    run_algorithm_ledger,
    run_algorithm_ledger_shard,
    supports_sharding,
)
from .runner import DEFAULT_VIZ_CYCLES, StudyResult, make_run_point
from .store import ResultStore, sweep_fingerprint
from .study import StudyConfig
from .validate import PointValidator

__all__ = [
    "ProfileJob",
    "ShardTask",
    "EngineStats",
    "SweepError",
    "SweepInterrupted",
    "SweepEngine",
    "execute_profile_job",
    "execute_shard_task",
]


class SweepError(RuntimeError):
    """A profile job failed after exhausting its retry budget."""


class SweepInterrupted(RuntimeError):
    """A cooperative stop (:meth:`SweepEngine.request_stop`) took effect.

    Raised at the next job boundary after another thread asks the sweep
    to stop — the supervised service's cancel/shutdown path.  Handled
    exactly like ``KeyboardInterrupt``: the store is fsynced first, so
    re-running with the same store resumes from every persisted point.
    """


@dataclass(frozen=True)
class ProfileJob:
    """One real algorithm execution: the unit of parallel work."""

    algorithm: str
    size: int
    dataset_kind: str
    seed: int


def execute_profile_job(job: ProfileJob) -> dict[str, float]:
    """Worker-process body: run the algorithm, return its op ledger.

    Module-level so it pickles into pool workers; returns the ledger
    (a small dict of floats) rather than the profile to keep IPC cheap.
    """
    return run_algorithm_ledger(
        job.algorithm, job.size, dataset_kind=job.dataset_kind, seed=job.seed
    )


@dataclass(frozen=True)
class ShardTask:
    """One k-span of a large profile job: the unit of sharded pool work.

    Profile jobs at or above ``SweepEngine.shard_min_size`` for
    shard-capable algorithms are split into ``n_shards`` of these — each
    worker runs :meth:`~repro.viz.base.Filter.apply_shard` over its span
    and returns a partial ledger; the parent merges the spans in
    ascending shard order, reproducing the serial ledger bitwise.
    """

    algorithm: str
    size: int
    dataset_kind: str
    seed: int
    shard: int
    n_shards: int


def execute_shard_task(task: ShardTask) -> dict[str, float]:
    """Worker-process body for one shard: partial ledger of its k-span."""
    return run_algorithm_ledger_shard(
        task.algorithm,
        task.size,
        task.shard,
        task.n_shards,
        dataset_kind=task.dataset_kind,
        seed=task.seed,
    )


@dataclass
class EngineStats:
    """What one :meth:`SweepEngine.run` actually did."""

    profile_jobs_run: int = 0
    profile_jobs_cached: int = 0
    shard_tasks_run: int = 0
    groups_skipped: int = 0
    points_computed: int = 0
    points_resumed: int = 0
    points_quarantined: int = 0
    retries: int = 0
    faults_injected: int = 0
    fell_back_serial: bool = False
    interrupted: bool = False
    wall_s: float = 0.0

    @property
    def throughput_pts_s(self) -> float:
        done = self.points_computed + self.points_resumed
        return done / self.wall_s if self.wall_s > 0 else 0.0


class _PoolFailure(Exception):
    """Infrastructure (not job) failure: degrade to serial execution."""


class SweepEngine:
    """Decompose, parallelize, and persist a study sweep.

    Parameters
    ----------
    spec:
        Machine to simulate (default: the study's Broadwell socket).
    workers:
        Process-pool width for profile jobs.  ``None`` auto-sizes to the
        CPU count; ``0`` or ``1`` executes serially in-process.
    timeout_s:
        Per-profile-job wall-clock budget in pool mode (None = no limit).
    max_retries:
        Extra attempts per failed profile job before the sweep aborts.
    backoff_s:
        Base of the retry backoff.  Delays follow
        :func:`~repro.core.backoff.retry_backoff`: exponential in the
        attempt, capped at ``backoff_cap_s``, scattered by a seeded
        jitter so synchronized retry storms cannot form.
    backoff_cap_s:
        Upper bound on a single retry delay (default 5 s).
    chunk_size:
        Scheduling window: at most this many jobs are in flight at once
        (default ``2 * workers``), bounding queue memory for huge grids.
    shard_min_size:
        Grid size at or above which a pool-mode profile job for a
        shard-capable algorithm is split into :class:`ShardTask`s
        (default 256 — the Table 3 scale, where one execution would
        otherwise serialize the sweep's tail).  Sharding preserves the
        ledger bitwise; classification is GIL-bound NumPy, so process
        shards scale where the threaded backend cannot.
    job_shards:
        Shards per split job (default: the pool width).  Clamped to the
        grid's k-plane count.
    store:
        :class:`ResultStore` or path for streamed, resumable results
        (None = in-memory only).
    profile_cache:
        Shared :class:`ProfileCache` of op ledgers (None = private,
        in-memory only).
    profile_fn:
        Override for the profile-job body — used to inject faults in
        tests; must be picklable to run in pool mode.
    faults:
        Optional :class:`repro.faults.FaultPlan` (duck-typed: anything
        with ``wrap_job``/``corrupt_point``).  Wraps every job attempt
        with the plan's engine-layer faults and passes completed points
        through its sensor-corruption site — chaos testing against the
        real retry and quarantine machinery.
    validate:
        Gate every computed point through the invariant checks of
        :class:`~repro.core.validate.PointValidator` before it reaches
        the store; violators are quarantined, not fatal (default on).
    progress:
        Callable receiving event dicts (``kind`` ∈ ``profile-done``,
        ``group-skipped``, ``serial-fallback``, ``point-quarantined``,
        ``interrupted``, ``summary``).
    trace:
        :class:`~repro.obs.trace.Tracer` or a path for a JSONL trace of
        the run: a ``sweep`` root span, ``profile-job`` spans per real
        execution, ``price-group`` spans per repriced group, and events
        for retries/faults/quarantines.  While a traced run is in
        flight the tracer is installed as the process default, so
        in-process kernel executions contribute their own spans.
    samples:
        ``True`` persists a ≥10 Hz power/frequency sample stream per
        completed point to ``<store>.samples.jsonl`` (requires a
        store); a path writes there instead.  Streams are synthesized
        from the closed-form run via
        :meth:`~repro.machine.simulator.RunResult.sample_stream`, so
        each stream's time-weighted mean power equals the point's
        ``power_w`` exactly.
    sample_interval_s:
        Sampler granularity (default 0.1 s — the paper's 100 ms).
    metrics:
        :class:`~repro.obs.metrics.MetricsRegistry` to publish run
        counters into (default: the process-wide registry).  With a
        store attached, the registry is also dumped to
        ``<store>.metrics.json`` after every run.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        *,
        dataset_kind: str = "blobs",
        n_cycles: int = DEFAULT_VIZ_CYCLES,
        seed: int = 7,
        workers: int | None = None,
        timeout_s: float | None = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 5.0,
        chunk_size: int | None = None,
        shard_min_size: int = 256,
        job_shards: int | None = None,
        store: ResultStore | str | os.PathLike | None = None,
        profile_cache: ProfileCache | None = None,
        profile_fn=None,
        faults=None,
        validate: bool = True,
        progress=None,
        trace: Tracer | str | os.PathLike | None = None,
        samples: bool | str | os.PathLike | None = None,
        sample_interval_s: float = 0.1,
        metrics: MetricsRegistry | None = None,
    ):
        if n_cycles < 1:
            raise ValueError("n_cycles must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.processor = Processor(spec) if spec is not None else Processor()
        self.spec = self.processor.spec
        self.dataset_kind = dataset_kind
        self.n_cycles = int(n_cycles)
        self.seed = seed
        self.workers = os.cpu_count() or 1 if workers is None else max(0, int(workers))
        self.timeout_s = timeout_s
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        if backoff_cap_s <= 0:
            raise ValueError("backoff_cap_s must be positive")
        self.backoff_cap_s = float(backoff_cap_s)
        self.chunk_size = chunk_size
        if shard_min_size < 1:
            raise ValueError("shard_min_size must be positive")
        self.shard_min_size = int(shard_min_size)
        if job_shards is not None and int(job_shards) < 1:
            raise ValueError("job_shards must be positive")
        self.job_shards = None if job_shards is None else int(job_shards)
        self.store = ResultStore(store) if store is not None and not isinstance(store, ResultStore) else store
        self.profile_cache = profile_cache if profile_cache is not None else ProfileCache(None)
        self._profile_fn = profile_fn or execute_profile_job
        self.faults = faults
        self.validator = PointValidator(self.spec) if validate else None
        self._progress = progress
        self.tracer = trace if isinstance(trace, Tracer) or trace is None else Tracer(trace)
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.sample_interval_s = float(sample_interval_s)
        if samples is True:
            if self.store is None:
                raise ValueError("samples=True needs a store to sit alongside")
            samples = samples_path_for(self.store.path)
        self.sample_writer = (
            SampleWriter(samples) if samples not in (None, False) else None
        )
        self.metrics = metrics if metrics is not None else get_registry()
        self.stats = EngineStats()
        self._stop = threading.Event()

    # ---------------------------------------------------------- interruption
    def request_stop(self) -> None:
        """Ask a running sweep to stop at the next job boundary.

        Thread-safe: the supervised service calls this from its control
        thread to cancel or drain a study.  The sweep raises
        :class:`SweepInterrupted` after fsyncing the store, so every
        completed point survives and a later run resumes exactly there.
        """
        self._stop.set()

    def _check_stop(self) -> None:
        if self._stop.is_set():
            raise SweepInterrupted("stop requested")

    # ----------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Digest of everything that determines a point's value besides
        its (algorithm, size, cap) coordinates."""
        return sweep_fingerprint(
            {
                "store_version": ResultStore.VERSION,
                "spec": asdict(self.spec),
                "dataset_kind": self.dataset_kind,
                "seed": self.seed,
                "n_cycles": self.n_cycles,
            }
        )

    def _emit(self, kind: str, **fields) -> None:
        if self._progress is not None:
            self._progress({"kind": kind, **fields})

    # ----------------------------------------------------------- telemetry
    def _span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs) if self.tracer is not None else NULL_SPAN

    def _event(self, name: str, **attrs) -> None:
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    def _write_manifest(self, config: StudyConfig, fingerprint: str) -> None:
        manifest = build_manifest(
            spec=asdict(self.spec),
            config={
                "name": config.name,
                "algorithms": list(config.algorithms),
                "sizes": list(config.sizes),
                "caps_w": list(config.caps_w),
            },
            seed=self.seed,
            n_cycles=self.n_cycles,
            dataset_kind=self.dataset_kind,
            fingerprint=fingerprint,
            fault_plan=getattr(self.faults, "name", None),
            extra={"workers": self.workers, "store": str(self.store.path)},
        )
        write_manifest(manifest_path_for(self.store.path), manifest)

    def _publish_metrics(self, rapl_before: tuple[int, int]) -> None:
        reg, s = self.metrics, self.stats
        if reg is None:
            return
        reg.counter(
            "repro_profile_jobs_total", "profile jobs by source", source="executed"
        ).inc(s.profile_jobs_run)
        reg.counter(
            "repro_profile_jobs_total", "profile jobs by source", source="ledger-cache"
        ).inc(s.profile_jobs_cached)
        # Shard tasks are sub-units of "executed" jobs (a merged group
        # counts once under executed); the sharded label exposes the
        # fan-out width a sweep actually achieved.
        reg.counter(
            "repro_profile_jobs_total", "profile jobs by source", source="sharded"
        ).inc(s.shard_tasks_run)
        for outcome, n in (
            ("computed", s.points_computed),
            ("resumed", s.points_resumed),
            ("quarantined", s.points_quarantined),
        ):
            reg.counter("repro_points_total", "run points by outcome", outcome=outcome).inc(n)
        reg.counter("repro_retries_total", "profile-job retry attempts").inc(s.retries)
        reg.counter("repro_faults_injected_total", "faults injected by the active plan").inc(
            s.faults_injected
        )
        rapl = self.processor.rapl
        reg.counter("repro_rapl_decisions_total", "RAPL operating-point decisions").inc(
            rapl.decisions - rapl_before[0]
        )
        reg.counter(
            "repro_rapl_throttle_decisions_total",
            "RAPL decisions that fell back to duty-cycle throttling",
        ).inc(rapl.throttle_decisions - rapl_before[1])
        reg.gauge("repro_sweep_wall_seconds", "wall time of the last sweep run").set(s.wall_s)
        if self.store is not None:
            atomic_write_json(
                self.store.path.with_suffix(".metrics.json"), reg.to_json(), indent=1
            )

    # ----------------------------------------------------------- profiles
    def profile_for(self, algorithm: str, size: int):
        """Cycle-scaled profile via the ledger cache (executes on a miss)."""
        ledger = self.profile_cache.get(algorithm, size)
        if ledger is None:
            ledger = run_algorithm_ledger(
                algorithm, size, dataset_kind=self.dataset_kind, seed=self.seed
            )
            self.profile_cache.put(algorithm, size, ledger)
            self.stats.profile_jobs_run += 1
        return profile_from_ledger(algorithm, size, ledger, n_cycles=self.n_cycles)

    # ---------------------------------------------------------------- sweep
    def run(self, config: StudyConfig, *, resume: bool = True) -> StudyResult:
        """Execute a phase grid, skipping points already in the store.

        With ``resume=False`` an existing store is wiped and rebound to
        this sweep's fingerprint instead of being resumed.  A traced run
        installs its tracer as the process default for its duration, so
        in-process kernel executions emit their spans into the same file.
        """
        default_ctx = self.tracer.as_default() if self.tracer is not None else nullcontext()
        with default_ctx, self._span("sweep", config=config.name, resume=resume):
            return self._run(config, resume=resume)

    def _run(self, config: StudyConfig, *, resume: bool) -> StudyResult:
        t0 = time.perf_counter()
        self.stats = EngineStats()
        rapl_before = (self.processor.rapl.decisions, self.processor.rapl.throttle_decisions)
        done: dict[tuple[str, int, float], object] = {}
        if self.store is not None:
            fp = self.fingerprint()
            meta = {"config_name": config.name, "spec": self.spec.name, "n_cycles": self.n_cycles}
            if resume:
                self.store.ensure_compatible(fp, meta)
                done = self.store.points
            else:
                self.store.reset(fp, meta)
            self._write_manifest(config, fp)

        caps = tuple(config.caps_w)
        default_cap = config.default_cap_w
        groups = [(a, s) for a in config.algorithms for s in config.sizes]
        results: dict[tuple[str, int, float], object] = {}
        todo: list[tuple[str, int]] = []
        for alg, size in groups:
            missing = [c for c in caps if (alg, size, c) not in done]
            present = [c for c in caps if (alg, size, c) in done]
            for c in present:
                results[(alg, size, c)] = done[(alg, size, c)]
            self.stats.points_resumed += len(present)
            if missing:
                todo.append((alg, size))
            else:
                self.stats.groups_skipped += 1
                self._emit("group-skipped", algorithm=alg, size=size)

        def price_group(alg: str, size: int) -> None:
            """Reprice every missing cap of a group, gate each point
            through the invariant checks, and stream survivors to the
            store (violators go to the quarantine sidecar)."""
            with self._span("price-group", algorithm=alg, size=size):
                self._price_group(alg, size, caps, default_cap, results)

        # Ledger-cached groups are priced immediately; the rest become
        # profile jobs, each group priced the moment its job completes —
        # an interrupted sweep keeps every finished group's points.
        try:
            jobs: list[ProfileJob] = []
            for alg, size in todo:
                self._check_stop()
                if self.profile_cache.get(alg, size) is None:
                    jobs.append(ProfileJob(alg, size, self.dataset_kind, self.seed))
                else:
                    self.stats.profile_jobs_cached += 1
                    price_group(alg, size)
            self._execute_jobs(jobs, on_done=price_group)
        except (KeyboardInterrupt, SweepInterrupted):
            # Graceful interrupt: everything priced so far is already on
            # disk (appends fsync per point); force full durability and
            # hand control back so `--resume` picks up exactly here.
            self.stats.interrupted = True
            self.stats.wall_s = time.perf_counter() - t0
            if self.store is not None:
                self.store.sync()
            if self.sample_writer is not None:
                self.sample_writer.flush()
            points_saved = len(self.store) if self.store is not None else len(results)
            self._event("interrupted", points_saved=points_saved)
            self._emit(
                "interrupted",
                points_saved=points_saved,
                computed=self.stats.points_computed,
            )
            self._publish_metrics(rapl_before)
            raise

        # Quarantined cells are absent by design: the result carries the
        # surviving points only.
        ordered = [
            results[(a, s, c)]
            for a in config.algorithms
            for s in config.sizes
            for c in caps
            if (a, s, c) in results
        ]
        self.stats.wall_s = time.perf_counter() - t0
        if self.sample_writer is not None:
            self.sample_writer.flush()
        self._publish_metrics(rapl_before)
        self._emit(
            "summary",
            config=config.name,
            points=len(ordered),
            computed=self.stats.points_computed,
            resumed=self.stats.points_resumed,
            quarantined=self.stats.points_quarantined,
            jobs_run=self.stats.profile_jobs_run,
            jobs_cached=self.stats.profile_jobs_cached,
            retries=self.stats.retries,
            faults_injected=self.stats.faults_injected,
            wall_s=self.stats.wall_s,
            throughput_pts_s=self.stats.throughput_pts_s,
        )
        return StudyResult(config_name=config.name, points=ordered)

    # ---------------------------------------------------------- repricing
    def _price_group(
        self,
        alg: str,
        size: int,
        caps: tuple[float, ...],
        default_cap: float,
        results: dict,
    ) -> None:
        profile = profile_from_ledger(
            alg, size, self.profile_cache.get(alg, size), n_cycles=self.n_cycles
        )
        base = self.processor.run(profile, default_cap)
        fresh: list = []  # (cap, point, run) — cap keyed off the grid, not the
        # (possibly fault-corrupted) point, so sample streams always come
        # from the simulator's ground-truth run.
        for cap in caps:
            if (alg, size, cap) in results:
                continue
            run = base if cap == default_cap else self.processor.run(profile, cap)
            point = make_run_point(alg, size, cap, run, base, default_cap)
            if self.faults is not None:
                point = self.faults.corrupt_point(point)
            fresh.append((cap, point, run))

        bad: dict = {}
        if self.validator is not None and fresh:
            resumed = [results[(alg, size, c)] for c in caps if (alg, size, c) in results]
            bad = self.validator.check_group(resumed + [p for _, p, _ in fresh])
        for cap, point, run in fresh:
            reasons = bad.get(point.key)
            if reasons:
                # A violating point never reaches the main store: it
                # lands in the sidecar with machine-readable reasons
                # and the sweep keeps going.
                self.stats.points_quarantined += 1
                if self.store is not None:
                    self.store.quarantine(point, reasons)
                self._event(
                    "point-quarantined",
                    algorithm=alg,
                    size=size,
                    cap_w=point.cap_w,
                    reasons=[r.code for r in reasons],
                )
                self._emit(
                    "point-quarantined",
                    algorithm=alg,
                    size=size,
                    cap_w=point.cap_w,
                    reasons=[r.code for r in reasons],
                )
                continue
            results[point.key] = point
            self.stats.points_computed += 1
            if self.store is not None:
                self.store.append(point)
            if self.sample_writer is not None:
                self.sample_writer.write_stream(
                    algorithm=alg,
                    size=size,
                    cap_w=cap,
                    samples=run.sample_stream(self.sample_interval_s),
                )

    # ------------------------------------------------------- job execution
    def _shards_for(self, job: ProfileJob) -> int:
        """Pool-mode shard fan-out for one profile job (1 = don't split).

        Only the default job body shards: an injected ``profile_fn`` —
        the fault-testing hook — must see whole jobs.  Eligible jobs are
        shard-capable algorithms at ``shard_min_size`` or larger, split
        ``job_shards`` ways (default: the pool width), never wider than
        the grid has k-planes.
        """
        if self._profile_fn is not execute_profile_job:
            return 1
        if job.size < self.shard_min_size or not supports_sharding(job.algorithm):
            return 1
        n = self.job_shards if self.job_shards is not None else self.workers
        return max(1, min(int(n), int(job.size)))

    def _execute_jobs(self, jobs: list[ProfileJob], on_done=None) -> None:
        if not jobs:
            return
        remaining = jobs
        # A single large shardable job still benefits from the pool —
        # its spans run in parallel worker processes.
        if self.workers > 1 and (
            len(jobs) > 1 or any(self._shards_for(j) > 1 for j in jobs)
        ):
            try:
                self._run_pool(jobs, on_done)
                return
            except _PoolFailure as exc:
                self.stats.fell_back_serial = True
                self._event("serial-fallback", reason=str(exc.__cause__ or exc))
                self._emit("serial-fallback", reason=str(exc.__cause__ or exc))
                remaining = [
                    j for j in jobs if self.profile_cache.get(j.algorithm, j.size) is None
                ]
        self._run_serial(remaining, on_done)

    def _record(
        self, job: ProfileJob, ledger: dict[str, float], done: int, total: int, dt: float, on_done
    ) -> None:
        self.profile_cache.put(job.algorithm, job.size, ledger)
        self.stats.profile_jobs_run += 1
        self._emit(
            "profile-done",
            algorithm=job.algorithm,
            size=job.size,
            completed=done,
            total=total,
            elapsed_s=dt,
        )
        if on_done is not None:
            on_done(job.algorithm, job.size)

    def _job_body(self, job, attempt: int):
        """The callable actually executed for one job attempt —
        the profile fn (or the shard body for a :class:`ShardTask`),
        wrapped with the fault plan when one is set."""
        fn = execute_shard_task if isinstance(job, ShardTask) else self._profile_fn
        if self.faults is None:
            return fn
        return self.faults.wrap_job(fn, attempt)

    def _run_serial(self, jobs: list[ProfileJob], on_done=None) -> None:
        total = len(jobs)
        for i, job in enumerate(jobs, start=1):
            self._check_stop()
            t0 = time.perf_counter()
            attempt = 0
            while True:
                try:
                    with self._span(
                        "profile-job",
                        algorithm=job.algorithm,
                        size=job.size,
                        attempt=attempt,
                        mode="serial",
                    ):
                        ledger = self._job_body(job, attempt)(job)
                    break
                except Exception as exc:
                    if getattr(exc, "injected", False):
                        self.stats.faults_injected += 1
                        self._event(
                            "fault-injected",
                            algorithm=job.algorithm,
                            size=job.size,
                            error=repr(exc),
                        )
                    attempt += 1
                    if attempt > self.max_retries:
                        raise SweepError(
                            f"profile job {job.algorithm}@{job.size} failed "
                            f"after {attempt} attempts: {exc}"
                        ) from exc
                    self.stats.retries += 1
                    self._event(
                        "retry",
                        algorithm=job.algorithm,
                        size=job.size,
                        attempt=attempt,
                        error=repr(exc),
                    )
                    time.sleep(self._backoff(job, attempt))
            self._record(job, ledger, i, total, time.perf_counter() - t0, on_done)

    def _backoff(self, job: ProfileJob, attempt: int) -> float:
        return retry_backoff(
            attempt,
            base_s=self.backoff_s,
            cap_s=self.backoff_cap_s,
            seed=self.seed,
            key=f"{job.algorithm}@{job.size}",
        )

    def _run_pool(self, jobs: list[ProfileJob], on_done=None) -> None:
        window = self.chunk_size or max(2 * self.workers, 4)
        # Large shardable jobs fan out into one ShardTask per k-span;
        # their partial ledgers accumulate in shard_groups until every
        # span has reported, then merge (ascending shard order) into the
        # group's job ledger.  Everything else stays a whole ProfileJob.
        pending: deque = deque()
        shard_groups: dict[tuple[str, int], dict] = {}
        for job in jobs:
            n = self._shards_for(job)
            if n <= 1:
                pending.append(job)
                continue
            shard_groups[(job.algorithm, job.size)] = {
                "job": job,
                "n_shards": n,
                "parts": {},
                "t0": time.perf_counter(),
            }
            pending.extend(
                ShardTask(job.algorithm, job.size, job.dataset_kind, job.seed, shard, n)
                for shard in range(n)
            )
        attempts: dict = {}
        total = len(jobs)
        in_flight: dict = {}
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                try:
                    self._pool_loop(
                        pool, pending, attempts, in_flight, window, total, shard_groups, on_done
                    )
                except (KeyboardInterrupt, SweepInterrupted):
                    # Graceful interrupt: stop feeding the pool, cancel
                    # whatever has not started, and get out fast — the
                    # caller fsyncs the store and re-raises.
                    for fut in in_flight:
                        fut.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        except _PoolFailure:
            raise
        except (BrokenExecutor, OSError) as exc:
            raise _PoolFailure("process pool unavailable") from exc

    def _absorb_shard(self, task: ShardTask, ledger, dt, shard_groups):
        """Fold one shard's partial ledger into its group.

        Returns ``None`` while the group is incomplete; once every span
        has reported, returns ``(job, merged_ledger, group_elapsed_s)``
        for the normal job-completion path.  Shards merge in ascending
        span order, so the group ledger equals the serial one bitwise.
        """
        self.stats.shard_tasks_run += 1
        if self.tracer is not None:
            self.tracer.record_span(
                "profile-shard",
                dt,
                algorithm=task.algorithm,
                size=task.size,
                shard=task.shard,
                n_shards=task.n_shards,
                mode="pool",
            )
        group = shard_groups[(task.algorithm, task.size)]
        group["parts"][task.shard] = ledger
        if len(group["parts"]) < group["n_shards"]:
            return None
        merged = merge_shard_ledgers(
            group["parts"][i] for i in range(group["n_shards"])
        )
        return group["job"], merged, time.perf_counter() - group["t0"]

    def _pool_loop(
        self, pool, pending, attempts, in_flight, window, total, shard_groups, on_done
    ) -> None:
        completed = 0
        while pending or in_flight:
            self._check_stop()
            while pending and len(in_flight) < window:
                job = pending.popleft()
                fut = pool.submit(self._job_body(job, attempts.get(job, 0)), job)
                deadline = (
                    time.monotonic() + self.timeout_s if self.timeout_s else None
                )
                in_flight[fut] = (job, time.perf_counter(), deadline)
            tick = None
            if self.timeout_s:
                deadlines = [d for (_, _, d) in in_flight.values() if d]
                if deadlines:
                    tick = max(0.0, min(deadlines) - time.monotonic()) + 0.01
            finished, _ = wait(set(in_flight), timeout=tick, return_when=FIRST_COMPLETED)
            now = time.monotonic()
            if not finished:
                for fut in [
                    f for f, (_, _, d) in in_flight.items() if d and now >= d
                ]:
                    job, _, _ = in_flight.pop(fut)
                    fut.cancel()
                    self._retry_or_raise(
                        job, TimeoutError(f"exceeded {self.timeout_s}s"), attempts, pending
                    )
                continue
            for fut in finished:
                job, t0, _ = in_flight.pop(fut)
                try:
                    ledger = fut.result()
                except BrokenExecutor as exc:
                    raise _PoolFailure("process pool broke") from exc
                except Exception as exc:
                    # Serialization failures (PicklingError, or the
                    # AttributeError/TypeError CPython raises for
                    # local objects) mean the pool can never run
                    # this work — degrade rather than retry.
                    if isinstance(exc, pickle.PicklingError) or (
                        isinstance(exc, (AttributeError, TypeError))
                        and "pickle" in str(exc).lower()
                    ):
                        raise _PoolFailure("job not picklable") from exc
                    self._retry_or_raise(job, exc, attempts, pending)
                else:
                    dt = time.perf_counter() - t0
                    if isinstance(job, ShardTask):
                        group_done = self._absorb_shard(job, ledger, dt, shard_groups)
                        if group_done is None:
                            continue
                        job, ledger, dt = group_done
                    completed += 1
                    if self.tracer is not None:
                        # The job ran in a worker process (its kernel
                        # spans are invisible here); record its span
                        # from the parent-side wall time.
                        self.tracer.record_span(
                            "profile-job",
                            dt,
                            algorithm=job.algorithm,
                            size=job.size,
                            mode="pool",
                        )
                    self._record(job, ledger, completed, total, dt, on_done)

    def _retry_or_raise(self, job, exc, attempts, pending) -> None:
        if getattr(exc, "injected", False):
            self.stats.faults_injected += 1
            self._event(
                "fault-injected", algorithm=job.algorithm, size=job.size, error=repr(exc)
            )
        attempts[job] = attempts.get(job, 0) + 1
        if attempts[job] > self.max_retries:
            shard = (
                f" shard {job.shard}/{job.n_shards}" if isinstance(job, ShardTask) else ""
            )
            raise SweepError(
                f"profile job {job.algorithm}@{job.size}{shard} failed "
                f"after {attempts[job]} attempts: {exc}"
            ) from exc
        self.stats.retries += 1
        self._event(
            "retry",
            algorithm=job.algorithm,
            size=job.size,
            attempt=attempts[job],
            error=repr(exc),
        )
        time.sleep(self._backoff(job, attempts[job]))
        pending.append(job)
