"""Kernel benchmark trajectory: per-kernel timings persisted across PRs.

The extraction kernels are the cost center of every sweep (288 Phase 3
configurations reduce to 32 real extractions, each sweeping up to 16.7M
cells), so their wall-clock performance is a regression surface in its
own right.  This module records per-kernel timings into a small JSON
document — ``BENCH_kernels.json`` by default — so every PR leaves a
trajectory point the next one can regress against:

* :func:`time_kernel` — min-of-``repeats`` timing of a callable (min is
  the standard noise-robust estimator for micro-benchmarks).
* :class:`BenchTracker` — load/record/save the trajectory document,
  written atomically via :mod:`repro.core.atomicio` so an interrupted
  benchmark run never corrupts the history.

Entries are keyed ``kernel/size``; recording the same key again
overwrites the measurement but preserves ``baseline_s`` (the pre-
optimization reference time) unless a new baseline is given, and keeps
``speedup_vs_baseline`` up to date.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from ..obs.metrics import get_registry
from .atomicio import atomic_write_json

__all__ = ["BenchTracker", "time_kernel", "DEFAULT_BENCH_PATH"]

BENCH_FORMAT = "repro-bench-kernels"
BENCH_VERSION = 1

#: Repo-root trajectory file (CI uploads it as an artifact per PR).
DEFAULT_BENCH_PATH = Path("BENCH_kernels.json")


def time_kernel(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 1
) -> dict[str, float]:
    """Time ``fn`` and return ``{"best_s", "mean_s", "repeats"}``.

    ``warmup`` un-timed calls come first so one-time costs (index cache
    population, allocator warm-up) don't pollute the measurement.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        fn()
    runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    return {
        "best_s": min(runs),
        "mean_s": sum(runs) / len(runs),
        "repeats": float(repeats),
    }


class BenchTracker:
    """The ``BENCH_kernels.json`` document: load, record, save atomically."""

    def __init__(self, path: str | Path = DEFAULT_BENCH_PATH):
        self.path = Path(path)
        self.entries: dict[str, dict[str, Any]] = {}
        if self.path.exists():
            doc = json.loads(self.path.read_text())
            if doc.get("format") != BENCH_FORMAT:
                raise ValueError(
                    f"{self.path} is not a kernel benchmark file "
                    f"(format={doc.get('format')!r})"
                )
            if int(doc.get("version", 1)) > BENCH_VERSION:
                raise ValueError(
                    f"{self.path} has version {doc['version']}, newer than "
                    f"supported {BENCH_VERSION}"
                )
            self.entries = {k: dict(v) for k, v in doc.get("entries", {}).items()}

    @staticmethod
    def key(kernel: str, size: int) -> str:
        return f"{kernel}/{int(size)}"

    def record(
        self,
        kernel: str,
        size: int,
        seconds: float,
        *,
        baseline_s: float | None = None,
        **meta: Any,
    ) -> dict[str, Any]:
        """Record a timing; returns the stored entry.

        ``baseline_s`` pins the reference time the speedup is computed
        against.  Omitted, any previously recorded baseline is kept, so
        re-running the suite updates the measurement while preserving
        the pre-optimization anchor.
        """
        key = self.key(kernel, size)
        prev = self.entries.get(key, {})
        if baseline_s is None:
            baseline_s = prev.get("baseline_s")
        # Mirror into the process metrics registry so a benchmark run
        # shows up in `repro metrics` output alongside sweep counters.
        get_registry().histogram(
            "repro_bench_kernel_seconds",
            help="Recorded kernel benchmark wall time",
            kernel=kernel,
            size=str(int(size)),
        ).observe(float(seconds))
        entry: dict[str, Any] = {
            "kernel": kernel,
            "size": int(size),
            "seconds": float(seconds),
            "recorded_unix": time.time(),
        }
        if baseline_s is not None:
            entry["baseline_s"] = float(baseline_s)
            if seconds > 0:
                entry["speedup_vs_baseline"] = float(baseline_s) / float(seconds)
        entry.update(meta)
        self.entries[key] = entry
        return entry

    def get(self, kernel: str, size: int) -> dict[str, Any] | None:
        entry = self.entries.get(self.key(kernel, size))
        return dict(entry) if entry is not None else None

    def save(self) -> None:
        doc = {"format": BENCH_FORMAT, "version": BENCH_VERSION, "entries": self.entries}
        atomic_write_json(self.path, doc, indent=1)

    def __len__(self) -> int:
        return len(self.entries)
