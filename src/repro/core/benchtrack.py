"""Kernel benchmark trajectory: per-kernel timings persisted across PRs.

The extraction kernels are the cost center of every sweep (288 Phase 3
configurations reduce to 32 real extractions, each sweeping up to 16.7M
cells), so their wall-clock performance is a regression surface in its
own right.  This module records per-kernel timings into a small JSON
document — ``BENCH_kernels.json`` by default — so every PR leaves a
trajectory point the next one can regress against:

* :func:`time_kernel` — min-of-``repeats`` timing of a callable (min is
  the standard noise-robust estimator for micro-benchmarks).
* :class:`BenchTracker` — load/record/save the trajectory document,
  written atomically via :mod:`repro.core.atomicio` so an interrupted
  benchmark run never corrupts the history.

Entries are keyed ``kernel/size``; recording the same key again
overwrites the measurement but preserves ``baseline_s`` (the pre-
optimization reference time) unless a new baseline is given, and keeps
``speedup_vs_baseline`` up to date.  A key recorded without any
baseline anchors to the best available reference — the previous
measurement if one exists, else itself — so every entry carries a
``baseline_s`` and the trajectory has no un-regressable gaps.

:data:`SPEEDUP_FLOORS` pins the acceptance floors (kernel, size) →
minimum speedup vs that baseline; :func:`trend_rows` /
:func:`format_trend` / :func:`check_floors` turn the document into the
``repro bench --trend`` table and the CI regression gate.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from ..obs.metrics import get_registry
from .atomicio import atomic_write_json

__all__ = [
    "BenchTracker",
    "time_kernel",
    "DEFAULT_BENCH_PATH",
    "SPEEDUP_FLOORS",
    "trend_rows",
    "format_trend",
    "check_floors",
]

BENCH_FORMAT = "repro-bench-kernels"
BENCH_VERSION = 1

#: Repo-root trajectory file (CI uploads it as an artifact per PR).
DEFAULT_BENCH_PATH = Path("BENCH_kernels.json")

#: Acceptance floors: minimum speedup vs the recorded pre-optimization
#: baseline per (kernel, size).  The 128³ entries are PR 3's tiling/
#: culling floors; the 256³ entries are the Table 3 scale floors from
#: the tiled + counts-only kernel rework.  Only enforced where the size
#: was measured with a baseline present.
SPEEDUP_FLOORS: dict[tuple[str, int], float] = {
    ("contour", 128): 3.0,
    ("clip", 128): 2.0,
    ("isovolume", 128): 2.0,
    ("contour", 256): 2.0,
    ("clip", 256): 2.0,
    ("isovolume", 256): 2.0,
}


def time_kernel(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 1
) -> dict[str, float]:
    """Time ``fn`` and return ``{"best_s", "mean_s", "repeats"}``.

    ``warmup`` un-timed calls come first so one-time costs (index cache
    population, allocator warm-up) don't pollute the measurement.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        fn()
    runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    return {
        "best_s": min(runs),
        "mean_s": sum(runs) / len(runs),
        "repeats": float(repeats),
    }


class BenchTracker:
    """The ``BENCH_kernels.json`` document: load, record, save atomically."""

    def __init__(self, path: str | Path = DEFAULT_BENCH_PATH):
        self.path = Path(path)
        self.entries: dict[str, dict[str, Any]] = {}
        if self.path.exists():
            doc = json.loads(self.path.read_text())
            if doc.get("format") != BENCH_FORMAT:
                raise ValueError(
                    f"{self.path} is not a kernel benchmark file "
                    f"(format={doc.get('format')!r})"
                )
            if int(doc.get("version", 1)) > BENCH_VERSION:
                raise ValueError(
                    f"{self.path} has version {doc['version']}, newer than "
                    f"supported {BENCH_VERSION}"
                )
            self.entries = {k: dict(v) for k, v in doc.get("entries", {}).items()}

    @staticmethod
    def key(kernel: str, size: int) -> str:
        return f"{kernel}/{int(size)}"

    def record(
        self,
        kernel: str,
        size: int,
        seconds: float,
        *,
        baseline_s: float | None = None,
        **meta: Any,
    ) -> dict[str, Any]:
        """Record a timing; returns the stored entry.

        ``baseline_s`` pins the reference time the speedup is computed
        against.  Omitted, any previously recorded baseline is kept, so
        re-running the suite updates the measurement while preserving
        the pre-optimization anchor.  A key with no baseline anywhere
        backfills one — the previous measurement when the key was
        recorded before, else this measurement itself — so every entry
        carries a reference the next PR can regress against.
        """
        key = self.key(kernel, size)
        prev = self.entries.get(key, {})
        if baseline_s is None:
            baseline_s = prev.get("baseline_s")
        if baseline_s is None:
            baseline_s = prev.get("seconds")
        if baseline_s is None:
            baseline_s = float(seconds)
        # Mirror into the process metrics registry so a benchmark run
        # shows up in `repro metrics` output alongside sweep counters.
        get_registry().histogram(
            "repro_bench_kernel_seconds",
            help="Recorded kernel benchmark wall time",
            kernel=kernel,
            size=str(int(size)),
        ).observe(float(seconds))
        entry: dict[str, Any] = {
            "kernel": kernel,
            "size": int(size),
            "seconds": float(seconds),
            "recorded_unix": time.time(),
        }
        if baseline_s is not None:
            entry["baseline_s"] = float(baseline_s)
            if seconds > 0:
                entry["speedup_vs_baseline"] = float(baseline_s) / float(seconds)
        entry.update(meta)
        self.entries[key] = entry
        return entry

    def get(self, kernel: str, size: int) -> dict[str, Any] | None:
        entry = self.entries.get(self.key(kernel, size))
        return dict(entry) if entry is not None else None

    def save(self) -> None:
        doc = {"format": BENCH_FORMAT, "version": BENCH_VERSION, "entries": self.entries}
        atomic_write_json(self.path, doc, indent=1)

    def __len__(self) -> int:
        return len(self.entries)


# ----------------------------------------------------------------- trajectory
def trend_rows(tracker: BenchTracker) -> list[dict[str, Any]]:
    """Flatten the trajectory into kernel × size rows, floors attached.

    Rows are ordered kernel-then-size; ``ok`` is False only where a
    floor exists and the measured speedup (baseline present) sits below
    it — un-floored or baseline-less rows never fail.
    """
    rows = []
    for entry in sorted(
        tracker.entries.values(), key=lambda e: (e["kernel"], int(e["size"]))
    ):
        kernel, size = entry["kernel"], int(entry["size"])
        speedup = entry.get("speedup_vs_baseline")
        floor = SPEEDUP_FLOORS.get((kernel, size))
        rows.append(
            {
                "kernel": kernel,
                "size": size,
                "seconds": float(entry["seconds"]),
                "baseline_s": entry.get("baseline_s"),
                "speedup": speedup,
                "floor": floor,
                "ok": floor is None or speedup is None or speedup >= floor,
            }
        )
    return rows


def format_trend(rows: list[dict[str, Any]]) -> str:
    """Render trend rows as the ``repro bench --trend`` table."""
    lines = [
        f"{'kernel':>10s} {'size':>6s} {'seconds':>9s} {'baseline':>9s} "
        f"{'speedup':>8s} {'floor':>6s}"
    ]
    for r in rows:
        base = f"{r['baseline_s']:.3f}s" if r["baseline_s"] is not None else "-"
        speed = f"{r['speedup']:.2f}x" if r["speedup"] is not None else "-"
        floor = f"{r['floor']:.1f}x" if r["floor"] is not None else "-"
        flag = "" if r["ok"] else "  << BELOW FLOOR"
        lines.append(
            f"{r['kernel']:>10s} {r['size']:>4d}^3 {r['seconds']:>8.3f}s "
            f"{base:>9s} {speed:>8s} {floor:>6s}{flag}"
        )
    return "\n".join(lines)


def check_floors(tracker: BenchTracker) -> list[str]:
    """Failure messages for every measured kernel below its speedup floor."""
    failures = []
    for r in trend_rows(tracker):
        if r["ok"]:
            continue
        failures.append(
            f"{r['kernel']}@{r['size']}^3: {r['speedup']:.2f}x < {r['floor']}x floor "
            f"({r['seconds']:.3f}s vs baseline {r['baseline_s']:.3f}s)"
        )
    return failures
