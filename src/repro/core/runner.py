"""Study runner: execute configurations and collect measurements.

The runner does what the study's harness did, with the substitutions of
DESIGN.md §2: for each (algorithm, size) it runs the *real* algorithm
once against the dataset to obtain its work profile — the profile is
frequency-independent, so the 9 power caps are then evaluated on the
simulated socket without re-running the algorithm (exactly the physics:
capping changes the machine, not the work).

Profiles are cached per (algorithm, size) so Phase 3's 288
configurations require only 32 real algorithm executions.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..data.fields import DataSet
from ..data.generators import make_dataset
from ..machine.simulator import Processor, RunResult
from ..machine.spec import MachineSpec
from ..viz import ALGORITHMS
from ..workload import WorkProfile
from .atomicio import atomic_write_text
from .metrics import Ratios
from .study import StudyConfig

__all__ = ["RunPoint", "StudyResult", "StudyRunner", "make_run_point", "DEFAULT_VIZ_CYCLES"]

#: Format tag + version of the StudyResult JSON-lines serialization.
RESULT_FORMAT = "repro-study-result"
RESULT_VERSION = 1

#: Visualization cycles per run: the study couples CloverLeaf's ~87-step
#: benchmark with per-cycle visualization; total times in its tables
#: aggregate "all visualization cycles".
DEFAULT_VIZ_CYCLES = 87


@dataclass(frozen=True)
class RunPoint:
    """One configuration's measurements (a cell of Tables I–III)."""

    algorithm: str
    size: int
    cap_w: float
    time_s: float
    energy_j: float
    power_w: float
    freq_ghz: float
    ipc: float
    llc_miss_rate: float
    ratios: Ratios

    @property
    def pratio(self) -> float:
        return self.ratios.pratio

    @property
    def tratio(self) -> float:
        return self.ratios.tratio

    @property
    def fratio(self) -> float:
        return self.ratios.fratio

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-dict form; floats round-trip bitwise through JSON."""
        return {
            "algorithm": self.algorithm,
            "size": self.size,
            "cap_w": self.cap_w,
            "time_s": self.time_s,
            "energy_j": self.energy_j,
            "power_w": self.power_w,
            "freq_ghz": self.freq_ghz,
            "ipc": self.ipc,
            "llc_miss_rate": self.llc_miss_rate,
            "ratios": self.ratios.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunPoint":
        return cls(
            algorithm=str(d["algorithm"]),
            size=int(d["size"]),
            cap_w=float(d["cap_w"]),
            time_s=float(d["time_s"]),
            energy_j=float(d["energy_j"]),
            power_w=float(d["power_w"]),
            freq_ghz=float(d["freq_ghz"]),
            ipc=float(d["ipc"]),
            llc_miss_rate=float(d["llc_miss_rate"]),
            ratios=Ratios.from_dict(d["ratios"]),
        )

    def to_jsonl(self) -> str:
        """One JSON line (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_jsonl(cls, line: str) -> "RunPoint":
        return cls.from_dict(json.loads(line))

    @property
    def key(self) -> tuple[str, int, float]:
        """The configuration cell this point measures."""
        return (self.algorithm, self.size, self.cap_w)


@dataclass
class StudyResult:
    """All RunPoints of a sweep, with selection helpers."""

    config_name: str
    points: list[RunPoint] = field(default_factory=list)

    def select(
        self, *, algorithm: str | None = None, size: int | None = None, cap_w: float | None = None
    ) -> list[RunPoint]:
        out = self.points
        if algorithm is not None:
            out = [p for p in out if p.algorithm == algorithm]
        if size is not None:
            out = [p for p in out if p.size == size]
        if cap_w is not None:
            # Caps are floats and travel through CSV/JSONL: exact ==
            # silently drops fractional caps (62.5 W) that picked up a
            # last-ulp wobble on a round-trip, so match with a tolerance
            # far below any physically distinct cap spacing.
            out = [
                p for p in out if math.isclose(p.cap_w, cap_w, rel_tol=1e-9, abs_tol=1e-6)
            ]
        return out

    def filter(
        self, *, algorithm: str | None = None, size: int | None = None, cap_w: float | None = None
    ) -> list[RunPoint]:
        """Alias of :meth:`select` (float-tolerant on ``cap_w``)."""
        return self.select(algorithm=algorithm, size=size, cap_w=cap_w)

    def baseline(self, algorithm: str, size: int) -> RunPoint:
        """The default-power (highest-cap) point for an algorithm/size."""
        rows = self.select(algorithm=algorithm, size=size)
        if not rows:
            raise KeyError(f"no points for {algorithm} at {size}^3")
        return max(rows, key=lambda p: p.cap_w)

    @property
    def algorithms(self) -> list[str]:
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.algorithm, None)
        return list(seen)

    @property
    def sizes(self) -> list[int]:
        return sorted({p.size for p in self.points})

    @property
    def caps(self) -> list[float]:
        return sorted({p.cap_w for p in self.points}, reverse=True)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "format": RESULT_FORMAT,
            "version": RESULT_VERSION,
            "config_name": self.config_name,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StudyResult":
        if d.get("format", RESULT_FORMAT) != RESULT_FORMAT:
            raise ValueError(f"not a study result: format={d.get('format')!r}")
        version = int(d.get("version", 1))
        if version > RESULT_VERSION:
            raise ValueError(f"study result version {version} is newer than supported {RESULT_VERSION}")
        return cls(
            config_name=str(d["config_name"]),
            points=[RunPoint.from_dict(p) for p in d["points"]],
        )

    def to_jsonl(self, path: str | Path | None = None) -> str:
        """JSON-lines form: a header line, then one line per point.

        When ``path`` is given the text is also written there.
        """
        header = {
            "format": RESULT_FORMAT,
            "version": RESULT_VERSION,
            "config_name": self.config_name,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(p.to_jsonl() for p in self.points)
        text = "\n".join(lines) + "\n"
        if path is not None:
            atomic_write_text(Path(path), text)
        return text

    @classmethod
    def from_jsonl(cls, source: str | Path) -> "StudyResult":
        """Parse :meth:`to_jsonl` output (a path or the text itself).

        A string is treated as inline JSONL text when it starts with
        ``{`` (every serialized result opens with its JSON header line),
        otherwise as a filesystem path.  This keeps a header-only result
        — a single line with no ``\\n`` — parseable as text instead of
        raising ``FileNotFoundError``.
        """
        if isinstance(source, Path):
            text = source.read_text()
        elif source.lstrip().startswith("{") or "\n" in source:
            text = source
        else:
            text = Path(source).read_text()
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValueError("empty study result")
        header = json.loads(lines[0])
        if header.get("format") != RESULT_FORMAT:
            raise ValueError(f"not a study result: format={header.get('format')!r}")
        if int(header.get("version", 1)) > RESULT_VERSION:
            raise ValueError(f"study result version {header['version']} is newer than supported {RESULT_VERSION}")
        return cls(
            config_name=str(header["config_name"]),
            points=[RunPoint.from_jsonl(ln) for ln in lines[1:]],
        )


def make_run_point(
    algorithm: str,
    size: int,
    cap: float,
    run: RunResult,
    base: RunResult,
    default_cap: float,
) -> RunPoint:
    """Assemble one table cell from a capped run and its TDP baseline.

    Shared by the serial :class:`StudyRunner` and the parallel
    :class:`~repro.core.engine.SweepEngine` so both produce bitwise
    identical points from the same ``RunResult`` pair.
    """
    ratios = Ratios.from_measurements(
        cap_default_w=default_cap,
        cap_w=cap,
        time_default_s=base.time_s,
        time_s=run.time_s,
        freq_default_ghz=base.effective_freq_ghz,
        freq_ghz=run.effective_freq_ghz,
    )
    return RunPoint(
        algorithm=algorithm,
        size=size,
        cap_w=cap,
        time_s=run.time_s,
        energy_j=run.energy_j,
        power_w=run.avg_power_w,
        freq_ghz=run.effective_freq_ghz,
        ipc=run.ipc,
        llc_miss_rate=run.llc_miss_rate,
        ratios=ratios,
    )


class StudyRunner:
    """Runs study configurations against the simulated socket.

    Parameters
    ----------
    spec:
        Machine to simulate (default: the study's Broadwell socket).
    dataset_kind:
        Field generator for the input data (``blobs`` approximates the
        CloverLeaf energy field's multi-lobed shape; pass ``cloverleaf``
        datasets directly via :meth:`set_dataset` when exact coupling
        matters).
    n_cycles:
        Visualization cycles aggregated per measurement (the study
        reports totals over all cycles).
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        *,
        dataset_kind: str = "blobs",
        n_cycles: int = DEFAULT_VIZ_CYCLES,
        seed: int = 7,
    ):
        if n_cycles < 1:
            raise ValueError("n_cycles must be positive")
        self.processor = Processor(spec) if spec is not None else Processor()
        self.dataset_kind = dataset_kind
        self.n_cycles = int(n_cycles)
        self.seed = seed
        self._datasets: dict[int, DataSet] = {}
        self._profiles: dict[tuple[str, int], WorkProfile] = {}

    # ------------------------------------------------------------- datasets
    def set_dataset(self, size: int, dataset: DataSet) -> None:
        """Provide an explicit dataset (e.g. a CloverLeaf state) for a size."""
        self._datasets[size] = dataset
        # Invalidate cached profiles built from the old dataset.
        self._profiles = {k: v for k, v in self._profiles.items() if k[1] != size}

    def dataset_for(self, size: int) -> DataSet:
        if size not in self._datasets:
            self._datasets[size] = make_dataset(size, kind=self.dataset_kind, seed=self.seed)
        return self._datasets[size]

    # -------------------------------------------------------------- profiles
    def profile_for(self, algorithm: str, size: int) -> WorkProfile:
        """Real-execution work profile, scaled to ``n_cycles`` cycles."""
        key = (algorithm, size)
        if key not in self._profiles:
            if algorithm not in ALGORITHMS:
                raise KeyError(f"unknown algorithm {algorithm!r}")
            ds = self.dataset_for(size)
            result = ALGORITHMS[algorithm]().execute(ds)
            profile = WorkProfile(
                name=f"{algorithm}@{size}",
                n_elements=result.profile.n_elements,
                metadata=dict(result.profile.metadata, n_cycles=self.n_cycles),
            )
            profile.segments = [s.scaled(self.n_cycles) for s in result.profile.segments]
            self._profiles[key] = profile
        return self._profiles[key]

    # ----------------------------------------------------------------- sweep
    def run_config(self, config: StudyConfig) -> StudyResult:
        """Execute a phase's full factor grid."""
        result = StudyResult(config_name=config.name)
        default_cap = config.default_cap_w
        for algorithm in config.algorithms:
            for size in config.sizes:
                profile = self.profile_for(algorithm, size)
                base = self.processor.run(profile, default_cap)
                for cap in config.caps_w:
                    run = base if cap == default_cap else self.processor.run(profile, cap)
                    result.points.append(self._point(algorithm, size, cap, run, base, default_cap))
        return result

    def _point(
        self,
        algorithm: str,
        size: int,
        cap: float,
        run: RunResult,
        base: RunResult,
        default_cap: float,
    ) -> RunPoint:
        return make_run_point(algorithm, size, cap, run, base, default_cap)
