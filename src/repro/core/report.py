"""Report rendering: reproduce the paper's tables and figure series.

Text renderers emit the same rows the paper prints (Pratio/Tratio/
Fratio grids with the first-10 %-slowdown cells marked ``*`` where the
paper uses red), and figure helpers return the exact series behind
Figs. 2–6 so benchmarks and tests can assert their shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .metrics import SLOWDOWN_THRESHOLD, first_slowdown_cap
from .runner import RunPoint, StudyResult

__all__ = [
    "render_table1",
    "render_slowdown_table",
    "figure2_series",
    "figure3_series",
    "ipc_by_size_series",
    "FigureSeries",
]


def _caps_desc(points: list[RunPoint]) -> list[float]:
    return sorted({p.cap_w for p in points}, reverse=True)


def _is_red(cap_w: float, red: float | None) -> bool:
    """Is this cap the first ≥10 %-slowdown cap?  Tolerant matching:
    caps are floats that may have round-tripped through CSV/JSON, so a
    fractional cap (62.5 W) must still earn its ``*``."""
    return red is not None and math.isclose(cap_w, red, rel_tol=1e-9, abs_tol=1e-6)


def render_table1(result: StudyResult, *, algorithm: str = "contour", size: int = 128) -> str:
    """Table I: the Phase-1 contour sweep (P, T, F and their ratios)."""
    pts = sorted(result.select(algorithm=algorithm, size=size), key=lambda p: -p.cap_w)
    if not pts:
        raise KeyError(f"no data for {algorithm} at {size}^3")
    red = first_slowdown_cap([(p.cap_w, p.tratio) for p in pts])
    lines = [
        f"Table I — {algorithm} @ {size}^3 (slowdown under processor power caps)",
        f"{'P':>6} {'Pratio':>7} {'T':>10} {'Tratio':>7} {'F':>9} {'Fratio':>7}",
    ]
    for p in pts:
        mark = "*" if _is_red(p.cap_w, red) else " "
        lines.append(
            f"{p.cap_w:>5.0f}W {p.pratio:>6.1f}X {p.time_s:>9.3f}s "
            f"{p.tratio:>6.2f}X{mark} {p.freq_ghz:>6.2f}GHz {p.fratio:>6.2f}X"
        )
    lines.append("(* first cap with a >=10% slowdown)")
    return "\n".join(lines)


def render_slowdown_table(result: StudyResult, *, size: int) -> str:
    """Tables II/III: Tratio and Fratio for every algorithm at one size."""
    pts = result.select(size=size)
    if not pts:
        raise KeyError(f"no data at {size}^3")
    caps = _caps_desc(pts)
    header = f"{'':14s}" + "".join(f"{c:>8.0f}W" for c in caps)
    pr = f"{'Pratio':>14s}" + "".join(f"{max(caps) / c:>8.1f}X" for c in caps)
    lines = [f"Table — slowdown factors @ {size}^3", header, pr]
    for alg in result.algorithms:
        rows = {p.cap_w: p for p in result.select(algorithm=alg, size=size)}
        if not rows:
            continue
        red = first_slowdown_cap([(c, p.tratio) for c, p in rows.items()])
        t_line = f"{alg:>8s} {'Tratio':>5s}"
        f_line = f"{'':>8s} {'Fratio':>5s}"
        for c in caps:
            p = rows[c]
            mark = "*" if _is_red(c, red) else " "
            t_line += f"{p.tratio:>7.2f}X{mark}"[:9].rjust(9)
            f_line += f"{p.fratio:>8.2f}X"
        lines.append(t_line)
        lines.append(f_line)
    lines.append("(* first cap with a >=10% slowdown)")
    return "\n".join(lines)


@dataclass(frozen=True)
class FigureSeries:
    """One plotted line: an algorithm's metric across caps (or sizes)."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]


def figure2_series(
    result: StudyResult, *, size: int = 128
) -> dict[str, dict[str, FigureSeries]]:
    """Fig. 2 data: effective frequency (a), IPC (b), LLC miss rate (c)
    versus power cap for every algorithm at one size.

    Returns ``{"frequency"|"ipc"|"llc_miss_rate": {algorithm: series}}``
    with caps ascending on x, as plotted.
    """
    out: dict[str, dict[str, FigureSeries]] = {"frequency": {}, "ipc": {}, "llc_miss_rate": {}}
    for alg in result.algorithms:
        pts = sorted(result.select(algorithm=alg, size=size), key=lambda p: p.cap_w)
        if not pts:
            continue
        caps = tuple(p.cap_w for p in pts)
        out["frequency"][alg] = FigureSeries(alg, caps, tuple(p.freq_ghz for p in pts))
        out["ipc"][alg] = FigureSeries(alg, caps, tuple(p.ipc for p in pts))
        out["llc_miss_rate"][alg] = FigureSeries(
            alg, caps, tuple(p.llc_miss_rate for p in pts)
        )
    return out


def figure3_series(
    result: StudyResult,
    *,
    size: int = 128,
    algorithms: tuple[str, ...] = ("contour", "isovolume", "slice", "clip", "threshold"),
) -> dict[str, FigureSeries]:
    """Fig. 3 data: elements processed per second for the cell-centered
    algorithms versus power cap."""
    out: dict[str, FigureSeries] = {}
    for alg in algorithms:
        pts = sorted(result.select(algorithm=alg, size=size), key=lambda p: p.cap_w)
        if not pts:
            continue
        caps = tuple(p.cap_w for p in pts)
        rate = tuple(size**3 / p.time_s for p in pts)
        out[alg] = FigureSeries(alg, caps, rate)
    return out


def ipc_by_size_series(result: StudyResult, *, algorithm: str) -> dict[int, FigureSeries]:
    """Figs. 4–6 data: one algorithm's IPC-vs-cap line per dataset size."""
    out: dict[int, FigureSeries] = {}
    for size in result.sizes:
        pts = sorted(result.select(algorithm=algorithm, size=size), key=lambda p: p.cap_w)
        if not pts:
            continue
        out[size] = FigureSeries(
            f"{algorithm}@{size}",
            tuple(p.cap_w for p in pts),
            tuple(p.ipc for p in pts),
        )
    return out
