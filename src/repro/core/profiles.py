"""Profile ledgers: record once, re-price forever.

The expensive half of every sweep is executing the real algorithm; the
cheap half is pricing its work profile on the simulated socket.  The
bridge between them is the *op-count ledger* — the
:class:`~repro.viz.base.OpCounts` dictionary a filter fills while it
runs.  A ledger is tiny, JSON-serializable, and (together with the grid
geometry) reproduces the work profile bitwise via
:meth:`~repro.viz.base.Filter.profile_from_counts`.

This module owns that bridge for the whole repo:

* :func:`run_algorithm_ledger` — execute the real algorithm, return its
  ledger (the sweep engine's worker-process job body).
* :func:`run_algorithm_ledger_shard` — execute one k-span shard of a
  shardable algorithm (``Filter.apply_shard``), returning the span's
  partial ledger; :func:`merge_shard_ledgers` sums the spans back into
  the serial ledger (bitwise, because every entry is an integer-valued
  float).  Together they are the engine's process-sharded job body.
* :func:`profile_from_ledger` — ledger → cycle-scaled
  :class:`~repro.workload.WorkProfile`, the single pricing path used by
  the engine, the harness, and the facade.
* :class:`ProfileCache` — the versioned JSON cache of ledgers shared by
  the harness and the engine, with one-time migration of the legacy
  pickle ``counts.pkl`` format.
"""

from __future__ import annotations

import json
import pickle
import threading
from pathlib import Path

from ..data.fields import DataSet
from ..data.generators import make_dataset
from ..data.grid import UniformGrid
from ..obs.trace import log_event
from ..viz import ALGORITHMS
from ..viz.base import OpCounts
from ..workload import WorkProfile
from .atomicio import atomic_write_json

__all__ = [
    "ProfileCache",
    "merge_shard_ledgers",
    "profile_from_ledger",
    "run_algorithm_ledger",
    "run_algorithm_ledger_shard",
    "supports_sharding",
]


def run_algorithm_ledger(
    algorithm: str,
    size: int,
    *,
    dataset_kind: str = "blobs",
    seed: int = 7,
) -> dict[str, float]:
    """Execute the real algorithm once and return its op-count ledger."""
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    ds = make_dataset(size, kind=dataset_kind, seed=seed)
    result = ALGORITHMS[algorithm]().execute(ds)
    return result.counts.as_dict()


def supports_sharding(algorithm: str) -> bool:
    """Whether the registry configuration of ``algorithm`` can shard."""
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    return ALGORITHMS[algorithm]().supports_sharding


def run_algorithm_ledger_shard(
    algorithm: str,
    size: int,
    shard: int,
    n_shards: int,
    *,
    dataset_kind: str = "blobs",
    seed: int = 7,
) -> dict[str, float]:
    """Execute one k-span shard; return that span's partial ledger.

    The shard covers cell planes ``shard_spans(nz, n_shards)[shard]``
    via :meth:`~repro.viz.base.Filter.apply_shard` — ledger only, no
    geometry — so independent worker processes can each run one span of
    a large grid and :func:`merge_shard_ledgers` reassembles the exact
    serial ledger.
    """
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    ds = make_dataset(size, kind=dataset_kind, seed=seed)
    counts = OpCounts()
    ALGORITHMS[algorithm]().apply_shard(ds, counts, shard, n_shards)
    return counts.as_dict()


def merge_shard_ledgers(parts) -> dict[str, float]:
    """Sum partial shard ledgers (ascending shard order) into one ledger.

    Every ledger entry is an integer-valued float far below 2^53, so the
    keyed addition reproduces the serial single-pass ledger bitwise.
    """
    merged = OpCounts()
    for part in parts:
        for key, value in part.items():
            merged.add(key, value)
    return merged.as_dict()


def profile_from_ledger(
    algorithm: str,
    size: int,
    ledger: dict[str, float],
    *,
    n_cycles: int = 1,
) -> WorkProfile:
    """Rebuild the cycle-scaled work profile from a recorded ledger.

    The filters derive segments from the ledger plus grid geometry only
    (never field values), so the reconstruction is bitwise identical to
    the profile of the original execution.
    """
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    ds = DataSet(UniformGrid.cube(size))
    counts = OpCounts()
    counts.counts.update(ledger)
    prof = ALGORITHMS[algorithm]().profile_from_counts(ds, counts)
    scaled = WorkProfile(
        name=f"{algorithm}@{size}",
        n_elements=prof.n_elements,
        metadata=dict(prof.metadata, n_cycles=n_cycles),
    )
    scaled.segments = [s.scaled(n_cycles) for s in prof.segments]
    return scaled


class ProfileCache:
    """Persistent (algorithm, size) → ledger cache, versioned JSON on disk.

    ``path=None`` keeps the cache in memory only.  A ``.pkl`` path (the
    legacy pickle format) is transparently redirected to its ``.json``
    sibling; an existing pickle cache is migrated once on first load and
    left on disk untouched.
    """

    FORMAT = "repro-profile-cache"
    VERSION = 1

    def __init__(self, path: str | Path | None = None):
        # Shared between the sweep engine's control loop and chaos-drill
        # threads, so every _entries access goes through this lock.
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, float]] = {}
        self.path: Path | None = None
        if path is None:
            return
        p = Path(path)
        legacy = p if p.suffix == ".pkl" else p.with_suffix(".pkl")
        if p.suffix == ".pkl":
            p = p.with_suffix(".json")
        self.path = p
        if p.exists():
            self._load_json(p)
        elif legacy.exists():
            self._migrate_pickle(legacy)

    @staticmethod
    def _key(algorithm: str, size: int) -> str:
        return f"{algorithm}/{int(size)}"

    def _load_json(self, p: Path) -> None:
        try:
            doc = json.loads(p.read_text())
        except json.JSONDecodeError as exc:
            # A torn write (crash mid-flush on a pre-atomicio cache, or a
            # tool truncating the file) must not brick the harness — the
            # cache only memoizes re-runnable work.  Same contract as the
            # legacy-pickle path: warn, move the damage aside so it is
            # inspectable instead of silently re-discarded every startup,
            # and start empty.
            corrupt = p.with_name(p.name + ".corrupt")
            log_event(
                "profile-cache-corrupt",
                f"profile cache {p} is truncated or corrupt ({exc!r}); "
                f"renaming to {corrupt.name} and starting with an empty cache",
                path=str(p),
                renamed_to=str(corrupt),
            )
            try:
                p.replace(corrupt)
            except OSError:
                pass  # read-only cache dir: the warning above still fired
            return
        if doc.get("format") != self.FORMAT:
            raise ValueError(f"{p} is not a profile cache (format={doc.get('format')!r})")
        if int(doc.get("version", 1)) > self.VERSION:
            raise ValueError(
                f"{p} has cache version {doc['version']}, newer than supported {self.VERSION}"
            )
        with self._lock:
            self._entries = {k: dict(v) for k, v in doc["entries"].items()}

    def _migrate_pickle(self, legacy: Path) -> None:
        try:
            raw = pickle.loads(legacy.read_bytes())
            entries = {
                self._key(alg, size): {k: float(v) for k, v in counts.items()}
                for (alg, size), counts in raw.items()
            }
        except Exception as exc:
            # A torn or foreign legacy file must not brick the harness —
            # it is only a cache, so start empty and re-record.  But say
            # so, and move the unreadable file aside: left in place it
            # would be re-parsed (and silently re-discarded) on every
            # startup, hiding the corruption forever.
            corrupt = legacy.with_name(legacy.name + ".corrupt")
            log_event(
                "profile-cache-corrupt",
                f"legacy profile cache {legacy} is unreadable ({exc!r}); "
                f"renaming to {corrupt.name} and starting with an empty cache",
                path=str(legacy),
                renamed_to=str(corrupt),
            )
            try:
                legacy.replace(corrupt)
            except OSError:
                pass  # read-only cache dir: the warning above still fired
            return
        with self._lock:
            self._entries = entries
        self._save()

    def _save(self) -> None:
        if self.path is None:
            return
        # Snapshot under the lock, write outside it: holding _lock across
        # flush+fsync would stall every reader behind disk latency.
        with self._lock:
            entries = {k: dict(v) for k, v in self._entries.items()}
        doc = {"format": self.FORMAT, "version": self.VERSION, "entries": entries}
        # Temp-file + os.replace (+ fsync): a crashed or concurrent sweep
        # worker can never leave a truncated profiles.json — readers see
        # the old complete document or the new one, nothing in between
        # (the same crash-safety contract the ResultStore makes).
        atomic_write_json(self.path, doc)

    # ------------------------------------------------------------------ access
    def get(self, algorithm: str, size: int) -> dict[str, float] | None:
        with self._lock:
            entry = self._entries.get(self._key(algorithm, size))
            return dict(entry) if entry is not None else None

    def put(self, algorithm: str, size: int, ledger: dict[str, float]) -> None:
        with self._lock:
            self._entries[self._key(algorithm, size)] = dict(ledger)
        self._save()

    def entries(self):
        """Iterate ``(algorithm, size, ledger)`` over every cached entry.

        The interop point for :meth:`repro.core.pricing.LedgerCache.\
ingest_profile_cache`: a sweep's ledgers can seed the advise service
        without re-running a single algorithm.
        """
        with self._lock:
            snapshot = list(self._entries.items())
        for key, ledger in snapshot:
            algorithm, _, size = key.rpartition("/")
            yield algorithm, int(size), dict(ledger)

    def __contains__(self, key: tuple[str, int]) -> bool:
        with self._lock:
            return self._key(*key) in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
