"""The study's metrics (paper §V).

* :class:`Ratios` — P/T/F ratios against the TDP baseline, with the
  paper's orientation (``Pratio = P_default / P_reduced``, ``Tratio =
  T_reduced / T_default``, ``Fratio = F_default / F_reduced`` — all ≥ 1
  in the expected direction).
* :func:`element_rate` — the Moreland–Oldfield efficiency rate
  ``n / T(n, p)`` used instead of speedup (paper §V-C).
* :func:`first_slowdown_cap` — the highest cap at which the 10 %
  slowdown first appears as power decreases (the red cells of
  Tables I–III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Ratios", "element_rate", "energy_delay_product", "first_slowdown_cap", "SLOWDOWN_THRESHOLD"]

#: The paper's significance threshold: a 10 % slowdown.
SLOWDOWN_THRESHOLD = 0.10


@dataclass(frozen=True)
class Ratios:
    """P/T/F ratios of a capped run against the default-power run."""

    pratio: float  # P_default / P_capped        (>= 1 as cap tightens)
    tratio: float  # T_capped  / T_default       (>= 1 when slowed)
    fratio: float  # F_default / F_capped        (>= 1 when throttled)

    @classmethod
    def from_measurements(
        cls,
        *,
        cap_default_w: float,
        cap_w: float,
        time_default_s: float,
        time_s: float,
        freq_default_ghz: float,
        freq_ghz: float,
    ) -> "Ratios":
        measurements = {
            "cap_default_w": cap_default_w,
            "cap_w": cap_w,
            "time_default_s": time_default_s,
            "time_s": time_s,
            "freq_default_ghz": freq_default_ghz,
            "freq_ghz": freq_ghz,
        }
        # NaN slips past a <= 0 comparison, so check finiteness first.
        bad = [k for k, v in measurements.items() if not math.isfinite(v)]
        if bad:
            raise ValueError(f"measurements must be finite, got non-finite {', '.join(bad)}")
        if min(cap_w, time_default_s, freq_ghz) <= 0:
            raise ValueError("measurements must be positive")
        return cls(
            pratio=cap_default_w / cap_w,
            tratio=time_s / time_default_s,
            fratio=freq_default_ghz / freq_ghz,
        )

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form for JSON serialization."""
        return {"pratio": self.pratio, "tratio": self.tratio, "fratio": self.fratio}

    @classmethod
    def from_dict(cls, d: dict) -> "Ratios":
        return cls(pratio=float(d["pratio"]), tratio=float(d["tratio"]), fratio=float(d["fratio"]))

    @property
    def is_good_tradeoff(self) -> bool:
        """The paper's key comparison: data-intensive enough that the
        slowdown is smaller than the power reduction (Tratio < Pratio)."""
        return self.tratio < self.pratio

    @property
    def slowed_down(self) -> bool:
        """Whether the run crossed the 10 % slowdown threshold."""
        return self.tratio >= 1.0 + SLOWDOWN_THRESHOLD


def element_rate(n_elements: int, time_s: float) -> float:
    """Elements processed per second: the rate n / T(n, p) (§V-C).

    Only meaningful for algorithms that iterate over every cell
    (contour, clip, isovolume, threshold, slice) — Fig. 3's subset.
    """
    if time_s <= 0:
        raise ValueError("time must be positive")
    return n_elements / time_s


def first_slowdown_cap(
    rows: list[tuple[float, float]], *, threshold: float = SLOWDOWN_THRESHOLD
) -> float | None:
    """Highest cap whose Tratio crosses ``1 + threshold``.

    ``rows`` is ``[(cap_watts, tratio), ...]`` in any order.  Returns
    None when no cap produces a significant slowdown.  This is "the
    first time a 10 % slowdown occurs due to the power cap" marked red
    in the paper's tables: scanning from the deepest cap upward, the
    paper highlights the *highest* cap in the contiguous slowed region.
    """
    slowed = [cap for cap, tratio in rows if tratio >= 1.0 + threshold]
    return max(slowed) if slowed else None


def energy_delay_product(energy_j: float, time_s: float, *, weight: int = 1) -> float:
    """Energy-delay product ``E * T^w`` (w=1 EDP, w=2 ED²P).

    The follow-on question to the paper's tables: a deep cap that costs
    a little time but saves a lot of power *improves* EDP for the
    power-opportunity class — the quantity a facility optimizing
    science-per-joule actually minimizes.
    """
    if energy_j < 0 or time_s < 0:
        raise ValueError("energy and time must be non-negative")
    if weight < 1:
        raise ValueError("weight must be at least 1")
    return energy_j * time_s**weight
