"""Content-addressed ledger cache and vectorized batch repricing.

The expensive half of answering "what does algorithm X at size S cost
under cap C?" is executing the real algorithm; everything after the
op-count ledger is closed-form.  This module makes the cheap half
*actually cheap* and the expensive half *happen once*:

* :class:`LedgerCache` — a content-addressed store of op-count ledgers
  keyed by ``(algorithm, size, dataset fingerprint, machine spec hash)``.
  The key is a SHA-256 digest of the canonical-JSON coordinate tuple, so
  a ledger recorded under one machine/dataset can never be silently
  repriced under another — changing the spec *is* cache invalidation.
  Persistence goes through :mod:`repro.core.atomicio` (temp + fsync +
  ``os.replace``), the same crash-safety contract the result store makes.

* :class:`BatchRepricer` — reprices whole cap grids in one numpy pass,
  **bitwise identical** to :meth:`repro.machine.simulator.Processor.run`
  followed by :func:`repro.core.runner.make_run_point`.  The trick: the
  per-(segment, frequency-bin) power/time tables are precomputed with
  the *scalar* production code (``PowerModel.power``,
  ``SegmentEval.time_at``), so vectorization only covers bin selection
  and accumulation — and those mirror the controller's scan and the
  simulator's deposit arithmetic operation-for-operation (see the
  comments in :meth:`BatchRepricer._price_columns`).  Throttled cells
  (no P-state fits the cap) fall back to the real
  :class:`~repro.machine.rapl.RaplController` per cell; they are rare
  and the duty bisection is not worth vectorizing.

``docs/pricing_service.md`` documents the key scheme, the invalidation
story, and the bench methodology behind ``BENCH_advisor.json``.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Iterator

import numpy as np

from ..machine.exec_model import ExecutionModel
from ..machine.power import PowerModel
from ..machine.rapl import RaplController
from ..machine.spec import BROADWELL_E5_2695V4, MachineSpec
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import log_event
from .atomicio import atomic_write_json
from .metrics import Ratios
from .profiles import ProfileCache, profile_from_ledger
from .runner import DEFAULT_VIZ_CYCLES, RunPoint

__all__ = [
    "LEDGER_CACHE_FORMAT",
    "LEDGER_CACHE_VERSION",
    "machine_spec_hash",
    "dataset_fingerprint",
    "ledger_key",
    "LedgerCache",
    "BatchRepricer",
]

LEDGER_CACHE_FORMAT = "repro-ledger-cache"
LEDGER_CACHE_VERSION = 1


def _digest(payload: dict) -> str:
    """SHA-256 over canonical (sorted-key) JSON, truncated to 16 hex chars."""
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def machine_spec_hash(spec: MachineSpec) -> str:
    """Content hash of a machine spec — every field participates.

    Any electrical-constant recalibration, cache-size tweak, or new
    frequency bin changes the hash, so every ledger recorded under the
    old machine stops matching instead of being repriced on stale terms.
    """
    return _digest(asdict(spec))


def dataset_fingerprint(kind: str = "blobs", *, seed: int = 7) -> str:
    """Content hash of the dataset recipe the ledger was recorded against.

    Ledgers depend on the field *values* (cells intersected, rays
    traced, ...), and the generators are deterministic in (kind, seed) —
    that pair plus the size (which is part of the cache coordinates) is
    the full recipe.
    """
    return _digest({"kind": str(kind), "seed": int(seed)})


def ledger_key(algorithm: str, size: int, *, dataset: str, machine: str) -> str:
    """The content address of one ledger cache entry."""
    return _digest(
        {
            "algorithm": str(algorithm),
            "size": int(size),
            "dataset": str(dataset),
            "machine": str(machine),
        }
    )


class LedgerCache:
    """Content-addressed (algorithm, size, dataset, machine) → ledger cache.

    ``path=None`` keeps the cache in memory only; otherwise the whole
    document is persisted atomically after every mutation (ledgers are
    tiny — a few dozen floats each) by a write-behind drain that never
    holds the mutation lock across the disk write, so readers are never
    stalled behind an fsync.  Hit/miss traffic is published to the
    metrics registry as ``repro_ledger_cache_requests_total``.
    """

    FORMAT = LEDGER_CACHE_FORMAT
    VERSION = LEDGER_CACHE_VERSION

    def __init__(self, path: str | Path | None = None, *, metrics: MetricsRegistry | None = None):
        self._lock = threading.Lock()
        #: key → {"algorithm", "size", "dataset", "machine", "ledger"}
        self._entries: dict[str, dict] = {}
        # Write-behind persist state (see _persist): guarded by _lock.
        self._persist_active = False
        self._persist_pending = False
        self.path = Path(path) if path is not None else None
        reg = metrics if metrics is not None else get_registry()
        self._hits = reg.counter(
            "repro_ledger_cache_requests_total", "ledger cache lookups", outcome="hit"
        )
        self._misses = reg.counter(
            "repro_ledger_cache_requests_total", "ledger cache lookups", outcome="miss"
        )
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # ------------------------------------------------------------ persistence
    def _load(self, p: Path) -> None:
        try:
            doc = json.loads(p.read_text())
        except json.JSONDecodeError as exc:
            # Torn mid-record (crash before this cache existed, external
            # truncation): the cache only memoizes re-runnable work, so
            # recover by starting empty — but move the damage aside so it
            # is inspectable, and say so through obs.  Wrong-format and
            # too-new files still raise below: those are *intact* files
            # we must not destroy.
            corrupt = p.with_name(p.name + ".corrupt")
            log_event(
                "ledger-cache-corrupt",
                f"ledger cache {p} is truncated or corrupt ({exc!r}); "
                f"renaming to {corrupt.name} and starting with an empty cache",
                path=str(p),
                renamed_to=str(corrupt),
            )
            try:
                p.replace(corrupt)
            except OSError:
                pass  # read-only cache dir: the warning above still fired
            return
        if doc.get("format") != self.FORMAT:
            raise ValueError(f"{p} is not a ledger cache (format={doc.get('format')!r})")
        if int(doc.get("version", 1)) > self.VERSION:
            raise ValueError(
                f"{p} has cache version {doc['version']}, newer than supported {self.VERSION}"
            )
        entries: dict[str, dict] = {}
        dropped = 0
        for key, entry in doc.get("entries", {}).items():
            expect = ledger_key(
                entry["algorithm"],
                int(entry["size"]),
                dataset=entry["dataset"],
                machine=entry["machine"],
            )
            if key != expect:
                # Content addressing is the integrity check: a key that
                # no longer matches its coordinates means the file was
                # hand-edited or torn — drop the entry, keep the rest.
                dropped += 1
                continue
            entries[key] = {
                "algorithm": str(entry["algorithm"]),
                "size": int(entry["size"]),
                "dataset": str(entry["dataset"]),
                "machine": str(entry["machine"]),
                "ledger": {k: float(v) for k, v in entry["ledger"].items()},
            }
        if dropped:
            log_event(
                "ledger-cache-integrity",
                f"dropped {dropped} ledger cache entr{'y' if dropped == 1 else 'ies'} "
                f"whose content address does not match its coordinates",
                path=str(p),
                dropped=dropped,
            )
        with self._lock:
            self._entries = entries

    def _persist(self) -> None:
        """Write-behind persist: snapshot under the lock, write outside it.

        Holding ``_lock`` across the atomic write (flush + fsync) would
        stall every reader behind disk latency — the blocking-under-lock
        hazard RPR011 flags.  Instead one writer at a time drains: it
        snapshots the entries under the lock, writes with no lock held,
        and loops if a mutation landed mid-write, so the file always
        converges to the latest state and writes can never interleave
        out of order.
        """
        if self.path is None:
            return
        with self._lock:
            if self._persist_active:
                self._persist_pending = True
                return
            self._persist_active = True
        while True:
            with self._lock:
                self._persist_pending = False
                entries = {
                    k: dict(e, ledger=dict(e["ledger"])) for k, e in self._entries.items()
                }
            doc = {"format": self.FORMAT, "version": self.VERSION, "entries": entries}
            atomic_write_json(self.path, doc)
            with self._lock:
                if not self._persist_pending:
                    self._persist_active = False
                    return

    # ----------------------------------------------------------------- access
    def get(
        self, algorithm: str, size: int, *, dataset: str, machine: str
    ) -> dict[str, float] | None:
        key = ledger_key(algorithm, size, dataset=dataset, machine=machine)
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        return dict(entry["ledger"])

    def put(
        self,
        algorithm: str,
        size: int,
        ledger: dict[str, float],
        *,
        dataset: str,
        machine: str,
    ) -> str:
        """Store a ledger under its content address; returns the key."""
        key = ledger_key(algorithm, size, dataset=dataset, machine=machine)
        entry = {
            "algorithm": str(algorithm),
            "size": int(size),
            "dataset": str(dataset),
            "machine": str(machine),
            "ledger": {k: float(v) for k, v in ledger.items()},
        }
        with self._lock:
            self._entries[key] = entry
        self._persist()
        return key

    def invalidate(
        self,
        *,
        algorithm: str | None = None,
        machine: str | None = None,
        dataset: str | None = None,
    ) -> int:
        """Drop entries matching the given coordinates; returns the count.

        With no arguments, clears the whole cache (and its file).
        """
        def doomed(entry: dict) -> bool:
            return (
                (algorithm is None or entry["algorithm"] == algorithm)
                and (machine is None or entry["machine"] == machine)
                and (dataset is None or entry["dataset"] == dataset)
            )

        with self._lock:
            keys = [k for k, e in self._entries.items() if doomed(e)]
            for k in keys:
                del self._entries[k]
        if keys:
            self._persist()
        return len(keys)

    def entries(self) -> Iterator[tuple[str, int, str, str, dict[str, float]]]:
        """Iterate ``(algorithm, size, dataset, machine, ledger)`` snapshots."""
        with self._lock:
            snapshot = [dict(e, ledger=dict(e["ledger"])) for e in self._entries.values()]
        for e in snapshot:
            yield (e["algorithm"], e["size"], e["dataset"], e["machine"], e["ledger"])

    def ingest_profile_cache(
        self, cache: ProfileCache, *, dataset: str, machine: str
    ) -> int:
        """Import a sweep engine's :class:`ProfileCache` wholesale.

        The engine's cache is keyed by (algorithm, size) only — the
        caller asserts which dataset recipe and machine those ledgers
        were recorded under.  Returns the number of entries added.
        """
        added = 0
        for algorithm, size, ledger in cache.entries():
            key = ledger_key(algorithm, size, dataset=dataset, machine=machine)
            with self._lock:
                known = key in self._entries
            if not known:
                self.put(algorithm, size, ledger, dataset=dataset, machine=machine)
                added += 1
        return added

    def __contains__(self, coords: tuple[str, int, str, str]) -> bool:
        algorithm, size, dataset, machine = coords
        key = ledger_key(algorithm, size, dataset=dataset, machine=machine)
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _PricingTable:
    """Per-(segment, frequency-bin) power/time tables for one profile.

    Every cell is produced by the exact scalar production functions the
    controller and simulator call, so any value read out of the table is
    bitwise the value the per-point path would have computed.
    """

    __slots__ = ("evs", "bins", "power_wb", "time_sb")

    def __init__(self, exec_model: ExecutionModel, power_model: PowerModel, profile) -> None:
        profile.validate()
        self.evs = [exec_model.evaluate(seg) for seg in profile]
        bins = exec_model.spec.freq_bins
        self.bins = np.array([float(f) for f in bins], dtype=np.float64)
        n_seg, n_bin = len(self.evs), len(self.bins)
        self.power_wb = np.empty((n_seg, n_bin), dtype=np.float64)
        self.time_sb = np.empty((n_seg, n_bin), dtype=np.float64)
        for i, ev in enumerate(self.evs):
            for j in range(n_bin):
                f = float(bins[j])
                self.power_wb[i, j] = power_model.power(ev, f)
                self.time_sb[i, j] = ev.time_at(f, duty=1.0)


class BatchRepricer:
    """Vectorized cap repricing, bitwise identical to the per-point path.

    One instance prices one machine spec; grids spanning machines use
    one repricer per spec.  Pricing tables are cached per
    ``(algorithm, size, n_cycles, ledger digest)`` with LRU eviction, so
    a warm advise service pays table construction once per key.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        *,
        n_cycles: int = DEFAULT_VIZ_CYCLES,
        max_tables: int = 256,
    ):
        self.spec = spec if spec is not None else BROADWELL_E5_2695V4
        self.n_cycles = int(n_cycles)
        if self.n_cycles < 1:
            raise ValueError("n_cycles must be positive")
        if max_tables < 1:
            raise ValueError("max_tables must be positive")
        self.max_tables = int(max_tables)
        self._exec_model = ExecutionModel(self.spec)
        self._power_model = PowerModel(self.spec)
        self._rapl = RaplController(self.spec, self._power_model)
        self._lock = threading.Lock()
        self._tables: OrderedDict[tuple, _PricingTable] = OrderedDict()

    # ------------------------------------------------------------- tables
    def table_for(
        self, algorithm: str, size: int, ledger: dict[str, float], *, n_cycles: int | None = None
    ) -> _PricingTable:
        cycles = self.n_cycles if n_cycles is None else int(n_cycles)
        key = (str(algorithm), int(size), cycles, _digest({k: ledger[k] for k in ledger}))
        with self._lock:
            table = self._tables.get(key)
            if table is not None:
                self._tables.move_to_end(key)
                return table
        profile = profile_from_ledger(algorithm, size, ledger, n_cycles=cycles)
        table = _PricingTable(self._exec_model, self._power_model, profile)
        with self._lock:
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self.max_tables:
                self._tables.popitem(last=False)
        return table

    @property
    def cached_tables(self) -> int:
        with self._lock:
            return len(self._tables)

    # ------------------------------------------------------------ repricing
    def _price_columns(self, table: _PricingTable, caps: list[float]) -> dict[str, np.ndarray]:
        """All derived measurements, one array column per requested cap.

        Bitwise identity with ``Processor.run`` rests on four facts:

        1. The controller's top-down scan returns the *highest* bin
           whose power fits the cap; ``argmax`` over the reversed fit
           mask selects exactly that bin, and the table holds the same
           scalar power/time values the scan would have computed
           (``p + 0.0`` and ``p - 0.0`` in the controller are bitwise
           identities for the positive powers the model produces).
        2. numpy float64 elementwise arithmetic is IEEE-754 double
           arithmetic — the same operations CPython floats perform —
           and every expression below keeps the simulator's exact
           association order (``f*1e9*t*duty*n`` etc.).
        3. ``RunResult`` totals are a left-to-right ``sum`` over
           segment records starting from zero; accumulating cap-columns
           with ``+`` per segment reproduces that order (never
           ``np.sum``, whose pairwise reduction would not).
        4. Cells where no P-state fits fall back to the real
           controller, per cell — the scalar path itself.
        """
        for c in caps:
            if not math.isfinite(c):
                raise ValueError(f"power cap must be finite, got {c}")
            if c <= 0:
                raise ValueError(f"power cap must be positive, got {c}")
        spec = self.spec
        cap_arr = np.array(caps, dtype=np.float64)
        # Same clamp as RaplController.validate_cap: min(max(cap, floor), tdp).
        clamped = np.minimum(np.maximum(cap_arr, spec.rapl_floor_watts), spec.tdp_watts)
        n_caps = len(caps)
        n_bin = len(table.bins)
        n = spec.n_cores
        f_base = spec.f_base

        time_tot = np.zeros(n_caps)
        energy_tot = np.zeros(n_caps)
        aperf = np.zeros(n_caps)
        ref_cycles = np.zeros(n_caps)  # mperf == clk_unhalted: identical deposits
        inst = np.zeros(n_caps)
        llc_refs = np.zeros(n_caps)
        llc_misses = np.zeros(n_caps)

        for s, ev in enumerate(table.evs):
            p_row = table.power_wb[s]
            t_row = table.time_sb[s]
            fits = p_row[:, None] <= clamped[None, :]          # (bins, caps)
            # Highest-index fitting bin == first fit of the top-down scan.
            sel = (n_bin - 1) - np.argmax(fits[::-1, :], axis=0)
            f_sel = table.bins[sel]
            p_sel = p_row[sel]
            t_sel = t_row[sel]
            duty_sel = np.ones(n_caps)
            no_fit = ~fits.any(axis=0)
            if no_fit.any():
                for c in np.flatnonzero(no_fit):
                    op = self._rapl.operating_point(ev, float(clamped[c]))
                    f_sel[c] = op.f_ghz
                    duty_sel[c] = op.duty
                    p_sel[c] = op.power_w
                    t_sel[c] = ev.time_at(op.f_ghz, duty=op.duty)
            e_sel = p_sel * t_sel
            time_tot = time_tot + t_sel
            energy_tot = energy_tot + e_sel
            aperf = aperf + f_sel * 1e9 * t_sel * duty_sel * n
            ref_cycles = ref_cycles + f_base * 1e9 * t_sel * n
            inst = inst + ev.instructions
            llc_refs = llc_refs + ev.memory.llc_refs
            llc_misses = llc_misses + ev.memory.llc_misses

        power = np.divide(
            energy_tot, time_tot, out=np.zeros(n_caps), where=time_tot > 0
        )
        freq = (
            np.divide(aperf, ref_cycles, out=np.zeros(n_caps), where=ref_cycles > 0)
            * f_base
        )
        ipc = np.divide(inst, ref_cycles, out=np.zeros(n_caps), where=ref_cycles > 0)
        miss_rate = np.divide(
            llc_misses, llc_refs, out=np.zeros(n_caps), where=llc_refs > 0
        )
        return {
            "time_s": time_tot,
            "energy_j": energy_tot,
            "power_w": power,
            "freq_ghz": freq,
            "ipc": ipc,
            "llc_miss_rate": miss_rate,
        }

    def reprice(
        self,
        algorithm: str,
        size: int,
        ledger: dict[str, float],
        caps_w,
        *,
        default_cap_w: float | None = None,
        n_cycles: int | None = None,
    ) -> list[RunPoint]:
        """Price every cap in ``caps_w`` from a recorded ledger.

        Returns :class:`RunPoint`\\ s in cap order, each bitwise equal to
        ``make_run_point(..., processor.run(profile, cap),
        processor.run(profile, default_cap), default_cap)``.  The
        default (baseline) cap defaults to ``max(caps_w)``, matching the
        sweep engine's choice of ``StudyConfig.default_cap_w``.
        """
        caps = [float(c) for c in caps_w]
        if not caps:
            raise ValueError("need at least one power cap")
        default_cap = float(default_cap_w) if default_cap_w is not None else max(caps)
        table = self.table_for(algorithm, size, ledger, n_cycles=n_cycles)
        # Price the baseline as an extra trailing column of the same pass.
        cols = self._price_columns(table, caps + [default_cap])
        time_base = float(cols["time_s"][-1])
        freq_base = float(cols["freq_ghz"][-1])
        points: list[RunPoint] = []
        for i, cap in enumerate(caps):
            ratios = Ratios.from_measurements(
                cap_default_w=default_cap,
                cap_w=cap,
                time_default_s=time_base,
                time_s=float(cols["time_s"][i]),
                freq_default_ghz=freq_base,
                freq_ghz=float(cols["freq_ghz"][i]),
            )
            points.append(
                RunPoint(
                    algorithm=str(algorithm),
                    size=int(size),
                    cap_w=cap,
                    time_s=float(cols["time_s"][i]),
                    energy_j=float(cols["energy_j"][i]),
                    power_w=float(cols["power_w"][i]),
                    freq_ghz=float(cols["freq_ghz"][i]),
                    ipc=float(cols["ipc"][i]),
                    llc_miss_rate=float(cols["llc_miss_rate"][i]),
                    ratios=ratios,
                )
            )
        return points
