"""Counter-based class prediction — the paper's §VIII future work.

"Other visualization algorithms should be classified so informed
decisions can be made regarding how to allocate power during
visualization workflows."  A runtime cannot afford a 9-cap sweep for
every new filter; but the paper's own analysis shows the classes are
visible in *one uncapped execution*: power sensitivity correlates with
natural draw and IPC, insensitivity with low draw and a high LLC
appetite.

:func:`predict_class` turns a single TDP run's counters into a class
prediction plus a calibrated confidence, and :func:`predicted_cap`
estimates the deepest safe cap without sweeping — the model a
GEOPM/PaViz plugin would embed.  The sweep-based
:mod:`repro.core.classify` remains the ground truth the tests compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.simulator import Processor, RunResult
from ..machine.spec import MachineSpec
from ..workload import WorkProfile
from .classify import PowerClass

__all__ = ["ClassPrediction", "predict_class", "predicted_cap"]


@dataclass(frozen=True)
class ClassPrediction:
    """Predicted class from one uncapped execution's counters."""

    power_class: PowerClass
    confidence: float          # in [0.5, 1]: distance from the decision surface
    draw_fraction: float       # natural power / TDP
    ipc: float

    @property
    def is_opportunity(self) -> bool:
        return self.power_class is PowerClass.OPPORTUNITY


def predict_class(
    run: RunResult,
    *,
    draw_knee: float = 0.62,
    ipc_knee: float = 1.6,
) -> ClassPrediction:
    """Predict the power class from a TDP-run's counters.

    The decision surface combines the two signals the paper identifies:
    draw as a fraction of TDP (the sensitive pair sits near 70 %+ of
    TDP) and IPC (the compute/memory divide).  An algorithm is
    predicted *sensitive* when both exceed their knees.
    """
    spec = run.spec
    draw_fraction = run.avg_power_w / spec.tdp_watts
    ipc = run.ipc

    draw_score = draw_fraction / draw_knee
    ipc_score = ipc / ipc_knee
    sensitive = draw_score >= 1.0 and ipc_score >= 1.0

    # Confidence: how far the weaker signal sits from its knee.
    weaker = min(draw_score, ipc_score)
    distance = abs(weaker - 1.0)
    confidence = min(1.0, 0.5 + distance)

    return ClassPrediction(
        power_class=PowerClass.SENSITIVE if sensitive else PowerClass.OPPORTUNITY,
        confidence=confidence,
        draw_fraction=draw_fraction,
        ipc=ipc,
    )


def predicted_cap(
    run: RunResult, *, tolerance: float = 0.10, margin_w: float = 3.0
) -> float:
    """Deepest safe cap estimated from one uncapped run, no sweep.

    The mechanism the study uncovers: performance is unaffected while
    the cap stays above the algorithm's natural draw, and degrades
    roughly with frequency once below it.  A frequency-proportional
    slowdown of ``tolerance`` permits dropping the cap to roughly the
    power at frequency ``f_turbo / (1 + tolerance)``; this helper
    approximates that point as a fixed fraction of the draw gap, then
    clamps into the RAPL range.
    """
    spec: MachineSpec = run.spec
    draw = run.avg_power_w
    # Power scales ~V^2 f ~ f^2 near the top of the curve: a (1+tol)
    # frequency drop buys roughly a (1+tol)^2 power reduction of the
    # compressible (above-floor) part.
    floor = spec.p_uncore_idle + spec.p_leak_nominal * 0.7
    compressible = max(draw - floor, 0.0)
    cap = floor + compressible / (1.0 + tolerance) ** 2 + margin_w
    return float(min(max(cap, spec.rapl_floor_watts), spec.tdp_watts))
