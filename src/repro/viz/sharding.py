"""Sharded kernel backend: threaded k-span fan-out with deterministic merge.

``Filter.execute(backend="sharded")`` splits the lattice's k-axis into
near-even contiguous spans (:func:`repro.data.tiling.shard_spans`) and
runs each span's `_apply_span` hook on a thread pool.  Spans are
independent by construction — every span reads only its own point
planes (plus the shared boundary plane) and writes nothing shared — so
the classification sweeps run concurrently wherever NumPy releases the
GIL, and results merge in ascending span order regardless of completion
order.  Determinism guarantees:

* **Ledgers** merge by keyed addition in ascending span order; every
  ledger entry is an integer-valued float far below 2^53, so the merged
  totals equal the serial pass bitwise.
* **Geometry** concatenates span payloads in ascending span order, the
  same order the serial tiled pass visits them.

The process-sharded path for GIL-bound classification lives in
:mod:`repro.core.engine`: large profile jobs are split into
:class:`~repro.core.engine.ShardTask`s, one per span, executed in pool
worker processes via ``Filter.apply_shard`` and merged by
:func:`repro.core.profiles.merge_shard_ledgers`.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

__all__ = ["ENV_SHARD_WORKERS", "resolve_shards", "run_spans"]

#: Environment override for the default shard count / thread-pool width.
ENV_SHARD_WORKERS = "REPRO_SHARD_WORKERS"

T = TypeVar("T")


def resolve_shards(shards: int | None, nz: int) -> int:
    """Shard count for an ``nz``-plane lattice: arg > env > CPU count.

    Clamped to ``[1, nz]`` — an extra shard beyond one-per-plane could
    only ever hold an empty span.
    """
    if shards is None:
        raw = os.environ.get(ENV_SHARD_WORKERS, "").strip()
        if raw:
            try:
                shards = int(raw, 10)
            except ValueError:
                raise ValueError(
                    f"{ENV_SHARD_WORKERS} must be a whole number, got {raw!r}"
                ) from None
        else:
            shards = os.cpu_count() or 1
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    return max(1, min(shards, int(nz)))


def run_spans(
    fn: Callable[[int, int], T], spans: list[tuple[int, int]], *, max_workers: int | None = None
) -> list[T]:
    """Run ``fn(k_lo, k_hi)`` for every non-empty span; results in span order.

    Non-empty spans execute concurrently on a thread pool (sized to the
    span count, cappable via ``max_workers``); a single span runs inline.
    The returned list is ordered by ascending span regardless of
    completion order — the deterministic-merge contract.
    """
    work = [(i, k_lo, k_hi) for i, (k_lo, k_hi) in enumerate(spans) if k_hi > k_lo]
    out: dict[int, T] = {}
    if len(work) <= 1:
        for i, k_lo, k_hi in work:
            out[i] = fn(k_lo, k_hi)
    else:
        workers = min(len(work), max_workers or len(work))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        ) as pool:
            futures = [(i, pool.submit(fn, k_lo, k_hi)) for i, k_lo, k_hi in work]
            for i, fut in futures:
                out[i] = fut.result()
    return [out[i] for i in sorted(out)]
