"""Contour: table-driven marching cubes over a point scalar field.

Mirrors the paper's setup: 10 isovalues per visualization cycle, each
producing an isosurface of the energy field.  The implementation is the
classic two-phase worklet structure (classify cells → generate
geometry), vectorized over cells and chunked so 256³ grids fit in
memory.  Lookup tables come from :mod:`repro.data.mc_tables`.

Per-cell corner intervals (min/max) are computed once per chunk and each
isovalue is tested against them, so only straddled cells reach the
8-corner case classification — a pure implementation optimization: the
op-count ledger records the same classify/active/triangle work as the
unculled two-phase pass (see ``docs/performance.md``).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..data.fields import DataSet
from ..data.grid import HEX_CORNER_OFFSETS, corner_gather, slab_corner_reduce
from ..data.mc_tables import get_tables
from ..data.mesh import TriangleMesh
from ..data.tiling import k_slabs, pick_tile_planes
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .costs import COSTS

__all__ = ["Contour", "default_isovalues"]

_CASE_WEIGHTS = 1 << np.arange(8)

#: Live working bytes per cell for one contour tile: the scalar slab
#: (8 B/point ≈ 8 B/cell), the cmin/cmax interval arrays (16 B), and the
#: per-isovalue mask/nonzero scratch.
_TILE_BYTES_PER_CELL = 48.0


def default_isovalues(lo: float, hi: float, n: int = 10) -> np.ndarray:
    """The paper's "10 different isovalues": evenly spaced strictly
    inside the field range (endpoints produce empty surfaces)."""
    return lo + (hi - lo) * (np.arange(1, n + 1) / (n + 1))


class Contour(Filter):
    """Marching-cubes isosurfaces at one or more isovalues.

    Parameters
    ----------
    field:
        Point scalar field name (cell fields are recentered).
    isovalues:
        Explicit isovalues; default is 10 values spanning the field
        range, as in the study.
    chunk_cells:
        Cells processed per vectorized batch (memory ceiling).
    keep_output:
        When False, geometry is counted but not accumulated — used by
        the large sweeps so a 256³ × 10-isovalue run does not hold
        gigabytes of triangles.
    """

    name = "contour"

    def __init__(
        self,
        field: str = "energy",
        isovalues: np.ndarray | list[float] | None = None,
        *,
        n_isovalues: int = 10,
        chunk_cells: int = 1 << 20,
        keep_output: bool = True,
    ):
        self.field = field
        self.isovalues = None if isovalues is None else np.asarray(isovalues, dtype=np.float64)
        self.n_isovalues = n_isovalues
        self.chunk_cells = int(chunk_cells)
        self.keep_output = keep_output
        if self.chunk_cells < 1:
            raise ValueError("chunk_cells must be positive")

    @property
    def n_worklets(self) -> float:  # classify + scan + generate, per isovalue
        n = self.n_isovalues if self.isovalues is None else len(self.isovalues)
        return 3.0 * n

    def describe(self) -> dict:
        return {
            "name": self.name,
            "field": self.field,
            "n_isovalues": self.n_isovalues if self.isovalues is None else len(self.isovalues),
        }

    # ------------------------------------------------------------------ run
    supports_sharding = True

    def _apply(self, dataset: DataSet, counts: OpCounts) -> TriangleMesh:
        state = self._shard_state(dataset)
        payload = self._apply_span(state, counts, 0, dataset.grid.cell_dims[2])
        return self._finish(state, counts, [payload])

    def _shard_state(self, dataset: DataSet) -> SimpleNamespace:
        grid = dataset.grid
        scalars = dataset.point_field(self.field).values
        if scalars.ndim != 1:
            raise ValueError("contour requires a scalar field")
        isovalues = self.isovalues
        if isovalues is None:
            lo, hi = float(scalars.min()), float(scalars.max())
            isovalues = default_isovalues(lo, hi, self.n_isovalues)

        nx, ny, nz = grid.cell_dims
        tables = get_tables()
        spacing = np.asarray(grid.spacing)
        return SimpleNamespace(
            grid=grid,
            scalars=scalars,
            lat=scalars.reshape(nz + 1, ny + 1, nx + 1),
            isovalues=isovalues,
            tables=tables,
            # Triangles per MC case — the counting fast path tallies
            # these instead of generating-then-discarding geometry.
            tri_counts=np.count_nonzero(tables.tri_edges[:, :, 0] >= 0, axis=1),
            spacing=spacing,
            origin=np.asarray(grid.origin),
            corner_off=HEX_CORNER_OFFSETS.astype(np.float64) * spacing,
            tile=pick_tile_planes(
                nx * ny, _TILE_BYTES_PER_CELL, n_planes=nz, ceiling_cells=self.chunk_cells
            ),
        )

    def _apply_span(
        self, state: SimpleNamespace, counts: OpCounts, k_lo: int, k_hi: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        # Interval culling, tiled: per-cell corner min/max computed per
        # cache-sized k-slab as shifted-lattice reductions (no (n, 8)
        # gather), every isovalue tested while the slab's intervals are
        # still cache-hot.  A cell produces triangles iff its MC case is
        # neither 0 nor 255, i.e. iff some corner is > iso and some is
        # <= iso — exactly (cmin <= iso) & (cmax > iso) — so the active
        # set (and the ledger) is unchanged; only straddled cells reach
        # the 8-corner case classification and the generate gather.
        grid = state.grid
        nx, ny, _ = grid.cell_dims
        px, py = nx + 1, ny + 1
        pts_chunks: list[np.ndarray] = []
        val_chunks: list[np.ndarray] = []
        for k0, k1 in k_slabs(k_lo, k_hi, state.tile):
            kz = k1 - k0
            slab = state.lat[k0 : k1 + 1]
            cmin = slab_corner_reduce(slab, np.minimum)
            cmax = slab_corner_reduce(slab, np.maximum)
            slab_cells = kz * ny * nx
            cell_base = k0 * ny * nx
            base_l, strides = corner_gather((nx, ny, kz))
            point_base = k0 * px * py
            for iso in state.isovalues:
                counts.add("cells_classified", slab_cells)
                active = np.nonzero((cmin <= iso) & (cmax > iso))[0]
                counts.add("active_cells", active.size)
                if active.size == 0:
                    continue
                pids = (base_l[active] + point_base)[:, None] + strides[None, :]
                active_vals = state.scalars[pids]
                cases = (active_vals > iso) @ _CASE_WEIGHTS
                if self.keep_output:
                    i, j, k = grid.cell_ijk(active + cell_base)
                    origins = np.stack([i, j, k], axis=1) * state.spacing + state.origin
                    pts, vals = _generate(
                        state.tables, cases, active_vals, origins, state.corner_off, iso
                    )
                    counts.add("triangles", pts.shape[0] // 3)
                    pts_chunks.append(pts)
                    val_chunks.append(vals)
                else:
                    # Same triangle total the generate pass would emit,
                    # without materializing (then dropping) the geometry.
                    counts.add("triangles", int(state.tri_counts[cases].sum()))
        return pts_chunks, val_chunks

    def _finish(
        self,
        state: SimpleNamespace,
        counts: OpCounts,
        payloads: list[tuple[list[np.ndarray], list[np.ndarray]]],
    ) -> TriangleMesh:
        pts_chunks = [c for pts, _ in payloads for c in pts]
        val_chunks = [c for _, vals in payloads for c in vals]
        if not pts_chunks:
            return TriangleMesh.empty()
        points = np.vstack(pts_chunks)
        scalars_out = np.concatenate(val_chunks)
        triangles = np.arange(points.shape[0], dtype=np.int64).reshape(-1, 3)
        return TriangleMesh(points, triangles, scalars_out)

    # ------------------------------------------------------------- profile
    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        field_bytes = float(grid.n_points * 8)
        n_iso = counts["cells_classified"] / max(grid.n_cells, 1)

        classify = COSTS[("contour", "classify")]
        generate = COSTS[("contour", "generate")]
        tris = counts["triangles"]
        active = counts["active_cells"]

        seg_classify = segment_from_cost(
            "classify",
            counts["cells_classified"],
            classify,
            bytes_read=field_bytes * n_iso,
            bytes_written=grid.n_cells * 1.0 * n_iso,  # one stencil byte per cell
            working_set_bytes=field_bytes,
            reuse_passes=max(n_iso, 1.0),
        )
        seg_generate = segment_from_cost(
            "generate",
            active,
            generate,
            bytes_read=active * 8.0 * 8,          # corner re-gathers for interp
            bytes_written=tris * 3 * 32.0,        # positions + scalars + indices
            working_set_bytes=active * 64.0,
        )
        return [seg_classify, seg_generate]


def _generate(
    tables, cases: np.ndarray, corner_vals: np.ndarray, origins: np.ndarray,
    corner_off: np.ndarray, iso: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Emit interpolated triangle vertices for the active cells.

    Returns ``(points, scalars)`` with ``points`` of shape ``(3t, 3)``
    laid out triangle-major (rows 3i..3i+2 are one triangle).
    """
    te = tables.tri_edges[cases]                       # (na, 12, 3)
    valid = te[:, :, 0] >= 0                           # (na, 12)
    cell_rows, _ = np.nonzero(valid)                   # (nt,)
    eids = te[valid]                                   # (nt, 3)

    endpoints = tables.edges[eids]                     # (nt, 3, 2)
    u, v = endpoints[..., 0], endpoints[..., 1]
    rows = cell_rows[:, None]
    su = corner_vals[rows, u]
    sv = corner_vals[rows, v]
    t = (iso - su) / (sv - su)

    pu = corner_off[u] + origins[cell_rows][:, None, :]
    pv = corner_off[v] + origins[cell_rows][:, None, :]
    pts = pu + t[..., None] * (pv - pu)                # (nt, 3, 3)
    vals = np.full(pts.shape[0] * 3, iso)
    return pts.reshape(-1, 3), vals
