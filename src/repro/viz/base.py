"""Filter infrastructure: execution, op counting, and work profiles.

Every algorithm is a :class:`Filter`.  ``execute(dataset)`` runs the real
(vectorized NumPy) algorithm, records *what it did* in an
:class:`OpCounts` ledger (cells scanned, triangles emitted, rays traced,
...), and converts the ledger into a :class:`~repro.workload.WorkProfile`
using the filter's per-operation cost constants.  The profile — not the
Python wall time — is what the simulated machine executes, because the
profile describes the work a VTK-m/TBB implementation of the same
algorithm performs on the study's Broadwell node.

**The ledger contract.**  The ledger records the *semantic* work of the
algorithm (cells classified, triangles emitted, samples taken), not the
work the Python implementation happened to do.  Implementation
optimizations — interval culling, gather caches, active-set compaction —
must therefore leave every ledger entry bitwise identical: a culled
contour still "classifies" every cell at every isovalue, because the
modeled VTK-m worklet does.  ``tests/viz/test_golden_ledgers.py`` pins
this with recorded reference ledgers per (algorithm, size).

A fixed **framework segment** models VTK-m's per-worklet dispatch
overhead (scheduling, allocation, connectivity setup).  It is the same
size regardless of dataset size, which is what pushes measured IPC *down*
at 32³ and lets it rise with dataset size for the lightweight
cell-centered algorithms — the paper's Fig. 4 trend.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from ..data.fields import DataSet
from ..data.tiling import shard_spans
from ..obs.trace import span
from ..workload import AccessPattern, InstructionMix, WorkProfile, WorkSegment

__all__ = [
    "OpCounts",
    "FilterResult",
    "Filter",
    "BACKENDS",
    "ENV_BACKEND",
    "resolve_backend",
    "framework_segment",
    "mix_per",
    "segment_from_cost",
]

#: Execution backends ``Filter.execute`` understands.  ``serial`` is the
#: plain in-process pass; ``sharded`` fans independent k-spans of the
#: lattice out over a thread pool (:mod:`repro.viz.sharding`) and merges
#: the per-span results in ascending span order, so ledgers and geometry
#: are deterministic and ledger totals equal the serial pass bitwise.
BACKENDS = ("serial", "sharded")

#: Environment default for ``Filter.execute(backend=None)``.
ENV_BACKEND = "REPRO_KERNEL_BACKEND"


def resolve_backend(backend: str | None) -> str:
    """Normalize an execute() backend: explicit arg > env > ``serial``."""
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "").strip() or "serial"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def mix_per(
    count: float,
    *,
    fp: float = 0.0,
    simd: float = 0.0,
    int_alu: float = 0.0,
    load: float = 0.0,
    store: float = 0.0,
    branch: float = 0.0,
    other: float = 0.0,
) -> InstructionMix:
    """Instruction mix for ``count`` operations at the given per-op costs."""
    return InstructionMix(
        fp=fp * count,
        simd=simd * count,
        int_alu=int_alu * count,
        load=load * count,
        store=store * count,
        branch=branch * count,
        other=other * count,
    )


@dataclass
class OpCounts:
    """Ledger of data-dependent quantities recorded during a real run."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, key: str, amount: float) -> None:
        # Each OpCounts instance is span-local by construction (one per
        # processor run); results are merged after the span closes.
        self.counts[key] = self.counts.get(key, 0.0) + float(amount)  # repro: lint-ignore[RPR009]: OpCounts ledgers are span/thread-local and merged in span order, never shared across threads

    def __getitem__(self, key: str) -> float:
        return self.counts.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self.counts

    def as_dict(self) -> dict[str, float]:
        return dict(self.counts)


@dataclass
class FilterResult:
    """Real output geometry plus the workload description of producing it."""

    output: Any
    profile: WorkProfile
    counts: OpCounts


# VTK-m-style dispatch overhead per worklet invocation: scheduling,
# dynamic allocation, array handle plumbing.  Instruction count is
# independent of the dataset; low-ILP pointer chasing.
_FRAMEWORK_INSTR_PER_WORKLET = 6.0e6
_FRAMEWORK_BYTES_PER_WORKLET = 2.0e6


def framework_segment(n_worklets: float) -> WorkSegment:
    """Dispatch/allocation overhead for ``n_worklets`` worklet launches."""
    mix = mix_per(
        n_worklets * _FRAMEWORK_INSTR_PER_WORKLET / 10.0,
        int_alu=3.0,
        load=3.0,
        store=1.5,
        branch=1.5,
        other=1.0,
    )
    return WorkSegment(
        name="framework",
        mix=mix,
        bytes_read=n_worklets * _FRAMEWORK_BYTES_PER_WORKLET,
        bytes_written=n_worklets * _FRAMEWORK_BYTES_PER_WORKLET * 0.5,
        working_set_bytes=8.0e6,
        pattern=AccessPattern.RANDOM,
        mlp=1.5,
        parallel_efficiency=0.35,  # dispatch is mostly serial
        extra_stall_cycles=n_worklets * _FRAMEWORK_INSTR_PER_WORKLET * 1.2,
    )


def segment_from_cost(
    name: str,
    n_ops: float,
    cost,
    *,
    bytes_read: float,
    bytes_written: float,
    working_set_bytes: float,
    reuse_passes: float = 1.0,
) -> WorkSegment:
    """Build a segment from an op count and its :class:`PhaseCost`.

    Centralizes how per-op costs (instruction mix, stall cycles, memory
    character) turn into a :class:`~repro.workload.WorkSegment`, so the
    calibration surface stays in ``costs.py``.
    """
    from .costs import mix_kwargs  # local import avoids a module cycle at init

    return WorkSegment(
        name=name,
        mix=mix_per(n_ops, **mix_kwargs(cost)),
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        working_set_bytes=max(working_set_bytes, 1.0),
        pattern=cost.pattern,
        reuse_passes=reuse_passes,
        mlp=cost.mlp,
        parallel_efficiency=cost.parallel_efficiency,
        extra_stall_cycles=n_ops * cost.stall_cycles,
    )


class Filter(ABC):
    """Base class for the eight study algorithms.

    Subclasses implement :meth:`_apply` (the real algorithm; must fill
    the op ledger) and :meth:`_segments` (ledger → work segments).
    """

    #: Study name, e.g. ``"contour"`` — used in tables and the registry.
    name: str = "filter"

    #: Worklet launches per execution (for the framework segment).
    n_worklets: float = 3.0

    #: Whether this filter implements the k-span sharding hooks
    #: (:meth:`_shard_state` / :meth:`_apply_span` / :meth:`_finish`).
    #: Filters without them silently run serial under ``backend="sharded"``
    #: — their ledgers are trivially backend-independent.
    supports_sharding: bool = False

    def execute(
        self, dataset: DataSet, *, backend: str | None = None, shards: int | None = None
    ) -> FilterResult:
        """Run the algorithm on ``dataset``; return geometry + profile.

        ``backend`` picks the execution strategy (see :data:`BACKENDS`;
        default from ``REPRO_KERNEL_BACKEND``, else ``serial``) and
        ``shards`` the k-span fan-out width for ``"sharded"``.  Ledgers
        are backend-independent: every ledger entry is an integer-valued
        float, so the ascending-span merge reproduces the serial totals
        bitwise.

        Each phase runs under a telemetry span (no-ops when no tracer is
        configured): ``kernel`` wraps the whole execution, with
        ``kernel-apply`` (the real algorithm) and ``kernel-profile``
        (ledger → work profile) nested inside — a traced sweep shows
        where each algorithm's wall time actually goes.
        """
        backend = resolve_backend(backend)
        counts = OpCounts()
        with span(
            "kernel", algorithm=self.name, n_cells=dataset.grid.n_cells, backend=backend
        ):
            with span("kernel-apply", algorithm=self.name):
                if backend == "sharded" and self.supports_sharding:
                    output = self._apply_sharded(dataset, counts, shards=shards)
                else:
                    output = self._apply(dataset, counts)
            with span("kernel-profile", algorithm=self.name):
                profile = self.profile_from_counts(dataset, counts)
        return FilterResult(output=output, profile=profile, counts=counts)

    def profile_from_counts(self, dataset: DataSet, counts: OpCounts) -> WorkProfile:
        """Build the work profile from a previously recorded op ledger.

        The ledger is the expensive part (it comes from running the real
        algorithm); the cost mapping is cheap, so cached ledgers can be
        re-priced after calibration changes without re-execution.
        """
        profile = WorkProfile(
            name=self.name,
            n_elements=dataset.grid.n_cells,
            metadata={"counts": counts.as_dict(), "params": self.describe()},
        )
        profile.add(framework_segment(self.n_worklets))
        # Phases with no work (e.g. a clip that cut nothing) are dropped
        # rather than carried as degenerate segments.
        profile.extend(s for s in self._segments(dataset, counts) if s.mix.total > 0)
        profile.validate()
        return profile

    @abstractmethod
    def _apply(self, dataset: DataSet, counts: OpCounts) -> Any:
        """Execute the real algorithm, recording op counts."""

    @abstractmethod
    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        """Convert the op ledger into work segments."""

    # ------------------------------------------------------------- sharding
    # A shardable filter decomposes into three hooks: `_shard_state`
    # (one-time validation + read-only precomputation, shared by every
    # span), `_apply_span` (process cell planes [k_lo, k_hi), recording
    # that span's ledger and returning a payload), and `_finish`
    # (assemble payloads — ascending span order — into the output).
    # The serial `_apply` is one span covering the whole lattice, so the
    # sharded ledger is the serial ledger summed span-wise: bitwise
    # identical because every entry is an integer-valued float.

    def _shard_state(self, dataset: DataSet) -> Any:
        raise NotImplementedError(f"{self.name} does not support sharding")

    def _apply_span(self, state: Any, counts: OpCounts, k_lo: int, k_hi: int) -> Any:
        raise NotImplementedError(f"{self.name} does not support sharding")

    def _finish(self, state: Any, counts: OpCounts, payloads: list) -> Any:
        raise NotImplementedError(f"{self.name} does not support sharding")

    def _apply_sharded(
        self, dataset: DataSet, counts: OpCounts, *, shards: int | None = None
    ) -> Any:
        """Fan `_apply_span` out over k-spans; merge deterministically."""
        from .sharding import resolve_shards, run_spans  # avoid import cycle at init

        state = self._shard_state(dataset)
        nz = dataset.grid.cell_dims[2]
        spans = shard_spans(nz, resolve_shards(shards, nz))

        def one_span(k_lo: int, k_hi: int) -> tuple[OpCounts, Any]:
            span_counts = OpCounts()
            payload = self._apply_span(state, span_counts, k_lo, k_hi)
            return span_counts, payload

        results = run_spans(one_span, spans)
        payloads = []
        for span_counts, payload in results:  # ascending span order
            for key, value in span_counts.counts.items():
                counts.add(key, value)
            payloads.append(payload)
        return self._finish(state, counts, payloads)

    def apply_shard(
        self, dataset: DataSet, counts: OpCounts, shard: int, n_shards: int
    ) -> None:
        """Record the ledger of one k-span shard (engine shard tasks).

        Ledger-only: no geometry is assembled and `_finish` never runs,
        so this is exact for the counting configuration
        (``keep_output=False``) the sweep engine profiles with — filters
        whose `_finish` adds ledger entries when output is kept must
        reject that configuration here.
        """
        if not self.supports_sharding:
            raise ValueError(f"{self.name} does not support sharding")
        nz = dataset.grid.cell_dims[2]
        k_lo, k_hi = shard_spans(nz, int(n_shards))[int(shard)]
        if k_lo >= k_hi:
            return
        state = self._shard_state(dataset)
        self._apply_span(state, counts, k_lo, k_hi)

    def describe(self) -> dict[str, Any]:
        """Parameters for reports; subclasses extend."""
        return {"name": self.name}
