"""Ray tracing: render the dataset's external surface from orbit cameras.

Per the paper, the algorithm has three steps whose *data-intensive*
parts dominate: gather triangles and find external faces, build a
spatial acceleration structure (BVH), then trace rays.  The external
surface of a structured grid scales as N² — the paper's observation
that an 8× bigger dataset yields only a 4× face increase falls straight
out of this geometry.

The profile scales the traced images up to the study's 50-image
database per cycle (rendering a handful of real images and multiplying,
since orbit views cost the same on average) — recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from ..data.fields import DataSet
from ..data.grid import UniformGrid
from ..workload import WorkSegment
from .base import Filter, OpCounts, mix_per, segment_from_cost
from .bvh import Bvh, TraversalStats
from .costs import COSTS, mix_kwargs
from .render import ColorMap, Image, orbit_cameras

__all__ = ["RayTracer", "external_surface"]


def external_surface(
    grid: UniformGrid, cell_scalars: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract the grid's external faces as triangles.

    Returns ``(points, triangles, tri_scalars)``: the six boundary
    faces, two triangles per boundary quad, each colored by its owning
    boundary cell's scalar.
    """
    nx, ny, nz = grid.cell_dims
    px, py, pz = grid.point_dims
    quads: list[np.ndarray] = []
    scals: list[np.ndarray] = []

    lat = cell_scalars.reshape(nz, ny, nx)

    def pid(i, j, k):
        return i + px * (j + py * k)

    # For each of the six faces build the quad corner point ids.
    faces = [
        # (fixed axis, fixed value, cell slice selector)
        ("x", 0), ("x", nx), ("y", 0), ("y", ny), ("z", 0), ("z", nz),
    ]
    for axis, val in faces:
        if axis == "x":
            j, k = np.meshgrid(np.arange(ny), np.arange(nz), indexing="ij")
            c0 = pid(val, j, k)
            c1 = pid(val, j + 1, k)
            c2 = pid(val, j + 1, k + 1)
            c3 = pid(val, j, k + 1)
            sc = lat[k, j, 0 if val == 0 else nx - 1]
        elif axis == "y":
            i, k = np.meshgrid(np.arange(nx), np.arange(nz), indexing="ij")
            c0 = pid(i, val, k)
            c1 = pid(i + 1, val, k)
            c2 = pid(i + 1, val, k + 1)
            c3 = pid(i, val, k + 1)
            sc = lat[k, 0 if val == 0 else ny - 1, i]
        else:
            i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
            c0 = pid(i, j, val)
            c1 = pid(i + 1, j, val)
            c2 = pid(i + 1, j + 1, val)
            c3 = pid(i, j + 1, val)
            sc = lat[0 if val == 0 else nz - 1, j, i]
        quad = np.stack([c0.ravel(), c1.ravel(), c2.ravel(), c3.ravel()], axis=1)
        quads.append(quad)
        scals.append(sc.ravel())

    quad_arr = np.vstack(quads)
    scal_arr = np.concatenate(scals)
    # Two triangles per quad, same scalar.
    t1 = quad_arr[:, [0, 1, 2]]
    t2 = quad_arr[:, [0, 2, 3]]
    triangles = np.vstack([t1, t2])
    tri_scalars = np.concatenate([scal_arr, scal_arr])
    return grid.point_coords(), triangles, tri_scalars


class RayTracer(Filter):
    """BVH ray tracer producing an orbit image database.

    Parameters
    ----------
    n_images:
        Images actually traced per execution.
    images_per_cycle:
        The study's database size; the profile is scaled by
        ``images_per_cycle / n_images``.
    resolution:
        (width, height) of each image.
    """

    name = "raytrace"
    n_worklets = 5.0  # extract + triangulate + build + trace + shade

    def __init__(
        self,
        field: str = "energy",
        *,
        n_images: int = 2,
        images_per_cycle: int = 50,
        resolution: tuple[int, int] = (128, 128),
        leaf_size: int = 4,
    ):
        if n_images < 1 or images_per_cycle < n_images:
            raise ValueError("need 1 <= n_images <= images_per_cycle")
        self.field = field
        self.n_images = int(n_images)
        self.images_per_cycle = int(images_per_cycle)
        self.resolution = (int(resolution[0]), int(resolution[1]))
        self.leaf_size = int(leaf_size)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "field": self.field,
            "n_images": self.n_images,
            "images_per_cycle": self.images_per_cycle,
            "resolution": self.resolution,
        }

    def _apply(self, dataset: DataSet, counts: OpCounts) -> list[Image]:
        grid = dataset.grid
        cell_scal = dataset.cell_field(self.field).values
        points, triangles, tri_scalars = external_surface(grid, cell_scal)
        counts.add("surface_triangles", triangles.shape[0])

        bvh = Bvh(points, triangles, leaf_size=self.leaf_size)
        counts.add("bvh_nodes", bvh.n_nodes)
        counts.add("bvh_bytes", bvh.nbytes)

        lo, hi = float(cell_scal.min()), float(cell_scal.max())
        span = hi - lo if hi > lo else 1.0
        cmap = ColorMap()
        w, h = self.resolution
        stats = TraversalStats()
        images: list[Image] = []
        cams = orbit_cameras(grid.bounds, self.n_images)
        for cam in cams:
            origins, dirs = cam.rays(w, h)
            t_hit, tri_idx = bvh.trace(origins, dirs, stats)
            img = Image.blank(w, h, color=(0.08, 0.08, 0.10))
            hit = tri_idx >= 0
            if hit.any():
                # Map back: BVH reordered triangles by Morton code, but
                # carries original vertex indices; recover scalars via a
                # lookup of reordered rows against the originals.
                scal = self._tri_scalar(bvh, triangles, tri_scalars, tri_idx[hit])
                shade = self._lambert(bvh, dirs[hit], tri_idx[hit])
                rgb = cmap((scal - lo) / span) * shade[:, None]
                flat = img.rgb.reshape(-1, 3)
                flat[hit] = rgb
            images.append(img)
        counts.add("rays", stats.rays)
        counts.add("node_visits", stats.node_visits)
        counts.add("tri_tests", stats.tri_tests)
        return images

    @staticmethod
    def _tri_scalar(
        bvh: Bvh, triangles: np.ndarray, tri_scalars: np.ndarray, hit_rows: np.ndarray
    ) -> np.ndarray:
        # bvh.tris rows are a Morton permutation of `triangles`; map a
        # BVH hit row back to its original triangle's scalar.
        return tri_scalars[bvh.source_rows[hit_rows]]

    def _lambert(self, bvh: Bvh, dirs: np.ndarray, hit_rows: np.ndarray) -> np.ndarray:
        tri = bvh.tris[hit_rows]
        p0 = bvh.points[tri[:, 0]]
        e1 = bvh.points[tri[:, 1]] - p0
        e2 = bvh.points[tri[:, 2]] - p0
        n = np.cross(e1, e2)
        nl = np.linalg.norm(n, axis=1, keepdims=True)
        n = np.divide(n, nl, out=np.zeros_like(n), where=nl > 0)
        # Headlight shading.
        return 0.25 + 0.75 * np.abs(np.einsum("ij,ij->i", n, -dirs))

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        scale = self.images_per_cycle / self.n_images
        ex = COSTS[("raytrace", "extract")]
        bd = COSTS[("raytrace", "build")]
        vi = COSTS[("raytrace", "visit")]
        te = COSTS[("raytrace", "test")]
        tris = counts["surface_triangles"]
        bvh_bytes = max(counts["bvh_bytes"], 1.0)
        return [
            segment_from_cost(
                "extract",
                tris,
                ex,
                bytes_read=tris * 8.0 * 4,
                bytes_written=tris * 3 * 28.0,
                working_set_bytes=tris * 100.0,
            ),
            segment_from_cost(
                "build",
                tris,
                bd,
                bytes_read=tris * 96.0,
                bytes_written=bvh_bytes,
                working_set_bytes=bvh_bytes,
            ),
            WorkSegment(
                name="trace",
                mix=(
                    mix_per(counts["node_visits"], **mix_kwargs(vi))
                    + mix_per(counts["tri_tests"], **mix_kwargs(te))
                ).scaled(scale),
                bytes_read=(counts["node_visits"] * 12.0 + counts["tri_tests"] * 24.0) * scale,
                bytes_written=counts["rays"] * 12.0 * scale,
                working_set_bytes=bvh_bytes,
                pattern=vi.pattern,
                mlp=vi.mlp,
                parallel_efficiency=vi.parallel_efficiency,
                extra_stall_cycles=(
                    counts["node_visits"] * vi.stall_cycles
                    + counts["tri_tests"] * te.stall_cycles
                ) * scale,
            ),
        ]
