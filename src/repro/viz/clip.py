"""Spherical clip: cull geometry inside a sphere.

Per the paper: cells fully inside the sphere are dropped, cells fully
outside pass through whole, and straddling cells are subdivided with the
part inside the sphere removed.  The implicit keep-function is
``g(p) = |p - center| - radius`` (non-negative outside the sphere).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.fields import DataSet
from ..data.mesh import CellSubset, TetMesh
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .costs import COSTS
from .tetclip import clip_grid_cells

__all__ = ["SphericalClip", "ClipOutput"]


@dataclass
class ClipOutput:
    """Whole kept cells plus the cut tetrahedra along the sphere."""

    kept: CellSubset
    cut: TetMesh

    def total_volume(self, cell_volume: float) -> float:
        """Exact retained volume (whole cells + cut tets)."""
        return self.kept.n_cells * cell_volume + self.cut.total_volume()


class SphericalClip(Filter):
    """Clip away the inside of a sphere.

    Default geometry matches the study's renderings: the sphere sits at
    the grid center with radius one third of the grid diagonal.
    """

    name = "clip"
    n_worklets = 4.0  # evaluate + classify + cut + copy

    def __init__(
        self,
        field: str = "energy",
        center: tuple[float, float, float] | None = None,
        radius: float | None = None,
        *,
        chunk_cells: int = 1 << 20,
        keep_output: bool = True,
    ):
        self.field = field
        self.center = center
        self.radius = radius
        self.chunk_cells = int(chunk_cells)
        self.keep_output = keep_output

    def describe(self) -> dict:
        return {
            "name": self.name,
            "field": self.field,
            "center": self.center,
            "radius": self.radius,
        }

    def _apply(self, dataset: DataSet, counts: OpCounts) -> ClipOutput:
        grid = dataset.grid
        center = np.asarray(self.center if self.center is not None else grid.center)
        radius = self.radius if self.radius is not None else grid.diagonal / 3.0

        pts = grid.point_coords()
        g = np.linalg.norm(pts - center, axis=1) - radius
        counts.add("points_evaluated", grid.n_points)

        scalars = dataset.point_field(self.field).values
        result = clip_grid_cells(
            grid,
            g,
            scalars=scalars if scalars.ndim == 1 else None,
            chunk_cells=self.chunk_cells,
            keep_output=self.keep_output,
        )
        counts.add("cells_classified", grid.n_cells)
        counts.add("cells_kept_whole", result.kept_cell_ids.size)
        counts.add("cells_straddling", result.n_cells_straddling)
        counts.add("tets_cut", result.n_cells_straddling * 6)
        counts.add("tets_emitted", result.n_tets_cut)

        cell_scal = dataset.cell_field(self.field).values
        kept = CellSubset(result.kept_cell_ids, cell_scal[result.kept_cell_ids])
        return ClipOutput(kept=kept, cut=result.cut)

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        point_bytes = float(grid.n_points * 8)
        ev = COSTS[("clip", "evaluate")]
        cl = COSTS[("clip", "classify")]
        cut = COSTS[("clip", "cut")]
        cp = COSTS[("clip", "copy")]
        return [
            segment_from_cost(
                "evaluate",
                counts["points_evaluated"],
                ev,
                bytes_read=point_bytes * 3,          # xyz coordinates
                bytes_written=point_bytes,           # distance field
                working_set_bytes=point_bytes * 4,
            ),
            segment_from_cost(
                "classify",
                counts["cells_classified"],
                cl,
                bytes_read=point_bytes,
                bytes_written=grid.n_cells * 1.0,
                working_set_bytes=point_bytes,
            ),
            segment_from_cost(
                "cut",
                counts["tets_cut"],
                cut,
                bytes_read=counts["tets_cut"] * 4 * 16.0,
                bytes_written=counts["tets_emitted"] * 4 * 32.0,
                working_set_bytes=counts["tets_emitted"] * 128.0,
            ),
            segment_from_cost(
                "copy",
                counts["cells_kept_whole"],
                cp,
                bytes_read=counts["cells_kept_whole"] * 48.0,
                bytes_written=counts["cells_kept_whole"] * 48.0,
                working_set_bytes=counts["cells_kept_whole"] * 48.0,
            ),
        ]
