"""Spherical clip: cull geometry inside a sphere.

Per the paper: cells fully inside the sphere are dropped, cells fully
outside pass through whole, and straddling cells are subdivided with the
part inside the sphere removed.  The implicit keep-function is
``g(p) = |p - center| - radius`` (non-negative outside the sphere).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from ..data.fields import Association, DataSet, recenter_slab_to_cells
from ..data.grid import corner_gather
from ..data.mesh import CellSubset, TetMesh
from ..data.tiling import k_slabs, pick_tile_planes
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .costs import COSTS
from .tetclip import CLIP_TILE_BYTES_PER_CELL, _assemble_tets, classify_slab, cut_cell_batch

__all__ = ["SphericalClip", "ClipOutput"]


@dataclass
class ClipOutput:
    """Whole kept cells plus the cut tetrahedra along the sphere."""

    kept: CellSubset
    cut: TetMesh

    def total_volume(self, cell_volume: float) -> float:
        """Exact retained volume (whole cells + cut tets)."""
        return self.kept.n_cells * cell_volume + self.cut.total_volume()


def _kept_cell_values(
    state: SimpleNamespace, k0: int, k1: int, kept_local: np.ndarray
) -> np.ndarray:
    """Cell scalars for kept cells of slab ``[k0, k1)``.

    Point fields are recentered per slab in the exact corner order of a
    full-lattice recenter (bitwise identical to ``cell_field()`` +
    gather); native cell fields are sliced directly; vector fields fall
    back to the dense gather precomputed in the state.
    """
    if state.cell_lat is not None:
        return state.cell_lat[k0:k1].reshape(-1)[kept_local]
    if state.point_lat is not None:
        return recenter_slab_to_cells(state.point_lat[k0 : k1 + 1])[kept_local]
    nx, ny, _ = state.grid.cell_dims
    return state.cell_scal_dense[kept_local + k0 * ny * nx]


class SphericalClip(Filter):
    """Clip away the inside of a sphere.

    Default geometry matches the study's renderings: the sphere sits at
    the grid center with radius one third of the grid diagonal.
    """

    name = "clip"
    n_worklets = 4.0  # evaluate + classify + cut + copy

    def __init__(
        self,
        field: str = "energy",
        center: tuple[float, float, float] | None = None,
        radius: float | None = None,
        *,
        chunk_cells: int = 1 << 20,
        keep_output: bool = True,
    ):
        self.field = field
        self.center = center
        self.radius = radius
        self.chunk_cells = int(chunk_cells)
        self.keep_output = keep_output

    def describe(self) -> dict:
        return {
            "name": self.name,
            "field": self.field,
            "center": self.center,
            "radius": self.radius,
        }

    supports_sharding = True

    def _apply(self, dataset: DataSet, counts: OpCounts) -> ClipOutput:
        state = self._shard_state(dataset)
        payload = self._apply_span(state, counts, 0, dataset.grid.cell_dims[2])
        return self._finish(state, counts, [payload])

    def _shard_state(self, dataset: DataSet) -> SimpleNamespace:
        grid = dataset.grid
        center = np.asarray(self.center if self.center is not None else grid.center)
        radius = self.radius if self.radius is not None else grid.diagonal / 3.0

        nx, ny, nz = grid.cell_dims
        px, py, pz = grid.point_dims
        ox, oy, oz = grid.origin
        sx, sy, sz = grid.spacing
        # Separable distance evaluation: |p - c| over a uniform lattice
        # is sqrt((dx² + dy²) + dz²) with one squared-offset array per
        # axis, broadcast per slab.  Same axis coordinates as
        # point_coords() and the same add order NumPy's norm uses over a
        # length-3 axis, so g is bitwise identical to the dense
        # norm(points - center) — without ever materializing the (n, 3)
        # coordinate array or its (n,) distance temporaries.
        dx = (ox + np.arange(px, dtype=np.int64) * sx) - center[0]
        dy = (oy + np.arange(py, dtype=np.int64) * sy) - center[1]
        dz = (oz + np.arange(pz, dtype=np.int64) * sz) - center[2]
        scalars = dataset.point_field(self.field).values
        field = dataset.field(self.field)
        return SimpleNamespace(
            grid=grid,
            radius=float(radius),
            xy2=(dx * dx)[None, :] + (dy * dy)[:, None],  # (py, px)
            dz2=dz * dz,                                  # (pz,)
            s_flat=scalars if scalars.ndim == 1 else None,
            cell_lat=(
                field.values.reshape(nz, ny, nx)
                if field.association is Association.CELL and not field.is_vector
                else None
            ),
            point_lat=(
                scalars.reshape(nz + 1, ny + 1, nx + 1) if scalars.ndim == 1 else None
            ),
            # Vector fields have no slab recenter; keep parity with the
            # dense cell_field() gather instead (rare, never hot).
            cell_scal_dense=(
                dataset.cell_field(self.field).values if scalars.ndim != 1 else None
            ),
            tile=pick_tile_planes(
                nx * ny, CLIP_TILE_BYTES_PER_CELL, n_planes=nz, ceiling_cells=self.chunk_cells
            ),
        )

    def _apply_span(
        self, state: SimpleNamespace, counts: OpCounts, k_lo: int, k_hi: int
    ) -> SimpleNamespace:
        grid = state.grid
        nx, ny, nz = grid.cell_dims
        px, py = nx + 1, ny + 1
        kept_chunks: list[np.ndarray] = []
        kept_val_chunks: list[np.ndarray] = []
        pts_chunks: list[np.ndarray] = []
        val_chunks: list[np.ndarray] = []
        n_straddle = 0
        n_tets_cut = 0
        for k0, k1 in k_slabs(k_lo, k_hi, state.tile):
            kz = k1 - k0
            g_slab = np.sqrt(state.xy2[None, :, :] + state.dz2[k0 : k1 + 1, None, None])
            g_slab -= state.radius
            n_in = classify_slab(g_slab)
            kept_local = np.nonzero(n_in == 8)[0]
            straddle_local = np.nonzero((n_in > 0) & (n_in < 8))[0]
            cell_base = k0 * ny * nx
            n_straddle += straddle_local.size
            if kept_local.size:
                kept_chunks.append(kept_local + cell_base)
                kept_val_chunks.append(_kept_cell_values(state, k0, k1, kept_local))
            if straddle_local.size:
                base_l, strides = corner_gather((nx, ny, kz))
                for start in range(0, straddle_local.size, self.chunk_cells):
                    loc = straddle_local[start : start + self.chunk_cells]
                    lpids = base_l[loc][:, None] + strides[None, :]
                    gv = g_slab.reshape(-1)[lpids]
                    sv = (
                        state.s_flat[lpids + k0 * px * py]
                        if state.s_flat is not None
                        else gv
                    )
                    pts, vals, n_out = cut_cell_batch(
                        grid, loc + cell_base, gv, sv, self.keep_output
                    )
                    n_tets_cut += n_out
                    if self.keep_output and pts is not None:
                        pts_chunks.append(pts)
                        val_chunks.append(vals)
        # Shard point ownership: planes [k_lo, k_hi), plus the last
        # lattice plane for the span that ends the grid — spans sum to
        # exactly n_points.
        planes = (k_hi - k_lo) + (1 if k_hi == nz else 0)
        counts.add("points_evaluated", planes * px * py)
        counts.add("cells_classified", (k_hi - k_lo) * ny * nx)
        counts.add("cells_kept_whole", sum(c.size for c in kept_chunks))
        counts.add("cells_straddling", n_straddle)
        counts.add("tets_cut", n_straddle * 6)
        counts.add("tets_emitted", n_tets_cut)
        return SimpleNamespace(
            kept=kept_chunks,
            kept_vals=kept_val_chunks,
            pts=pts_chunks,
            vals=val_chunks,
        )

    def _finish(
        self, state: SimpleNamespace, counts: OpCounts, payloads: list[SimpleNamespace]
    ) -> ClipOutput:
        kept_chunks = [c for p in payloads for c in p.kept]
        kept_vals = [c for p in payloads for c in p.kept_vals]
        kept_ids = (
            np.concatenate(kept_chunks) if kept_chunks else np.empty(0, dtype=np.int64)
        )
        kept_scal = np.concatenate(kept_vals) if kept_vals else np.empty(0)
        cut = (
            _assemble_tets(
                [c for p in payloads for c in p.pts], [c for p in payloads for c in p.vals]
            )
            if self.keep_output
            else TetMesh.empty()
        )
        return ClipOutput(kept=CellSubset(kept_ids, kept_scal), cut=cut)

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        point_bytes = float(grid.n_points * 8)
        ev = COSTS[("clip", "evaluate")]
        cl = COSTS[("clip", "classify")]
        cut = COSTS[("clip", "cut")]
        cp = COSTS[("clip", "copy")]
        return [
            segment_from_cost(
                "evaluate",
                counts["points_evaluated"],
                ev,
                bytes_read=point_bytes * 3,          # xyz coordinates
                bytes_written=point_bytes,           # distance field
                working_set_bytes=point_bytes * 4,
            ),
            segment_from_cost(
                "classify",
                counts["cells_classified"],
                cl,
                bytes_read=point_bytes,
                bytes_written=grid.n_cells * 1.0,
                working_set_bytes=point_bytes,
            ),
            segment_from_cost(
                "cut",
                counts["tets_cut"],
                cut,
                bytes_read=counts["tets_cut"] * 4 * 16.0,
                bytes_written=counts["tets_emitted"] * 4 * 32.0,
                working_set_bytes=counts["tets_emitted"] * 128.0,
            ),
            segment_from_cost(
                "copy",
                counts["cells_kept_whole"],
                cp,
                bytes_read=counts["cells_kept_whole"] * 48.0,
                bytes_written=counts["cells_kept_whole"] * 48.0,
                working_set_bytes=counts["cells_kept_whole"] * 48.0,
            ),
        ]
