"""Slice: cut the dataset on three axis-aligned planes.

Per the paper's "three-slice": planes x-y, y-z and x-z through the grid
center.  For each plane a signed-distance point field is computed (the
compute-intensive part the paper calls out), then the contour machinery
extracts the zero-distance surface.  The dominant instruction stream is
the per-point distance evaluation — FP-dense and streaming — which is
why slice lands *above* contour in IPC (Fig. 2b) despite using contour
under the hood.
"""

from __future__ import annotations

import numpy as np

from ..data.fields import Association, DataSet
from ..data.mesh import TriangleMesh
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .contour import Contour
from .costs import COSTS

__all__ = ["Slice"]

_AXIS_NORMALS = {
    "xy": np.array([0.0, 0.0, 1.0]),
    "yz": np.array([1.0, 0.0, 0.0]),
    "xz": np.array([0.0, 1.0, 0.0]),
}


class Slice(Filter):
    """Three axis-plane slices through the grid center.

    The original scalar field is interpolated onto the slice surfaces
    (carried through contour's per-vertex machinery is unnecessary for
    the study; the paper's slice output keeps the plane geometry).
    """

    name = "slice"
    n_worklets = 9.0  # (distance + classify + generate) per plane

    def __init__(
        self,
        field: str = "energy",
        planes: tuple[str, ...] = ("xy", "yz", "xz"),
        *,
        chunk_cells: int = 1 << 20,
        keep_output: bool = True,
    ):
        unknown = set(planes) - set(_AXIS_NORMALS)
        if unknown:
            raise ValueError(f"unknown plane(s) {sorted(unknown)}; valid: {sorted(_AXIS_NORMALS)}")
        self.field = field
        self.planes = tuple(planes)
        self.chunk_cells = int(chunk_cells)
        self.keep_output = keep_output

    def describe(self) -> dict:
        return {"name": self.name, "field": self.field, "planes": self.planes}

    def _apply(self, dataset: DataSet, counts: OpCounts) -> TriangleMesh:
        grid = dataset.grid
        center = grid.center
        pts = grid.point_coords()
        mesh = TriangleMesh.empty()
        for plane in self.planes:
            normal = _AXIS_NORMALS[plane]
            dist = (pts - center) @ normal
            counts.add("points_evaluated", grid.n_points)

            sub = DataSet(grid)
            sub.add_field("__slice_dist", dist, Association.POINT)
            inner = Contour(
                field="__slice_dist",
                isovalues=[0.0],
                chunk_cells=self.chunk_cells,
                keep_output=self.keep_output,
            )
            inner_counts = OpCounts()
            plane_mesh = inner._apply(sub, inner_counts)
            counts.add("cells_classified", inner_counts["cells_classified"])
            counts.add("active_cells", inner_counts["active_cells"])
            counts.add("triangles", inner_counts["triangles"])
            if self.keep_output and plane_mesh.n_triangles:
                mesh = mesh.merged_with(plane_mesh) if mesh.n_triangles else plane_mesh
        return mesh

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        point_bytes = float(grid.n_points * 8)
        dist = COSTS[("slice", "distance")]
        cl = COSTS[("slice", "classify")]
        gen = COSTS[("slice", "generate")]
        n_planes = counts["points_evaluated"] / max(grid.n_points, 1)
        return [
            segment_from_cost(
                "distance",
                counts["points_evaluated"],
                dist,
                bytes_read=point_bytes * 3 * n_planes,   # coordinates
                bytes_written=point_bytes * n_planes,    # distance field
                working_set_bytes=point_bytes * 4,
            ),
            segment_from_cost(
                "classify",
                counts["cells_classified"],
                cl,
                bytes_read=point_bytes * n_planes,
                bytes_written=grid.n_cells * n_planes,
                working_set_bytes=point_bytes,
            ),
            segment_from_cost(
                "generate",
                counts["active_cells"],
                gen,
                bytes_read=counts["active_cells"] * 64.0,
                bytes_written=counts["triangles"] * 3 * 32.0,
                working_set_bytes=counts["active_cells"] * 64.0,
            ),
        ]
