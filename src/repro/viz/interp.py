"""Trilinear interpolation of point fields at arbitrary world positions.

Shared by particle advection (velocity lookups) and volume rendering
(scalar samples along rays).  Fully vectorized over query positions.
"""

from __future__ import annotations

import numpy as np

from ..data.grid import UniformGrid

__all__ = ["trilinear"]


def trilinear(
    grid: UniformGrid, values: np.ndarray, positions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Interpolate a point field at world-space ``positions``.

    Parameters
    ----------
    values:
        Point field, shape ``(n_points,)`` or ``(n_points, 3)``.
    positions:
        Query points, shape ``(m, 3)``.

    Returns
    -------
    (result, inside):
        ``result`` has shape ``(m,)`` or ``(m, 3)``; entries for
        out-of-bounds queries are zero.  ``inside`` is the boolean
        in-bounds mask.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    lat = grid.world_to_lattice(positions)
    dims = np.asarray(grid.cell_dims, dtype=np.float64)
    inside = np.all((lat >= 0.0) & (lat <= dims), axis=1)

    # Clamp so boundary points use the last cell with frac = 1.
    cell = np.minimum(np.floor(lat), dims - 1.0)
    cell = np.maximum(cell, 0.0).astype(np.int64)
    frac = np.clip(lat - cell, 0.0, 1.0)

    px, py, _ = grid.point_dims
    i, j, k = cell[:, 0], cell[:, 1], cell[:, 2]
    base = i + px * (j + py * k)

    fx, fy, fz = frac[:, 0], frac[:, 1], frac[:, 2]
    wx = np.stack([1.0 - fx, fx], axis=1)
    wy = np.stack([1.0 - fy, fy], axis=1)
    wz = np.stack([1.0 - fz, fz], axis=1)

    vec = values.ndim == 2
    out_shape = (positions.shape[0], 3) if vec else (positions.shape[0],)
    out = np.zeros(out_shape)
    for dz in (0, 1):
        for dy in (0, 1):
            for dx in (0, 1):
                pid = base + dx + px * (dy + py * dz)
                w = wx[:, dx] * wy[:, dy] * wz[:, dz]
                if vec:
                    out += w[:, None] * values[pid]
                else:
                    out += w * values[pid]
    if vec:
        out[~inside] = 0.0
    else:
        out[~inside] = 0.0
    return (out if positions.shape[0] > 1 else out, inside)
