"""Particle advection: RK4 streamlines through a steady vector field.

Per the paper: massless particles are seeded throughout the dataset and
advected a fixed number of steps through a single time step's velocity
field, outputting streamlines.  Seed count, step length, and step count
are held constant regardless of dataset size (the study does the same,
which is why particles fall out of small grids early and why advection's
IPC is flat across sizes — Fig. 6).

RK4 is the fourth-order Runge–Kutta integrator the paper names: four
velocity evaluations per step, FP-dense, the most compute-intensive and
power-hungry algorithm in the set.
"""

from __future__ import annotations

import numpy as np

from ..data.fields import DataSet
from ..data.mesh import PolyLines
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .costs import COSTS
from .interp import trilinear

__all__ = ["ParticleAdvection", "seed_grid"]


def seed_grid(bounds: np.ndarray, n_seeds: int, *, margin: float = 0.15) -> np.ndarray:
    """Deterministic lattice of ~``n_seeds`` seeds inside the bounds."""
    bounds = np.asarray(bounds, dtype=np.float64)
    per_axis = max(1, int(round(n_seeds ** (1.0 / 3.0))))
    pad = margin * (bounds[:, 1] - bounds[:, 0])
    axes = np.linspace(bounds[:, 0] + pad, bounds[:, 1] - pad, per_axis, axis=1)
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)


class ParticleAdvection(Filter):
    """Advect seeded particles with RK4; outputs streamlines.

    Defaults follow the study's constant-across-sizes policy: the step
    length and step count are fixed in *world* units (sized for the
    128³ reference grid), not per-cell units.
    """

    name = "advection"
    n_worklets = 2.0  # seed + advect

    def __init__(
        self,
        field: str = "velocity",
        *,
        n_seeds: int = 4096,
        n_steps: int = 1500,
        step_length: float | None = None,
    ):
        if n_seeds < 1 or n_steps < 1:
            raise ValueError("n_seeds and n_steps must be positive")
        self.field = field
        self.n_seeds = int(n_seeds)
        self.n_steps = int(n_steps)
        self.step_length = step_length

    def describe(self) -> dict:
        return {
            "name": self.name,
            "field": self.field,
            "n_seeds": self.n_seeds,
            "n_steps": self.n_steps,
        }

    def _apply(self, dataset: DataSet, counts: OpCounts) -> PolyLines:
        grid = dataset.grid
        vel = dataset.point_field(self.field).values
        if vel.ndim != 2:
            raise ValueError("advection requires a vector field")
        # Fixed step in world units: 1/256 of the diagonal (≈ half a cell
        # on the 128³ reference), matching the study's constant policy.
        h = self.step_length if self.step_length is not None else grid.diagonal / 256.0

        pos = seed_grid(grid.bounds, self.n_seeds)
        n = pos.shape[0]
        alive = np.ones(n, dtype=bool)
        history = [pos.copy()]
        alive_history = [alive.copy()]

        # Normalize velocity so the step length controls displacement
        # (streamline geometry, not particle speed, is the output).
        for _ in range(self.n_steps):
            if not alive.any():
                break
            p = pos[alive]
            k1, in1 = trilinear(grid, vel, p)
            k2, in2 = trilinear(grid, vel, p + 0.5 * h * _unit(k1))
            k3, in3 = trilinear(grid, vel, p + 0.5 * h * _unit(k2))
            k4, in4 = trilinear(grid, vel, p + h * _unit(k3))
            counts.add("interp_evals", 4 * p.shape[0])
            counts.add("steps", p.shape[0])
            step = (k1 + 2.0 * k2 + 2.0 * k3 + k4) / 6.0
            new_p = p + h * _unit(step)
            still = in1 & grid.contains(new_p)
            pos = pos.copy()
            pos[alive] = new_p
            idx = np.nonzero(alive)[0]
            alive = alive.copy()
            alive[idx[~still]] = False
            history.append(pos.copy())
            alive_history.append(alive.copy())

        return _build_polylines(history, alive_history)

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        step = COSTS[("advection", "step")]
        steps = counts["steps"]
        # Footprint: cells visited along trajectories (bounded by the
        # whole velocity field).  Each step touches ~2 cache lines per
        # velocity component.
        vel_bytes = float(grid.n_points * 8 * 3)
        touched = min(vel_bytes, steps * 64.0)
        return [
            segment_from_cost(
                "advect",
                steps,
                step,
                # ~1 *new* cache line per half-cell step (the four RK4
                # evaluations hit the same corners, which stay in L1).
                bytes_read=steps * 64.0,
                bytes_written=steps * 24.0,       # appended positions
                working_set_bytes=touched,
            )
        ]


def _unit(v: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(v, axis=1, keepdims=True)
    return np.divide(v, norm, out=np.zeros_like(v), where=norm > 1e-300)


def _build_polylines(history: list[np.ndarray], alive_history: list[np.ndarray]) -> PolyLines:
    """Assemble per-particle trajectories into a PolyLines bundle.

    A particle's line covers every recorded position up to (and
    including) the step at which it died: its length is the number of
    steps it was alive for (seed included), at least 1.  Assembly is a
    single boolean compress over the particle-major history.
    """
    hist = np.stack(history)            # (steps+1, n, 3)
    alive = np.stack(alive_history)     # (steps+1, n)
    lengths = np.maximum(alive.sum(axis=0), 1)             # (n,)
    keep = np.arange(hist.shape[0])[None, :] < lengths[:, None]   # (n, steps+1)
    pts = hist.transpose(1, 0, 2)[keep]                    # particle-major compress
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(lengths)])
    return PolyLines(pts, offsets)
