"""Tetrahedral clipping: the geometric engine behind clip and isovolume.

Both filters keep the region where an implicit function ``g`` is
non-negative.  Cells fully inside are passed through whole; cells fully
outside are dropped; straddling cells are decomposed into six
tetrahedra (:data:`repro.data.mc_tables.CUBE_TETS`) and each tet is cut
against ``g = 0`` — the paper's "the cell is subdivided into two parts
... and each part is handled as before".

The per-case cut topology (which sub-tets a sign pattern produces) is
generated programmatically, like the MC tables, so it is correct by
construction; the property tests verify exact volumes against
closed-form answers (e.g. a half-space clip keeps exactly half the
cube's volume).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..data.grid import (
    HEX_CORNER_OFFSETS,
    UniformGrid,
    cell_corner_reduce,
    corner_gather,
    slab_corner_reduce,
)
from ..data.mc_tables import CUBE_TETS
from ..data.mesh import TetMesh
from ..data.tiling import k_slabs, pick_tile_planes

__all__ = [
    "tet_cut_recipes",
    "clip_grid_cells",
    "clip_tet_soup",
    "classify_slab",
    "cut_cell_batch",
    "GridClipResult",
]

#: Estimated live working bytes per cell for a one-sided grid clip tile:
#: the g slab (8 B/point ≈ 8 B/cell), its sign field, the uint8 corner
#: counts, and the straddle/kept index scratch.
CLIP_TILE_BYTES_PER_CELL = 40.0

# A recipe vertex is ("c", corner_index) — an original tet corner kept —
# or ("e", i, j) — the g=0 crossing on edge (i, j), always ordered with
# the *inside* endpoint first so interpolation is uniform.
Recipe = list[list[tuple]]


@lru_cache(maxsize=1)
def tet_cut_recipes() -> dict[int, Recipe]:
    """Per-sign-case cut topology for one tetrahedron.

    Case bit ``i`` is set when corner ``i`` is inside (``g >= 0``).
    Each recipe is a list of output tets over recipe vertices.
    """
    recipes: dict[int, Recipe] = {}
    for case in range(16):
        inside = [i for i in range(4) if (case >> i) & 1]
        outside = [i for i in range(4) if not (case >> i) & 1]
        if not inside:
            recipes[case] = []
        elif len(inside) == 4:
            recipes[case] = [[("c", 0), ("c", 1), ("c", 2), ("c", 3)]]
        elif len(inside) == 1:
            p = inside[0]
            q, r, s = outside
            recipes[case] = [[("c", p), ("e", p, q), ("e", p, r), ("e", p, s)]]
        elif len(inside) == 3:
            a, b, c = inside
            q = outside[0]
            recipes[case] = [
                [("c", a), ("c", b), ("c", c), ("e", a, q)],
                [("c", b), ("c", c), ("e", a, q), ("e", b, q)],
                [("c", c), ("e", a, q), ("e", b, q), ("e", c, q)],
            ]
        else:  # two inside, two outside: a triangular prism, 3 tets
            a, b = inside
            c, d = outside
            prism = [
                ("c", a), ("e", a, c), ("e", a, d),
                ("c", b), ("e", b, c), ("e", b, d),
            ]
            recipes[case] = [
                [prism[0], prism[1], prism[2], prism[3]],
                [prism[1], prism[2], prism[3], prism[4]],
                [prism[2], prism[3], prism[4], prism[5]],
            ]
    return recipes


class GridClipResult:
    """Outcome of clipping structured cells: whole keeps + cut tets."""

    def __init__(
        self,
        kept_cell_ids: np.ndarray,
        cut: TetMesh,
        n_tets_cut: int,
        n_cells_straddling: int,
    ):
        self.kept_cell_ids = np.asarray(kept_cell_ids, dtype=np.int64)
        self.cut = cut
        self.n_tets_cut = int(n_tets_cut)
        self.n_cells_straddling = int(n_cells_straddling)


def classify_slab(g_slab_lat: np.ndarray) -> np.ndarray:
    """Inside-corner counts for a point-``g`` lattice slab.

    ``g_slab_lat`` has shape ``(kz + 1, py, px)``; returns the flat
    uint8 ``(kz * ny * nx,)`` count of corners with ``g >= 0`` per cell,
    bitwise identical to the matching rows of the full-lattice
    classification (same sign test, same corner add order).
    """
    return slab_corner_reduce((g_slab_lat >= 0.0).view(np.uint8), np.add)


def cut_cell_batch(
    grid: UniformGrid,
    cell_ids: np.ndarray,
    gv: np.ndarray,
    sv: np.ndarray,
    keep_output: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, int]:
    """Decompose straddling cells into cube tets and cut against ``g >= 0``.

    ``gv``/``sv`` are ``(n, 8)`` corner g / carried-scalar values in VTK
    corner order; world positions are derived from the global
    ``cell_ids``.  Corner g / scalar / position per cell, per cube tet,
    are cut as one batched ``(n*6, 4)`` call instead of six passes.
    Returns ``(points, values, n_tets_out)`` like :func:`_cut_tets`.
    """
    spacing = np.asarray(grid.spacing)
    corner_off = HEX_CORNER_OFFSETS.astype(np.float64) * spacing
    tets_arr = np.asarray(CUBE_TETS, dtype=np.int64)  # (6, 4) corner ids
    i, j, k = grid.cell_ijk(np.asarray(cell_ids, dtype=np.int64))
    origins = np.stack([i, j, k], axis=1) * spacing + np.asarray(grid.origin)
    tg = gv[:, tets_arr].reshape(-1, 4)                   # (ns*6, 4)
    ts = sv[:, tets_arr].reshape(-1, 4)
    tet_off = corner_off[tets_arr]                        # (6, 4, 3)
    tpos = (origins[:, None, None, :] + tet_off[None, :, :, :]).reshape(-1, 4, 3)
    return _cut_tets(tpos, tg, ts, keep_output)


def clip_grid_cells(
    grid: UniformGrid,
    point_g: np.ndarray,
    *,
    scalars: np.ndarray | None = None,
    cell_ids: np.ndarray | None = None,
    chunk_cells: int = 1 << 20,
    keep_output: bool = True,
) -> GridClipResult:
    """Clip grid cells against the point field ``g >= 0``.

    ``scalars`` (optional) is a point field carried through to the cut
    tets' vertices (isovolume needs the original scalar there).

    The full-grid path walks the lattice in cache-sized k-slab tiles
    (:mod:`repro.data.tiling`): classification never materializes a
    grid-sized id or mask array, and only straddling cells — the ones
    that actually get cut — are ever gathered.  Tiles are visited in
    ascending k order, so kept ids come out in linear cell order and
    every count matches the untiled pass bitwise; only the row order of
    cut tets (content-identical) depends on the tiling.
    """
    g_flat = np.asarray(point_g, dtype=np.float64).reshape(-1)
    if cell_ids is not None:
        return _clip_cells_subset(grid, g_flat, scalars, cell_ids, chunk_cells, keep_output)

    nx, ny, nz = grid.cell_dims
    px, py = nx + 1, ny + 1
    g_lat = g_flat.reshape(nz + 1, py, px)
    s_flat = None if scalars is None else np.asarray(scalars).reshape(-1)
    tile = pick_tile_planes(
        nx * ny, CLIP_TILE_BYTES_PER_CELL, n_planes=nz, ceiling_cells=chunk_cells
    )

    kept_chunks: list[np.ndarray] = []
    pts_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []
    n_tets_cut = 0
    n_straddle = 0
    for k0, k1 in k_slabs(0, nz, tile):
        kz = k1 - k0
        n_in = classify_slab(g_lat[k0 : k1 + 1])
        kept_local = np.nonzero(n_in == 8)[0]
        straddle_local = np.nonzero((n_in > 0) & (n_in < 8))[0]
        cell_base = k0 * nx * ny
        if kept_local.size:
            kept_chunks.append(kept_local + cell_base)
        n_straddle += straddle_local.size
        base_l, strides = corner_gather((nx, ny, kz))
        for start in range(0, straddle_local.size, chunk_cells):
            loc = straddle_local[start : start + chunk_cells]
            pids = (base_l[loc] + k0 * px * py)[:, None] + strides[None, :]
            gv = g_flat[pids]  # (ns, 8)
            sv = s_flat[pids] if s_flat is not None else gv
            pts, vals, n_out = cut_cell_batch(grid, loc + cell_base, gv, sv, keep_output)
            n_tets_cut += n_out
            if keep_output and pts is not None:
                pts_chunks.append(pts)
                val_chunks.append(vals)

    kept = (
        np.concatenate(kept_chunks) if kept_chunks else np.empty(0, dtype=np.int64)
    )
    cut = _assemble_tets(pts_chunks, val_chunks) if keep_output else TetMesh.empty()
    return GridClipResult(kept, cut, n_tets_cut, n_straddle)


def _assemble_tets(
    pts_chunks: list[np.ndarray], val_chunks: list[np.ndarray]
) -> TetMesh:
    """Concatenate tet-major point/value chunks into one soup mesh."""
    if not pts_chunks:
        return TetMesh.empty()
    points = np.vstack(pts_chunks)
    values = np.concatenate(val_chunks)
    tets = np.arange(points.shape[0], dtype=np.int64).reshape(-1, 4)
    return TetMesh(points, tets, values)


def _clip_cells_subset(
    grid: UniformGrid,
    g_flat: np.ndarray,
    scalars: np.ndarray | None,
    cell_ids: np.ndarray,
    chunk_cells: int,
    keep_output: bool,
) -> GridClipResult:
    """Legacy dense path for an explicit cell subset.

    Classifies the whole lattice once and indexes the caller's ids, so
    the caller's id order is preserved exactly (the two-pass isovolume
    formulation depended on that; the fused filter no longer calls
    this, but the public API keeps it for subset callers).
    """
    cell_ids = np.asarray(cell_ids, dtype=np.int64)
    n_in = cell_corner_reduce(
        grid.cell_dims, (g_flat >= 0.0).astype(np.uint8), np.add
    )[cell_ids]
    kept = cell_ids[n_in == 8]
    straddle_ids = cell_ids[(n_in > 0) & (n_in < 8)]

    pts_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []
    n_tets_cut = 0
    for start in range(0, straddle_ids.size, chunk_cells):
        ids = straddle_ids[start : start + chunk_cells]
        cpids = grid.cell_point_ids(ids)
        gv = g_flat[cpids]  # (ns, 8)
        sv = scalars[cpids] if scalars is not None else gv
        pts, vals, n_out = cut_cell_batch(grid, ids, gv, sv, keep_output)
        n_tets_cut += n_out
        if keep_output and pts is not None:
            pts_chunks.append(pts)
            val_chunks.append(vals)
    cut = _assemble_tets(pts_chunks, val_chunks) if keep_output else TetMesh.empty()
    return GridClipResult(kept, cut, n_tets_cut, straddle_ids.size)


def clip_tet_soup(
    mesh: TetMesh, g_values: np.ndarray, *, keep_output: bool = True
) -> tuple[TetMesh, int]:
    """Clip an unstructured tet soup against per-point ``g >= 0``.

    Returns the clipped mesh and the number of tets that needed cutting
    (straddling input tets).  Scalars are interpolated to new vertices.
    """
    if mesh.n_tets == 0:
        return TetMesh.empty(), 0
    g = np.asarray(g_values, dtype=np.float64)
    if g.shape[0] != mesh.n_points:
        raise ValueError("g_values must be per-point")
    scal = mesh.scalars if mesh.scalars is not None else g

    tpos = mesh.points[mesh.tets]          # (n, 4, 3)
    tg = g[mesh.tets]                      # (n, 4)
    ts = scal[mesh.tets]
    pts, vals, n_cut_tets = _cut_tets(tpos, tg, ts, keep_output)
    straddling = int(np.any(tg >= 0, axis=1).sum() - np.all(tg >= 0, axis=1).sum())
    if not keep_output or pts is None:
        return TetMesh.empty(), straddling
    tets = np.arange(pts.shape[0], dtype=np.int64).reshape(-1, 4)
    return TetMesh(pts, tets, vals), straddling


def _cut_tets(
    tpos: np.ndarray, tg: np.ndarray, tscal: np.ndarray, keep_output: bool
) -> tuple[np.ndarray | None, np.ndarray | None, int]:
    """Cut a batch of tets against g >= 0; returns (points, scalars, n_tets).

    ``tpos`` is (n, 4, 3); ``tg``/``tscal`` are (n, 4).  Output points
    are tet-major: rows 4i..4i+3 form one tet.
    """
    inside = tg >= 0.0
    cases = inside @ (1 << np.arange(4))
    recipes = tet_cut_recipes()

    if not keep_output:
        # Counting only: one histogram instead of 15 scans.
        case_counts = np.bincount(cases, minlength=16)
        n_out = int(sum(case_counts[c] * len(recipes[c]) for c in range(1, 16)))
        return None, None, n_out

    out_pts: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    n_out = 0
    for case in range(1, 16):
        rows = np.nonzero(cases == case)[0]
        if rows.size == 0:
            continue
        recipe = recipes[case]
        n_out += rows.size * len(recipe)
        pos = tpos[rows]
        gv = tg[rows]
        sv = tscal[rows]
        for tet_recipe in recipe:
            verts_p = np.empty((rows.size, 4, 3))
            verts_s = np.empty((rows.size, 4))
            for vi, rv in enumerate(tet_recipe):
                if rv[0] == "c":
                    c = rv[1]
                    verts_p[:, vi] = pos[:, c]
                    verts_s[:, vi] = sv[:, c]
                else:
                    _, a, b = rv
                    t = gv[:, a] / (gv[:, a] - gv[:, b])
                    verts_p[:, vi] = pos[:, a] + t[:, None] * (pos[:, b] - pos[:, a])
                    verts_s[:, vi] = sv[:, a] + t * (sv[:, b] - sv[:, a])
            out_pts.append(verts_p.reshape(-1, 3))
            out_vals.append(verts_s.reshape(-1))
    if not out_pts:
        return None, None, n_out
    return np.vstack(out_pts), np.concatenate(out_vals), n_out
