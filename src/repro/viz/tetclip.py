"""Tetrahedral clipping: the geometric engine behind clip and isovolume.

Both filters keep the region where an implicit function ``g`` is
non-negative.  Cells fully inside are passed through whole; cells fully
outside are dropped; straddling cells are decomposed into six
tetrahedra (:data:`repro.data.mc_tables.CUBE_TETS`) and each tet is cut
against ``g = 0`` — the paper's "the cell is subdivided into two parts
... and each part is handled as before".

The per-case cut topology (which sub-tets a sign pattern produces) is
generated programmatically, like the MC tables, so it is correct by
construction; the property tests verify exact volumes against
closed-form answers (e.g. a half-space clip keeps exactly half the
cube's volume).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..data.grid import HEX_CORNER_OFFSETS, UniformGrid, cell_corner_reduce
from ..data.mc_tables import CUBE_TETS
from ..data.mesh import TetMesh

__all__ = ["tet_cut_recipes", "clip_grid_cells", "clip_tet_soup", "GridClipResult"]

# A recipe vertex is ("c", corner_index) — an original tet corner kept —
# or ("e", i, j) — the g=0 crossing on edge (i, j), always ordered with
# the *inside* endpoint first so interpolation is uniform.
Recipe = list[list[tuple]]


@lru_cache(maxsize=1)
def tet_cut_recipes() -> dict[int, Recipe]:
    """Per-sign-case cut topology for one tetrahedron.

    Case bit ``i`` is set when corner ``i`` is inside (``g >= 0``).
    Each recipe is a list of output tets over recipe vertices.
    """
    recipes: dict[int, Recipe] = {}
    for case in range(16):
        inside = [i for i in range(4) if (case >> i) & 1]
        outside = [i for i in range(4) if not (case >> i) & 1]
        if not inside:
            recipes[case] = []
        elif len(inside) == 4:
            recipes[case] = [[("c", 0), ("c", 1), ("c", 2), ("c", 3)]]
        elif len(inside) == 1:
            p = inside[0]
            q, r, s = outside
            recipes[case] = [[("c", p), ("e", p, q), ("e", p, r), ("e", p, s)]]
        elif len(inside) == 3:
            a, b, c = inside
            q = outside[0]
            recipes[case] = [
                [("c", a), ("c", b), ("c", c), ("e", a, q)],
                [("c", b), ("c", c), ("e", a, q), ("e", b, q)],
                [("c", c), ("e", a, q), ("e", b, q), ("e", c, q)],
            ]
        else:  # two inside, two outside: a triangular prism, 3 tets
            a, b = inside
            c, d = outside
            prism = [
                ("c", a), ("e", a, c), ("e", a, d),
                ("c", b), ("e", b, c), ("e", b, d),
            ]
            recipes[case] = [
                [prism[0], prism[1], prism[2], prism[3]],
                [prism[1], prism[2], prism[3], prism[4]],
                [prism[2], prism[3], prism[4], prism[5]],
            ]
    return recipes


class GridClipResult:
    """Outcome of clipping structured cells: whole keeps + cut tets."""

    def __init__(
        self,
        kept_cell_ids: np.ndarray,
        cut: TetMesh,
        n_tets_cut: int,
        n_cells_straddling: int,
    ):
        self.kept_cell_ids = np.asarray(kept_cell_ids, dtype=np.int64)
        self.cut = cut
        self.n_tets_cut = int(n_tets_cut)
        self.n_cells_straddling = int(n_cells_straddling)


def clip_grid_cells(
    grid: UniformGrid,
    point_g: np.ndarray,
    *,
    scalars: np.ndarray | None = None,
    cell_ids: np.ndarray | None = None,
    chunk_cells: int = 1 << 20,
    keep_output: bool = True,
) -> GridClipResult:
    """Clip grid cells against the point field ``g >= 0``.

    ``scalars`` (optional) is a point field carried through to the cut
    tets' vertices (isovolume needs the original scalar there).
    """
    # Classification without the (n, 8) corner gather: count inside
    # corners per cell as 8 shifted-lattice adds over the 0/1 sign field.
    # Only straddling cells — the ones that actually get cut — are ever
    # gathered, which is what makes the 128³+ clips cheap.
    g_flat = np.asarray(point_g, dtype=np.float64).reshape(-1)
    n_in_full = cell_corner_reduce(
        grid.cell_dims, (g_flat >= 0.0).astype(np.uint8), np.add
    )
    if cell_ids is None:
        cell_ids = np.arange(grid.n_cells, dtype=np.int64)
        n_in = n_in_full
    else:
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        n_in = n_in_full[cell_ids]

    spacing = np.asarray(grid.spacing)
    corner_off = HEX_CORNER_OFFSETS.astype(np.float64) * spacing
    tets_arr = np.asarray(CUBE_TETS, dtype=np.int64)  # (6, 4) corner ids

    kept = cell_ids[n_in == 8]
    straddle_ids = cell_ids[(n_in > 0) & (n_in < 8)]
    n_straddle = straddle_ids.size

    pts_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []
    n_tets_cut = 0

    for start in range(0, n_straddle, chunk_cells):
        ids = straddle_ids[start : start + chunk_cells]
        cpids = grid.cell_point_ids(ids)
        gv = g_flat[cpids]  # (ns, 8)
        sv = scalars[cpids] if scalars is not None else gv
        i, j, k = grid.cell_ijk(ids)
        origins = np.stack([i, j, k], axis=1) * spacing + np.asarray(grid.origin)
        # Corner g / scalar / position per straddling cell, per cube tet,
        # cut as one batched (ns*6, 4) call instead of six passes.
        tg = gv[:, tets_arr].reshape(-1, 4)                   # (ns*6, 4)
        ts = sv[:, tets_arr].reshape(-1, 4)
        tet_off = corner_off[tets_arr]                        # (6, 4, 3)
        tpos = (origins[:, None, None, :] + tet_off[None, :, :, :]).reshape(-1, 4, 3)
        pts, vals, n_out = _cut_tets(tpos, tg, ts, keep_output)
        n_tets_cut += n_out
        if keep_output and pts is not None:
            pts_chunks.append(pts)
            val_chunks.append(vals)
    if keep_output and pts_chunks:
        points = np.vstack(pts_chunks)
        values = np.concatenate(val_chunks)
        tets = np.arange(points.shape[0], dtype=np.int64).reshape(-1, 4)
        cut = TetMesh(points, tets, values)
    else:
        cut = TetMesh.empty()
    return GridClipResult(kept, cut, n_tets_cut, n_straddle)


def clip_tet_soup(
    mesh: TetMesh, g_values: np.ndarray, *, keep_output: bool = True
) -> tuple[TetMesh, int]:
    """Clip an unstructured tet soup against per-point ``g >= 0``.

    Returns the clipped mesh and the number of tets that needed cutting
    (straddling input tets).  Scalars are interpolated to new vertices.
    """
    if mesh.n_tets == 0:
        return TetMesh.empty(), 0
    g = np.asarray(g_values, dtype=np.float64)
    if g.shape[0] != mesh.n_points:
        raise ValueError("g_values must be per-point")
    scal = mesh.scalars if mesh.scalars is not None else g

    tpos = mesh.points[mesh.tets]          # (n, 4, 3)
    tg = g[mesh.tets]                      # (n, 4)
    ts = scal[mesh.tets]
    pts, vals, n_cut_tets = _cut_tets(tpos, tg, ts, keep_output)
    straddling = int(np.any(tg >= 0, axis=1).sum() - np.all(tg >= 0, axis=1).sum())
    if not keep_output or pts is None:
        return TetMesh.empty(), straddling
    tets = np.arange(pts.shape[0], dtype=np.int64).reshape(-1, 4)
    return TetMesh(pts, tets, vals), straddling


def _cut_tets(
    tpos: np.ndarray, tg: np.ndarray, tscal: np.ndarray, keep_output: bool
) -> tuple[np.ndarray | None, np.ndarray | None, int]:
    """Cut a batch of tets against g >= 0; returns (points, scalars, n_tets).

    ``tpos`` is (n, 4, 3); ``tg``/``tscal`` are (n, 4).  Output points
    are tet-major: rows 4i..4i+3 form one tet.
    """
    inside = tg >= 0.0
    cases = inside @ (1 << np.arange(4))
    recipes = tet_cut_recipes()

    if not keep_output:
        # Counting only: one histogram instead of 15 scans.
        case_counts = np.bincount(cases, minlength=16)
        n_out = int(sum(case_counts[c] * len(recipes[c]) for c in range(1, 16)))
        return None, None, n_out

    out_pts: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    n_out = 0
    for case in range(1, 16):
        rows = np.nonzero(cases == case)[0]
        if rows.size == 0:
            continue
        recipe = recipes[case]
        n_out += rows.size * len(recipe)
        pos = tpos[rows]
        gv = tg[rows]
        sv = tscal[rows]
        for tet_recipe in recipe:
            verts_p = np.empty((rows.size, 4, 3))
            verts_s = np.empty((rows.size, 4))
            for vi, rv in enumerate(tet_recipe):
                if rv[0] == "c":
                    c = rv[1]
                    verts_p[:, vi] = pos[:, c]
                    verts_s[:, vi] = sv[:, c]
                else:
                    _, a, b = rv
                    t = gv[:, a] / (gv[:, a] - gv[:, b])
                    verts_p[:, vi] = pos[:, a] + t[:, None] * (pos[:, b] - pos[:, a])
                    verts_s[:, vi] = sv[:, a] + t * (sv[:, b] - sv[:, a])
            out_pts.append(verts_p.reshape(-1, 3))
            out_vals.append(verts_s.reshape(-1))
    if not out_pts:
        return None, None, n_out
    return np.vstack(out_pts), np.concatenate(out_vals), n_out
