"""Rendering support: cameras, color maps, and images.

Both rendering algorithms in the study (ray tracing and volume
rendering) build an "image database" of views orbiting the dataset —
:func:`orbit_cameras` reproduces that camera path.  Images are plain
float RGB arrays writable as PPM so the examples can dump real pictures
without any imaging dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["Camera", "orbit_cameras", "ColorMap", "Image"]


@dataclass(frozen=True)
class Camera:
    """A pinhole camera."""

    eye: np.ndarray
    look_at: np.ndarray
    up: np.ndarray
    fov_deg: float = 45.0

    def rays(self, width: int, height: int) -> tuple[np.ndarray, np.ndarray]:
        """Generate primary rays; returns (origins, directions).

        Directions are unit length; arrays have shape ``(w*h, 3)`` in
        row-major pixel order.
        """
        eye = np.asarray(self.eye, dtype=np.float64)
        look = np.asarray(self.look_at, dtype=np.float64)
        up = np.asarray(self.up, dtype=np.float64)

        forward = look - eye
        forward = forward / np.linalg.norm(forward)
        right = np.cross(forward, up)
        right = right / np.linalg.norm(right)
        true_up = np.cross(right, forward)

        tan_half = np.tan(np.radians(self.fov_deg) / 2.0)
        aspect = width / height
        # Pixel centers in NDC [-1, 1].
        xs = (np.arange(width) + 0.5) / width * 2.0 - 1.0
        ys = 1.0 - (np.arange(height) + 0.5) / height * 2.0
        px, py = np.meshgrid(xs, ys)
        dirs = (
            forward[None, :]
            + (px.ravel() * tan_half * aspect)[:, None] * right[None, :]
            + (py.ravel() * tan_half)[:, None] * true_up[None, :]
        )
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        origins = np.broadcast_to(eye, dirs.shape).copy()
        return origins, dirs


def orbit_cameras(
    bounds: np.ndarray, n: int, *, elevation_deg: float = 20.0, fov_deg: float = 45.0
) -> list[Camera]:
    """``n`` cameras orbiting the bounds at a fixed elevation.

    This is the study's "different camera positions around the data
    set" used to build the 50-image database each cycle.
    """
    if n < 1:
        raise ValueError("need at least one camera")
    bounds = np.asarray(bounds, dtype=np.float64)
    center = bounds.mean(axis=1)
    radius = 1.2 * float(np.linalg.norm(bounds[:, 1] - bounds[:, 0]))
    elev = np.radians(elevation_deg)
    cams = []
    for i in range(n):
        theta = 2.0 * np.pi * i / n
        eye = center + radius * np.array(
            [np.cos(theta) * np.cos(elev), np.sin(theta) * np.cos(elev), np.sin(elev)]
        )
        cams.append(Camera(eye=eye, look_at=center, up=np.array([0.0, 0.0, 1.0]), fov_deg=fov_deg))
    return cams


class ColorMap:
    """A piecewise-linear RGB color map over [0, 1]."""

    #: A compact cool-to-warm map (the default in the study's renderer).
    COOL_WARM = np.array(
        [
            [0.23, 0.30, 0.75],
            [0.55, 0.69, 1.00],
            [0.87, 0.87, 0.87],
            [0.96, 0.60, 0.49],
            [0.71, 0.02, 0.15],
        ]
    )

    def __init__(self, control_points: np.ndarray | None = None):
        self.table = np.asarray(
            control_points if control_points is not None else self.COOL_WARM, dtype=np.float64
        )
        if self.table.ndim != 2 or self.table.shape[1] != 3 or self.table.shape[0] < 2:
            raise ValueError("control points must be (k>=2, 3)")

    def __call__(self, t: np.ndarray) -> np.ndarray:
        """Map normalized scalars (clipped to [0,1]) to RGB (n, 3)."""
        t = np.clip(np.asarray(t, dtype=np.float64), 0.0, 1.0)
        k = self.table.shape[0] - 1
        x = t * k
        i = np.minimum(x.astype(np.int64), k - 1)
        frac = (x - i)[..., None]
        return self.table[i] * (1.0 - frac) + self.table[i + 1] * frac


@dataclass
class Image:
    """A float RGB framebuffer."""

    rgb: np.ndarray  # (h, w, 3) in [0, 1]

    @classmethod
    def blank(cls, width: int, height: int, color: tuple[float, float, float] = (0, 0, 0)) -> "Image":
        buf = np.empty((height, width, 3))
        buf[:] = color
        return cls(buf)

    @property
    def width(self) -> int:
        return self.rgb.shape[1]

    @property
    def height(self) -> int:
        return self.rgb.shape[0]

    def save_ppm(self, path: str | Path) -> Path:
        """Write a binary PPM (no imaging library needed).

        Written atomically: a gallery build killed mid-frame must not
        leave a torn image that a viewer (or a diff against a golden
        render) would half-read.
        """
        from ..core.atomicio import atomic_write_bytes  # deferred: viz sits below core

        path = Path(path)
        data = (np.clip(self.rgb, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
        header = f"P6\n{self.width} {self.height}\n255\n".encode()
        atomic_write_bytes(path, header + data.tobytes())
        return path
