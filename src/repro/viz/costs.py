"""Per-operation cost constants for every (algorithm, phase).

Each entry maps one *operation* recorded by a filter's op ledger (a cell
classified, a triangle generated, an RK4 step, a BVH node visited, ...)
to the retired instructions a VTK-m/TBB implementation spends on it on
the study's Broadwell node, plus the phase's memory-access character and
the per-op dependent-load stall cycles the out-of-order window cannot
hide.

These are the calibration surface of the reproduction: the *counts* come
from real algorithm executions; the *per-op costs* are fitted so the
eight algorithms land in the power/IPC/LLC bands Tables I–III and Fig. 2
report (EXPERIMENTS.md records fitted vs. paper values).  Everything
else — cache behavior, DVFS, RAPL — follows from the machine model with
no per-algorithm knobs.

Reading the fits: high ``stall_cycles`` relative to issue work is the
signature of the paper's data-bound, low-IPC, low-power class; FP/SIMD
dense mixes with near-zero stalls produce its compute-bound, high-power
class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload import AccessPattern

__all__ = ["PhaseCost", "COSTS", "mix_kwargs"]


def mix_kwargs(cost: "PhaseCost") -> dict:
    """Per-op instruction costs as keyword arguments for ``mix_per``."""
    return {
        "fp": cost.fp,
        "simd": cost.simd,
        "int_alu": cost.int_alu,
        "load": cost.load,
        "store": cost.store,
        "branch": cost.branch,
        "other": cost.other,
    }


@dataclass(frozen=True)
class PhaseCost:
    """Per-op instruction costs and the phase's memory character."""

    fp: float = 0.0
    simd: float = 0.0
    int_alu: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0
    other: float = 0.0
    pattern: AccessPattern = AccessPattern.STREAMING
    mlp: float = 8.0
    parallel_efficiency: float = 0.92
    #: Dependent-load / pipeline stall cycles per op the OoO window
    #: cannot hide (drives the low-IPC, low-power signature).
    stall_cycles: float = 0.0

    @property
    def instr_per_op(self) -> float:
        return self.fp + self.simd + self.int_alu + self.load + self.store + self.branch + self.other


COSTS: dict[tuple[str, str], PhaseCost] = {
    # ---------------------------------------------------------------- contour
    # classify: per (cell, isovalue) — gather 8 corners, build the case id.
    ("contour", "classify"): PhaseCost(
        fp=10, int_alu=150, load=250, store=50, branch=60, other=80,
        pattern=AccessPattern.STRIDED, mlp=12.0, parallel_efficiency=0.90,
        stall_cycles=500.0,
    ),
    # generate: per active cell — edge interpolation and triangle output.
    ("contour", "generate"): PhaseCost(
        fp=320, simd=60, int_alu=190, load=260, store=130, branch=60, other=80,
        pattern=AccessPattern.GATHER, mlp=5.0, parallel_efficiency=0.90,
        stall_cycles=300.0,
    ),
    # -------------------------------------------------------------- threshold
    # predicate (+scan): per cell — load value, compare, write stencil.
    ("threshold", "predicate"): PhaseCost(
        fp=2, int_alu=25, load=40, store=15, branch=12, other=8,
        pattern=AccessPattern.STREAMING, mlp=10.0, parallel_efficiency=0.92,
        stall_cycles=300.0,
    ),
    # compact: per kept cell — materialize output ids/connectivity/fields.
    ("threshold", "compact"): PhaseCost(
        int_alu=35, load=55, store=45, branch=8, other=12,
        pattern=AccessPattern.STREAMING, mlp=10.0, parallel_efficiency=0.92,
        stall_cycles=280.0,
    ),
    # ------------------------------------------------------------------- clip
    # evaluate: per point — distance to the sphere (FP, well pipelined).
    ("clip", "evaluate"): PhaseCost(
        fp=38, simd=8, int_alu=15, load=22, store=10, branch=4, other=9,
        pattern=AccessPattern.STREAMING, mlp=10.0, parallel_efficiency=0.94,
        stall_cycles=40.0,
    ),
    # classify: per cell — gather corner signs.
    ("clip", "classify"): PhaseCost(
        fp=2, int_alu=70, load=120, store=25, branch=30, other=33,
        pattern=AccessPattern.STRIDED, mlp=11.0, parallel_efficiency=0.92,
        stall_cycles=300.0,
    ),
    # cut: per straddling tetrahedron — interpolate and emit sub-tets.
    ("clip", "cut"): PhaseCost(
        fp=260, simd=60, int_alu=130, load=170, store=140, branch=45, other=65,
        pattern=AccessPattern.GATHER, mlp=4.5, parallel_efficiency=0.90,
        stall_cycles=280.0,
    ),
    # copy: per kept whole cell — pass geometry through to the output.
    ("clip", "copy"): PhaseCost(
        int_alu=40, load=65, store=55, branch=8, other=15,
        pattern=AccessPattern.STREAMING, mlp=10.0, parallel_efficiency=0.92,
        stall_cycles=200.0,
    ),
    # -------------------------------------------------------------- isovolume
    # classify: per (cell, pass) — like clip but with a warmer mix (the
    # interpolation weights are prefetched alongside), drawing more power.
    ("isovolume", "classify"): PhaseCost(
        fp=200, simd=130, int_alu=70, load=125, store=28, branch=30, other=35,
        pattern=AccessPattern.STRIDED, mlp=9.0, parallel_efficiency=0.92,
        stall_cycles=190.0,
    ),
    ("isovolume", "cut"): PhaseCost(
        fp=380, simd=140, int_alu=135, load=185, store=155, branch=48, other=70,
        pattern=AccessPattern.GATHER, mlp=3.5, parallel_efficiency=0.90,
        stall_cycles=220.0,
    ),
    ("isovolume", "copy"): PhaseCost(
        fp=10, simd=6, int_alu=42, load=70, store=60, branch=8, other=16,
        pattern=AccessPattern.STREAMING, mlp=10.0, parallel_efficiency=0.92,
        stall_cycles=170.0,
    ),
    # ------------------------------------------------------------------ slice
    # distance: per (point, plane) — signed distance (FP, streaming).
    ("slice", "distance"): PhaseCost(
        fp=30, simd=4, int_alu=14, load=16, store=9, branch=2, other=8,
        pattern=AccessPattern.STREAMING, mlp=10.0, parallel_efficiency=0.94,
        stall_cycles=45.0,
    ),
    ("slice", "classify"): PhaseCost(
        fp=6, int_alu=55, load=85, store=22, branch=20, other=22,
        pattern=AccessPattern.STRIDED, mlp=12.0, parallel_efficiency=0.92,
        stall_cycles=120.0,
    ),
    ("slice", "generate"): PhaseCost(
        fp=300, simd=55, int_alu=180, load=250, store=125, branch=55, other=75,
        pattern=AccessPattern.GATHER, mlp=5.0, parallel_efficiency=0.90,
        stall_cycles=300.0,
    ),
    # -------------------------------------------------------------- advection
    # step: per RK4 step — four trilinear evaluations plus integration;
    # FP/SIMD-dense, fully pipelined across the particle ensemble.
    ("advection", "step"): PhaseCost(
        fp=520, simd=485, int_alu=95, load=130, store=18, branch=30, other=52,
        pattern=AccessPattern.GATHER, mlp=16.0, parallel_efficiency=0.88,
        stall_cycles=0.0,
    ),
    # ------------------------------------------------------------- ray tracing
    # extract: per surface quad — external face to two triangles.
    ("raytrace", "extract"): PhaseCost(
        fp=60, simd=20, int_alu=75, load=110, store=65, branch=20, other=35,
        pattern=AccessPattern.STRIDED, mlp=9.0, parallel_efficiency=0.92,
        stall_cycles=110.0,
    ),
    # build: per triangle — BVH construction (sorts, partitions, boxes).
    ("raytrace", "build"): PhaseCost(
        fp=520, simd=340, int_alu=500, load=700, store=380, branch=220, other=250,
        pattern=AccessPattern.GATHER, mlp=4.0, parallel_efficiency=0.87,
        stall_cycles=500.0,
    ),
    # visit: per (ray, BVH node) — box test and stack step.
    ("raytrace", "visit"): PhaseCost(
        fp=34, simd=20, int_alu=8, load=9, store=1, branch=3, other=3,
        pattern=AccessPattern.RANDOM, mlp=3.0, parallel_efficiency=0.92,
        stall_cycles=8.0,
    ),
    # test: per (ray, triangle) — Möller–Trumbore plus shading on hit.
    ("raytrace", "test"): PhaseCost(
        fp=58, simd=14, int_alu=12, load=16, store=4, branch=6, other=8,
        pattern=AccessPattern.RANDOM, mlp=3.0, parallel_efficiency=0.92,
        stall_cycles=20.0,
    ),
    # ----------------------------------------------------------------- volume
    # sample: per (ray, sample) — trilinear fetch, transfer fn, blend.
    ("volume", "sample"): PhaseCost(
        fp=175, simd=80, int_alu=42, load=58, store=6, branch=12, other=25,
        pattern=AccessPattern.RANDOM, mlp=2.5, parallel_efficiency=0.90,
        stall_cycles=8.0,
    ),
}
