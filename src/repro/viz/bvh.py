"""Bounding-volume hierarchy: the ray tracer's spatial acceleration
structure (the paper: "ray tracing uses a spatial acceleration structure
to minimize the amount of intersection tests").

A linear BVH: triangles are sorted by the Morton code of their centroid,
grouped into fixed-size leaves, and a complete binary tree of AABBs is
built bottom-up — every stage a vectorized pass, so building the
hierarchy for the 256³ surface (≈0.8 M triangles) stays fast in NumPy.
Traversal is packetized: all active rays advance through their own
traversal stacks in lockstep, with per-step box tests and
Möller–Trumbore leaf tests done as array operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Bvh", "TraversalStats", "morton_codes"]

_MORTON_BITS = 10


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread 10 bits to every third bit position (Morton helper)."""
    x = x.astype(np.uint64) & np.uint64(0x3FF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x030000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x0300F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x030C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x09249249)
    return x


def morton_codes(points: np.ndarray, bounds_lo: np.ndarray, bounds_hi: np.ndarray) -> np.ndarray:
    """30-bit Morton codes of points within the given bounds."""
    span = np.maximum(bounds_hi - bounds_lo, 1e-300)
    q = np.clip((points - bounds_lo) / span, 0.0, 1.0)
    scale = (1 << _MORTON_BITS) - 1
    ql = (q * scale).astype(np.uint64)
    return (
        _part1by2(ql[:, 0]) | (_part1by2(ql[:, 1]) << np.uint64(1)) | (_part1by2(ql[:, 2]) << np.uint64(2))
    )


@dataclass
class TraversalStats:
    """Work done by one trace call (feeds the ray tracer's profile)."""

    node_visits: int = 0
    tri_tests: int = 0
    rays: int = 0


class Bvh:
    """Linear BVH over a triangle soup.

    Heap layout: node 1 is the root; node ``i`` has children ``2i`` and
    ``2i+1``; leaves occupy the last level and map to contiguous runs of
    ``leaf_size`` Morton-sorted triangles.
    """

    def __init__(self, points: np.ndarray, triangles: np.ndarray, *, leaf_size: int = 4):
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self.points = np.asarray(points, dtype=np.float64)
        tris = np.asarray(triangles, dtype=np.int64)
        self.leaf_size = int(leaf_size)
        n = tris.shape[0]
        if n == 0:
            raise ValueError("cannot build a BVH over zero triangles")

        v0, v1, v2 = (self.points[tris[:, k]] for k in range(3))
        centroids = (v0 + v1 + v2) / 3.0
        lo = centroids.min(axis=0)
        hi = centroids.max(axis=0)
        order = np.argsort(morton_codes(centroids, lo, hi), kind="stable")
        self.source_rows = order  # BVH row -> original triangle row
        self.tris = tris[order]
        v0, v1, v2 = v0[order], v1[order], v2[order]

        n_leaves = -(-n // self.leaf_size)
        self.n_levels = max(1, int(np.ceil(np.log2(max(n_leaves, 1)))) + 1)
        padded = 1 << (self.n_levels - 1)

        # Per-leaf AABBs (padded leaves get inverted boxes: never hit).
        leaf_lo = np.full((padded, 3), np.inf)
        leaf_hi = np.full((padded, 3), -np.inf)
        tmin = np.minimum(np.minimum(v0, v1), v2)
        tmax = np.maximum(np.maximum(v0, v1), v2)
        pad_n = n_leaves * self.leaf_size
        tmin_p = np.full((pad_n, 3), np.inf)
        tmax_p = np.full((pad_n, 3), -np.inf)
        tmin_p[:n] = tmin
        tmax_p[:n] = tmax
        leaf_lo[:n_leaves] = tmin_p.reshape(n_leaves, self.leaf_size, 3).min(axis=1)
        leaf_hi[:n_leaves] = tmax_p.reshape(n_leaves, self.leaf_size, 3).max(axis=1)

        # Complete tree: nodes 1 .. 2*padded-1; leaves at [padded, 2*padded).
        self.node_lo = np.full((2 * padded, 3), np.inf)
        self.node_hi = np.full((2 * padded, 3), -np.inf)
        self.node_lo[padded:] = leaf_lo
        self.node_hi[padded:] = leaf_hi
        level = padded
        while level > 1:  # merge children level by level, vectorized
            child_lo = self.node_lo[level : 2 * level].reshape(-1, 2, 3)
            child_hi = self.node_hi[level : 2 * level].reshape(-1, 2, 3)
            self.node_lo[level // 2 : level] = child_lo.min(axis=1)
            self.node_hi[level // 2 : level] = child_hi.max(axis=1)
            level //= 2
        self.first_leaf = padded
        self.n_leaves = n_leaves

    @property
    def n_triangles(self) -> int:
        return self.tris.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.node_lo.shape[0] - 1

    @property
    def nbytes(self) -> int:
        return self.node_lo.nbytes + self.node_hi.nbytes + self.tris.nbytes

    # ------------------------------------------------------------- traversal
    def trace(
        self, origins: np.ndarray, directions: np.ndarray, stats: TraversalStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-hit trace for a ray packet.

        Returns ``(t_hit, tri_index)``; misses have ``t_hit = inf`` and
        ``tri_index = -1``.
        """
        o = np.atleast_2d(np.asarray(origins, dtype=np.float64))
        d = np.atleast_2d(np.asarray(directions, dtype=np.float64))
        n_rays = o.shape[0]
        with np.errstate(divide="ignore"):
            inv_d = np.where(np.abs(d) > 1e-300, 1.0 / d, np.copysign(1e300, d))

        t_best = np.full(n_rays, np.inf)
        hit_tri = np.full(n_rays, -1, dtype=np.int64)

        max_stack = 2 * self.n_levels + 2
        stack = np.zeros((n_rays, max_stack), dtype=np.int64)
        sp = np.zeros(n_rays, dtype=np.int64)

        if stats is None:
            stats = TraversalStats()
        stats.rays += n_rays

        # Seed: push the root only for rays that hit its box at all.
        root_hit, _ = self._box_test(o, inv_d, t_best, np.ones(n_rays, dtype=np.int64))
        rows0 = np.nonzero(root_hit)[0]
        stack[rows0, 0] = 1
        sp[rows0] = 1
        stats.node_visits += n_rays

        # Active-set compaction: a ray leaves the working set exactly when
        # its stack empties, and nothing outside the working set can push
        # onto it, so the dense index array can be carried and filtered
        # instead of recomputed via nonzero on a boolean mask each round.
        rows = np.nonzero(sp > 0)[0]
        while rows.size:
            sp[rows] -= 1
            nodes = stack[rows, sp[rows]]
            stats.node_visits += rows.size

            internal = nodes < self.first_leaf
            irows, inodes = rows[internal], nodes[internal]
            if irows.size:
                # Test both children now; push survivors far-first so
                # the near child is expanded next (ordered descent lets
                # t_best prune the far subtree).
                left, right = 2 * inodes, 2 * inodes + 1
                lhit, lnear = self._box_test(o[irows], inv_d[irows], t_best[irows], left)
                rhit, rnear = self._box_test(o[irows], inv_d[irows], t_best[irows], right)
                left_near = lnear <= rnear
                first = np.where(left_near, right, left)    # pushed first = far
                second = np.where(left_near, left, right)   # pushed last = near
                fhit = np.where(left_near, rhit, lhit)
                shit = np.where(left_near, lhit, rhit)

                fr = irows[fhit]
                stack[fr, sp[fr]] = first[fhit]
                sp[fr] += 1
                sr = irows[shit]
                stack[sr, sp[sr]] = second[shit]
                sp[sr] += 1

            lrows, lnodes = rows[~internal], nodes[~internal]
            if lrows.size:
                self._leaf_test(o, d, lrows, lnodes - self.first_leaf, t_best, hit_tri, stats)

            rows = rows[sp[rows] > 0]
        return t_best, hit_tri

    def _box_test(
        self, o: np.ndarray, inv_d: np.ndarray, t_best: np.ndarray, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Slab test; returns (hit, tnear) for each (ray, node) pair."""
        lo = self.node_lo[nodes]
        hi = self.node_hi[nodes]
        t1 = (lo - o) * inv_d
        t2 = (hi - o) * inv_d
        tnear = np.minimum(t1, t2).max(axis=1)
        tfar = np.maximum(t1, t2).min(axis=1)
        hit = (tfar >= np.maximum(tnear, 0.0)) & (tnear < t_best)
        # Empty boxes (padding leaves are inverted, lo > hi) never hit —
        # ±inf bounds would otherwise pass the slab inequalities.
        hit &= lo[:, 0] <= hi[:, 0]
        return hit, tnear

    def _leaf_test(
        self,
        o: np.ndarray,
        d: np.ndarray,
        rows: np.ndarray,
        leaves: np.ndarray,
        t_best: np.ndarray,
        hit_tri: np.ndarray,
        stats: TraversalStats,
    ) -> None:
        """Möller–Trumbore over each leaf's triangles for the given rays."""
        n = self.n_triangles
        for k in range(self.leaf_size):
            tri_idx = leaves * self.leaf_size + k
            valid = tri_idx < n
            if not valid.any():
                break
            r = rows[valid]
            ti = tri_idx[valid]
            stats.tri_tests += r.size

            tri = self.tris[ti]
            p0 = self.points[tri[:, 0]]
            e1 = self.points[tri[:, 1]] - p0
            e2 = self.points[tri[:, 2]] - p0
            dv = d[r]
            pvec = np.cross(dv, e2)
            det = np.einsum("ij,ij->i", e1, pvec)
            ok = np.abs(det) > 1e-12
            inv_det = np.where(ok, 1.0 / np.where(ok, det, 1.0), 0.0)
            tvec = o[r] - p0
            u = np.einsum("ij,ij->i", tvec, pvec) * inv_det
            qvec = np.cross(tvec, e1)
            v = np.einsum("ij,ij->i", dv, qvec) * inv_det
            t = np.einsum("ij,ij->i", e2, qvec) * inv_det
            hit = ok & (u >= 0) & (v >= 0) & (u + v <= 1) & (t > 1e-9) & (t < t_best[r])
            hr = r[hit]
            t_best[hr] = t[hit]
            hit_tri[hr] = ti[hit]
