"""Volume rendering: ray marching with front-to-back compositing.

Per the paper: rays step through the volume sampling scalar values at
regular intervals; each sample maps through a transfer function to a
color with transparency, and samples blend along the ray.  Image-order,
FP-dense, the highest-IPC algorithm in the study; its IPC *falls* as the
dataset grows (Fig. 5) because the trilinear sampling's working set is
the whole scalar field, which stops fitting the LLC at 256³ — a capacity
effect the cache model produces without any per-size knob.
"""

from __future__ import annotations

import numpy as np

from ..data.fields import DataSet
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .costs import COSTS
from .interp import trilinear
from .render import ColorMap, Image, orbit_cameras

__all__ = ["VolumeRenderer"]


class VolumeRenderer(Filter):
    """Ray-marched volume renderer over an orbit image database.

    ``n_images`` are rendered for real; the profile is scaled to the
    study's ``images_per_cycle`` (default 50) since orbit views cost
    the same on average.
    """

    name = "volume"
    n_worklets = 3.0  # rays + march + composite

    def __init__(
        self,
        field: str = "energy",
        *,
        n_images: int = 2,
        images_per_cycle: int = 50,
        resolution: tuple[int, int] = (128, 128),
        samples_per_cell: float = 2.0,
        opacity: float = 0.06,
        early_termination: float = 0.98,
    ):
        if n_images < 1 or images_per_cycle < n_images:
            raise ValueError("need 1 <= n_images <= images_per_cycle")
        if samples_per_cell <= 0:
            raise ValueError("samples_per_cell must be positive")
        self.field = field
        self.n_images = int(n_images)
        self.images_per_cycle = int(images_per_cycle)
        self.resolution = (int(resolution[0]), int(resolution[1]))
        self.samples_per_cell = float(samples_per_cell)
        self.opacity = float(opacity)
        self.early_termination = float(early_termination)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "field": self.field,
            "n_images": self.n_images,
            "images_per_cycle": self.images_per_cycle,
            "resolution": self.resolution,
        }

    def _apply(self, dataset: DataSet, counts: OpCounts) -> list[Image]:
        grid = dataset.grid
        scal = dataset.point_field(self.field).values
        if scal.ndim != 1:
            raise ValueError("volume rendering requires a scalar field")
        lo, hi = float(scal.min()), float(scal.max())
        span = hi - lo if hi > lo else 1.0
        cmap = ColorMap()

        bounds = grid.bounds
        step = float(min(grid.spacing)) / self.samples_per_cell
        w, h = self.resolution
        images: list[Image] = []
        for cam in orbit_cameras(bounds, self.n_images):
            origins, dirs = cam.rays(w, h)
            img = self._march(grid, scal, origins, dirs, bounds, step, lo, span, cmap, counts)
            images.append(Image(img.reshape(h, w, 3)))
        counts.add("rays", self.n_images * w * h)
        return images

    def _march(
        self, grid, scal, origins, dirs, bounds, step, lo, span, cmap, counts
    ) -> np.ndarray:
        n = origins.shape[0]
        # Slab test: entry/exit parameters against the volume AABB.
        with np.errstate(divide="ignore"):
            inv = np.where(np.abs(dirs) > 1e-300, 1.0 / dirs, np.copysign(1e300, dirs))
        t1 = (bounds[:, 0][None, :] - origins) * inv
        t2 = (bounds[:, 1][None, :] - origins) * inv
        tnear = np.maximum(np.minimum(t1, t2).max(axis=1), 0.0)
        tfar = np.maximum(t1, t2).min(axis=1)

        color = np.zeros((n, 3))
        alpha = np.zeros(n)
        t = tnear + 0.5 * step
        # Active-set compaction: carry the dense index array of marching
        # rays and shrink it in place, instead of re-deriving it from a
        # boolean mask with nonzero + scattered fancy indexing each step.
        rows = np.nonzero(t < tfar)[0]
        while rows.size:
            pos = origins[rows] + t[rows, None] * dirs[rows]
            s, _ = trilinear(grid, scal, pos)
            counts.add("samples", rows.size)

            tn = (s - lo) / span
            rgb = cmap(tn)
            a = self.opacity * tn  # scalar-proportional opacity ramp
            # Front-to-back "over" compositing.
            trans = (1.0 - alpha[rows])[:, None]
            color[rows] += trans * (a[:, None] * rgb)
            alpha[rows] += (1.0 - alpha[rows]) * a

            t[rows] += step
            rows = rows[(t[rows] < tfar[rows]) & (alpha[rows] < self.early_termination)]
        # Composite over a dark background.
        bg = np.array([0.08, 0.08, 0.10])
        return color + (1.0 - alpha)[:, None] * bg

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        scale = self.images_per_cycle / self.n_images
        sa = COSTS[("volume", "sample")]
        samples = counts["samples"] * scale
        field_bytes = float(grid.n_points * 8)
        return [
            segment_from_cost(
                "march",
                samples,
                sa,
                # Adjacent rays sample adjacent cells, so most of the 8
                # corner fetches hit L1; ~1 new double per sample reaches
                # the memory system.
                bytes_read=samples * 10.0,
                bytes_written=counts["rays"] * 16.0 * scale,
                working_set_bytes=field_bytes,
            )
        ]
