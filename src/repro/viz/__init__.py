"""The eight visualization algorithms of the study (VTK-m substitute).

:data:`ALGORITHMS` maps study names to factories configured with the
paper's defaults (10 isovalues for contour, 3 planes for slice, a
50-image orbit database for the renderers, fixed seeds/steps for
advection) — the registry every sweep iterates over.
"""

from __future__ import annotations

from typing import Callable

from .advection import ParticleAdvection, seed_grid
from .base import Filter, FilterResult, OpCounts, framework_segment, mix_per
from .bvh import Bvh, TraversalStats
from .clip import ClipOutput, SphericalClip
from .contour import Contour, default_isovalues
from .histogram import Histogram
from .costs import COSTS, PhaseCost
from .interp import trilinear
from .isovolume import Isovolume, IsovolumeOutput
from .raytrace import RayTracer, external_surface
from .render import Camera, ColorMap, Image, orbit_cameras
from .slicer import Slice
from .tetclip import clip_grid_cells, clip_tet_soup, tet_cut_recipes
from .threshold import Threshold
from .volume import VolumeRenderer

#: Study algorithm registry, in the paper's presentation order (Fig. 1).
ALGORITHMS: dict[str, Callable[[], Filter]] = {
    "contour": lambda: Contour(keep_output=False),
    "threshold": lambda: Threshold(),
    "clip": lambda: SphericalClip(keep_output=False),
    "isovolume": lambda: Isovolume(keep_output=False),
    "slice": lambda: Slice(keep_output=False),
    "advection": lambda: ParticleAdvection(),
    "raytrace": lambda: RayTracer(),
    "volume": lambda: VolumeRenderer(),
}

#: The paper's cell-centered subset (Fig. 3's elements/second plot).
CELL_CENTERED = ("contour", "isovolume", "slice", "clip", "threshold")

__all__ = [
    "ALGORITHMS",
    "CELL_CENTERED",
    "Filter",
    "FilterResult",
    "OpCounts",
    "framework_segment",
    "mix_per",
    "Contour",
    "default_isovalues",
    "Histogram",
    "Threshold",
    "SphericalClip",
    "ClipOutput",
    "Isovolume",
    "IsovolumeOutput",
    "Slice",
    "ParticleAdvection",
    "seed_grid",
    "RayTracer",
    "external_surface",
    "VolumeRenderer",
    "Bvh",
    "TraversalStats",
    "Camera",
    "ColorMap",
    "Image",
    "orbit_cameras",
    "trilinear",
    "clip_grid_cells",
    "clip_tet_soup",
    "tet_cut_recipes",
    "COSTS",
    "PhaseCost",
]
