"""Isovolume: keep the region where ``lo <= scalar <= hi``.

Per the paper, isovolume is clip with a scalar range instead of an
implicit surface: cells fully inside the range pass through, cells fully
outside are removed, straddling cells are subdivided.  Implemented as
two sequential tetrahedral clips — first against ``scalar - lo >= 0``,
then the survivors against ``hi - scalar >= 0`` — exactly how VTK's
two-sided isovolume composes one-sided clips.  The double pass over the
scalar field plus the heavy tet output is what gives isovolume the
highest LLC miss rate in the study (Fig. 2c).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from ..data.fields import Association, DataSet
from ..data.grid import corner_gather, slab_corner_reduce
from ..data.mesh import CellSubset, TetMesh
from ..data.tiling import k_slabs, pick_tile_planes
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .clip import _kept_cell_values
from .costs import COSTS
from .tetclip import _assemble_tets, clip_tet_soup, cut_cell_batch

__all__ = ["Isovolume", "IsovolumeOutput"]

#: Live working bytes per cell for one fused isovolume tile: the scalar
#: slab (8 B/point ≈ 8 B/cell), two sign fields, two uint8 corner-count
#: arrays, and the kept/straddle index scratch.
_TILE_BYTES_PER_CELL = 56.0


@dataclass
class IsovolumeOutput:
    """Whole kept cells plus cut tets from both range boundaries."""

    kept: CellSubset
    cut: TetMesh

    def total_volume(self, cell_volume: float) -> float:
        return self.kept.n_cells * cell_volume + self.cut.total_volume()


class Isovolume(Filter):
    """Two-sided scalar-range clip.

    Default range is the middle half of the field's value range (25th to
    75th percentile of the span), which keeps a substantial volume with
    two active boundaries — matching the study's rendering.
    """

    name = "isovolume"
    n_worklets = 6.0  # two classify/cut/copy passes

    def __init__(
        self,
        field: str = "energy",
        lo: float | None = None,
        hi: float | None = None,
        *,
        chunk_cells: int = 1 << 20,
        keep_output: bool = True,
    ):
        self.field = field
        self.lo = lo
        self.hi = hi
        self.chunk_cells = int(chunk_cells)
        self.keep_output = keep_output

    def describe(self) -> dict:
        return {"name": self.name, "field": self.field, "lo": self.lo, "hi": self.hi}

    supports_sharding = True

    def _apply(self, dataset: DataSet, counts: OpCounts) -> IsovolumeOutput:
        state = self._shard_state(dataset)
        payload = self._apply_span(state, counts, 0, dataset.grid.cell_dims[2])
        return self._finish(state, counts, [payload])

    def _shard_state(self, dataset: DataSet) -> SimpleNamespace:
        grid = dataset.grid
        s = dataset.point_field(self.field).values
        if s.ndim != 1:
            raise ValueError("isovolume requires a scalar field")
        vmin, vmax = float(s.min()), float(s.max())
        lo = self.lo if self.lo is not None else vmin + 0.25 * (vmax - vmin)
        hi = self.hi if self.hi is not None else vmin + 0.75 * (vmax - vmin)
        if lo > hi:
            raise ValueError(f"lo ({lo}) must not exceed hi ({hi})")

        nx, ny, nz = grid.cell_dims
        field = dataset.field(self.field)
        return SimpleNamespace(
            grid=grid,
            s=s,
            lat=s.reshape(nz + 1, ny + 1, nx + 1),
            lo=lo,
            hi=hi,
            cell_lat=(
                field.values.reshape(nz, ny, nx)
                if field.association is Association.CELL
                else None
            ),
            point_lat=s.reshape(nz + 1, ny + 1, nx + 1),
            cell_scal_dense=None,
            tile=pick_tile_planes(
                nx * ny, _TILE_BYTES_PER_CELL, n_planes=nz, ceiling_cells=self.chunk_cells
            ),
        )

    def _apply_span(
        self, state: SimpleNamespace, counts: OpCounts, k_lo: int, k_hi: int
    ) -> SimpleNamespace:
        # Fused two-sided classification: one sweep over the scalar slab
        # computes both boundary sign counts (s >= lo and s <= hi — the
        # same sign tests the sequential s-lo / hi-s formulation makes),
        # so the scalar field is read once per tile instead of twice per
        # pass over the whole grid.  Cells splitting at the lo boundary
        # are cut against g = s - lo; survivors of pass 1 splitting at
        # the hi boundary are cut against g = hi - s — exactly VTK's
        # composed one-sided clips, with identical counts per pass.
        grid = state.grid
        lo, hi = state.lo, state.hi
        nx, ny, _ = grid.cell_dims
        px, py = nx + 1, ny + 1
        kept2_chunks: list[np.ndarray] = []
        kept2_val_chunks: list[np.ndarray] = []
        pts1_chunks: list[np.ndarray] = []
        val1_chunks: list[np.ndarray] = []
        pts2_chunks: list[np.ndarray] = []
        val2_chunks: list[np.ndarray] = []
        n_straddle1 = 0
        n_straddle2 = 0
        n_kept1 = 0
        n_tets_cut1 = 0
        n_tets_cut2 = 0
        for k0, k1 in k_slabs(k_lo, k_hi, state.tile):
            kz = k1 - k0
            slab = state.lat[k0 : k1 + 1]
            n_lo = slab_corner_reduce((slab >= lo).view(np.uint8), np.add)
            n_hi = slab_corner_reduce((slab <= hi).view(np.uint8), np.add)
            kept1_local = np.nonzero(n_lo == 8)[0]
            straddle1_local = np.nonzero((n_lo > 0) & (n_lo < 8))[0]
            n_hi_k = n_hi[kept1_local]
            kept2_local = kept1_local[n_hi_k == 8]
            straddle2_local = kept1_local[(n_hi_k > 0) & (n_hi_k < 8)]
            cell_base = k0 * ny * nx
            n_kept1 += kept1_local.size
            n_straddle1 += straddle1_local.size
            n_straddle2 += straddle2_local.size
            if kept2_local.size:
                kept2_chunks.append(kept2_local + cell_base)
                kept2_val_chunks.append(_kept_cell_values(state, k0, k1, kept2_local))
            base_l, strides = corner_gather((nx, ny, kz))
            s_slab_flat = slab.reshape(-1)
            for boundary_local, sign, pts_chunks, val_chunks in (
                (straddle1_local, +1, pts1_chunks, val1_chunks),
                (straddle2_local, -1, pts2_chunks, val2_chunks),
            ):
                if boundary_local.size == 0:
                    continue
                for start in range(0, boundary_local.size, self.chunk_cells):
                    loc = boundary_local[start : start + self.chunk_cells]
                    lpids = base_l[loc][:, None] + strides[None, :]
                    sv = s_slab_flat[lpids]
                    gv = sv - lo if sign > 0 else hi - sv
                    pts, vals, n_out = cut_cell_batch(
                        grid, loc + cell_base, gv, sv, self.keep_output
                    )
                    if sign > 0:
                        n_tets_cut1 += n_out
                    else:
                        n_tets_cut2 += n_out
                    if self.keep_output and pts is not None:
                        pts_chunks.append(pts)
                        val_chunks.append(vals)
        counts.add("cells_classified", (k_hi - k_lo) * ny * nx)
        counts.add("tets_cut", n_straddle1 * 6)
        counts.add("cells_classified", n_kept1)
        counts.add("tets_cut", n_straddle2 * 6)
        counts.add("cells_kept_whole", sum(c.size for c in kept2_chunks))
        counts.add("tets_emitted", n_tets_cut1 + n_tets_cut2)
        return SimpleNamespace(
            kept=kept2_chunks,
            kept_vals=kept2_val_chunks,
            pts1=pts1_chunks,
            vals1=val1_chunks,
            pts2=pts2_chunks,
            vals2=val2_chunks,
        )

    def _finish(
        self, state: SimpleNamespace, counts: OpCounts, payloads: list[SimpleNamespace]
    ) -> IsovolumeOutput:
        kept_chunks = [c for p in payloads for c in p.kept]
        kept_ids = (
            np.concatenate(kept_chunks) if kept_chunks else np.empty(0, dtype=np.int64)
        )
        kept_vals = [c for p in payloads for c in p.kept_vals]
        kept_scal = np.concatenate(kept_vals) if kept_vals else np.empty(0)

        # Pass 2b: pass-1 cut tets clipped against scalar <= hi.  Only
        # reachable with keep_output=True (the counting configuration
        # never materializes the pass-1 soup, matching the sequential
        # formulation where an empty r1.cut skips the soup clip and its
        # ledger contribution).
        cut1 = _assemble_tets(
            [c for p in payloads for c in p.pts1], [c for p in payloads for c in p.vals1]
        )
        if cut1.n_tets:
            g2 = state.hi - np.asarray(cut1.scalars)
            cut1b, straddling = clip_tet_soup(cut1, g2, keep_output=self.keep_output)
            counts.add("tets_cut", straddling)
            counts.add("tets_emitted", cut1b.n_tets)
        else:
            cut1b = TetMesh.empty()

        cut2 = (
            _assemble_tets(
                [c for p in payloads for c in p.pts2],
                [c for p in payloads for c in p.vals2],
            )
            if self.keep_output
            else TetMesh.empty()
        )
        cut = cut2.merged_with(cut1b) if cut1b.n_tets else cut2
        return IsovolumeOutput(kept=CellSubset(kept_ids, kept_scal), cut=cut)

    def apply_shard(
        self, dataset: DataSet, counts: OpCounts, shard: int, n_shards: int
    ) -> None:
        if self.keep_output:
            # Pass 2b's ledger contribution lives in _finish and needs
            # the merged pass-1 soup; shard ledgers are only exact for
            # the counting configuration the engine profiles with.
            raise ValueError("isovolume shard ledgers require keep_output=False")
        super().apply_shard(dataset, counts, shard, n_shards)

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        point_bytes = float(grid.n_points * 8)
        cl = COSTS[("isovolume", "classify")]
        cut = COSTS[("isovolume", "cut")]
        cp = COSTS[("isovolume", "copy")]
        return [
            segment_from_cost(
                "classify",
                counts["cells_classified"],
                cl,
                bytes_read=point_bytes * 2.0,  # two passes over the scalar
                bytes_written=counts["cells_classified"] * 1.0,
                working_set_bytes=point_bytes,
                reuse_passes=2.0,
            ),
            segment_from_cost(
                "cut",
                counts["tets_cut"],
                cut,
                bytes_read=counts["tets_cut"] * 4 * 16.0,
                bytes_written=counts["tets_emitted"] * 4 * 32.0,
                working_set_bytes=counts["tets_emitted"] * 128.0,
            ),
            segment_from_cost(
                "copy",
                counts["cells_kept_whole"],
                cp,
                bytes_read=counts["cells_kept_whole"] * 48.0,
                bytes_written=counts["cells_kept_whole"] * 48.0,
                working_set_bytes=counts["cells_kept_whole"] * 48.0,
            ),
        ]
