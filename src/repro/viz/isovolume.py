"""Isovolume: keep the region where ``lo <= scalar <= hi``.

Per the paper, isovolume is clip with a scalar range instead of an
implicit surface: cells fully inside the range pass through, cells fully
outside are removed, straddling cells are subdivided.  Implemented as
two sequential tetrahedral clips — first against ``scalar - lo >= 0``,
then the survivors against ``hi - scalar >= 0`` — exactly how VTK's
two-sided isovolume composes one-sided clips.  The double pass over the
scalar field plus the heavy tet output is what gives isovolume the
highest LLC miss rate in the study (Fig. 2c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.fields import DataSet
from ..data.mesh import CellSubset, TetMesh
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .costs import COSTS
from .tetclip import clip_grid_cells, clip_tet_soup

__all__ = ["Isovolume", "IsovolumeOutput"]


@dataclass
class IsovolumeOutput:
    """Whole kept cells plus cut tets from both range boundaries."""

    kept: CellSubset
    cut: TetMesh

    def total_volume(self, cell_volume: float) -> float:
        return self.kept.n_cells * cell_volume + self.cut.total_volume()


class Isovolume(Filter):
    """Two-sided scalar-range clip.

    Default range is the middle half of the field's value range (25th to
    75th percentile of the span), which keeps a substantial volume with
    two active boundaries — matching the study's rendering.
    """

    name = "isovolume"
    n_worklets = 6.0  # two classify/cut/copy passes

    def __init__(
        self,
        field: str = "energy",
        lo: float | None = None,
        hi: float | None = None,
        *,
        chunk_cells: int = 1 << 20,
        keep_output: bool = True,
    ):
        self.field = field
        self.lo = lo
        self.hi = hi
        self.chunk_cells = int(chunk_cells)
        self.keep_output = keep_output

    def describe(self) -> dict:
        return {"name": self.name, "field": self.field, "lo": self.lo, "hi": self.hi}

    def _apply(self, dataset: DataSet, counts: OpCounts) -> IsovolumeOutput:
        grid = dataset.grid
        s = dataset.point_field(self.field).values
        if s.ndim != 1:
            raise ValueError("isovolume requires a scalar field")
        vmin, vmax = float(s.min()), float(s.max())
        lo = self.lo if self.lo is not None else vmin + 0.25 * (vmax - vmin)
        hi = self.hi if self.hi is not None else vmin + 0.75 * (vmax - vmin)
        if lo > hi:
            raise ValueError(f"lo ({lo}) must not exceed hi ({hi})")

        # Pass 1: keep scalar >= lo on the structured grid.
        r1 = clip_grid_cells(
            grid, s - lo, scalars=s, chunk_cells=self.chunk_cells, keep_output=self.keep_output
        )
        counts.add("cells_classified", grid.n_cells)
        counts.add("tets_cut", r1.n_cells_straddling * 6)

        # Pass 2a: survivors of pass 1 clipped against scalar <= hi.
        r2 = clip_grid_cells(
            grid,
            hi - s,
            scalars=s,
            cell_ids=r1.kept_cell_ids,
            chunk_cells=self.chunk_cells,
            keep_output=self.keep_output,
        )
        counts.add("cells_classified", r1.kept_cell_ids.size)
        counts.add("tets_cut", r2.n_cells_straddling * 6)

        # Pass 2b: pass-1 cut tets clipped against scalar <= hi.
        if r1.cut.n_tets:
            g2 = hi - np.asarray(r1.cut.scalars)
            cut1b, straddling = clip_tet_soup(r1.cut, g2, keep_output=self.keep_output)
            counts.add("tets_cut", straddling)
        else:
            cut1b = TetMesh.empty()

        counts.add("cells_kept_whole", r2.kept_cell_ids.size)
        counts.add(
            "tets_emitted", r1.n_tets_cut + r2.n_tets_cut + cut1b.n_tets
        )

        cut = r2.cut.merged_with(cut1b) if cut1b.n_tets else r2.cut
        cell_scal = dataset.cell_field(self.field).values
        kept = CellSubset(r2.kept_cell_ids, cell_scal[r2.kept_cell_ids])
        return IsovolumeOutput(kept=kept, cut=cut)

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        grid = dataset.grid
        point_bytes = float(grid.n_points * 8)
        cl = COSTS[("isovolume", "classify")]
        cut = COSTS[("isovolume", "cut")]
        cp = COSTS[("isovolume", "copy")]
        return [
            segment_from_cost(
                "classify",
                counts["cells_classified"],
                cl,
                bytes_read=point_bytes * 2.0,  # two passes over the scalar
                bytes_written=counts["cells_classified"] * 1.0,
                working_set_bytes=point_bytes,
                reuse_passes=2.0,
            ),
            segment_from_cost(
                "cut",
                counts["tets_cut"],
                cut,
                bytes_read=counts["tets_cut"] * 4 * 16.0,
                bytes_written=counts["tets_emitted"] * 4 * 32.0,
                working_set_bytes=counts["tets_emitted"] * 128.0,
            ),
            segment_from_cost(
                "copy",
                counts["cells_kept_whole"],
                cp,
                bytes_read=counts["cells_kept_whole"] * 48.0,
                bytes_written=counts["cells_kept_whole"] * 48.0,
                working_set_bytes=counts["cells_kept_whole"] * 48.0,
            ),
        ]
