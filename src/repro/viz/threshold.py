"""Threshold: keep cells whose scalar lies in a value range.

The paper's description: iterate over every cell, compare against a
value range, keep matching cells.  Output is the kept cell subset with
its field values — a streaming, load/store-dominated pass, which is why
threshold shows the lowest IPC of the eight algorithms (Fig. 2b).
"""

from __future__ import annotations

import numpy as np

from ..data.fields import DataSet
from ..data.mesh import CellSubset
from ..workload import WorkSegment
from .base import Filter, OpCounts, segment_from_cost
from .costs import COSTS

__all__ = ["Threshold"]


class Threshold(Filter):
    """Keep cells with ``lo <= value <= hi``.

    Defaults mirror the study: the range is the upper half of the
    field's value range, keeping a substantial subset.
    """

    name = "threshold"
    n_worklets = 3.0  # predicate + scan + compact

    def __init__(self, field: str = "energy", lo: float | None = None, hi: float | None = None):
        self.field = field
        self.lo = lo
        self.hi = hi

    def describe(self) -> dict:
        return {"name": self.name, "field": self.field, "lo": self.lo, "hi": self.hi}

    def _apply(self, dataset: DataSet, counts: OpCounts) -> CellSubset:
        values = dataset.cell_field(self.field).values
        if values.ndim != 1:
            raise ValueError("threshold requires a scalar field")
        lo, hi = self.lo, self.hi
        if lo is None or hi is None:
            vmin, vmax = float(values.min()), float(values.max())
            mid = 0.5 * (vmin + vmax)
            lo = mid if lo is None else lo
            hi = vmax if hi is None else hi

        counts.add("cells_scanned", values.size)
        mask = (values >= lo) & (values <= hi)
        kept = np.nonzero(mask)[0]
        counts.add("cells_kept", kept.size)
        return CellSubset(cell_ids=kept, cell_scalars=values[kept])

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        cell_bytes = float(dataset.grid.n_cells * 8)
        pred = COSTS[("threshold", "predicate")]
        comp = COSTS[("threshold", "compact")]
        kept = counts["cells_kept"]
        return [
            # predicate + scan: two sweeps over the cell field.
            segment_from_cost(
                "predicate",
                counts["cells_scanned"],
                pred,
                bytes_read=cell_bytes * 2.0,
                bytes_written=counts["cells_scanned"] * 5.0,  # stencil + offsets
                working_set_bytes=cell_bytes,
                reuse_passes=2.0,
            ),
            # compact: materialize the output cell set (ids, connectivity,
            # copied fields) — the store-heavy phase.
            segment_from_cost(
                "compact",
                kept,
                comp,
                bytes_read=kept * 48.0,
                bytes_written=kept * 48.0,
                working_set_bytes=kept * 48.0,
            ),
        ]
