"""Histogram: a ninth algorithm, outside the paper's studied set.

The paper's §VIII: "Other visualization algorithms should be classified
so informed decisions can be made regarding how to allocate power."
Histogramming/binning is the canonical in-situ *data reduction* operator
(Ascent ships one) and an obvious next candidate: a single streaming
pass with scatter-increment updates — structurally even more data-bound
than threshold.  The tests use it to show the sweep classifier and the
one-run predictor agree on an algorithm neither was tuned against.
"""

from __future__ import annotations

import numpy as np

from ..data.fields import DataSet
from ..workload import AccessPattern, WorkSegment
from .base import Filter, OpCounts, mix_per

__all__ = ["Histogram"]

# Per-op costs, in line with the calibrated table in costs.py: a bin
# update is a load, an index computation, and a scatter increment, with
# a dependent-access stall (the bin array is write-shared).
_BIN_COST = dict(fp=2, int_alu=18, load=22, store=12, branch=6, other=8)
_BIN_STALL = 140.0


class Histogram(Filter):
    """Bin a cell scalar field into a fixed-width histogram.

    Output is ``(edges, counts)``; the op ledger records cells binned.
    """

    name = "histogram"
    n_worklets = 2.0  # bin + reduce

    def __init__(self, field: str = "energy", *, n_bins: int = 256):
        if n_bins < 1:
            raise ValueError("n_bins must be positive")
        self.field = field
        self.n_bins = int(n_bins)

    def describe(self) -> dict:
        return {"name": self.name, "field": self.field, "n_bins": self.n_bins}

    def _apply(self, dataset: DataSet, counts: OpCounts) -> tuple[np.ndarray, np.ndarray]:
        values = dataset.cell_field(self.field).values
        if values.ndim != 1:
            raise ValueError("histogram requires a scalar field")
        hist, edges = np.histogram(values, bins=self.n_bins)
        counts.add("cells_binned", values.size)
        counts.add("bins", self.n_bins)
        return edges, hist

    def _segments(self, dataset: DataSet, counts: OpCounts) -> list[WorkSegment]:
        cells = counts["cells_binned"]
        cell_bytes = float(dataset.grid.n_cells * 8)
        return [
            WorkSegment(
                name="bin",
                mix=mix_per(cells, **_BIN_COST),
                bytes_read=cell_bytes,
                bytes_written=counts["bins"] * 8.0,
                working_set_bytes=cell_bytes,
                pattern=AccessPattern.STREAMING,
                mlp=10.0,
                parallel_efficiency=0.90,
                extra_stall_cycles=cells * _BIN_STALL,
            )
        ]
