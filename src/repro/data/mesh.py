"""Output geometry types produced by the visualization filters.

Filters produce one of three shapes, mirroring VTK-m's output datasets:

* :class:`TriangleMesh` — contour, slice, and clip boundary surfaces.
* :class:`PolyLines` — particle advection streamlines.
* :class:`CellSubset` / :class:`TetMesh` — threshold keeps whole hex
  cells; clip and isovolume emit unstructured tetrahedra.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TriangleMesh", "PolyLines", "CellSubset", "TetMesh"]


@dataclass
class TriangleMesh:
    """An indexed triangle soup with optional per-vertex scalars.

    ``points`` is ``(n, 3)`` float64; ``triangles`` is ``(m, 3)`` int64
    indices into ``points``; ``scalars`` (if present) is ``(n,)``.
    """

    points: np.ndarray
    triangles: np.ndarray
    scalars: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64).reshape(-1, 3)
        self.triangles = np.asarray(self.triangles, dtype=np.int64).reshape(-1, 3)
        if self.scalars is not None:
            self.scalars = np.asarray(self.scalars, dtype=np.float64).reshape(-1)
            if self.scalars.shape[0] != self.points.shape[0]:
                raise ValueError("scalars length must match number of points")
        if self.triangles.size and self.triangles.max(initial=-1) >= self.points.shape[0]:
            raise ValueError("triangle index out of range")
        if self.triangles.size and self.triangles.min(initial=0) < 0:
            raise ValueError("negative triangle index")

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def n_triangles(self) -> int:
        return self.triangles.shape[0]

    def triangle_normals(self, *, normalize: bool = True) -> np.ndarray:
        """Per-triangle normals via the right-hand rule; ``(m, 3)``."""
        p = self.points
        t = self.triangles
        e1 = p[t[:, 1]] - p[t[:, 0]]
        e2 = p[t[:, 2]] - p[t[:, 0]]
        n = np.cross(e1, e2)
        if normalize:
            lens = np.linalg.norm(n, axis=1, keepdims=True)
            np.divide(n, lens, out=n, where=lens > 0)
        return n

    def area(self) -> float:
        """Total surface area."""
        n = self.triangle_normals(normalize=False)
        return float(0.5 * np.linalg.norm(n, axis=1).sum())

    def merged_with(self, other: "TriangleMesh") -> "TriangleMesh":
        """Concatenate two meshes (indices re-based)."""
        pts = np.vstack([self.points, other.points])
        tris = np.vstack([self.triangles, other.triangles + self.n_points])
        sc = None
        if self.scalars is not None and other.scalars is not None:
            sc = np.concatenate([self.scalars, other.scalars])
        return TriangleMesh(pts, tris, sc)

    def welded(self, *, tolerance: float = 1e-9) -> "TriangleMesh":
        """Merge coincident vertices (within ``tolerance``) into a shared,
        indexed mesh.

        The contour/slice filters emit triangle soup (three fresh
        vertices per triangle, as VTK-m's fast path does); welding
        recovers connectivity for downstream consumers and for
        watertightness checks.  Degenerate (zero-area after welding)
        triangles are dropped.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.n_points == 0:
            return TriangleMesh.empty()
        key = np.round(self.points / tolerance).astype(np.int64)
        uniq, first_idx, inverse = np.unique(
            key, axis=0, return_index=True, return_inverse=True
        )
        points = self.points[first_idx]
        tris = inverse[self.triangles]
        ok = (
            (tris[:, 0] != tris[:, 1])
            & (tris[:, 1] != tris[:, 2])
            & (tris[:, 0] != tris[:, 2])
        )
        scalars = self.scalars[first_idx] if self.scalars is not None else None
        return TriangleMesh(points, tris[ok], scalars)

    @classmethod
    def empty(cls) -> "TriangleMesh":
        return cls(np.empty((0, 3)), np.empty((0, 3), dtype=np.int64), np.empty(0))


@dataclass
class PolyLines:
    """A bundle of polylines (streamlines).

    ``points`` is ``(n, 3)``; ``offsets`` is ``(k + 1,)`` — line ``i``
    spans ``points[offsets[i]:offsets[i+1]]``.
    """

    points: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64).reshape(-1, 3)
        self.offsets = np.asarray(self.offsets, dtype=np.int64).reshape(-1)
        if self.offsets.size < 1 or self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if self.offsets[-1] != self.points.shape[0]:
            raise ValueError("offsets must end at the number of points")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    @property
    def n_lines(self) -> int:
        return self.offsets.size - 1

    def line(self, i: int) -> np.ndarray:
        """Points of line ``i`` as an ``(m, 3)`` view."""
        return self.points[self.offsets[i] : self.offsets[i + 1]]

    def lengths(self) -> np.ndarray:
        """Arc length of every line; ``(k,)``."""
        out = np.zeros(self.n_lines)
        for i in range(self.n_lines):
            pts = self.line(i)
            if pts.shape[0] > 1:
                out[i] = np.linalg.norm(np.diff(pts, axis=0), axis=1).sum()
        return out

    def total_steps(self) -> int:
        """Total advection steps represented (points minus one per line)."""
        return int(self.points.shape[0] - self.n_lines)


@dataclass
class CellSubset:
    """Whole hexahedral cells kept from a source grid (threshold output)."""

    cell_ids: np.ndarray
    cell_scalars: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.cell_ids = np.asarray(self.cell_ids, dtype=np.int64).reshape(-1)
        if self.cell_scalars is not None:
            self.cell_scalars = np.asarray(self.cell_scalars, dtype=np.float64).reshape(-1)
            if self.cell_scalars.shape[0] != self.cell_ids.shape[0]:
                raise ValueError("cell_scalars length must match cell_ids")

    @property
    def n_cells(self) -> int:
        return self.cell_ids.shape[0]


@dataclass
class TetMesh:
    """Unstructured tetrahedra (clip / isovolume output).

    ``points`` is ``(n, 3)``; ``tets`` is ``(m, 4)`` indices; ``scalars``
    optional per-point values.
    """

    points: np.ndarray
    tets: np.ndarray
    scalars: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64).reshape(-1, 3)
        self.tets = np.asarray(self.tets, dtype=np.int64).reshape(-1, 4)
        if self.scalars is not None:
            self.scalars = np.asarray(self.scalars, dtype=np.float64).reshape(-1)
            if self.scalars.shape[0] != self.points.shape[0]:
                raise ValueError("scalars length must match number of points")
        if self.tets.size and self.tets.max(initial=-1) >= self.points.shape[0]:
            raise ValueError("tet index out of range")

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def n_tets(self) -> int:
        return self.tets.shape[0]

    def volumes(self) -> np.ndarray:
        """Signed volume of every tet; ``(m,)``."""
        p = self.points
        t = self.tets
        a = p[t[:, 1]] - p[t[:, 0]]
        b = p[t[:, 2]] - p[t[:, 0]]
        c = p[t[:, 3]] - p[t[:, 0]]
        return np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0

    def total_volume(self) -> float:
        """Total unsigned volume."""
        return float(np.abs(self.volumes()).sum())

    def merged_with(self, other: "TetMesh") -> "TetMesh":
        pts = np.vstack([self.points, other.points])
        tets = np.vstack([self.tets, other.tets + self.n_points])
        sc = None
        if self.scalars is not None and other.scalars is not None:
            sc = np.concatenate([self.scalars, other.scalars])
        return TetMesh(pts, tets, sc)

    @classmethod
    def empty(cls) -> "TetMesh":
        return cls(np.empty((0, 3)), np.empty((0, 4), dtype=np.int64), np.empty(0))
