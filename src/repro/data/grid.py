"""Uniform structured grids (the CloverLeaf / VTK-m dataset substrate).

A :class:`UniformGrid` is an axis-aligned lattice of hexahedral cells with
uniform spacing — the dataset type every experiment in the paper uses
(CloverLeaf writes its fields on such a grid).  The class provides the
vectorized index plumbing the algorithms need: point coordinates, cell
centers, and the 8-corner point indices of every hexahedral cell in VTK
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = [
    "UniformGrid",
    "HEX_CORNER_OFFSETS",
    "corner_gather",
    "cell_corner_reduce",
    "slab_corner_reduce",
]

# VTK/MC hexahedron corner ordering: bottom face CCW (z=0), then top face
# (z=1).  Column k gives the (di, dj, dk) lattice offset of corner k.
HEX_CORNER_OFFSETS: np.ndarray = np.array(
    [
        (0, 0, 0),  # 0
        (1, 0, 0),  # 1
        (1, 1, 0),  # 2
        (0, 1, 0),  # 3
        (0, 0, 1),  # 4
        (1, 0, 1),  # 5
        (1, 1, 1),  # 6
        (0, 1, 1),  # 7
    ],
    dtype=np.int64,
)


# --------------------------------------------------------------------- gather
# Corner gathers (cell -> 8 point ids) are the hot index plumbing of every
# extraction kernel: contour, threshold, clip, isovolume, and tetclip all
# rebuild it per call.  The mapping depends only on the cell topology
# (cell_dims), never on origin/spacing, so it is cached once per lattice
# shape: a base point id per cell plus the 8 linearized corner strides.
# lru_cache is safe under the pool engine — worker processes each build
# their own cache, and CPython's GIL serializes the dict update so
# concurrent threads at worst compute an entry twice.


@lru_cache(maxsize=4)
def corner_gather(cell_dims: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Cached corner-gather plumbing for a lattice shape.

    Returns ``(base_ids, strides)`` where ``base_ids[c]`` is the point id
    of cell ``c``'s corner 0 and ``strides[k]`` is the linear offset of
    corner ``k`` (VTK order), so ``base_ids[c] + strides`` are the cell's
    8 corner point ids.  Both arrays are read-only views shared by every
    grid with these ``cell_dims`` — callers must not mutate them.
    """
    nx, ny, nz = (int(d) for d in cell_dims)
    px, py = nx + 1, ny + 1
    i = np.arange(nx, dtype=np.int64)
    j = np.arange(ny, dtype=np.int64)
    k = np.arange(nz, dtype=np.int64)
    base = (i[None, None, :] + px * (j[None, :, None] + py * k[:, None, None])).reshape(-1)
    di, dj, dk = HEX_CORNER_OFFSETS[:, 0], HEX_CORNER_OFFSETS[:, 1], HEX_CORNER_OFFSETS[:, 2]
    strides = di + px * (dj + py * dk)
    base.setflags(write=False)
    strides.setflags(write=False)
    return base, strides


def slab_corner_reduce(lat_slab: np.ndarray, ufunc: np.ufunc) -> np.ndarray:
    """8-corner reduce over a point-lattice slab view.

    ``lat_slab`` has shape ``(kz + 1, ny + 1, nx + 1)`` — the point
    planes of a ``kz``-plane run of cells.  Returns the flat
    ``(kz * ny * nx,)`` per-cell reduction in linear cell order.  The
    shifted-view applications run in the same corner order as the full
    reduce, so the result is bitwise identical to the matching rows of
    ``cell_corner_reduce`` over the whole lattice — the property the
    k-slab-tiled kernels (:mod:`repro.data.tiling`) rely on.
    """
    kz, ny, nx = (int(d) - 1 for d in lat_slab.shape)
    out = lat_slab[:kz, :ny, :nx].copy()
    for di, dj, dk in HEX_CORNER_OFFSETS[1:]:
        ufunc(out, lat_slab[dk : dk + kz, dj : dj + ny, di : di + nx], out=out)
    return out.reshape(-1)


def cell_corner_reduce(
    cell_dims: tuple[int, int, int], point_values: np.ndarray, ufunc: np.ufunc
) -> np.ndarray:
    """Reduce a point field over each cell's 8 corners with ``ufunc``.

    Equivalent to ``ufunc.reduce(point_values[grid.cell_point_ids()],
    axis=1)`` but computed as 7 shifted-lattice-view applications, never
    materializing the ``(n_cells, 8)`` gather.  This is the interval/
    classification fast path: ``np.minimum``/``np.maximum`` give the
    corner value interval; feeding a 0/1 array through ``np.add`` counts
    inside corners.
    """
    nx, ny, nz = (int(d) for d in cell_dims)
    lat = np.asarray(point_values).reshape(nz + 1, ny + 1, nx + 1)
    return slab_corner_reduce(lat, ufunc)


@dataclass(frozen=True)
class UniformGrid:
    """An axis-aligned uniform hexahedral grid.

    Parameters
    ----------
    cell_dims:
        Number of cells along (x, y, z).  A "128^3 dataset" in the paper
        is ``cell_dims=(128, 128, 128)``.
    origin:
        World-space position of point (0, 0, 0).
    spacing:
        Cell edge length along each axis.
    """

    cell_dims: tuple[int, int, int]
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0)
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if len(self.cell_dims) != 3 or any(int(d) < 1 for d in self.cell_dims):
            raise ValueError(f"cell_dims must be 3 positive ints, got {self.cell_dims}")
        if any(s <= 0 for s in self.spacing):
            raise ValueError(f"spacing must be positive, got {self.spacing}")
        object.__setattr__(self, "cell_dims", tuple(int(d) for d in self.cell_dims))

    # ------------------------------------------------------------------ sizes
    @property
    def point_dims(self) -> tuple[int, int, int]:
        """Number of points along each axis (cells + 1)."""
        nx, ny, nz = self.cell_dims
        return (nx + 1, ny + 1, nz + 1)

    @property
    def n_cells(self) -> int:
        nx, ny, nz = self.cell_dims
        return nx * ny * nz

    @property
    def n_points(self) -> int:
        px, py, pz = self.point_dims
        return px * py * pz

    @property
    def bounds(self) -> np.ndarray:
        """World-space bounds as ``[[xmin, xmax], [ymin, ymax], [zmin, zmax]]``."""
        lo = np.asarray(self.origin, dtype=np.float64)
        extent = np.asarray(self.cell_dims, dtype=np.float64) * np.asarray(self.spacing)
        return np.stack([lo, lo + extent], axis=1)

    @property
    def diagonal(self) -> float:
        """Length of the grid's world-space diagonal."""
        b = self.bounds
        return float(np.linalg.norm(b[:, 1] - b[:, 0]))

    @property
    def center(self) -> np.ndarray:
        """World-space center of the grid."""
        return self.bounds.mean(axis=1)

    # --------------------------------------------------------------- indexing
    def point_index(self, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Flatten lattice point coordinates to linear point ids (x fastest)."""
        px, py, _ = self.point_dims
        return np.asarray(i) + px * (np.asarray(j) + py * np.asarray(k))

    def cell_index(self, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Flatten lattice cell coordinates to linear cell ids (x fastest)."""
        nx, ny, _ = self.cell_dims
        return np.asarray(i) + nx * (np.asarray(j) + ny * np.asarray(k))

    def cell_ijk(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse of :meth:`cell_index`."""
        nx, ny, _ = self.cell_dims
        cid = np.asarray(cell_ids)
        i = cid % nx
        j = (cid // nx) % ny
        k = cid // (nx * ny)
        return i, j, k

    def cell_point_ids(self, cell_ids: np.ndarray | None = None) -> np.ndarray:
        """Point ids of the 8 corners of each cell, VTK-ordered.

        Returns an ``(n, 8)`` int array.  With ``cell_ids=None``, covers
        every cell in the grid (row ``c`` is cell ``c``).  The index
        plumbing (one base id per cell + 8 corner strides) comes from the
        shared :func:`corner_gather` cache, so repeated extractions over
        the same lattice shape skip the ijk decompose/re-linearize work.
        """
        base, strides = corner_gather(self.cell_dims)
        if cell_ids is not None:
            base = base[np.asarray(cell_ids, dtype=np.int64)]
        return base[:, None] + strides[None, :]

    # ------------------------------------------------------------- geometry
    def point_coords(self, point_ids: np.ndarray | None = None) -> np.ndarray:
        """World-space coordinates of points as an ``(n, 3)`` float array."""
        px, py, pz = self.point_dims
        ox, oy, oz = self.origin
        sx, sy, sz = self.spacing
        if point_ids is None:
            # Full-grid fast path: broadcast the three 1-D axis coordinate
            # arrays instead of decomposing every point id (same
            # ``origin + index * spacing`` arithmetic, so bitwise equal).
            out = np.empty((pz, py, px, 3), dtype=np.float64)
            out[..., 0] = (ox + np.arange(px, dtype=np.int64) * sx)[None, None, :]
            out[..., 1] = (oy + np.arange(py, dtype=np.int64) * sy)[None, :, None]
            out[..., 2] = (oz + np.arange(pz, dtype=np.int64) * sz)[:, None, None]
            return out.reshape(-1, 3)
        pid = np.asarray(point_ids, dtype=np.int64)
        i = pid % px
        j = (pid // px) % py
        k = pid // (px * py)
        return np.stack([ox + i * sx, oy + j * sy, oz + k * sz], axis=-1).astype(np.float64)

    def cell_centers(self, cell_ids: np.ndarray | None = None) -> np.ndarray:
        """World-space centers of cells as an ``(n, 3)`` float array."""
        if cell_ids is None:
            cell_ids = np.arange(self.n_cells, dtype=np.int64)
        i, j, k = self.cell_ijk(np.asarray(cell_ids, dtype=np.int64))
        ox, oy, oz = self.origin
        sx, sy, sz = self.spacing
        return np.stack(
            [ox + (i + 0.5) * sx, oy + (j + 0.5) * sy, oz + (k + 0.5) * sz], axis=-1
        ).astype(np.float64)

    def world_to_lattice(self, points: np.ndarray) -> np.ndarray:
        """Convert world coordinates to continuous lattice coordinates."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return (pts - np.asarray(self.origin)) / np.asarray(self.spacing)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask: which world-space points lie inside the grid bounds."""
        lat = self.world_to_lattice(points)
        dims = np.asarray(self.cell_dims, dtype=np.float64)
        return np.all((lat >= 0.0) & (lat <= dims), axis=-1)

    # ----------------------------------------------------------------- misc
    @classmethod
    def cube(cls, n: int, *, extent: float = 1.0) -> "UniformGrid":
        """An ``n^3``-cell grid spanning ``[0, extent]^3`` (the paper's shape)."""
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        h = extent / n
        return cls(cell_dims=(n, n, n), origin=(0.0, 0.0, 0.0), spacing=(h, h, h))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nx, ny, nz = self.cell_dims
        return f"UniformGrid({nx}x{ny}x{nz} cells, origin={self.origin}, spacing={self.spacing})"
