"""Cache-sized k-slab tiling for lattice kernels.

The extraction kernels sweep structured lattices whose 256³ working sets
(135 MB per point field) thrash the last-level cache when processed in
one pass.  Because the linear cell index runs x-fastest and k-slowest, a
*k-slab* — a contiguous range of cell planes ``[k0, k1)`` — is also a
contiguous range of linear cell ids, so slab-by-slab processing changes
neither the order cells are visited in nor any per-cell arithmetic: the
tiled kernels stay bitwise identical to the untiled ones while their
per-tile working set (field slab + derived per-cell arrays) fits in
cache.

Three knobs pick the tile size, in priority order:

1. ``REPRO_TILE_CELLS`` (environment) — explicit cells-per-tile target;
2. the caller's ``ceiling`` (a filter's ``chunk_cells`` memory bound);
3. :data:`DEFAULT_TILE_BYTES` divided by the caller's estimated
   bytes-per-cell (derived from the field's ``nbytes``).

Tiles are always whole k-planes (at least one), so a tile of a
``(nx, ny, nz)`` lattice is ``planes * nx * ny`` cells.

:func:`shard_spans` splits the k-axis into near-even contiguous spans —
the unit of the sharded kernel backend (:mod:`repro.viz.sharding`) and
of the sweep engine's shard tasks.  Spans are a pure function of
``(nz, n_shards)``, so every backend decomposes a lattice identically
and merged results are deterministic.
"""

from __future__ import annotations

import os
from typing import Iterator

__all__ = [
    "DEFAULT_TILE_BYTES",
    "ENV_TILE_CELLS",
    "tile_cells_from_env",
    "pick_tile_planes",
    "k_slabs",
    "shard_spans",
]

#: Target bytes of per-tile working data (field slab plus the per-cell
#: arrays derived from it).  Sized well under typical LLC capacities so
#: repeated passes over a tile (10 isovalue tests, min+max reductions)
#: hit cache instead of DRAM.
DEFAULT_TILE_BYTES = 1 << 23

#: Environment override: cells per tile (rounded up to whole k-planes).
ENV_TILE_CELLS = "REPRO_TILE_CELLS"


def tile_cells_from_env() -> int | None:
    """The ``REPRO_TILE_CELLS`` override, or None when unset.

    Raises
    ------
    ValueError
        If the variable is set to something that is not a positive
        whole number (e.g. ``REPRO_TILE_CELLS=big``).
    """
    raw = os.environ.get(ENV_TILE_CELLS, "").strip()
    if not raw:
        return None
    try:
        cells = int(raw, 10)
    except ValueError:
        raise ValueError(
            f"{ENV_TILE_CELLS} must be a whole number of cells per tile "
            f"(e.g. {ENV_TILE_CELLS}=262144), got {raw!r}"
        ) from None
    if cells < 1:
        raise ValueError(f"{ENV_TILE_CELLS} must be positive, got {cells}")
    return cells


def pick_tile_planes(
    plane_cells: int,
    bytes_per_cell: float,
    *,
    n_planes: int,
    ceiling_cells: int | None = None,
) -> int:
    """Cell planes per tile for a lattice with ``plane_cells`` cells/plane.

    ``bytes_per_cell`` is the caller's estimate of working bytes per cell
    (field slab plus derived arrays) — typically ``field.nbytes /
    grid.n_cells`` times the number of live per-cell arrays.  The result
    is clamped to ``[1, n_planes]`` and, when ``ceiling_cells`` is given
    (a filter's ``chunk_cells`` memory bound), the tile never exceeds it
    unless a single plane already does.
    """
    if plane_cells < 1:
        raise ValueError(f"plane_cells must be positive, got {plane_cells}")
    env = tile_cells_from_env()
    if env is not None:
        target_cells = env
    else:
        target_cells = int(DEFAULT_TILE_BYTES / max(bytes_per_cell, 1e-9))
        if ceiling_cells is not None:
            target_cells = min(target_cells, int(ceiling_cells))
    planes = max(1, target_cells // plane_cells)
    return min(planes, max(int(n_planes), 1))


def k_slabs(k_lo: int, k_hi: int, planes_per_tile: int) -> Iterator[tuple[int, int]]:
    """Yield ``(k0, k1)`` cell-plane ranges tiling ``[k_lo, k_hi)``.

    Ranges are contiguous, ascending, and cover the span exactly; the
    last slab may be ragged.  An empty span yields nothing.
    """
    if planes_per_tile < 1:
        raise ValueError(f"planes_per_tile must be positive, got {planes_per_tile}")
    for k0 in range(k_lo, k_hi, planes_per_tile):
        yield k0, min(k0 + planes_per_tile, k_hi)


def shard_spans(n_planes: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``n_planes`` cell planes into ``n_shards`` contiguous spans.

    Spans are near-even (sizes differ by at most one plane), ascending,
    and exhaustive.  Shards beyond ``n_planes`` collapse to empty spans
    at the tail so every shard index stays valid — an empty span simply
    contributes nothing to the merge.
    """
    if n_planes < 0:
        raise ValueError(f"n_planes must be non-negative, got {n_planes}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    base, extra = divmod(n_planes, n_shards)
    spans: list[tuple[int, int]] = []
    k = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        spans.append((k, k + size))
        k += size
    return spans
