"""Dataset and geometry I/O (dependency-free).

* :func:`save_obj` / :func:`load_obj` — Wavefront OBJ for triangle
  meshes, so contour/slice/gallery output opens in any mesh viewer.
* :func:`save_dataset` / :func:`load_dataset` — NumPy ``.npz`` archives
  for whole datasets (grid metadata + every field), the hand-off format
  between a long CloverLeaf run and later post-hoc visualization — the
  paper's first use case ("post hoc visualization and data analysis on
  a shared cluster").
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .fields import Association, DataSet
from .grid import UniformGrid
from .mesh import TriangleMesh

__all__ = ["save_obj", "load_obj", "save_dataset", "load_dataset"]


def save_obj(mesh: TriangleMesh, path: str | Path) -> Path:
    """Write a triangle mesh as Wavefront OBJ (1-based indices).

    Written atomically so a killed export never leaves a half-mesh that
    a viewer would silently open.
    """
    from ..core.atomicio import atomic_write_text  # deferred: data sits below core

    path = Path(path)
    lines: list[str] = ["# written by repro (IPDPS'19 reproduction)"]
    for p in mesh.points:
        lines.append(f"v {p[0]:.9g} {p[1]:.9g} {p[2]:.9g}")
    for t in mesh.triangles:
        lines.append(f"f {t[0] + 1} {t[1] + 1} {t[2] + 1}")
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def load_obj(path: str | Path) -> TriangleMesh:
    """Read a Wavefront OBJ containing triangles (v/f records only).

    Faces with more than three vertices are fan-triangulated; texture
    and normal indices (``f a/b/c``) are accepted and ignored.
    """
    points: list[list[float]] = []
    tris: list[list[int]] = []
    for raw in Path(path).read_text().splitlines():
        parts = raw.split()
        if not parts or parts[0].startswith("#"):
            continue
        if parts[0] == "v":
            points.append([float(x) for x in parts[1:4]])
        elif parts[0] == "f":
            ids = [int(tok.split("/")[0]) - 1 for tok in parts[1:]]
            for k in range(1, len(ids) - 1):
                tris.append([ids[0], ids[k], ids[k + 1]])
    return TriangleMesh(
        np.asarray(points, dtype=np.float64).reshape(-1, 3),
        np.asarray(tris, dtype=np.int64).reshape(-1, 3),
    )


def save_dataset(dataset: DataSet, path: str | Path) -> Path:
    """Serialize a dataset (grid + all fields) to a ``.npz`` archive."""
    path = Path(path)
    grid = dataset.grid
    arrays: dict[str, np.ndarray] = {
        "__cell_dims": np.asarray(grid.cell_dims, dtype=np.int64),
        "__origin": np.asarray(grid.origin, dtype=np.float64),
        "__spacing": np.asarray(grid.spacing, dtype=np.float64),
    }
    for name, f in dataset.fields.items():
        arrays[f"field_{f.association.value}_{name}"] = f.values
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: str | Path) -> DataSet:
    """Inverse of :func:`save_dataset`."""
    with np.load(Path(path)) as archive:
        grid = UniformGrid(
            cell_dims=tuple(int(d) for d in archive["__cell_dims"]),
            origin=tuple(float(x) for x in archive["__origin"]),
            spacing=tuple(float(x) for x in archive["__spacing"]),
        )
        ds = DataSet(grid)
        for key in archive.files:
            if not key.startswith("field_"):
                continue
            _, assoc, name = key.split("_", 2)
            ds.add_field(name, archive[key], Association(assoc))
    return ds
