"""Fields and datasets: named arrays bound to a grid.

A :class:`Field` is a flat NumPy array associated with either the points
or the cells of a grid.  A :class:`DataSet` bundles a
:class:`~repro.data.grid.UniformGrid` with its fields — the unit the
visualization filters consume, mirroring VTK-m's ``DataSet``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .grid import UniformGrid

__all__ = [
    "Association",
    "Field",
    "DataSet",
    "recenter_to_points",
    "recenter_to_cells",
    "recenter_slab_to_cells",
]


class Association(Enum):
    """Where a field's values live."""

    POINT = "point"
    CELL = "cell"


@dataclass
class Field:
    """A named scalar or vector field.

    ``values`` has shape ``(n,)`` for scalars or ``(n, 3)`` for vectors,
    where ``n`` matches the grid's point or cell count per ``association``.
    """

    name: str
    association: Association
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim not in (1, 2):
            raise ValueError(f"field {self.name!r}: values must be 1-D or 2-D")
        if self.values.ndim == 2 and self.values.shape[1] != 3:
            raise ValueError(f"field {self.name!r}: vector fields must have 3 components")

    @property
    def is_vector(self) -> bool:
        return self.values.ndim == 2

    @property
    def n(self) -> int:
        return self.values.shape[0]

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    def range(self) -> tuple[float, float]:
        """(min, max) of scalar values, or of vector magnitudes."""
        if self.is_vector:
            mags = np.linalg.norm(self.values, axis=1)
            return float(mags.min()), float(mags.max())
        return float(self.values.min()), float(self.values.max())


@dataclass
class DataSet:
    """A grid plus its fields — what a filter takes and (often) returns."""

    grid: UniformGrid
    fields: dict[str, Field] = field(default_factory=dict)

    def add_field(
        self, name: str, values: np.ndarray, association: Association = Association.POINT
    ) -> Field:
        """Attach a field, validating its length against the grid."""
        f = Field(name=name, association=association, values=values)
        expected = self.grid.n_points if association is Association.POINT else self.grid.n_cells
        if f.n != expected:
            raise ValueError(
                f"field {name!r} has {f.n} values but grid expects {expected} "
                f"for {association.value}-centered data"
            )
        self.fields[name] = f
        return f

    def field(self, name: str) -> Field:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"no field {name!r}; available: {sorted(self.fields)}"
            ) from None

    def point_field(self, name: str) -> Field:
        """Fetch ``name`` as a point field, recentering a cell field if needed."""
        f = self.field(name)
        if f.association is Association.POINT:
            return f
        return Field(name, Association.POINT, recenter_to_points(self.grid, f.values))

    def cell_field(self, name: str) -> Field:
        """Fetch ``name`` as a cell field, recentering a point field if needed."""
        f = self.field(name)
        if f.association is Association.CELL:
            return f
        return Field(name, Association.CELL, recenter_to_cells(self.grid, f.values))

    @property
    def nbytes(self) -> int:
        """Total bytes held by all fields (the dataset's memory footprint)."""
        return sum(f.nbytes for f in self.fields.values())


def _as_lattice(grid: UniformGrid, values: np.ndarray, *, points: bool) -> np.ndarray:
    """Reshape a flat field to (nz, ny, nx[, 3]) lattice order for averaging."""
    dims = grid.point_dims if points else grid.cell_dims
    nx, ny, nz = dims
    if values.ndim == 1:
        return values.reshape(nz, ny, nx)
    return values.reshape(nz, ny, nx, 3)


def recenter_to_points(grid: UniformGrid, cell_values: np.ndarray) -> np.ndarray:
    """Average cell-centered values to the points (inverse-distance uniform).

    Each point receives the mean of its adjacent cells (1–8 of them,
    fewer on boundaries), matching VTK's ``CellDataToPointData``.
    """
    cell_values = np.asarray(cell_values, dtype=np.float64)
    lat = _as_lattice(grid, cell_values, points=False)
    vec = cell_values.ndim == 2
    pad_width = ((1, 1), (1, 1), (1, 1)) + (((0, 0),) if vec else ())
    padded = np.pad(lat, pad_width, mode="edge")
    # Each point (k, j, i) touches cells (k-1..k, j-1..j, i-1..i); with the
    # edge padding, boundary points correctly re-use the boundary cells.
    acc = (
        padded[:-1, :-1, :-1]
        + padded[:-1, :-1, 1:]
        + padded[:-1, 1:, :-1]
        + padded[:-1, 1:, 1:]
        + padded[1:, :-1, :-1]
        + padded[1:, :-1, 1:]
        + padded[1:, 1:, :-1]
        + padded[1:, 1:, 1:]
    ) / 8.0
    return acc.reshape(grid.n_points, 3) if vec else acc.reshape(grid.n_points)


def recenter_to_cells(grid: UniformGrid, point_values: np.ndarray) -> np.ndarray:
    """Average point-centered values to the cells (mean of the 8 corners)."""
    point_values = np.asarray(point_values, dtype=np.float64)
    lat = _as_lattice(grid, point_values, points=True)
    acc = (
        lat[:-1, :-1, :-1]
        + lat[:-1, :-1, 1:]
        + lat[:-1, 1:, :-1]
        + lat[:-1, 1:, 1:]
        + lat[1:, :-1, :-1]
        + lat[1:, :-1, 1:]
        + lat[1:, 1:, :-1]
        + lat[1:, 1:, 1:]
    ) / 8.0
    vec = point_values.ndim == 2
    return acc.reshape(grid.n_cells, 3) if vec else acc.reshape(grid.n_cells)


def recenter_slab_to_cells(lat_slab: np.ndarray) -> np.ndarray:
    """Corner mean over a scalar point-lattice slab view.

    ``lat_slab`` has shape ``(kz + 1, ny + 1, nx + 1)``; returns the flat
    ``(kz * ny * nx,)`` cell means in linear cell order.  The corners are
    summed in exactly the order :func:`recenter_to_cells` uses, so the
    result is bitwise identical to the matching rows of a full-lattice
    recenter — the k-slab-tiled kernels use this to carry cell-centered
    scalars per tile without materializing (or re-reading) the full
    recentered field.
    """
    kz, ny, nx = (int(d) - 1 for d in lat_slab.shape)
    acc = lat_slab[:kz, :ny, :nx].astype(np.float64)
    for dk, dj, di in (
        (0, 0, 1), (0, 1, 0), (0, 1, 1), (1, 0, 0), (1, 0, 1), (1, 1, 0), (1, 1, 1),
    ):
        acc += lat_slab[dk : dk + kz, dj : dj + ny, di : di + nx]
    acc /= 8.0
    return acc.reshape(-1)
