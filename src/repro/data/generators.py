"""Analytic field generators for tests, examples, and standalone benchmarks.

The real experiments visualize the CloverLeaf proxy's energy field; these
generators provide cheap, well-understood stand-ins with known geometry
(spheres, planes, vortices) so every algorithm can be validated against
closed-form answers.
"""

from __future__ import annotations

import numpy as np

from .fields import Association, DataSet
from .grid import UniformGrid

__all__ = [
    "sphere_distance",
    "linear_ramp",
    "gaussian_blobs",
    "tangle_field",
    "rotation_vector_field",
    "abc_flow",
    "make_dataset",
]


def sphere_distance(grid: UniformGrid, *, center: np.ndarray | None = None) -> np.ndarray:
    """Point field: Euclidean distance from ``center`` (default: grid center)."""
    c = grid.center if center is None else np.asarray(center, dtype=np.float64)
    return np.linalg.norm(grid.point_coords() - c, axis=1)


def linear_ramp(grid: UniformGrid, *, direction: tuple[float, float, float] = (1.0, 0.0, 0.0)) -> np.ndarray:
    """Point field: signed distance along ``direction`` — the simplest
    field whose isosurfaces are exact planes (used heavily by tests)."""
    d = np.asarray(direction, dtype=np.float64)
    norm = np.linalg.norm(d)
    if norm == 0:
        raise ValueError("direction must be non-zero")
    return grid.point_coords() @ (d / norm)


def gaussian_blobs(
    grid: UniformGrid,
    *,
    n_blobs: int = 4,
    width: float = 0.15,
    seed: int = 7,
) -> np.ndarray:
    """Point field: sum of Gaussian bumps at seeded random positions.

    ``width`` is the Gaussian sigma as a fraction of the grid diagonal.
    """
    rng = np.random.default_rng(seed)
    b = grid.bounds
    centers = b[:, 0] + rng.random((n_blobs, 3)) * (b[:, 1] - b[:, 0])
    sigma = width * grid.diagonal
    pts = grid.point_coords()
    out = np.zeros(grid.n_points)
    for c in centers:
        d2 = np.sum((pts - c) ** 2, axis=1)
        out += np.exp(-d2 / (2.0 * sigma**2))
    return out


def tangle_field(grid: UniformGrid) -> np.ndarray:
    """Point field: the classic "tangle" implicit function used in
    isosurfacing demos; produces a multi-component, high-curvature surface."""
    b = grid.bounds
    # Map the grid into [-3, 3]^3 where the tangle is defined.
    p = (grid.point_coords() - b[:, 0]) / (b[:, 1] - b[:, 0]) * 6.0 - 3.0
    x, y, z = p[:, 0], p[:, 1], p[:, 2]
    return (
        x**4 - 5.0 * x**2 + y**4 - 5.0 * y**2 + z**4 - 5.0 * z**2 + 11.8
    ) * 0.2 + 0.5


def rotation_vector_field(grid: UniformGrid, *, axis: int = 2) -> np.ndarray:
    """Point vector field: rigid rotation about the grid-center axis.

    Streamlines are exact circles, which the advection tests exploit.
    """
    pts = grid.point_coords() - grid.center
    v = np.zeros_like(pts)
    a, bax = {0: (1, 2), 1: (2, 0), 2: (0, 1)}[axis]
    v[:, a] = -pts[:, bax]
    v[:, bax] = pts[:, a]
    return v


def abc_flow(
    grid: UniformGrid,
    *,
    a: float = 1.0,
    b: float = np.sqrt(2.0 / 3.0),
    c: float = np.sqrt(1.0 / 3.0),
) -> np.ndarray:
    """Point vector field: Arnold–Beltrami–Childress flow (chaotic
    streamlines — a standard particle-advection stress test)."""
    bounds = grid.bounds
    p = (grid.point_coords() - bounds[:, 0]) / (bounds[:, 1] - bounds[:, 0]) * (2.0 * np.pi)
    x, y, z = p[:, 0], p[:, 1], p[:, 2]
    return np.stack(
        [
            a * np.sin(z) + c * np.cos(y),
            b * np.sin(x) + a * np.cos(z),
            c * np.sin(y) + b * np.cos(x),
        ],
        axis=1,
    )


def make_dataset(
    n: int,
    *,
    kind: str = "blobs",
    with_velocity: bool = True,
    seed: int = 7,
) -> DataSet:
    """Build an ``n^3``-cell dataset with a scalar field named ``energy``
    (matching the CloverLeaf field the paper renders) and optionally a
    ``velocity`` vector field for advection.

    ``kind`` selects the scalar: ``blobs``, ``sphere``, ``ramp``, or
    ``tangle``.
    """
    grid = UniformGrid.cube(n)
    ds = DataSet(grid)
    if kind == "blobs":
        scalar = gaussian_blobs(grid, seed=seed)
    elif kind == "sphere":
        scalar = sphere_distance(grid)
    elif kind == "ramp":
        scalar = linear_ramp(grid)
    elif kind == "tangle":
        scalar = tangle_field(grid)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")
    ds.add_field("energy", scalar, Association.POINT)
    if with_velocity:
        # Blend a rotational core with ABC turbulence: mostly bounded
        # trajectories (long streamlines) with chaotic structure, like
        # the recirculating hydro flows the study advects through.
        rot = rotation_vector_field(grid)
        abc = abc_flow(grid)
        scale = np.abs(rot).max() or 1.0
        ds.add_field("velocity", rot / scale + 0.35 * abc, Association.POINT)
    return ds
