"""Marching-cubes lookup tables, generated from a tetrahedral decomposition.

The contour filter is table-driven exactly as the paper describes
("pre-computed lookup tables in combination with interpolation").  Rather
than transcribing the classic 256-case Lorensen–Cline tables by hand, the
tables here are *generated* by decomposing the hexahedron into six
tetrahedra around the main diagonal (corner 0 → corner 6) and applying
marching tetrahedra within each.  This yields a correct, watertight
isosurface for every one of the 256 corner-sign cases:

* within a cell, adjacent tetrahedra share faces, so no internal cracks;
* across cells, each cube face carries the *same global diagonal* under
  this decomposition (verified in the test suite), so no boundary cracks.

The price is slightly more triangles per case than classic MC (vertices
may lie on face/body diagonals, not just the 12 cube edges) — the same
trade VTK's ordered-synchronized-templates variants make.

Corner numbering follows :data:`repro.data.grid.HEX_CORNER_OFFSETS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .grid import HEX_CORNER_OFFSETS

__all__ = ["McTables", "get_tables", "CUBE_TETS", "MAX_TRIS_PER_CELL"]

# Six tetrahedra tiling the unit cube, all sharing the 0-6 body diagonal.
CUBE_TETS: tuple[tuple[int, int, int, int], ...] = (
    (0, 1, 2, 6),
    (0, 2, 3, 6),
    (0, 3, 7, 6),
    (0, 7, 4, 6),
    (0, 4, 5, 6),
    (0, 5, 1, 6),
)

# Upper bound on triangles a single cell can emit (6 tets x 2 triangles).
MAX_TRIS_PER_CELL = 12


@dataclass(frozen=True)
class McTables:
    """The generated lookup tables.

    Attributes
    ----------
    edges:
        ``(n_edges, 2)`` int array; row ``e`` holds the two cube-corner
        ids of interpolation edge ``e``.
    tri_count:
        ``(256,)`` int array; number of triangles emitted for each case.
    tri_edges:
        ``(256, MAX_TRIS_PER_CELL, 3)`` int array of edge ids, padded
        with ``-1`` beyond ``tri_count[case]`` triangles.
    """

    edges: np.ndarray
    tri_count: np.ndarray
    tri_edges: np.ndarray


def _edge_catalog() -> tuple[np.ndarray, dict[tuple[int, int], int]]:
    """Collect the unique undirected edges used by the decomposition."""
    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for tet in CUBE_TETS:
        for a in range(4):
            for b in range(a + 1, 4):
                key = (min(tet[a], tet[b]), max(tet[a], tet[b]))
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
    edges = np.array(sorted(pairs), dtype=np.int64)
    index = {tuple(e): i for i, e in enumerate(edges.tolist())}
    return edges, index


def _tet_triangles(
    tet: tuple[int, int, int, int],
    inside: tuple[bool, ...],
    edge_index: dict[tuple[int, int], int],
) -> list[list[int]]:
    """Marching-tetrahedra triangles for one tet, as global edge-id triples."""

    def eid(u: int, v: int) -> int:
        return edge_index[(min(u, v), max(u, v))]

    ins = [v for v in tet if inside[v]]
    outs = [v for v in tet if not inside[v]]
    if len(ins) in (0, 4):
        return []
    if len(ins) == 1:
        p = ins[0]
        q, r, s = outs
        return [[eid(p, q), eid(p, r), eid(p, s)]]
    if len(ins) == 3:
        q = outs[0]
        p, r, s = ins
        return [[eid(q, p), eid(q, r), eid(q, s)]]
    # Two inside, two outside: the isosurface is a quad split in two.
    p1, p2 = ins
    q1, q2 = outs
    v1, v2, v3, v4 = eid(p1, q1), eid(p1, q2), eid(p2, q2), eid(p2, q1)
    return [[v1, v2, v3], [v1, v3, v4]]


def _orient_triangle(
    tri: list[int],
    edges: np.ndarray,
    inside: tuple[bool, ...],
) -> list[int]:
    """Flip vertex order so the normal points away from the inside region.

    Uses the canonical embedding (unit cube, inside corners valued 1,
    outside 0, iso = 0.5, so every edge vertex is a midpoint).
    """
    corners = HEX_CORNER_OFFSETS.astype(np.float64)
    mids = 0.5 * (corners[edges[tri, 0]] + corners[edges[tri, 1]])
    normal = np.cross(mids[1] - mids[0], mids[2] - mids[0])
    inside_pts = corners[[i for i in range(8) if inside[i]]]
    centroid = mids.mean(axis=0)
    away = centroid - inside_pts.mean(axis=0)
    if float(normal @ away) < 0.0:
        return [tri[0], tri[2], tri[1]]
    return tri


@lru_cache(maxsize=1)
def get_tables() -> McTables:
    """Build (once) and return the 256-case tables."""
    edges, edge_index = _edge_catalog()
    tri_count = np.zeros(256, dtype=np.int64)
    tri_edges = np.full((256, MAX_TRIS_PER_CELL, 3), -1, dtype=np.int64)
    for case in range(256):
        inside = tuple(bool((case >> c) & 1) for c in range(8))
        tris: list[list[int]] = []
        for tet in CUBE_TETS:
            for tri in _tet_triangles(tet, inside, edge_index):
                mids_tri = _orient_triangle(tri, edges, inside)
                tris.append(mids_tri)
        tri_count[case] = len(tris)
        for t, tri in enumerate(tris):
            tri_edges[case, t] = tri
    return McTables(edges=edges, tri_count=tri_count, tri_edges=tri_edges)
