"""Dataset substrate: uniform grids, fields, meshes, and MC tables."""

from .fields import (
    Association,
    DataSet,
    Field,
    recenter_slab_to_cells,
    recenter_to_cells,
    recenter_to_points,
)
from .grid import HEX_CORNER_OFFSETS, UniformGrid, slab_corner_reduce
from .io import load_dataset, load_obj, save_dataset, save_obj
from .mc_tables import CUBE_TETS, MAX_TRIS_PER_CELL, McTables, get_tables
from .mesh import CellSubset, PolyLines, TetMesh, TriangleMesh
from .tiling import k_slabs, pick_tile_planes, shard_spans

__all__ = [
    "Association",
    "DataSet",
    "Field",
    "UniformGrid",
    "HEX_CORNER_OFFSETS",
    "CUBE_TETS",
    "MAX_TRIS_PER_CELL",
    "McTables",
    "get_tables",
    "TriangleMesh",
    "PolyLines",
    "CellSubset",
    "TetMesh",
    "recenter_to_points",
    "recenter_to_cells",
    "recenter_slab_to_cells",
    "slab_corner_reduce",
    "k_slabs",
    "pick_tile_planes",
    "shard_spans",
    "save_obj",
    "load_obj",
    "save_dataset",
    "load_dataset",
]
