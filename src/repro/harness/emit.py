"""Result emitters: CSV and Markdown for sweep results and figure series.

CSV is a *round-trip* format here, not just a report: ``cap_w`` is the
join key between a CSV row and the sweep grid that produced it, so it is
emitted at full precision (``repr``, the shortest digits that parse back
bitwise-equal) and :func:`result_from_csv` reads rows back into a
:class:`~repro.core.runner.StudyResult`.  Only the Markdown renderer,
which is for human eyes, rounds caps to whole watts.  All file output
goes through :mod:`repro.core.atomicio`, so a crash mid-emit can't leave
a truncated CSV sitting next to an intact store.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from ..core.atomicio import atomic_write_text
from ..core.metrics import Ratios
from ..core.report import FigureSeries
from ..core.runner import RunPoint, StudyResult

__all__ = ["result_to_csv", "result_from_csv", "result_to_markdown", "series_to_csv"]

_FIELDS = (
    "algorithm",
    "size",
    "cap_w",
    "time_s",
    "energy_j",
    "power_w",
    "freq_ghz",
    "ipc",
    "llc_miss_rate",
    "pratio",
    "tratio",
    "fratio",
)


def result_to_csv(result: StudyResult, path: str | Path | None = None) -> str:
    """Serialize every run point; returns the CSV text (and atomically
    writes it when ``path`` is given)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_FIELDS)
    for p in result.points:
        writer.writerow(
            [
                p.algorithm,
                p.size,
                # repr: full precision, so fractional caps (62.5 W)
                # survive the round-trip bitwise instead of collapsing
                # to the nearest integer watt.
                repr(p.cap_w),
                f"{p.time_s:.6f}",
                f"{p.energy_j:.3f}",
                f"{p.power_w:.3f}",
                f"{p.freq_ghz:.4f}",
                f"{p.ipc:.4f}",
                f"{p.llc_miss_rate:.4f}",
                f"{p.pratio:.4f}",
                f"{p.tratio:.4f}",
                f"{p.fratio:.4f}",
            ]
        )
    text = buf.getvalue()
    if path is not None:
        atomic_write_text(Path(path), text)
    return text


def result_from_csv(source: str | Path, *, config_name: str | None = None) -> StudyResult:
    """Parse :func:`result_to_csv` output back into a :class:`StudyResult`.

    ``source`` is a path, or the CSV text itself when it starts with the
    header row (mirroring ``StudyResult.from_jsonl``'s convention).
    ``cap_w`` round-trips bitwise; measurement columns carry the emitted
    precision.
    """
    if isinstance(source, Path):
        text = source.read_text()
        if config_name is None:
            config_name = source.stem
    elif source.startswith(_FIELDS[0] + ",") or "\n" in source:
        text = source
    else:
        path = Path(source)
        text = path.read_text()
        if config_name is None:
            config_name = path.stem
    reader = csv.DictReader(io.StringIO(text))
    missing = set(_FIELDS) - set(reader.fieldnames or ())
    if missing:
        raise ValueError(f"not a study-result CSV: missing column(s) {sorted(missing)}")
    points = [
        RunPoint(
            algorithm=row["algorithm"],
            size=int(row["size"]),
            cap_w=float(row["cap_w"]),
            time_s=float(row["time_s"]),
            energy_j=float(row["energy_j"]),
            power_w=float(row["power_w"]),
            freq_ghz=float(row["freq_ghz"]),
            ipc=float(row["ipc"]),
            llc_miss_rate=float(row["llc_miss_rate"]),
            ratios=Ratios(
                pratio=float(row["pratio"]),
                tratio=float(row["tratio"]),
                fratio=float(row["fratio"]),
            ),
        )
        for row in reader
    ]
    return StudyResult(config_name=config_name or "csv", points=points)


def result_to_markdown(result: StudyResult, *, size: int) -> str:
    """A compact Markdown table of Tratio per (algorithm, cap)."""
    pts = result.select(size=size)
    caps = sorted({p.cap_w for p in pts}, reverse=True)
    lines = [
        "| algorithm | " + " | ".join(f"{c:.0f}W" for c in caps) + " |",
        "|---" * (len(caps) + 1) + "|",
    ]
    for alg in result.algorithms:
        rows = {p.cap_w: p for p in result.select(algorithm=alg, size=size)}
        if not rows:
            continue
        cells = " | ".join(f"{rows[c].tratio:.2f}X" for c in caps)
        lines.append(f"| {alg} | {cells} |")
    return "\n".join(lines)


def series_to_csv(series: dict[str, FigureSeries], path: str | Path | None = None) -> str:
    """Serialize figure series as long-format CSV (label, x, y)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["label", "x", "y"])
    for label, s in series.items():
        for x, y in zip(s.x, s.y):
            writer.writerow([label, f"{x:g}", f"{y:.6g}"])
    text = buf.getvalue()
    if path is not None:
        atomic_write_text(Path(path), text)
    return text
