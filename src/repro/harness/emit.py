"""Result emitters: CSV and Markdown for sweep results and figure series."""

from __future__ import annotations

import csv
import io
from pathlib import Path

from ..core.report import FigureSeries
from ..core.runner import StudyResult

__all__ = ["result_to_csv", "result_to_markdown", "series_to_csv"]

_FIELDS = (
    "algorithm",
    "size",
    "cap_w",
    "time_s",
    "energy_j",
    "power_w",
    "freq_ghz",
    "ipc",
    "llc_miss_rate",
    "pratio",
    "tratio",
    "fratio",
)


def result_to_csv(result: StudyResult, path: str | Path | None = None) -> str:
    """Serialize every run point; returns the CSV text (and writes it
    when ``path`` is given)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_FIELDS)
    for p in result.points:
        writer.writerow(
            [
                p.algorithm,
                p.size,
                f"{p.cap_w:.0f}",
                f"{p.time_s:.6f}",
                f"{p.energy_j:.3f}",
                f"{p.power_w:.3f}",
                f"{p.freq_ghz:.4f}",
                f"{p.ipc:.4f}",
                f"{p.llc_miss_rate:.4f}",
                f"{p.pratio:.4f}",
                f"{p.tratio:.4f}",
                f"{p.fratio:.4f}",
            ]
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def result_to_markdown(result: StudyResult, *, size: int) -> str:
    """A compact Markdown table of Tratio per (algorithm, cap)."""
    pts = result.select(size=size)
    caps = sorted({p.cap_w for p in pts}, reverse=True)
    lines = [
        "| algorithm | " + " | ".join(f"{c:.0f}W" for c in caps) + " |",
        "|---" * (len(caps) + 1) + "|",
    ]
    for alg in result.algorithms:
        rows = {p.cap_w: p for p in result.select(algorithm=alg, size=size)}
        if not rows:
            continue
        cells = " | ".join(f"{rows[c].tratio:.2f}X" for c in caps)
        lines.append(f"| {alg} | {cells} |")
    return "\n".join(lines)


def series_to_csv(series: dict[str, FigureSeries], path: str | Path | None = None) -> str:
    """Serialize figure series as long-format CSV (label, x, y)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["label", "x", "y"])
    for label, s in series.items():
        for x, y in zip(s.x, s.y):
            writer.writerow([label, f"{x:g}", f"{y:.6g}"])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
