"""Experiment harness: table/figure drivers and result emitters."""

from .emit import result_to_csv, result_to_markdown, series_to_csv
from .experiments import ExperimentHarness, effective_sizes

__all__ = [
    "ExperimentHarness",
    "effective_sizes",
    "result_to_csv",
    "result_to_markdown",
    "series_to_csv",
]
