"""Experiment harness: table/figure drivers and result emitters."""

from .emit import result_from_csv, result_to_csv, result_to_markdown, series_to_csv
from .experiments import DEFAULT_CACHE_PATH, ExperimentHarness, TableHarness, effective_sizes

__all__ = [
    "TableHarness",
    "ExperimentHarness",
    "DEFAULT_CACHE_PATH",
    "effective_sizes",
    "result_to_csv",
    "result_from_csv",
    "result_to_markdown",
    "series_to_csv",
]
