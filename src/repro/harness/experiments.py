"""Experiment harness: one driver per paper table/figure.

The harness wraps :class:`~repro.core.runner.StudyRunner` with a
persistent op-count cache: each (algorithm, size) pair's real execution
is recorded once under ``.cache/counts.pkl`` and re-priced thereafter,
so regenerating all tables and figures after the first run takes
seconds.  ``REPRO_MAX_SIZE`` (environment) caps the dataset sizes for
smoke runs on small machines.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from ..core.runner import DEFAULT_VIZ_CYCLES, StudyResult, StudyRunner
from ..core.study import (
    ALGORITHM_NAMES,
    DATASET_SIZES,
    StudyConfig,
    phase1_config,
    phase2_config,
    phase3_config,
)
from ..data.fields import DataSet
from ..data.grid import UniformGrid
from ..viz import ALGORITHMS
from ..viz.base import OpCounts
from ..workload import WorkProfile

__all__ = ["ExperimentHarness", "effective_sizes"]


def effective_sizes(requested: tuple[int, ...] = DATASET_SIZES) -> tuple[int, ...]:
    """The requested sizes, capped by the REPRO_MAX_SIZE environment
    variable (useful to smoke-test the full harness quickly)."""
    cap = int(os.environ.get("REPRO_MAX_SIZE", "0") or 0)
    if cap <= 0:
        return tuple(requested)
    kept = tuple(s for s in requested if s <= cap)
    # When the cap excludes every requested size, substitute the cap
    # itself (e.g. table3's 256³ becomes a 64³ smoke run).
    return kept if kept else (cap,)


class ExperimentHarness:
    """Regenerates the paper's tables and figures.

    Parameters
    ----------
    cache_path:
        Where recorded op ledgers live (None disables persistence).
    n_cycles:
        Visualization cycles aggregated per measurement.
    """

    def __init__(
        self,
        cache_path: str | Path | None = ".cache/counts.pkl",
        *,
        n_cycles: int = DEFAULT_VIZ_CYCLES,
        seed: int = 7,
    ):
        self.cache_path = Path(cache_path) if cache_path else None
        self.runner = StudyRunner(n_cycles=n_cycles, seed=seed)
        self.n_cycles = n_cycles
        self._counts: dict[tuple[str, int], dict] = {}
        if self.cache_path and self.cache_path.exists():
            self._counts = pickle.loads(self.cache_path.read_bytes())

    # ------------------------------------------------------------- profiles
    def profile(self, algorithm: str, size: int) -> WorkProfile:
        """Profile from the ledger cache, executing for real on a miss."""
        key = (algorithm, size)
        if key in self._counts:
            ds = DataSet(UniformGrid.cube(size))
            f = ALGORITHMS[algorithm]()
            oc = OpCounts()
            oc.counts.update(self._counts[key])
            prof = f.profile_from_counts(ds, oc)
            scaled = WorkProfile(
                name=f"{algorithm}@{size}",
                n_elements=prof.n_elements,
                metadata=dict(prof.metadata, n_cycles=self.n_cycles),
            )
            scaled.segments = [s.scaled(self.n_cycles) for s in prof.segments]
            self.runner._profiles[key] = scaled
            return scaled

        prof = self.runner.profile_for(algorithm, size)
        raw = prof.metadata.get("counts", {})
        self._counts[key] = raw
        self._save()
        return prof

    def _save(self) -> None:
        if self.cache_path:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            self.cache_path.write_bytes(pickle.dumps(self._counts))

    # ---------------------------------------------------------------- sweeps
    def sweep(self, config: StudyConfig) -> StudyResult:
        """Run a phase grid, pre-warming profiles through the cache."""
        for alg in config.algorithms:
            for size in config.sizes:
                self.profile(alg, size)
        return self.runner.run_config(config)

    # ----------------------------------------------------- per-experiment API
    def table1(self) -> StudyResult:
        """Table I: contour at 128³ across the 9 caps (Phase 1)."""
        cfg = phase1_config()
        sizes = effective_sizes(cfg.sizes)
        return self.sweep(StudyConfig(name=cfg.name, algorithms=cfg.algorithms, sizes=sizes))

    def table2(self) -> StudyResult:
        """Table II + Fig. 2/3: all algorithms at 128³ (Phase 2)."""
        cfg = phase2_config()
        sizes = effective_sizes(cfg.sizes)
        return self.sweep(StudyConfig(name=cfg.name, algorithms=cfg.algorithms, sizes=sizes))

    def table3(self) -> StudyResult:
        """Table III: all algorithms at 256³."""
        sizes = effective_sizes((256,))
        return self.sweep(StudyConfig(name="table3", algorithms=ALGORITHM_NAMES, sizes=sizes))

    def phase3(self) -> StudyResult:
        """Figs. 4–6: all algorithms across all four sizes (Phase 3)."""
        cfg = phase3_config(effective_sizes(DATASET_SIZES))
        return self.sweep(cfg)
