"""Experiment harness: one driver per paper table/figure.

The harness is a thin client of the sweep engine
(:class:`~repro.core.engine.SweepEngine`): each (algorithm, size) pair's
real execution is recorded once in a versioned JSON ledger cache
(``.cache/counts.json``; legacy pickle ``counts.pkl`` caches migrate
automatically) and re-priced thereafter, so regenerating all tables and
figures after the first run takes seconds.  ``REPRO_MAX_SIZE``
(environment) caps the dataset sizes for smoke runs on small machines.

New code should reach the harness through the :mod:`repro.api` facade
(``repro.api.harness()`` / ``repro.api.run_study()``); constructing
:class:`ExperimentHarness` directly is deprecated in favor of the
facade, and kept as a warning shim over :class:`TableHarness`.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

from ..core.engine import SweepEngine
from ..core.profiles import ProfileCache
from ..core.runner import DEFAULT_VIZ_CYCLES, StudyResult
from ..core.store import ResultStore
from ..core.study import (
    ALGORITHM_NAMES,
    DATASET_SIZES,
    StudyConfig,
    phase1_config,
    phase2_config,
    phase3_config,
)
from ..workload import WorkProfile

__all__ = ["TableHarness", "ExperimentHarness", "effective_sizes", "DEFAULT_CACHE_PATH"]

#: Default ledger-cache location (JSON; a legacy ``counts.pkl`` migrates).
DEFAULT_CACHE_PATH = ".cache/counts.json"


def effective_sizes(requested: tuple[int, ...] = DATASET_SIZES) -> tuple[int, ...]:
    """The requested sizes, capped by the REPRO_MAX_SIZE environment
    variable (useful to smoke-test the full harness quickly).

    Raises
    ------
    ValueError
        If ``REPRO_MAX_SIZE`` is set to something that is not a whole
        number (e.g. ``REPRO_MAX_SIZE=64.5`` or ``REPRO_MAX_SIZE=big``).
    """
    raw = os.environ.get("REPRO_MAX_SIZE", "").strip()
    if not raw:
        return tuple(requested)
    try:
        cap = int(raw, 10)
    except ValueError:
        raise ValueError(
            f"REPRO_MAX_SIZE must be a whole number of cells per axis "
            f"(e.g. REPRO_MAX_SIZE=64), got {raw!r}"
        ) from None
    if cap <= 0:
        return tuple(requested)
    kept = tuple(s for s in requested if s <= cap)
    # When the cap excludes every requested size, substitute the cap
    # itself (e.g. table3's 256³ becomes a 64³ smoke run).
    return kept if kept else (cap,)


class TableHarness:
    """Regenerates the paper's tables and figures through the engine.

    Parameters
    ----------
    cache_path:
        Where recorded op ledgers live (None disables persistence;
        a ``.pkl`` path is migrated to its JSON sibling).
    n_cycles:
        Visualization cycles aggregated per measurement.
    workers:
        Process-pool width for uncached profile executions (``0``/``1``
        runs serially, the default here — table-sized grids rarely pay
        for pool startup; ``python -m repro sweep`` defaults to parallel).
    store:
        Optional :class:`~repro.core.store.ResultStore` (or path) to
        stream completed points into, enabling resumable sweeps.
    """

    def __init__(
        self,
        cache_path: str | Path | None = DEFAULT_CACHE_PATH,
        *,
        n_cycles: int = DEFAULT_VIZ_CYCLES,
        seed: int = 7,
        workers: int = 0,
        store: ResultStore | str | Path | None = None,
        progress=None,
    ):
        self.profile_cache = ProfileCache(cache_path)
        self.cache_path = self.profile_cache.path
        self.engine = SweepEngine(
            n_cycles=n_cycles,
            seed=seed,
            workers=workers,
            store=store,
            profile_cache=self.profile_cache,
            progress=progress,
        )
        self.n_cycles = n_cycles

    @property
    def processor(self):
        """The simulated socket (for spec introspection)."""
        return self.engine.processor

    # ------------------------------------------------------------- profiles
    def profile(self, algorithm: str, size: int) -> WorkProfile:
        """Profile from the ledger cache, executing for real on a miss."""
        return self.engine.profile_for(algorithm, size)

    # ---------------------------------------------------------------- sweeps
    def sweep(self, config: StudyConfig) -> StudyResult:
        """Run a phase grid through the engine (cache- and store-aware)."""
        return self.engine.run(config)

    # ----------------------------------------------------- per-experiment API
    def table1(self) -> StudyResult:
        """Table I: contour at 128³ across the 9 caps (Phase 1)."""
        cfg = phase1_config()
        sizes = effective_sizes(cfg.sizes)
        return self.sweep(StudyConfig(name=cfg.name, algorithms=cfg.algorithms, sizes=sizes))

    def table2(self) -> StudyResult:
        """Table II + Fig. 2/3: all algorithms at 128³ (Phase 2)."""
        cfg = phase2_config()
        sizes = effective_sizes(cfg.sizes)
        return self.sweep(StudyConfig(name=cfg.name, algorithms=cfg.algorithms, sizes=sizes))

    def table3(self) -> StudyResult:
        """Table III: all algorithms at 256³."""
        sizes = effective_sizes((256,))
        return self.sweep(StudyConfig(name="table3", algorithms=ALGORITHM_NAMES, sizes=sizes))

    def phase3(self) -> StudyResult:
        """Figs. 4–6: all algorithms across all four sizes (Phase 3)."""
        cfg = phase3_config(effective_sizes(DATASET_SIZES))
        return self.sweep(cfg)


class ExperimentHarness(TableHarness):
    """Deprecated alias of :class:`TableHarness`.

    Old imports keep working, but new code should use
    ``repro.api.harness()`` (or :class:`TableHarness` directly).
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "constructing ExperimentHarness directly is deprecated; "
            "use repro.api.harness() or repro.api.run_study() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
