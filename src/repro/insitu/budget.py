"""Job-level power-budget runtime (the GEOPM / PaViz role).

The paper's motivating use case (§I, §VII): "a runtime system that
assigns power between a simulation and visualization application
running concurrently under a power budget, such that overall
performance is maximized."  Model: two sockets of a node run the
simulation and the visualization concurrently; their caps must sum to
at most the node budget.

Strategies:

* :func:`uniform_allocation` — the naive scheme the paper argues
  against: split the budget evenly.
* :func:`advisor_allocation` — the paper's recipe: find the deepest cap
  the visualization tolerates (slowdown within ``tolerance``) and hand
  everything else to the power-hungry simulation.

Both return a :class:`BudgetDecision` whose makespan is the slower of
the two concurrent phases.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..machine.simulator import Processor
from ..workload import WorkProfile

__all__ = [
    "PhaseCosting",
    "BudgetDecision",
    "uniform_allocation",
    "advisor_allocation",
    "governed_allocation",
]


@dataclass(frozen=True)
class PhaseCosting:
    """Time/energy of one phase at one cap."""

    cap_w: float
    time_s: float
    energy_j: float

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0


@dataclass(frozen=True)
class BudgetDecision:
    """A runtime's chosen per-socket caps and the predicted outcome."""

    strategy: str
    sim_cap_w: float
    viz_cap_w: float
    sim: PhaseCosting
    viz: PhaseCosting

    @property
    def makespan_s(self) -> float:
        """Concurrent phases: the job finishes with the slower one."""
        return max(self.sim.time_s, self.viz.time_s)

    @property
    def budget_used_w(self) -> float:
        """Instantaneous node draw while both sockets are busy."""
        return self.sim.power_w + self.viz.power_w

    @property
    def cap_total_w(self) -> float:
        return self.sim_cap_w + self.viz_cap_w


def _cost(proc: Processor, profile: WorkProfile, cap: float) -> PhaseCosting:
    r = proc.run(profile, cap)
    return PhaseCosting(cap_w=cap, time_s=r.time_s, energy_j=r.energy_j)


def _validate_budget(proc: Processor, node_budget_w: float) -> float:
    floor = 2 * proc.spec.rapl_floor_watts
    if node_budget_w < floor:
        raise ValueError(
            f"node budget {node_budget_w} W below the 2-socket RAPL floor ({floor} W)"
        )
    return float(node_budget_w)


def uniform_allocation(
    proc: Processor, sim_profile: WorkProfile, viz_profile: WorkProfile, node_budget_w: float
) -> BudgetDecision:
    """The naive scheme: both sockets get half the node budget."""
    budget = _validate_budget(proc, node_budget_w)
    half = proc.rapl.validate_cap(budget / 2.0)
    return BudgetDecision(
        strategy="uniform",
        sim_cap_w=half,
        viz_cap_w=half,
        sim=_cost(proc, sim_profile, half),
        viz=_cost(proc, viz_profile, half),
    )


def advisor_allocation(
    proc: Processor,
    sim_profile: WorkProfile,
    viz_profile: WorkProfile,
    node_budget_w: float,
    *,
    tolerance: float = 0.10,
    cap_step_w: float = 5.0,
) -> BudgetDecision:
    """The paper's recipe: deep-cap the visualization, boost the sim.

    The visualization cap is the deepest whose slowdown stays within
    ``tolerance`` of its uncapped time; the simulation receives the
    remaining budget (clamped into the RAPL range).
    """
    budget = _validate_budget(proc, node_budget_w)
    spec = proc.spec
    caps = np.arange(spec.rapl_floor_watts, spec.tdp_watts + 0.5, cap_step_w)

    viz_base = _cost(proc, viz_profile, spec.tdp_watts)
    viz_choice = _cost(proc, viz_profile, proc.rapl.validate_cap(budget / 2.0))
    for cap in caps:  # ascending: the first tolerable cap is the deepest
        c = _cost(proc, viz_profile, float(cap))
        if c.time_s <= viz_base.time_s * (1.0 + tolerance):
            viz_choice = c
            break

    sim_cap = proc.rapl.validate_cap(budget - viz_choice.cap_w)
    decision = BudgetDecision(
        strategy="advisor",
        sim_cap_w=sim_cap,
        viz_cap_w=viz_choice.cap_w,
        sim=_cost(proc, sim_profile, sim_cap),
        viz=viz_choice,
    )
    # An informed runtime never does worse than the naive split: when a
    # power-sensitive visualization makes the skewed split lose (its
    # tolerable cap eats the whole budget), fall back to uniform.
    fallback = uniform_allocation(proc, sim_profile, viz_profile, budget)
    if fallback.makespan_s < decision.makespan_s:
        return BudgetDecision(
            strategy="advisor(uniform-fallback)",
            sim_cap_w=fallback.sim_cap_w,
            viz_cap_w=fallback.viz_cap_w,
            sim=fallback.sim,
            viz=fallback.viz,
        )
    return decision


def governed_allocation(
    proc: Processor,
    sim_profile: WorkProfile,
    viz_profile: WorkProfile,
    node_budget_w: float,
    governor,
    trace,
    *,
    t_s: float = 0.0,
    tolerance: float = 0.10,
    cap_step_w: float = 5.0,
) -> BudgetDecision:
    """The advisor's split under a signal-governed node budget.

    Samples ``trace`` (a :class:`~repro.insitu.governors.SignalTrace`)
    at ``t_s``, lets the governor scale the nominal budget by its
    capacity fraction — never below the 2-socket RAPL floor — and runs
    the paper's advisor recipe against the effective budget.  The
    decision's strategy is tagged with the governor so downstream
    reports can attribute the split to the policy that produced it.
    """
    nominal = _validate_budget(proc, node_budget_w)
    fraction = governor.limit(trace.value_at(t_s))
    floor = 2 * proc.spec.rapl_floor_watts
    effective = max(floor, nominal * fraction)
    decision = advisor_allocation(
        proc,
        sim_profile,
        viz_profile,
        effective,
        tolerance=tolerance,
        cap_step_w=cap_step_w,
    )
    return replace(decision, strategy=f"governed[{governor.describe()}]:{decision.strategy}")
