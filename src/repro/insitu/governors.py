"""Pluggable power-policy governors: policy = governor × control method.

The paper sweeps *static* RAPL caps; its §VII vision is a job-level
runtime that re-decides power policy continuously.  Production stacks
(EcoFreq is the clearest example) generalize that decision into two
orthogonal pieces:

* a **governor** — a formula mapping an external *signal* sample
  (electricity price, grid CO₂ intensity, facility load) to a capacity
  fraction in ``(0, 1]``: :class:`ConstGovernor`, :class:`ListGovernor`,
  :class:`StepGovernor`, :class:`LinearGovernor`;
* a **control method** — how the fraction is applied to the socket:
  :class:`PowerCapControl` (the paper's RAPL path),
  :class:`FrequencyCapControl` (a DVFS P-state-bin ceiling), or
  :class:`DutyCycleControl` (DDCM-style clock modulation, after
  nrm-legacy's ``ddcmpolicy``).

:class:`SignalTrace` carries the input signal as a replayable JSONL
time series (with seedable synthetic generators for tests and drills),
and :class:`GovernedRuntime` drives a work profile epoch by epoch:
sample the signal, govern, apply the control setting through
:meth:`~repro.machine.simulator.Processor.run`, and record a
:class:`GovernorEpoch` per control period.  Under a
:class:`ConstGovernor` at full capacity every control method reproduces
the static path **bitwise** — the equivalence the test suite pins.

Invariants are *piecewise*: within one epoch the setting is constant,
so the static contracts (power ≤ cap + tolerance, runtime monotone in
the cap) hold per epoch and across equal-cap epochs —
:meth:`repro.core.validate.PointValidator.check_epochs` restates them
that way, and ``repro chaos --governor`` drills signal dropout, step
discontinuities, and trace truncation against them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..machine.rapl import MIN_DUTY
from ..machine.simulator import Processor, RunResult
from ..machine.spec import MachineSpec
from ..obs.metrics import get_registry
from ..obs.trace import span
from ..workload import WorkProfile

__all__ = [
    "SIGNAL_TRACE_FORMAT",
    "SignalSample",
    "SignalTrace",
    "Governor",
    "ConstGovernor",
    "ListGovernor",
    "StepGovernor",
    "LinearGovernor",
    "parse_governor",
    "ControlSetting",
    "ControlMethod",
    "PowerCapControl",
    "FrequencyCapControl",
    "DutyCycleControl",
    "CONTROL_METHODS",
    "make_control",
    "GovernorEpoch",
    "GovernedRunResult",
    "GovernedRuntime",
    "governed_caps_w",
]

SIGNAL_TRACE_FORMAT = "repro-signal-trace"
SIGNAL_TRACE_VERSION = 1


# ---------------------------------------------------------------- signal trace
@dataclass(frozen=True)
class SignalSample:
    """One reading of the external signal (price, CO₂ intensity, ...)."""

    t_s: float
    value: float


@dataclass(frozen=True)
class SignalTrace:
    """A replayable signal time series with sample-and-hold lookup.

    Lookup semantics are deliberately dropout-tolerant: ``value_at(t)``
    returns the *last* sample at or before ``t`` (the first sample
    before the trace starts, the final sample forever after it ends).
    A decimated or truncated trace therefore still answers every query
    — the governor simply holds the stalest reading it has, exactly
    what a production policy daemon does when its signal feed drops.
    """

    samples: tuple[SignalSample, ...]
    name: str = "signal"

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("signal trace needs at least one sample")
        times = [s.t_s for s in self.samples]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("signal samples must be in non-decreasing time order")
        for s in self.samples:
            if not (math.isfinite(s.t_s) and math.isfinite(s.value)):
                raise ValueError(f"non-finite signal sample {s}")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        return self.samples[-1].t_s - self.samples[0].t_s

    def value_at(self, t_s: float) -> float:
        """Sample-and-hold: the last reading at or before ``t_s``."""
        value = self.samples[0].value
        for s in self.samples:
            if s.t_s > t_s:
                break
            value = s.value
        return value

    # -------------------------------------------------------------- variants
    def truncated(self, keep_fraction: float) -> "SignalTrace":
        """The leading ``keep_fraction`` of the samples (at least one)."""
        if not (0.0 < keep_fraction <= 1.0):
            raise ValueError("keep_fraction must be in (0, 1]")
        n = max(1, int(len(self.samples) * keep_fraction))
        return SignalTrace(self.samples[:n], name=self.name)

    def without(self, drop_indices) -> "SignalTrace":
        """The trace with the given sample indices removed (≥ 1 kept)."""
        dropped = set(int(i) for i in drop_indices)
        kept = tuple(s for i, s in enumerate(self.samples) if i not in dropped)
        if not kept:
            kept = (self.samples[0],)
        return SignalTrace(kept, name=self.name)

    # ------------------------------------------------------------ generators
    @classmethod
    def constant(
        cls, value: float, *, duration_s: float = 10.0, dt_s: float = 1.0, name: str = "const"
    ) -> "SignalTrace":
        n = max(1, int(round(duration_s / dt_s)))
        return cls(tuple(SignalSample(i * dt_s, float(value)) for i in range(n)), name=name)

    @classmethod
    def synthetic(
        cls,
        kind: str = "sine",
        *,
        seed: int = 0,
        n: int = 32,
        dt_s: float = 1.0,
        lo: float = 0.0,
        hi: float = 1.0,
        name: str | None = None,
    ) -> "SignalTrace":
        """A seeded synthetic signal: ``sine``, ``square``, or ``walk``.

        Deterministic per ``(kind, seed, n, dt_s, lo, hi)``, so drills
        and tests replay the exact same series.
        """
        if n < 1:
            raise ValueError("need at least one sample")
        if hi < lo:
            raise ValueError("need lo <= hi")
        mid, amp = (lo + hi) / 2.0, (hi - lo) / 2.0
        i = np.arange(n)
        if kind == "sine":
            values = mid + amp * np.sin(2.0 * np.pi * i / max(n - 1, 1))
        elif kind == "square":
            values = np.where((i // max(n // 4, 1)) % 2 == 0, hi, lo)
        elif kind == "walk":
            rng = np.random.default_rng(seed)
            steps = rng.normal(0.0, amp / 4.0 if amp > 0 else 1.0, size=n)
            values = np.clip(mid + np.cumsum(steps), lo, hi)
        else:
            raise ValueError(f"unknown synthetic signal kind {kind!r}")
        return cls(
            tuple(SignalSample(float(t) * dt_s, float(v)) for t, v in zip(i, values)),
            name=name if name is not None else f"{kind}-{seed}",
        )

    # ----------------------------------------------------------------- jsonl
    def to_jsonl(self, path: str | Path) -> Path:
        """Persist the trace (atomically) as header + one sample per line."""
        # Deferred upward import: atomic persistence lives in the core
        # layer; the sanctioned crossing is at call time (cf. obs.manifest).
        from ..core.atomicio import atomic_write_text

        lines = [
            json.dumps(
                {
                    "format": SIGNAL_TRACE_FORMAT,
                    "version": SIGNAL_TRACE_VERSION,
                    "name": self.name,
                    "n_samples": len(self.samples),
                },
                sort_keys=True,
            )
        ]
        lines.extend(
            json.dumps({"t_s": s.t_s, "value": s.value}, sort_keys=True)
            for s in self.samples
        )
        target = Path(path)
        atomic_write_text(target, "\n".join(lines) + "\n")
        return target

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "SignalTrace":
        """Load a trace written by :meth:`to_jsonl` (torn tail tolerated)."""
        p = Path(path)
        samples: list[SignalSample] = []
        name = p.stem
        with open(p) as fh:
            first = fh.readline().strip()
            if first:
                header = json.loads(first)
                if header.get("format") != SIGNAL_TRACE_FORMAT:
                    raise ValueError(
                        f"{p} is not a signal trace (format={header.get('format')!r})"
                    )
                name = str(header.get("name", name))
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    break  # torn tail: keep every intact sample before it
                samples.append(SignalSample(float(doc["t_s"]), float(doc["value"])))
        return cls(tuple(samples), name=name)


# ------------------------------------------------------------------ governors
def _check_fraction(fraction: float, origin: str) -> float:
    f = float(fraction)
    if not (0.0 < f <= 1.0) or not math.isfinite(f):
        raise ValueError(f"{origin} must be a capacity fraction in (0, 1], got {fraction}")
    return f


class Governor:
    """Maps one signal sample to a capacity fraction in ``(0, 1]``."""

    kind = "governor"

    def limit(self, signal_value: float) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstGovernor(Governor):
    """Signal-blind: always the same fraction (EcoFreq ``const:80%``)."""

    fraction: float = 1.0
    kind = "const"

    def __post_init__(self) -> None:
        _check_fraction(self.fraction, "ConstGovernor fraction")

    def limit(self, signal_value: float) -> float:
        return self.fraction

    def describe(self) -> str:
        return f"const:{self.fraction:g}"


@dataclass(frozen=True)
class ListGovernor(Governor):
    """Discrete levels: the entry whose signal value is nearest the sample.

    The float generalization of EcoFreq's named-level form
    (``list:low=max:high=0.6``): callers quantize their signal into
    representative values and the governor snaps each sample to the
    closest one — deterministic, with ties resolved toward the lower
    signal value.
    """

    levels: tuple[tuple[float, float], ...]
    kind = "list"

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("ListGovernor needs at least one (signal, fraction) level")
        for s, f in self.levels:
            if not math.isfinite(s):
                raise ValueError(f"non-finite level signal value {s}")
            _check_fraction(f, "ListGovernor fraction")

    def limit(self, signal_value: float) -> float:
        best = min(self.levels, key=lambda lv: (abs(lv[0] - signal_value), lv[0]))
        return best[1]

    def describe(self) -> str:
        body = ":".join(f"{s:g}={f:g}" for s, f in self.levels)
        return f"list:{body}"


@dataclass(frozen=True)
class StepGovernor(Governor):
    """Step function: the fraction of the highest threshold ≤ signal.

    EcoFreq ``step:100=0.7:200=0.5``: below every threshold the base
    fraction applies (full capacity by default); each crossed threshold
    replaces it.
    """

    steps: tuple[tuple[float, float], ...]
    base_fraction: float = 1.0
    kind = "step"

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("StepGovernor needs at least one (threshold, fraction) step")
        thresholds = [t for t, _ in self.steps]
        if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
            raise ValueError("StepGovernor thresholds must be strictly increasing")
        _check_fraction(self.base_fraction, "StepGovernor base fraction")
        for t, f in self.steps:
            if not math.isfinite(t):
                raise ValueError(f"non-finite step threshold {t}")
            _check_fraction(f, "StepGovernor fraction")

    def limit(self, signal_value: float) -> float:
        fraction = self.base_fraction
        for threshold, f in self.steps:
            if signal_value >= threshold:
                fraction = f
            else:
                break
        return fraction

    def describe(self) -> str:
        body = ":".join(f"{t:g}={f:g}" for t, f in self.steps)
        return f"step:{body}"


@dataclass(frozen=True)
class LinearGovernor(Governor):
    """Linear interpolation between full and minimum capacity.

    EcoFreq ``linear:100:500``: at or below ``lo_signal`` the governor
    grants ``max_fraction``; at or above ``hi_signal`` it grants
    ``min_fraction``; in between it interpolates linearly.
    """

    lo_signal: float
    hi_signal: float
    min_fraction: float = 0.25
    max_fraction: float = 1.0
    kind = "linear"

    def __post_init__(self) -> None:
        if not (self.lo_signal < self.hi_signal):
            raise ValueError("LinearGovernor needs lo_signal < hi_signal")
        _check_fraction(self.min_fraction, "LinearGovernor min fraction")
        _check_fraction(self.max_fraction, "LinearGovernor max fraction")
        if self.min_fraction > self.max_fraction:
            raise ValueError("LinearGovernor needs min_fraction <= max_fraction")

    def limit(self, signal_value: float) -> float:
        t = (signal_value - self.lo_signal) / (self.hi_signal - self.lo_signal)
        t = min(max(t, 0.0), 1.0)
        return self.max_fraction - (self.max_fraction - self.min_fraction) * t

    def describe(self) -> str:
        return (
            f"linear:{self.lo_signal:g}:{self.hi_signal:g}"
            f":{self.min_fraction:g}:{self.max_fraction:g}"
        )


def _parse_fraction(text: str, origin: str) -> float:
    """``0.8`` or ``80%`` → 0.8 (validated into (0, 1])."""
    text = text.strip()
    try:
        value = float(text[:-1]) / 100.0 if text.endswith("%") else float(text)
    except ValueError:
        raise ValueError(f"{origin}: cannot parse fraction {text!r}") from None
    return _check_fraction(value, origin)


def _parse_pairs(parts: list[str], origin: str) -> tuple[tuple[float, float], ...]:
    pairs = []
    for part in parts:
        key, sep, frac = part.partition("=")
        if not sep:
            raise ValueError(f"{origin}: expected SIGNAL=FRACTION, got {part!r}")
        try:
            signal = float(key)
        except ValueError:
            raise ValueError(f"{origin}: cannot parse signal value {key!r}") from None
        pairs.append((signal, _parse_fraction(frac, origin)))
    return tuple(pairs)


def parse_governor(spec: str) -> Governor:
    """EcoFreq-style governor spec → a :class:`Governor`.

    * ``const:0.8`` (or ``const:80%``)
    * ``list:100=1.0:300=0.5``
    * ``step:100=0.7:200=0.5``
    * ``linear:100:500`` (optionally ``linear:100:500:0.3[:1.0]``)
    """
    head, _, rest = spec.strip().partition(":")
    head = head.lower()
    parts = [p for p in rest.split(":") if p] if rest else []
    if head == "const":
        return ConstGovernor(_parse_fraction(parts[0], spec) if parts else 1.0)
    if head == "list":
        return ListGovernor(_parse_pairs(parts, spec))
    if head == "step":
        return StepGovernor(_parse_pairs(parts, spec))
    if head == "linear":
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(f"{spec!r}: linear takes LO:HI[:MIN_FRAC[:MAX_FRAC]]")
        kwargs = {}
        if len(parts) >= 3:
            kwargs["min_fraction"] = _parse_fraction(parts[2], spec)
        if len(parts) == 4:
            kwargs["max_fraction"] = _parse_fraction(parts[3], spec)
        try:
            lo, hi = float(parts[0]), float(parts[1])
        except ValueError:
            raise ValueError(f"{spec!r}: cannot parse linear bounds") from None
        return LinearGovernor(lo, hi, **kwargs)
    raise ValueError(
        f"unknown governor spec {spec!r}; expected const/list/step/linear"
    )


# ------------------------------------------------------------- control methods
@dataclass(frozen=True)
class ControlSetting:
    """One epoch's actuator programming, ready for ``Processor.run``."""

    control: str
    fraction: float
    cap_w: float
    f_ceiling_ghz: float | None = None
    duty_cap: float = 1.0

    def run_kwargs(self) -> dict:
        return {"f_ceiling_ghz": self.f_ceiling_ghz, "duty_cap": self.duty_cap}

    def describe(self) -> str:
        if self.control == "frequency":
            return f"frequency<={self.f_ceiling_ghz:g}GHz"
        if self.control == "duty":
            return f"duty<={self.duty_cap:g}"
        return f"power<={self.cap_w:g}W"


class ControlMethod:
    """Translates a governor fraction into one actuator's setting."""

    name = "control"

    def __init__(self, spec: MachineSpec):
        self.spec = spec

    def setting(self, fraction: float) -> ControlSetting:
        raise NotImplementedError

    def apply(self, processor: Processor, profile: WorkProfile, fraction: float) -> RunResult:
        s = self.setting(fraction)
        return processor.run(profile, s.cap_w, **s.run_kwargs())


class PowerCapControl(ControlMethod):
    """The paper's RAPL path: fraction interpolates floor → TDP."""

    name = "power"

    def setting(self, fraction: float) -> ControlSetting:
        f = _check_fraction(fraction, "power-cap fraction")
        spec = self.spec
        cap_w = spec.rapl_floor_watts + f * (spec.tdp_watts - spec.rapl_floor_watts)
        return ControlSetting(control=self.name, fraction=f, cap_w=cap_w)


class FrequencyCapControl(ControlMethod):
    """DVFS: pin the P-state scan under a frequency-bin ceiling.

    The fraction selects a bin index (fraction 1 → the turbo bin, the
    smallest fraction → the floor bin); RAPL itself stays unconstrained
    at TDP, so the *only* throttle is the pinned ceiling — which is how
    a frequency-cap policy differs from a power cap on work whose power
    is traffic- rather than frequency-bound.
    """

    name = "frequency"

    def setting(self, fraction: float) -> ControlSetting:
        f = _check_fraction(fraction, "frequency-cap fraction")
        bins = self.spec.freq_bins
        index = int(round(f * (len(bins) - 1)))
        return ControlSetting(
            control=self.name,
            fraction=f,
            cap_w=self.spec.tdp_watts,
            f_ceiling_ghz=float(bins[index]),
        )


class DutyCycleControl(ControlMethod):
    """DDCM: quantized clock-duty levels (nrm-legacy ``ddcmpolicy``).

    ``n_levels`` evenly spaced duty levels from full speed down to the
    hardware's minimum modulation (level 1 = :data:`MIN_DUTY`); the
    fraction picks the level.  RAPL stays at TDP so duty modulation is
    the only actuator.
    """

    name = "duty"

    def __init__(self, spec: MachineSpec, *, n_levels: int = 8):
        super().__init__(spec)
        if n_levels < 1 or n_levels * MIN_DUTY > 1.0 + 1e-9:
            raise ValueError(
                f"n_levels must be in [1, {int(1.0 / MIN_DUTY)}], got {n_levels}"
            )
        self.n_levels = int(n_levels)

    def setting(self, fraction: float) -> ControlSetting:
        f = _check_fraction(fraction, "duty-cycle fraction")
        level = max(1, int(round(f * self.n_levels)))
        duty = max(MIN_DUTY, level / self.n_levels)
        return ControlSetting(
            control=self.name,
            fraction=f,
            cap_w=self.spec.tdp_watts,
            duty_cap=duty,
        )


CONTROL_METHODS: dict[str, type[ControlMethod]] = {
    "power": PowerCapControl,
    "frequency": FrequencyCapControl,
    "duty": DutyCycleControl,
}


def make_control(name: str, spec: MachineSpec) -> ControlMethod:
    """Look up a control method by name (``repro chaos --control``)."""
    try:
        return CONTROL_METHODS[name](spec)
    except KeyError:
        raise ValueError(
            f"unknown control method {name!r}; expected one of {sorted(CONTROL_METHODS)}"
        ) from None


# ------------------------------------------------------------------- runtime
@dataclass(frozen=True)
class GovernorEpoch:
    """One control period: the decision taken and what the socket did."""

    epoch: int
    t_s: float              # epoch start in accumulated run time
    signal: float           # the signal sample the governor saw
    fraction: float         # the governor's capacity fraction
    control: str
    cap_w: float
    f_ceiling_ghz: float | None
    duty_cap: float
    time_s: float
    energy_j: float
    power_w: float
    freq_ghz: float
    cap_met: bool

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "t_s": self.t_s,
            "signal": self.signal,
            "fraction": self.fraction,
            "control": self.control,
            "cap_w": self.cap_w,
            "f_ceiling_ghz": self.f_ceiling_ghz,
            "duty_cap": self.duty_cap,
            "time_s": self.time_s,
            "energy_j": self.energy_j,
            "power_w": self.power_w,
            "freq_ghz": self.freq_ghz,
            "cap_met": self.cap_met,
        }


@dataclass
class GovernedRunResult:
    """Every epoch of one governed run."""

    governor: str
    control: str
    trace: str
    epochs: list[GovernorEpoch] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(e.time_s for e in self.epochs)

    @property
    def total_energy_j(self) -> float:
        return sum(e.energy_j for e in self.epochs)

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    def distinct_caps_w(self) -> list[float]:
        """The cap levels visited, in first-seen order (isclose-deduped)."""
        caps: list[float] = []
        for e in self.epochs:
            if not any(math.isclose(e.cap_w, c) for c in caps):
                caps.append(e.cap_w)
        return caps

    def final_setting(self) -> ControlSetting:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        last = self.epochs[-1]
        return ControlSetting(
            control=last.control,
            fraction=last.fraction,
            cap_w=last.cap_w,
            f_ceiling_ghz=last.f_ceiling_ghz,
            duty_cap=last.duty_cap,
        )


class GovernedRuntime:
    """Drive a work profile epoch by epoch under a governed policy.

    Per control period: sample the signal trace at the accumulated run
    time, ask the governor for a capacity fraction, program the control
    method's setting, and execute one period of the profile closed-form.
    Each decision is wrapped in a ``governor-decision`` span and counted
    in ``repro_governor_decisions_total{control=...}``.
    """

    def __init__(
        self,
        processor: Processor,
        governor: Governor,
        control: ControlMethod,
        trace: SignalTrace,
        *,
        metrics=None,
    ):
        self.proc = processor
        self.governor = governor
        self.control = control
        self.trace = trace
        reg = metrics if metrics is not None else get_registry()
        self._decisions = reg.counter(
            "repro_governor_decisions_total",
            "governor policy decisions taken",
            control=control.name,
        )

    def decide(self, t_s: float) -> tuple[float, float, ControlSetting]:
        """(signal, fraction, setting) for the control period at ``t_s``."""
        signal = self.trace.value_at(t_s)
        fraction = self.governor.limit(signal)
        setting = self.control.setting(fraction)
        self._decisions.inc()
        return signal, fraction, setting

    def run(self, profile: WorkProfile, n_epochs: int) -> GovernedRunResult:
        if n_epochs < 1:
            raise ValueError("need at least one epoch")
        result = GovernedRunResult(
            governor=self.governor.describe(),
            control=self.control.name,
            trace=self.trace.name,
        )
        t_s = 0.0
        for epoch in range(n_epochs):
            with span(
                "governor-decision",
                epoch=epoch,
                control=self.control.name,
                governor=self.governor.kind,
            ):
                signal, fraction, setting = self.decide(t_s)
                run = self.proc.run(profile, setting.cap_w, **setting.run_kwargs())
            result.epochs.append(
                GovernorEpoch(
                    epoch=epoch,
                    t_s=t_s,
                    signal=signal,
                    fraction=fraction,
                    control=setting.control,
                    cap_w=setting.cap_w,
                    f_ceiling_ghz=setting.f_ceiling_ghz,
                    duty_cap=setting.duty_cap,
                    time_s=run.time_s,
                    energy_j=run.energy_j,
                    power_w=run.avg_power_w,
                    freq_ghz=run.effective_freq_ghz,
                    cap_met=run.cap_met,
                )
            )
            t_s += run.time_s
        return result


def governed_caps_w(
    governor: Governor,
    trace: SignalTrace,
    spec: MachineSpec,
    *,
    n_epochs: int = 9,
    epoch_s: float = 1.0,
) -> tuple[float, ...]:
    """The cap series a power-cap policy would command over a trace.

    Samples the signal at ``n_epochs`` control-period boundaries and
    maps each through the governor and :class:`PowerCapControl`,
    deduplicating (isclose) while preserving first-seen order — the
    shape :class:`~repro.core.study.StudyConfig` wants for ``caps_w``,
    which is how ``repro sweep --governor --signal-trace`` turns a
    static cap grid into a time-varying one.
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    control = PowerCapControl(spec)
    caps: list[float] = []
    for i in range(n_epochs):
        cap_w = control.setting(governor.limit(trace.value_at(i * epoch_s))).cap_w
        if not any(math.isclose(cap_w, c) for c in caps):
            caps.append(cap_w)
    return tuple(caps)
