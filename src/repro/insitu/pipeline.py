"""Visualization pipelines: ordered filter chains run in situ.

Mirrors Ascent's "actions" model at the granularity the study needs: a
pipeline is a named sequence of filters executed against the
simulation's current dataset each visualization cycle; its work profile
is the concatenation of the filters' profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..data.fields import DataSet
from ..viz.base import Filter
from ..workload import WorkProfile

__all__ = ["Pipeline", "PipelineResult"]


@dataclass
class PipelineResult:
    """Outputs and merged profile of one pipeline execution."""

    name: str
    outputs: list[Any]
    profile: WorkProfile
    counts: list[dict]


@dataclass
class Pipeline:
    """A named, ordered chain of visualization filters.

    Every filter runs against the *simulation's* dataset (the study's
    filters are all one-stage against CloverLeaf fields; chaining
    against intermediate geometry is not needed for any experiment).
    """

    name: str
    filters: list[Filter] = field(default_factory=list)

    def add(self, f: Filter) -> "Pipeline":
        self.filters.append(f)
        return self

    def execute(self, dataset: DataSet) -> PipelineResult:
        if not self.filters:
            raise ValueError(f"pipeline {self.name!r} has no filters")
        outputs: list[Any] = []
        counts: list[dict] = []
        merged = WorkProfile(name=self.name, n_elements=dataset.grid.n_cells)
        for f in self.filters:
            res = f.execute(dataset)
            outputs.append(res.output)
            counts.append(res.counts.as_dict())
            merged.extend(res.profile.segments)
        merged.validate()
        return PipelineResult(name=self.name, outputs=outputs, profile=merged, counts=counts)
