"""In-situ coupling (Ascent substitute) and the power-budget runtime."""

from .budget import BudgetDecision, PhaseCosting, advisor_allocation, uniform_allocation
from .cluster import Cluster, ClusterResult, SocketRun, demand_aware_caps, uniform_caps
from .coupled import CycleRecord, InSituDriver, InSituRun
from .dynamic import DynamicCycleRecord, DynamicPowerRuntime, DynamicRunResult
from .pipeline import Pipeline, PipelineResult

__all__ = [
    "Pipeline",
    "PipelineResult",
    "InSituDriver",
    "InSituRun",
    "CycleRecord",
    "BudgetDecision",
    "PhaseCosting",
    "uniform_allocation",
    "advisor_allocation",
    "DynamicPowerRuntime",
    "DynamicRunResult",
    "DynamicCycleRecord",
    "Cluster",
    "ClusterResult",
    "SocketRun",
    "uniform_caps",
    "demand_aware_caps",
]
