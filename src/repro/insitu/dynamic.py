"""Dynamic per-cycle power reallocation — the runtime the paper envisions.

§VII: "We can integrate the findings into a job-level runtime system,
like PaViz or GEOPM, to dynamically reallocate the power to the various
components within the job."  The static advisor
(:mod:`repro.insitu.budget`) decides once; this controller re-decides
*every cycle* from the previous cycle's measured phase draws — no
oracle knowledge of the workload, only the counters a real runtime
sees.

Policy per cycle: give each phase its measured draw plus a headroom
margin (so it never throttles on its own demand), distribute the
remaining node budget proportionally to how throttled each phase was,
and clamp into the RAPL range.  Converges within a couple of cycles to
the static advisor's split when the workload is stationary — a property
the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.simulator import Processor
from ..workload import WorkProfile

__all__ = ["DynamicCycleRecord", "DynamicRunResult", "DynamicPowerRuntime"]


@dataclass(frozen=True)
class DynamicCycleRecord:
    """One control period's decisions and measurements."""

    cycle: int
    sim_cap_w: float
    viz_cap_w: float
    sim_time_s: float
    viz_time_s: float
    sim_power_w: float
    viz_power_w: float

    @property
    def makespan_s(self) -> float:
        return max(self.sim_time_s, self.viz_time_s)


@dataclass
class DynamicRunResult:
    cycles: list[DynamicCycleRecord] = field(default_factory=list)

    @property
    def total_makespan_s(self) -> float:
        return sum(c.makespan_s for c in self.cycles)

    def final_caps(self) -> tuple[float, float]:
        last = self.cycles[-1]
        return last.sim_cap_w, last.viz_cap_w


class DynamicPowerRuntime:
    """Feedback power-budget controller over concurrent sim/viz sockets.

    Parameters
    ----------
    node_budget_w:
        Combined cap for the two sockets.
    headroom_w:
        Margin added to each phase's measured draw before redistributing
        the surplus (keeps a phase from throttling on natural variance).
    """

    def __init__(
        self,
        processor: Processor,
        node_budget_w: float,
        *,
        headroom_w: float = 5.0,
    ):
        floor = 2 * processor.spec.rapl_floor_watts
        if node_budget_w < floor:
            raise ValueError(f"node budget below the 2-socket floor ({floor} W)")
        self.proc = processor
        self.budget = float(node_budget_w)
        self.headroom = float(headroom_w)

    def _clamp(self, cap: float) -> float:
        return self.proc.rapl.validate_cap(cap)

    def decide(self, sim_draw_w: float, viz_draw_w: float) -> tuple[float, float]:
        """Next cycle's (sim_cap, viz_cap) from measured draws."""
        want_sim = sim_draw_w + self.headroom
        want_viz = viz_draw_w + self.headroom
        surplus = self.budget - want_sim - want_viz
        if surplus >= 0:
            # Both satisfied: hand the surplus to the hungrier phase
            # (it is the one a cap would hurt).
            if sim_draw_w >= viz_draw_w:
                want_sim += surplus
            else:
                want_viz += surplus
        else:
            # Oversubscribed: shave proportionally to demand.
            scale = self.budget / (want_sim + want_viz)
            want_sim *= scale
            want_viz *= scale
        sim_cap = self._clamp(want_sim)
        viz_cap = self._clamp(min(want_viz, self.budget - sim_cap))
        return sim_cap, viz_cap

    def run(
        self,
        sim_profile: WorkProfile,
        viz_profile: WorkProfile,
        n_cycles: int,
    ) -> DynamicRunResult:
        """Drive ``n_cycles`` with per-cycle feedback.

        Cycle 0 starts from the naive 50/50 split; every later cycle
        uses the previous cycle's measured draws.
        """
        if n_cycles < 1:
            raise ValueError("need at least one cycle")
        result = DynamicRunResult()
        sim_cap = viz_cap = self._clamp(self.budget / 2.0)
        for cycle in range(n_cycles):
            sim_run = self.proc.run(sim_profile, sim_cap)
            viz_run = self.proc.run(viz_profile, viz_cap)
            result.cycles.append(
                DynamicCycleRecord(
                    cycle=cycle,
                    sim_cap_w=sim_cap,
                    viz_cap_w=viz_cap,
                    sim_time_s=sim_run.time_s,
                    viz_time_s=viz_run.time_s,
                    sim_power_w=sim_run.avg_power_w,
                    viz_power_w=viz_run.avg_power_w,
                )
            )
            sim_cap, viz_cap = self.decide(sim_run.avg_power_w, viz_run.avg_power_w)
        return result
