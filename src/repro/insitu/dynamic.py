"""Dynamic per-cycle power reallocation — the runtime the paper envisions.

§VII: "We can integrate the findings into a job-level runtime system,
like PaViz or GEOPM, to dynamically reallocate the power to the various
components within the job."  The static advisor
(:mod:`repro.insitu.budget`) decides once; this controller re-decides
*every cycle* from the previous cycle's measured phase draws — no
oracle knowledge of the workload, only the counters a real runtime
sees.

Policy per cycle: give each phase its measured draw plus a headroom
margin (so it never throttles on its own demand), distribute the
remaining node budget proportionally to how throttled each phase was,
and clamp into the RAPL range.  Converges within a couple of cycles to
the static advisor's split when the workload is stationary — a property
the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.simulator import Processor
from ..workload import WorkProfile

__all__ = ["DynamicCycleRecord", "DynamicRunResult", "DynamicPowerRuntime"]


@dataclass(frozen=True)
class DynamicCycleRecord:
    """One control period's decisions and measurements."""

    cycle: int
    sim_cap_w: float
    viz_cap_w: float
    sim_time_s: float
    viz_time_s: float
    sim_power_w: float
    viz_power_w: float
    #: The node budget this cycle was decided against (equal to the
    #: runtime's static budget unless a governor rescaled it).
    budget_w: float = 0.0

    @property
    def makespan_s(self) -> float:
        return max(self.sim_time_s, self.viz_time_s)


@dataclass
class DynamicRunResult:
    cycles: list[DynamicCycleRecord] = field(default_factory=list)

    @property
    def total_makespan_s(self) -> float:
        return sum(c.makespan_s for c in self.cycles)

    def final_caps(self) -> tuple[float, float]:
        if not self.cycles:
            raise ValueError("no cycles recorded")
        last = self.cycles[-1]
        return last.sim_cap_w, last.viz_cap_w


class DynamicPowerRuntime:
    """Feedback power-budget controller over concurrent sim/viz sockets.

    Parameters
    ----------
    node_budget_w:
        Combined cap for the two sockets.
    headroom_w:
        Margin added to each phase's measured draw before redistributing
        the surplus (keeps a phase from throttling on natural variance).
    """

    def __init__(
        self,
        processor: Processor,
        node_budget_w: float,
        *,
        headroom_w: float = 5.0,
        governor=None,
        signal_trace=None,
    ):
        floor = 2 * processor.spec.rapl_floor_watts
        if node_budget_w < floor:
            raise ValueError(f"node budget below the 2-socket floor ({floor} W)")
        if (governor is None) != (signal_trace is None):
            raise ValueError("governor and signal_trace must be given together")
        self.proc = processor
        self.budget = float(node_budget_w)
        self.headroom = float(headroom_w)
        #: Optional power policy (:mod:`repro.insitu.governors`): when
        #: set, each cycle's node budget is the static budget scaled by
        #: the governor's capacity fraction for the signal sample at the
        #: accumulated run time (never below the 2-socket floor).
        self.governor = governor
        self.signal_trace = signal_trace

    def _clamp(self, cap: float) -> float:
        return self.proc.rapl.validate_cap(cap)

    def budget_at(self, t_s: float) -> float:
        """The effective node budget for the cycle starting at ``t_s``."""
        if self.governor is None:
            return self.budget
        fraction = self.governor.limit(self.signal_trace.value_at(t_s))
        floor = 2 * self.proc.spec.rapl_floor_watts
        return max(floor, self.budget * fraction)

    def decide(
        self, sim_draw_w: float, viz_draw_w: float, *, budget_w: float | None = None
    ) -> tuple[float, float]:
        """Next cycle's (sim_cap, viz_cap) from measured draws."""
        budget = self.budget if budget_w is None else float(budget_w)
        floor = self.proc.spec.rapl_floor_watts
        if budget < 2 * floor:
            raise ValueError(f"cycle budget below the 2-socket floor ({2 * floor} W)")
        want_sim = sim_draw_w + self.headroom
        want_viz = viz_draw_w + self.headroom
        surplus = budget - want_sim - want_viz
        if surplus >= 0:
            # Both satisfied: hand the surplus to the hungrier phase
            # (it is the one a cap would hurt).
            if sim_draw_w >= viz_draw_w:
                want_sim += surplus
            else:
                want_viz += surplus
        else:
            # Oversubscribed: shave proportionally to demand.
            scale = budget / (want_sim + want_viz)
            want_sim *= scale
            want_viz *= scale
        # The surplus hand-off may push one phase's wish near (or past)
        # the whole budget.  validate_cap clamps *upward* to the RAPL
        # floor, so an uncapped wish would leave the other phase with
        # less than floor headroom and the floor clamp would then push
        # the pair over budget — or, when budget > TDP, leave a
        # non-positive remainder that validate_cap rejects outright.
        # Reserving floor headroom before clamping keeps the remainder
        # in [floor, budget] and the pair within the budget, since the
        # constructor guarantees budget >= 2 * floor.
        sim_cap = self._clamp(min(want_sim, budget - floor))
        viz_cap = self._clamp(min(want_viz, budget - sim_cap))
        return sim_cap, viz_cap

    def run(
        self,
        sim_profile: WorkProfile,
        viz_profile: WorkProfile,
        n_cycles: int,
    ) -> DynamicRunResult:
        """Drive ``n_cycles`` with per-cycle feedback.

        Cycle 0 starts from the naive 50/50 split; every later cycle
        uses the previous cycle's measured draws.  With a governor the
        budget itself is re-sampled at each cycle boundary.
        """
        if n_cycles < 1:
            raise ValueError("need at least one cycle")
        result = DynamicRunResult()
        t_s = 0.0
        budget = self.budget_at(t_s)
        sim_cap = viz_cap = self._clamp(budget / 2.0)
        for cycle in range(n_cycles):
            sim_run = self.proc.run(sim_profile, sim_cap)
            viz_run = self.proc.run(viz_profile, viz_cap)
            record = DynamicCycleRecord(
                cycle=cycle,
                sim_cap_w=sim_cap,
                viz_cap_w=viz_cap,
                sim_time_s=sim_run.time_s,
                viz_time_s=viz_run.time_s,
                sim_power_w=sim_run.avg_power_w,
                viz_power_w=viz_run.avg_power_w,
                budget_w=budget,
            )
            result.cycles.append(record)
            t_s += record.makespan_s
            budget = self.budget_at(t_s)
            sim_cap, viz_cap = self.decide(
                sim_run.avg_power_w, viz_run.avg_power_w, budget_w=budget
            )
        return result
